#include "systolic/signals.h"

#include <algorithm>

namespace saffire {

std::string ToString(MacSignal signal) {
  switch (signal) {
    case MacSignal::kMulOut:
      return "mul_out";
    case MacSignal::kAdderOut:
      return "adder_out";
    case MacSignal::kWeightOperand:
      return "weight_operand";
    case MacSignal::kActForward:
      return "act_forward";
    case MacSignal::kSouthForward:
      return "south_forward";
  }
  return "unknown";
}

MacSignal MacSignalFromString(const std::string& name) {
  if (name == "mul_out") return MacSignal::kMulOut;
  if (name == "adder_out") return MacSignal::kAdderOut;
  if (name == "weight_operand") return MacSignal::kWeightOperand;
  if (name == "act_forward") return MacSignal::kActForward;
  if (name == "south_forward") return MacSignal::kSouthForward;
  SAFFIRE_CHECK_MSG(false, "unknown MAC signal '" << name << "'");
}

int SignalWidth(MacSignal signal, const ArrayConfig& config) {
  config.Validate();
  switch (signal) {
    case MacSignal::kMulOut:
      return config.product_bits();
    case MacSignal::kAdderOut:
      return config.acc_bits;
    case MacSignal::kWeightOperand:
      return config.input_bits;
    case MacSignal::kActForward:
      return config.input_bits;
    case MacSignal::kSouthForward:
      return std::max(config.acc_bits, config.input_bits);
  }
  SAFFIRE_CHECK_MSG(false, "unknown MAC signal");
}

int SignalWidth(MacSignal signal, const ArrayConfig& config,
                Dataflow dataflow) {
  if (signal == MacSignal::kSouthForward) {
    // WS (and IS, which runs the WS datapath) forwards partial sums south;
    // OS forwards the streamed weight.
    return dataflow == Dataflow::kOutputStationary ? config.input_bits
                                                   : config.acc_bits;
  }
  return SignalWidth(signal, config);
}

std::string ToString(Dataflow dataflow) {
  switch (dataflow) {
    case Dataflow::kOutputStationary:
      return "OS";
    case Dataflow::kWeightStationary:
      return "WS";
    case Dataflow::kInputStationary:
      return "IS";
  }
  return "unknown";
}

Dataflow DataflowFromString(const std::string& name) {
  if (name == "OS" || name == "os") return Dataflow::kOutputStationary;
  if (name == "WS" || name == "ws") return Dataflow::kWeightStationary;
  if (name == "IS" || name == "is") return Dataflow::kInputStationary;
  SAFFIRE_CHECK_MSG(false, "unknown dataflow '" << name << "'");
}

}  // namespace saffire
