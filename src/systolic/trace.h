// Waveform capture: an in-memory signal recorder for tests and a VCD
// (Value Change Dump) writer so small simulations can be inspected in
// standard waveform viewers (GTKWave etc.) — the debugging workflow an
// RTL-level FI framework supports.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "systolic/fault_hook.h"

namespace saffire {

// Records every observed signal sample; intended for unit tests and small
// demos (memory grows linearly with PE-count × cycles).
class RecordingTracer : public Tracer {
 public:
  struct Sample {
    PeCoord pe;
    MacSignal signal = MacSignal::kAdderOut;
    std::int64_t value = 0;
    std::int64_t cycle = 0;
  };

  void OnSignal(PeCoord pe, MacSignal signal, std::int64_t value,
                std::int64_t cycle) override;

  const std::vector<Sample>& samples() const { return samples_; }
  void Clear() { samples_.clear(); }

  // All samples of one signal at one PE, in cycle order.
  std::vector<Sample> SamplesFor(PeCoord pe, MacSignal signal) const;

 private:
  std::vector<Sample> samples_;
};

// Streams a VCD file. Declare the scope up front with the array config,
// then install on the array; Finish() (or destruction) flushes the final
// timestamp. One VCD time unit == one array cycle.
class VcdTracer : public Tracer {
 public:
  // `out` must outlive the tracer.
  VcdTracer(std::ostream& out, const ArrayConfig& config);
  ~VcdTracer() override;
  VcdTracer(const VcdTracer&) = delete;
  VcdTracer& operator=(const VcdTracer&) = delete;

  void OnSignal(PeCoord pe, MacSignal signal, std::int64_t value,
                std::int64_t cycle) override;

  // Emits the closing timestamp; further samples are rejected.
  void Finish();

 private:
  struct VarKey {
    std::int32_t row;
    std::int32_t col;
    MacSignal signal;
    auto operator<=>(const VarKey&) const = default;
  };

  std::string IdFor(const VarKey& key);
  void EmitValue(const VarKey& key, std::int64_t value);

  std::ostream& out_;
  ArrayConfig config_;
  std::map<VarKey, std::string> ids_;
  std::map<VarKey, std::int64_t> last_values_;
  std::int64_t current_time_ = -1;
  bool finished_ = false;
};

}  // namespace saffire
