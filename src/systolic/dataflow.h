// Dataflow schedulers: the sequencing logic that drives the SystolicArray
// datapath through one tile-sized matrix multiplication under each of the
// paper's two mapping schemes (Sec. II-D).
//
// Both schedulers implement C = A·B for a single tile:
//   - WeightStationaryScheduler preloads B into the PE weight registers,
//     streams the rows of A west→east with the classic diagonal skew, and
//     samples finished partial sums at the south edge of each column. The
//     number of A rows (M) is unbounded — rows stream through — while
//     A's columns (K) must fit the array rows and B's columns (N) the array
//     columns.
//   - OutputStationaryScheduler streams A from the west and B from the
//     north; each PE (i, j) accumulates C[i][j] in place. M must fit the
//     array rows and N the array columns; the reduction depth K is
//     unbounded.
//
// Operations larger than these limits are tiled by the accelerator driver
// (accel/driver.h), never by the schedulers.
#pragma once

#include "systolic/array.h"
#include "tensor/tensor.h"

namespace saffire {

class WeightStationaryScheduler {
 public:
  explicit WeightStationaryScheduler(SystolicArray& array) : array_(array) {}

  // C[M×N] = A[M×K]·B[K×N] (+ psum_seed[M×N] if non-null, injected at the
  // north edge like Gemmini's bias rows). Requires K ≤ array rows and
  // N ≤ array cols; undersized operands are zero-padded onto the full array
  // so every PE — including a faulty one outside the operand footprint —
  // still cycles. `charge_preload` controls whether the weight shift-in
  // latency (rows idle cycles) is billed here; a double-buffered
  // controller bills only the non-overlapped remainder itself.
  Int32Tensor Multiply(const Int8Tensor& a, const Int8Tensor& b,
                       const Int32Tensor* psum_seed = nullptr,
                       bool charge_preload = true);

  // Cycles consumed by the most recent Multiply (preload + stream).
  std::int64_t last_cycles() const { return last_cycles_; }

 private:
  SystolicArray& array_;
  std::int64_t last_cycles_ = 0;
};

class OutputStationaryScheduler {
 public:
  explicit OutputStationaryScheduler(SystolicArray& array) : array_(array) {}

  // C[M×N] = A[M×K]·B[K×N]. Requires M ≤ array rows and N ≤ array cols.
  Int32Tensor Multiply(const Int8Tensor& a, const Int8Tensor& b);

  // Cycles consumed by the most recent Multiply (stream + drain).
  std::int64_t last_cycles() const { return last_cycles_; }

 private:
  SystolicArray& array_;
  std::int64_t last_cycles_ = 0;
};

// Input-stationary scheduler: the stationary operand is the *input* tile.
// Physically this is the WS datapath computing Cᵀ = Bᵀ·Aᵀ — Aᵀ (K×M) is
// preloaded into the PE registers and the rows of Bᵀ stream — so a fault
// in array column c lands in output **row** c. Requires K ≤ array rows and
// M ≤ array cols; the weight-stream length N is unbounded.
class InputStationaryScheduler {
 public:
  explicit InputStationaryScheduler(SystolicArray& array) : ws_(array) {}

  // C[M×N] = A[M×K]·B[K×N].
  Int32Tensor Multiply(const Int8Tensor& a, const Int8Tensor& b);

  // Cycles consumed by the most recent Multiply.
  std::int64_t last_cycles() const { return ws_.last_cycles(); }

 private:
  WeightStationaryScheduler ws_;
};

// Convenience dispatcher for a single-tile multiply under any dataflow;
// used by tests and the fault-injection runner for untiled operations.
Int32Tensor MatMulSingleTile(SystolicArray& array, Dataflow dataflow,
                             const Int8Tensor& a, const Int8Tensor& b);

}  // namespace saffire
