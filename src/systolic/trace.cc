#include "systolic/trace.h"

#include "common/bits.h"

namespace saffire {

void RecordingTracer::OnSignal(PeCoord pe, MacSignal signal,
                               std::int64_t value, std::int64_t cycle) {
  samples_.push_back(Sample{pe, signal, value, cycle});
}

std::vector<RecordingTracer::Sample> RecordingTracer::SamplesFor(
    PeCoord pe, MacSignal signal) const {
  std::vector<Sample> out;
  for (const Sample& s : samples_) {
    if (s.pe == pe && s.signal == signal) out.push_back(s);
  }
  return out;
}

VcdTracer::VcdTracer(std::ostream& out, const ArrayConfig& config)
    : out_(out), config_(config) {
  config_.Validate();
  out_ << "$date saffire simulation $end\n"
       << "$version saffire-1.0 $end\n"
       << "$timescale 1ns $end\n"
       << "$scope module systolic_array $end\n";
  // Declare every PE signal up front so viewers see the full hierarchy even
  // for signals that never change.
  for (std::int32_t r = 0; r < config_.rows; ++r) {
    for (std::int32_t c = 0; c < config_.cols; ++c) {
      for (int s = 0; s < kNumMacSignals; ++s) {
        const auto signal = static_cast<MacSignal>(s);
        const VarKey key{r, c, signal};
        const std::string id = IdFor(key);
        out_ << "$var wire " << SignalWidth(signal, config_) << " " << id
             << " pe_" << r << "_" << c << "_" << ToString(signal)
             << " $end\n";
      }
    }
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

VcdTracer::~VcdTracer() {
  try {
    Finish();
  } catch (...) {
    // Never throw from a destructor; a failed final flush loses only the
    // closing timestamp.
  }
}

std::string VcdTracer::IdFor(const VarKey& key) {
  const auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  // Base-94 identifier over the printable ASCII range, per the VCD spec.
  std::size_t n = ids_.size();
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n != 0);
  ids_.emplace(key, id);
  return id;
}

void VcdTracer::EmitValue(const VarKey& key, std::int64_t value) {
  out_ << 'b' << ToBinary(value, SignalWidth(key.signal, config_)) << ' '
       << IdFor(key) << '\n';
}

void VcdTracer::OnSignal(PeCoord pe, MacSignal signal, std::int64_t value,
                         std::int64_t cycle) {
  SAFFIRE_CHECK_MSG(!finished_, "VcdTracer already finished");
  if (cycle != current_time_) {
    SAFFIRE_CHECK_MSG(cycle > current_time_,
                      "non-monotonic cycle " << cycle);
    out_ << '#' << cycle << '\n';
    current_time_ = cycle;
  }
  const VarKey key{pe.row, pe.col, signal};
  const auto it = last_values_.find(key);
  if (it != last_values_.end() && it->second == value) return;
  last_values_[key] = value;
  EmitValue(key, value);
}

void VcdTracer::Finish() {
  if (finished_) return;
  out_ << '#' << (current_time_ + 1) << '\n';
  out_.flush();
  finished_ = true;
}

}  // namespace saffire
