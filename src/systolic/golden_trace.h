// Golden-run trace: the externally visible array state recorded once per
// fault-free run so that faulty runs can be executed *differentially* — only
// the columns inside a fault's static influence cone are re-simulated, and
// every read that would touch an unsimulated column replays the recorded
// golden value instead (Sec. III-B of the paper contrasts faulty output
// against golden output; the determinism result of Sec. IV is what makes the
// cone static and the replay sound).
//
// What must be recorded is exactly what the schedulers read back from the
// array between Steps:
//   - the registered south outputs of the bottom PE row, sampled after every
//     Step (the WS output path), and
//   - the in-place accumulator grid at the end of every tile invocation
//     (the OS drain path). Tile boundaries are delimited by Reset(), which
//     both schedulers issue at the start of Multiply, so a checkpoint is
//     captured on each Reset plus once when recording ends.
//
// A trace is valid for replay against any run that executes the same
// instruction stream on the same array configuration — which a faulty run
// does, because fault injection corrupts datapath values only and never
// perturbs sequencing (accel/controller.cc keeps cycle counts independent of
// data).
#pragma once

#include <cstdint>
#include <vector>

namespace saffire {

// Contiguous range of array columns [lo, hi] that a fault can influence —
// the static cone computed by FaultCone() (fi/cone.h). Columns outside the
// cone provably carry golden values in a faulty run.
struct ColumnCone {
  std::int32_t lo = 0;
  std::int32_t hi = 0;

  std::int32_t width() const { return hi - lo + 1; }
  bool contains(std::int32_t col) const { return col >= lo && col <= hi; }

  bool operator==(const ColumnCone&) const = default;
};

class GoldenTrace {
 public:
  GoldenTrace() = default;

  // Re-arms the trace for a new recording on a rows×cols array.
  // `base_cycle` is the simulator clock at the start of the recorded run;
  // per-step cycles are exposed relative to it so the trace stays valid for
  // replay on simulators with different accumulated cycle counts.
  void Begin(std::int32_t rows, std::int32_t cols,
             std::int64_t base_cycle = 0);

  // Appends the registered bottom-row south outputs of one Step. `cycle` is
  // the hook-visible clock of that Step (the value fault hooks compare
  // transient strike cycles against).
  void AppendSouthRow(const std::int64_t* row, std::int64_t cycle);

  // Appends one accumulator checkpoint (row-major rows×cols, captured on
  // Reset and at end of recording). An all-zero grid is stored as an empty
  // vector — the common case for weight-stationary runs, whose accumulators
  // are never written.
  void AppendAccumulatorCheckpoint(std::vector<std::int64_t> grid);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int64_t steps() const { return steps_; }
  std::int64_t checkpoints() const {
    return static_cast<std::int64_t>(acc_checkpoints_.size());
  }

  // South output of `col` as registered after the (step+1)-th Step of the
  // recorded run.
  std::int64_t SouthAt(std::int64_t step, std::int32_t col) const;

  // Accumulator of PE (row, col) at checkpoint `index`.
  std::int64_t AccumulatorAt(std::int64_t index, std::int32_t row,
                             std::int32_t col) const;

  // Hook-visible clock of the (step+1)-th recorded Step, relative to the
  // run start — the offset a pre-sampled transient strike cycle is compared
  // against when the run is replayed lane-parallel (fi/batch.cc).
  std::int64_t StepRelCycle(std::int64_t step) const;

  // Total Steps recorded before checkpoint `index` was captured — the tile
  // boundary structure (checkpoints are captured on each Reset plus once at
  // end of recording), used to cross-check a batched replay's re-derived
  // tile schedule against the recorded run.
  std::int64_t StepsAtCheckpoint(std::int64_t index) const;

  // Approximate heap footprint, for cache accounting.
  std::size_t MemoryBytes() const;

 private:
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::int64_t steps_ = 0;
  std::int64_t base_cycle_ = 0;
  std::vector<std::int64_t> south_rows_;  // steps_ × cols_, row-major
  std::vector<std::int64_t> step_cycles_;  // steps_, hook clock per Step
  std::vector<std::int64_t> checkpoint_steps_;  // steps_ at each checkpoint
  std::vector<std::vector<std::int64_t>> acc_checkpoints_;
};

}  // namespace saffire
