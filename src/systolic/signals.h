// Named internal signals of a MAC unit, addressable by the fault injector.
//
// The paper's injection point is kAdderOut: "we injected a single stuck-at
// fault in the intermediate signals of the MAC unit, right after the
// addition logic and before the result is stored in the accumulator"
// (Sec. II-F). The other signals let the framework explore the rest of the
// datapath (multiplier output, operand registers, forwarding paths), which
// the paper leaves to future work.
#pragma once

#include <cstdint>
#include <string>

#include "systolic/config.h"

namespace saffire {

enum class MacSignal : std::uint8_t {
  kMulOut = 0,     // multiplier output (product_bits wide)
  kAdderOut = 1,   // adder output, pre-accumulator (acc_bits wide) — paper's site
  kWeightOperand = 2,  // weight operand as consumed by the multiplier
  kActForward = 3,     // activation forwarded to the east neighbour
  kSouthForward = 4,   // value forwarded to the south neighbour
};

inline constexpr int kNumMacSignals = 5;

// Returns "mul_out" / "adder_out" / ....
std::string ToString(MacSignal signal);

// Parses the strings produced by ToString; throws on unknown names.
MacSignal MacSignalFromString(const std::string& name);

// Architectural width in bits of `signal` under `config`. For
// kSouthForward the width depends on the dataflow: the south wire carries a
// partial sum (acc_bits) under WS and a forwarded weight (input_bits) under
// OS; this returns the wider of the two so injected bit positions are
// always representable. Prefer SignalWidth(signal, config, dataflow).
int SignalWidth(MacSignal signal, const ArrayConfig& config);

int SignalWidth(MacSignal signal, const ArrayConfig& config,
                Dataflow dataflow);

}  // namespace saffire
