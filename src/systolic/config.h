// Architectural configuration of the simulated systolic array.
//
// The paper's evaluation platform is a 16×16 INT8 Gemmini instance
// (Table I); `ArrayConfig{}` defaults to exactly that. Both dataflows the
// paper studies (RQ1) are supported on the same datapath.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"

namespace saffire {

// Data-flow mapping scheme (Sec. II-D).
//  kWeightStationary: weights are preloaded into the PEs; activations stream
//    west→east and partial sums flow north→south. Output C[i][j] exits the
//    bottom of column j after traversing every PE in that column.
//  kOutputStationary: each PE owns one output element; activations stream
//    west→east, weights stream north→south, and products accumulate in
//    place.
//  kInputStationary: the input (activation) tile is preloaded and the
//    weights stream — one of the "other data flow mapping schemes" the
//    paper names (Sec. II-D). Physically it is the WS datapath with the
//    operand roles swapped (Cᵀ = Bᵀ·Aᵀ), so a stuck-at fault in array
//    column c corrupts output *row* c — the single-row pattern class.
enum class Dataflow : std::uint8_t {
  kOutputStationary = 0,
  kWeightStationary = 1,
  kInputStationary = 2,
};

// Returns "OS" / "WS" / "IS" (the paper's abbreviations).
std::string ToString(Dataflow dataflow);

// Parses "OS"/"WS"/"IS" (or lowercase, the CLI spelling); throws
// std::invalid_argument on unknown names.
Dataflow DataflowFromString(const std::string& name);

struct ArrayConfig {
  std::int32_t rows = 16;
  std::int32_t cols = 16;
  std::int32_t input_bits = 8;  // operand width (activations and weights)
  std::int32_t acc_bits = 32;   // accumulator / partial-sum width

  std::int32_t product_bits() const { return 2 * input_bits; }
  std::int64_t num_pes() const {
    return static_cast<std::int64_t>(rows) * cols;
  }

  void Validate() const {
    SAFFIRE_CHECK_MSG(rows > 0 && rows <= 1024, "rows=" << rows);
    SAFFIRE_CHECK_MSG(cols > 0 && cols <= 1024, "cols=" << cols);
    SAFFIRE_CHECK_MSG(input_bits >= 2 && input_bits <= 16,
                      "input_bits=" << input_bits);
    SAFFIRE_CHECK_MSG(acc_bits >= 2 * input_bits && acc_bits <= 64,
                      "acc_bits=" << acc_bits);
  }

  std::string ToString() const {
    return std::to_string(rows) + "x" + std::to_string(cols) + " INT" +
           std::to_string(input_bits) + "/ACC" + std::to_string(acc_bits);
  }

  bool operator==(const ArrayConfig&) const = default;
};

// Coordinate of a processing element: row 0 is the north edge (weights
// enter / first reduction step), column 0 is the west edge (activations
// enter).
struct PeCoord {
  std::int32_t row = 0;
  std::int32_t col = 0;

  bool operator==(const PeCoord&) const = default;
  auto operator<=>(const PeCoord&) const = default;
};

}  // namespace saffire
