#include "systolic/dataflow.h"

#include "systolic/timing.h"
#include "tensor/transpose.h"

namespace saffire {
namespace {

void CheckGemmShapes(const Int8Tensor& a, const Int8Tensor& b) {
  SAFFIRE_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                    "A " << a.ShapeString() << " B " << b.ShapeString());
  SAFFIRE_CHECK_MSG(a.dim(1) == b.dim(0), "A " << a.ShapeString()
                                               << " incompatible with B "
                                               << b.ShapeString());
}

}  // namespace

Int32Tensor WeightStationaryScheduler::Multiply(const Int8Tensor& a,
                                                const Int8Tensor& b,
                                                const Int32Tensor* psum_seed,
                                                bool charge_preload) {
  CheckGemmShapes(a, b);
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  const auto rows = static_cast<std::int64_t>(array_.config().rows);
  const auto cols = static_cast<std::int64_t>(array_.config().cols);
  SAFFIRE_CHECK_MSG(k <= rows, "K=" << k << " exceeds array rows " << rows
                                    << " — tile first");
  SAFFIRE_CHECK_MSG(n <= cols, "N=" << n << " exceeds array cols " << cols
                                    << " — tile first");
  if (psum_seed != nullptr) {
    SAFFIRE_CHECK_MSG(psum_seed->rank() == 2 && psum_seed->dim(0) == m &&
                          psum_seed->dim(1) == n,
                      "psum seed " << psum_seed->ShapeString());
  }

  const std::int64_t start_cycle = array_.cycle();
  array_.Reset();

  // Weight preload: B[r][c] into PE(r, c); PEs outside the operand footprint
  // keep the zero written by Reset. The shift-in latency is accounted as
  // idle cycles (see SystolicArray::SetWeight doc).
  for (std::int64_t r = 0; r < k; ++r) {
    for (std::int64_t c = 0; c < n; ++c) {
      array_.SetWeight(
          PeCoord{static_cast<std::int32_t>(r), static_cast<std::int32_t>(c)},
          b(r, c));
    }
  }
  if (charge_preload) array_.AdvanceIdle(rows);

  // Stream: cycle t feeds A[t−r][r] at west row r and the partial-sum seed
  // for output row t−c at north column c; output C[i][c] leaves the south
  // edge of column c after the Step of cycle i + (rows−1) + c.
  Int32Tensor out({m, n});
  const std::int64_t steps = WeightStationaryStreamCycles(m, array_.config());
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t i = t - r;
      const bool valid = r < k && i >= 0 && i < m;
      array_.SetWestInput(static_cast<std::int32_t>(r),
                          valid ? a(i, r) : 0);
    }
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int64_t i = t - c;
      std::int64_t seed = 0;
      if (psum_seed != nullptr && c < n && i >= 0 && i < m) {
        seed = (*psum_seed)(i, c);
      }
      array_.SetNorthInput(static_cast<std::int32_t>(c), seed);
    }
    array_.Step(Dataflow::kWeightStationary);
    for (std::int64_t c = 0; c < n; ++c) {
      const std::int64_t i = t - (rows - 1) - c;
      if (i >= 0 && i < m) {
        out(i, c) = static_cast<std::int32_t>(
            array_.SouthOutput(static_cast<std::int32_t>(c)));
      }
    }
  }

  last_cycles_ = array_.cycle() - start_cycle;
  return out;
}

Int32Tensor OutputStationaryScheduler::Multiply(const Int8Tensor& a,
                                                const Int8Tensor& b) {
  CheckGemmShapes(a, b);
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  const auto rows = static_cast<std::int64_t>(array_.config().rows);
  const auto cols = static_cast<std::int64_t>(array_.config().cols);
  SAFFIRE_CHECK_MSG(m <= rows, "M=" << m << " exceeds array rows " << rows
                                    << " — tile first");
  SAFFIRE_CHECK_MSG(n <= cols, "N=" << n << " exceeds array cols " << cols
                                    << " — tile first");

  const std::int64_t start_cycle = array_.cycle();
  array_.Reset();

  // Stream: cycle t feeds A[i][t−i] at west row i and B[t−j][j] at north
  // column j; the operands for reduction step k meet at PE(i, j) on cycle
  // k + i + j.
  const std::int64_t steps = OutputStationaryStreamCycles(k, array_.config());
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int64_t kk = t - i;
      const bool valid = i < m && kk >= 0 && kk < k;
      array_.SetWestInput(static_cast<std::int32_t>(i),
                          valid ? a(i, kk) : 0);
    }
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::int64_t kk = t - j;
      const bool valid = j < n && kk >= 0 && kk < k;
      array_.SetNorthInput(static_cast<std::int32_t>(j),
                           valid ? b(kk, j) : 0);
    }
    array_.Step(Dataflow::kOutputStationary);
  }

  // Drain: results are read from the in-place accumulators; the shift-out
  // latency is accounted as idle cycles.
  Int32Tensor out({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out(i, j) = static_cast<std::int32_t>(array_.accumulator(
          PeCoord{static_cast<std::int32_t>(i), static_cast<std::int32_t>(j)}));
    }
  }
  array_.AdvanceIdle(rows);

  last_cycles_ = array_.cycle() - start_cycle;
  return out;
}

Int32Tensor InputStationaryScheduler::Multiply(const Int8Tensor& a,
                                               const Int8Tensor& b) {
  CheckGemmShapes(a, b);
  return Transpose(ws_.Multiply(Transpose(b), Transpose(a)));
}

Int32Tensor MatMulSingleTile(SystolicArray& array, Dataflow dataflow,
                             const Int8Tensor& a, const Int8Tensor& b) {
  switch (dataflow) {
    case Dataflow::kWeightStationary: {
      WeightStationaryScheduler scheduler(array);
      return scheduler.Multiply(a, b);
    }
    case Dataflow::kOutputStationary: {
      OutputStationaryScheduler scheduler(array);
      return scheduler.Multiply(a, b);
    }
    case Dataflow::kInputStationary: {
      InputStationaryScheduler scheduler(array);
      return scheduler.Multiply(a, b);
    }
  }
  SAFFIRE_CHECK_MSG(false, "unknown dataflow");
}

}  // namespace saffire
