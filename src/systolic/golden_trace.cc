#include "systolic/golden_trace.h"

#include "common/check.h"

namespace saffire {

void GoldenTrace::Begin(std::int32_t rows, std::int32_t cols,
                        std::int64_t base_cycle) {
  SAFFIRE_CHECK_MSG(rows > 0 && cols > 0, rows << "x" << cols);
  rows_ = rows;
  cols_ = cols;
  steps_ = 0;
  base_cycle_ = base_cycle;
  south_rows_.clear();
  step_cycles_.clear();
  checkpoint_steps_.clear();
  acc_checkpoints_.clear();
}

void GoldenTrace::AppendSouthRow(const std::int64_t* row, std::int64_t cycle) {
  south_rows_.insert(south_rows_.end(), row, row + cols_);
  step_cycles_.push_back(cycle);
  ++steps_;
}

void GoldenTrace::AppendAccumulatorCheckpoint(std::vector<std::int64_t> grid) {
  SAFFIRE_ASSERT_MSG(
      grid.empty() ||
          grid.size() == static_cast<std::size_t>(rows_) *
                             static_cast<std::size_t>(cols_),
      "checkpoint size " << grid.size());
  checkpoint_steps_.push_back(steps_);
  acc_checkpoints_.push_back(std::move(grid));
}

std::int64_t GoldenTrace::SouthAt(std::int64_t step, std::int32_t col) const {
  SAFFIRE_ASSERT_MSG(step >= 0 && step < steps_,
                     "step " << step << " of " << steps_
                             << " — differential run misaligned with trace");
  SAFFIRE_ASSERT(col >= 0 && col < cols_);
  return south_rows_[static_cast<std::size_t>(step) *
                         static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(col)];
}

std::int64_t GoldenTrace::AccumulatorAt(std::int64_t index, std::int32_t row,
                                        std::int32_t col) const {
  SAFFIRE_ASSERT_MSG(
      index >= 0 && index < checkpoints(),
      "checkpoint " << index << " of " << checkpoints()
                    << " — differential run misaligned with trace");
  const std::vector<std::int64_t>& grid =
      acc_checkpoints_[static_cast<std::size_t>(index)];
  if (grid.empty()) return 0;  // all-zero checkpoint, stored compactly
  SAFFIRE_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  return grid[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(col)];
}

std::int64_t GoldenTrace::StepRelCycle(std::int64_t step) const {
  SAFFIRE_ASSERT_MSG(step >= 0 && step < steps_,
                     "step " << step << " of " << steps_);
  return step_cycles_[static_cast<std::size_t>(step)] - base_cycle_;
}

std::int64_t GoldenTrace::StepsAtCheckpoint(std::int64_t index) const {
  SAFFIRE_ASSERT_MSG(index >= 0 && index < checkpoints(),
                     "checkpoint " << index << " of " << checkpoints());
  return checkpoint_steps_[static_cast<std::size_t>(index)];
}

std::size_t GoldenTrace::MemoryBytes() const {
  std::size_t bytes = south_rows_.capacity() * sizeof(std::int64_t);
  bytes += step_cycles_.capacity() * sizeof(std::int64_t);
  bytes += checkpoint_steps_.capacity() * sizeof(std::int64_t);
  for (const auto& grid : acc_checkpoints_) {
    bytes += grid.capacity() * sizeof(std::int64_t);
  }
  return bytes;
}

}  // namespace saffire
