#include "systolic/simd_ops.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace saffire {
namespace {

constexpr const char* kSimdModeNames[] = {"auto", "avx2", "scalar"};
constexpr const char* kAcceptedValues = "auto|avx2|scalar";

// The requested mode, shared process-wide. SAFFIRE_SIMD is folded in once,
// lazily, so library users who never touch the env still get kAuto.
std::atomic<SimdMode> g_mode{SimdMode::kAuto};
std::atomic<bool> g_explicit{false};
std::once_flag g_env_once;

void ApplyEnvOnce() {
  std::call_once(g_env_once, [] {
    if (g_explicit.load(std::memory_order_acquire)) return;
    const char* env = std::getenv("SAFFIRE_SIMD");
    if (env == nullptr || *env == '\0') return;
    SimdMode mode;
    try {
      mode = ParseSimdMode(env);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument(std::string("unknown SAFFIRE_SIMD '") +
                                  env + "' (expected " + kAcceptedValues +
                                  ")");
    }
    SetSimdMode(mode);
  });
}

}  // namespace

std::string ToString(SimdMode mode) {
  return kSimdModeNames[static_cast<std::size_t>(mode)];
}

SimdMode ParseSimdMode(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kSimdModeNames); ++i) {
    if (name == kSimdModeNames[i]) return static_cast<SimdMode>(i);
  }
  throw std::invalid_argument("unknown SIMD mode '" + name + "' (expected " +
                              kAcceptedValues + ")");
}

SimdMode SimdModeFromString(const std::string& name) {
  return ParseSimdMode(name);
}

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void SetSimdMode(SimdMode mode) {
  if (mode == SimdMode::kAvx2 && !CpuSupportsAvx2()) {
    throw std::invalid_argument(
        "SIMD mode 'avx2' requested but the CPU does not support AVX2 "
        "(use 'auto' or 'scalar')");
  }
  g_explicit.store(true, std::memory_order_release);
  g_mode.store(mode, std::memory_order_release);
}

SimdMode RequestedSimdMode() {
  ApplyEnvOnce();
  return g_mode.load(std::memory_order_acquire);
}

void ConfigureSimdFromString(const std::string& value,
                             const std::string& source) {
  SimdMode mode;
  try {
    mode = ParseSimdMode(value);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("unknown " + source + " '" + value +
                                "' (expected " + kAcceptedValues + ")");
  }
  SetSimdMode(mode);
}

bool UseAvx2() {
  const SimdMode mode = RequestedSimdMode();
  if (mode == SimdMode::kScalar) return false;
  if (mode == SimdMode::kAvx2) return true;
  return CpuSupportsAvx2();
}

}  // namespace saffire
