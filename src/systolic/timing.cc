#include "systolic/timing.h"

namespace saffire {

std::int64_t WeightStationaryStreamCycles(std::int64_t m,
                                          const ArrayConfig& config) {
  SAFFIRE_CHECK_MSG(m > 0, "m=" << m);
  config.Validate();
  return m + config.rows + config.cols - 2;
}

std::int64_t WeightStationaryTileCycles(std::int64_t m,
                                        const ArrayConfig& config) {
  return WeightStationaryStreamCycles(m, config) + config.rows;
}

std::int64_t OutputStationaryStreamCycles(std::int64_t k,
                                          const ArrayConfig& config) {
  SAFFIRE_CHECK_MSG(k > 0, "k=" << k);
  config.Validate();
  return k + config.rows + config.cols - 2;
}

std::int64_t OutputStationaryTileCycles(std::int64_t k,
                                        const ArrayConfig& config) {
  return OutputStationaryStreamCycles(k, config) + config.rows;
}

}  // namespace saffire
