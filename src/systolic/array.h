// Cycle-accurate model of the 2-D MAC array datapath.
//
// The array is pure datapath: a grid of MAC units plus the inter-PE wires
// (activations west→east, partial sums / streamed weights north→south).
// Sequencing — operand skewing, weight preload, output sampling — belongs to
// the dataflow schedulers in dataflow.h, mirroring the hardware split
// between Gemmini's mesh and its controller.
//
// Register-transfer semantics: Step() evaluates every PE combinationally
// from the *previous* cycle's registered neighbour outputs and the current
// edge inputs, then commits all registers at once. A value written to a
// west/north edge input on cycle t is consumed by the edge PEs on cycle t
// and reaches PE column c / row r after c / r further cycles, exactly as in
// the RTL.
//
// Per-PE, per-cycle combinational function (both dataflows share the
// datapath; `weight` is the preloaded register under WS and the north
// operand under OS):
//
//   mul_out   = act_in × weight                  (product_bits wide)
//   adder_out = (WS ? north_in : acc) + mul_out  (acc_bits wide)
//   WS: south_out = adder_out                    (psum chain)
//   OS: acc' = adder_out, south_out = north_in   (weight forwarded)
//   act_east = act_in                            (activation forwarded)
//
// A FaultHook observes/corrupts any of these named signals on any PE, any
// cycle — the paper's injection point is adder_out (Sec. II-F).
#pragma once

#include <cstdint>
#include <vector>

#include "systolic/config.h"
#include "systolic/fault_hook.h"
#include "tensor/tensor.h"

namespace saffire {

class SystolicArray {
 public:
  explicit SystolicArray(const ArrayConfig& config);

  const ArrayConfig& config() const { return config_; }

  // Installs a non-owning fault hook; replaces any previous hook. The hook
  // must outlive the array or be cleared first. Passing nullptr clears.
  void InstallFaultHook(FaultHook* hook);
  void ClearFaultHook() { InstallFaultHook(nullptr); }

  // Installs a non-owning waveform tracer (nullptr clears). Tracing every
  // signal is expensive; intended for tests and small demos only.
  void InstallTracer(Tracer* tracer) { tracer_ = tracer; }

  // Clears all PE registers, wires, and edge inputs. Does not advance the
  // cycle counter and does not remove the fault hook — a permanent fault
  // survives any number of tile invocations (this is what produces the
  // paper's multi-tile fault patterns).
  void Reset();

  // --- Weight-stationary state -------------------------------------------
  // Directly writes the weight register of one PE. The scheduler accounts
  // the preload latency separately via AdvanceIdle (the load path is
  // distinct from the MAC datapath and outside the fault model, which
  // targets the MAC compute signals; memory/load faults are assumed
  // ECC-protected per the paper's fault-model assumption 1).
  void SetWeight(PeCoord pe, std::int64_t weight);
  std::int64_t weight(PeCoord pe) const;

  // --- Output-stationary state -------------------------------------------
  std::int64_t accumulator(PeCoord pe) const;
  void ClearAccumulators();

  // --- Edge inputs (valid for the next Step only) ------------------------
  void SetWestInput(std::int32_t row, std::int64_t value);
  void SetNorthInput(std::int32_t col, std::int64_t value);
  void ClearEdgeInputs();

  // Executes one clock cycle under `dataflow`.
  void Step(Dataflow dataflow);

  // Registered output at the south edge of column `col` (the value that
  // left the bottom PE on the most recent Step).
  std::int64_t SouthOutput(std::int32_t col) const;

  // Advances the cycle counter without datapath activity; models phases
  // whose cost we account but whose logic we do not simulate (weight
  // preload shift-in, accumulator drain).
  void AdvanceIdle(std::int64_t cycles);

  // --- Instrumentation ----------------------------------------------------
  std::int64_t cycle() const { return cycle_; }
  std::uint64_t total_pe_steps() const { return pe_steps_; }
  // Number of times the installed fault hook was consulted.
  std::uint64_t hook_invocations() const { return hook_invocations_; }

 private:
  std::size_t Index(std::int32_t row, std::int32_t col) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }
  void CheckCoord(PeCoord pe) const;

  ArrayConfig config_;
  std::int32_t rows_;
  std::int32_t cols_;

  // Per-PE registers.
  std::vector<std::int64_t> weights_;
  std::vector<std::int64_t> accumulators_;

  // Inter-PE wires, double-buffered for register semantics.
  std::vector<std::int64_t> act_wire_;        // PE(r,c) -> PE(r,c+1)
  std::vector<std::int64_t> south_wire_;      // PE(r,c) -> PE(r+1,c)
  std::vector<std::int64_t> act_wire_next_;
  std::vector<std::int64_t> south_wire_next_;

  // Edge inputs for the upcoming cycle.
  std::vector<std::int64_t> west_inputs_;
  std::vector<std::int64_t> north_inputs_;

  FaultHook* hook_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::vector<std::uint8_t> hooked_;  // per-PE cache of hook->AppliesTo

  std::int64_t cycle_ = 0;
  std::uint64_t pe_steps_ = 0;
  std::uint64_t hook_invocations_ = 0;
};

}  // namespace saffire
