// Cycle-accurate model of the 2-D MAC array datapath.
//
// The array is pure datapath: a grid of MAC units plus the inter-PE wires
// (activations west→east, partial sums / streamed weights north→south).
// Sequencing — operand skewing, weight preload, output sampling — belongs to
// the dataflow schedulers in dataflow.h, mirroring the hardware split
// between Gemmini's mesh and its controller.
//
// Register-transfer semantics: Step() evaluates every PE combinationally
// from the *previous* cycle's registered neighbour outputs and the current
// edge inputs, then commits all registers at once. A value written to a
// west/north edge input on cycle t is consumed by the edge PEs on cycle t
// and reaches PE column c / row r after c / r further cycles, exactly as in
// the RTL.
//
// Per-PE, per-cycle combinational function (both dataflows share the
// datapath; `weight` is the preloaded register under WS and the north
// operand under OS):
//
//   mul_out   = act_in × weight                  (product_bits wide)
//   adder_out = (WS ? north_in : acc) + mul_out  (acc_bits wide)
//   WS: south_out = adder_out                    (psum chain)
//   OS: acc' = adder_out, south_out = north_in   (weight forwarded)
//   act_east = act_in                            (activation forwarded)
//
// A FaultHook observes/corrupts any of these named signals on any PE, any
// cycle — the paper's injection point is adder_out (Sec. II-F).
//
// --- Execution tiers -------------------------------------------------------
// Step() picks between two implementations of the same RT function:
//
//   Reference path: the fully instrumented per-PE loop above, consulting the
//     fault hook on every named signal of hooked PEs and the tracer on every
//     signal of every PE. Selected whenever a tracer is installed, for the
//     columns that contain hooked PEs, or when force_reference_step() is on.
//
//   Fast path: a branch-free, hook-free kernel templated on the dataflow
//     with flat structure-of-arrays inner loops the compiler can vectorize.
//     When acc_bits == 32 (the paper's INT8/ACC32 configuration) the whole
//     state is held in int32_t and the accumulator truncation is the free
//     wrap-around of 32-bit arithmetic. Selected for golden runs and, in
//     faulty runs, for every maximal run of columns without a hooked PE.
//
//   Both paths are bit-for-bit identical in outputs, cycle counts, and
//   pe_steps (tests/systolic/fastpath_equivalence_test.cc).
//
// --- Differential (fault-cone) execution -----------------------------------
// BeginDifferential() restricts Step() to a contiguous column cone [lo, hi]
// and replays every read that would touch a column outside the cone from a
// GoldenTrace recorded on a fault-free run of the same instruction stream:
// SouthOutput() of an outside column returns the recorded golden value, and
// accumulator() of an outside column returns the recorded end-of-tile
// checkpoint. The activations entering the cone's west edge are reproduced
// by a delay line over the west edge inputs — columns west of the cone are
// a pure `lo`-cycle delay for the activation stream, which is exactly why
// the cone is static (no fault west of it can exist, by construction in
// fi/cone.h). PE evaluations skipped this way are counted in
// pe_steps_skipped(), the quantity behind the campaign-cost reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "systolic/config.h"
#include "systolic/fault_hook.h"
#include "systolic/golden_trace.h"
#include "tensor/tensor.h"

namespace saffire {

class SystolicArray {
 public:
  explicit SystolicArray(const ArrayConfig& config);

  const ArrayConfig& config() const { return config_; }

  // Installs a non-owning fault hook; replaces any previous hook. The hook
  // must outlive the array or be cleared first. Passing nullptr clears.
  void InstallFaultHook(FaultHook* hook);
  void ClearFaultHook() { InstallFaultHook(nullptr); }

  // Installs a non-owning waveform tracer (nullptr clears). Tracing every
  // signal is expensive; intended for tests and small demos only.
  void InstallTracer(Tracer* tracer) { tracer_ = tracer; }

  // Forces every Step through the fully instrumented reference loop, even
  // without a hook or tracer. For equivalence tests and benchmark baselines.
  void set_force_reference_step(bool force) { force_reference_ = force; }
  bool force_reference_step() const { return force_reference_; }

  // Clears all PE registers, wires, and edge inputs. Does not advance the
  // cycle counter and does not remove the fault hook — a permanent fault
  // survives any number of tile invocations (this is what produces the
  // paper's multi-tile fault patterns).
  void Reset();

  // --- Golden-trace recording --------------------------------------------
  // Records the externally visible state of every subsequent Step/Reset into
  // `trace` (non-owning) until EndGoldenRecording(). See golden_trace.h.
  void BeginGoldenRecording(GoldenTrace* trace);
  void EndGoldenRecording();

  // --- Differential execution --------------------------------------------
  // Restricts Step() to the column cone and replays outside reads from
  // `trace` (non-owning, recorded on a fault-free run of the same
  // instruction stream). Incompatible with a tracer and with recording.
  void BeginDifferential(ColumnCone cone, const GoldenTrace* trace);
  void EndDifferential();
  bool differential_active() const { return replay_ != nullptr; }

  // --- Weight-stationary state -------------------------------------------
  // Directly writes the weight register of one PE. The scheduler accounts
  // the preload latency separately via AdvanceIdle (the load path is
  // distinct from the MAC datapath and outside the fault model, which
  // targets the MAC compute signals; memory/load faults are assumed
  // ECC-protected per the paper's fault-model assumption 1).
  void SetWeight(PeCoord pe, std::int64_t weight);
  std::int64_t weight(PeCoord pe) const;

  // --- Output-stationary state -------------------------------------------
  std::int64_t accumulator(PeCoord pe) const;
  void ClearAccumulators();

  // --- Edge inputs (valid for the next Step only) ------------------------
  void SetWestInput(std::int32_t row, std::int64_t value);
  void SetNorthInput(std::int32_t col, std::int64_t value);
  void ClearEdgeInputs();

  // Executes one clock cycle under `dataflow`.
  void Step(Dataflow dataflow);

  // Registered output at the south edge of column `col` (the value that
  // left the bottom PE on the most recent Step).
  std::int64_t SouthOutput(std::int32_t col) const;

  // Advances the cycle counter without datapath activity; models phases
  // whose cost we account but whose logic we do not simulate (weight
  // preload shift-in, accumulator drain).
  void AdvanceIdle(std::int64_t cycles);

  // --- Instrumentation ----------------------------------------------------
  std::int64_t cycle() const { return cycle_; }
  std::uint64_t total_pe_steps() const { return pe_steps_; }
  // PE evaluations avoided by differential execution: PEs outside the cone
  // on each differential Step, whose values were replayed instead of
  // recomputed.
  std::uint64_t pe_steps_skipped() const { return pe_steps_skipped_; }
  // Number of times the installed fault hook was consulted.
  std::uint64_t hook_invocations() const { return hook_invocations_; }

 private:
  std::size_t Index(std::int32_t row, std::int32_t col) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }
  void CheckCoord(PeCoord pe) const;

  // The instrumented reference loop over columns [c0, c1]; consults the
  // hook for hooked PEs and the tracer for every PE.
  void StepReference(bool ws, std::int32_t c0, std::int32_t c1);
  // The branch-free kernels over columns [c0, c1] (wide = int64_t state,
  // narrow = int32_t state; narrow requires acc_bits == 32).
  template <bool kWs>
  void StepFastWide(std::int32_t c0, std::int32_t c1);
  template <bool kWs>
  void StepFastNarrow(std::int32_t c0, std::int32_t c1);

  // Fills west_entry_ with the activations entering column entry_col_ this
  // cycle and advances the west-input delay line (differential mode).
  void PrepareWestEntry();

  // Representation management for the narrow (int32) fast path. Exactly one
  // representation is canonical at a time, tracked by narrow_.
  void EnsureWide();
  void EnsureNarrow();

  std::vector<std::int64_t> SnapshotAccumulators() const;

  ArrayConfig config_;
  std::int32_t rows_;
  std::int32_t cols_;
  bool narrow_capable_;  // acc_bits == 32: int32 holds every signal exactly

  // Per-PE registers (wide representation).
  std::vector<std::int64_t> weights_;
  std::vector<std::int64_t> accumulators_;

  // Inter-PE wires, double-buffered for register semantics.
  std::vector<std::int64_t> act_wire_;        // PE(r,c) -> PE(r,c+1)
  std::vector<std::int64_t> south_wire_;      // PE(r,c) -> PE(r+1,c)
  std::vector<std::int64_t> act_wire_next_;
  std::vector<std::int64_t> south_wire_next_;

  // Narrow (int32) representation of the same state, canonical iff narrow_.
  std::vector<std::int32_t> weights32_;
  std::vector<std::int32_t> accumulators32_;
  std::vector<std::int32_t> act32_;
  std::vector<std::int32_t> south32_;
  std::vector<std::int32_t> act32_next_;
  std::vector<std::int32_t> south32_next_;
  bool narrow_ = false;

  // Edge inputs for the upcoming cycle (always wide; small and read once
  // per Step).
  std::vector<std::int64_t> west_inputs_;
  std::vector<std::int64_t> north_inputs_;
  std::vector<std::int32_t> north_inputs32_;  // per-Step narrow copy

  FaultHook* hook_ = nullptr;
  Tracer* tracer_ = nullptr;
  bool force_reference_ = false;
  std::vector<std::uint8_t> hooked_;      // per-PE cache of hook->AppliesTo
  std::vector<std::uint8_t> col_hooked_;  // per-column: any hooked PE

  // Differential-mode state.
  const GoldenTrace* replay_ = nullptr;
  ColumnCone cone_{0, 0};
  std::int32_t entry_col_ = 0;          // 0, or cone_.lo in differential mode
  std::vector<std::int64_t> west_entry_;  // activations entering entry_col_
  std::vector<std::int64_t> west_hist_;   // delay line: cone_.lo × rows_
  std::int64_t steps_since_reset_ = 0;
  std::int64_t replay_step_ = 0;   // Steps executed since BeginDifferential
  std::int64_t replay_reset_ = 0;  // Resets executed since BeginDifferential

  GoldenTrace* recording_ = nullptr;

  std::int64_t cycle_ = 0;
  std::uint64_t pe_steps_ = 0;
  std::uint64_t pe_steps_skipped_ = 0;
  std::uint64_t hook_invocations_ = 0;
};

}  // namespace saffire
