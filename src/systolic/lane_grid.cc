#include "systolic/lane_grid.h"

#include <algorithm>

#include "common/bits.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "systolic/simd_ops.h"
#include "systolic/timing.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SAFFIRE_HAVE_AVX2_KERNELS 1
#endif

namespace saffire {
namespace {

// SignExtend without the width checks of common/bits.h (see array.cc):
// `shift` is 64 - width for a validated ArrayConfig width.
inline std::int64_t SxWide(std::int64_t value, int shift) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(value)
                                   << shift) >>
         shift;
}

// Branch-free fault application at one MAC stage. `select` is all-ones iff
// this PE position carries the lane's fault AND the fault sits on this
// stage; `xor_strike` is the lane's transient flip mask pre-ANDed with the
// strike-cycle selector. Mirrors FaultInjector::Apply exactly: force/flip
// the bit, re-interpret at the signal's architectural width, count an
// activation iff the value changed.
inline std::int64_t MaskSignal(std::int64_t v, std::int64_t select,
                               std::int64_t and_mask, std::int64_t or_mask,
                               std::int64_t xor_strike, int sx_shift,
                               std::uint64_t& activations) {
  std::int64_t masked = ((v & and_mask) | or_mask) ^ xor_strike;
  masked = SxWide(masked, sx_shift);
  const std::int64_t out = (masked & select) | (v & ~select);
  activations += static_cast<std::uint64_t>(out != v);
  return out;
}

// Lane-steps executed through the AVX2 narrow-lane kernel (scalar-stepped
// lanes are not counted) — the dispatch observability counter.
obs::Counter& SimdLanesSteppedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.simd.lanes_stepped",
      "Lane-steps executed through the SIMD (AVX2) batch kernel");
  return counter;
}

#ifdef SAFFIRE_HAVE_AVX2_KERNELS

// One WS step of a width-1 INT8/ACC32 lane, 8 rows per iteration. `s` is
// the lane's padded south plane (s[0] = virtual row −1 = 0 under WS,
// s[1 + r] = row r); `e` the step's west entry column and `w` the lane's
// weight column, both int8-packed. Rows are processed top-down so each
// off-by-one north load still sees the previous step's registered values,
// exactly like the scalar kernel's descending-row update; the (rows % 8)
// head rows at the north edge are finished in scalar. With acc_bits == 32
// the SxWide re-wraps are identities (products of two ≤8-bit operands are
// exact in 32 bits; the partial-sum wrap is int32 wraparound), so
// south_new[r] = south_old[r−1] + e[r]·w[r] in plain epi32 arithmetic.
__attribute__((target("avx2"))) void Avx2StepWs(std::int32_t* s,
                                                const std::int8_t* e,
                                                const std::int8_t* w,
                                                std::int32_t rows) {
  std::int32_t r0 = rows - 8;
  for (; r0 >= 0; r0 -= 8) {
    const __m256i north =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + r0));
    const __m256i acts = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(e + r0)));
    const __m256i weights = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + r0)));
    const __m256i south =
        _mm256_add_epi32(north, _mm256_mullo_epi32(acts, weights));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 1 + r0), south);
  }
  for (std::int32_t r = r0 + 7; r >= 0; --r) {
    s[1 + r] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(s[r]) +
        static_cast<std::uint32_t>(std::int32_t{e[r]} * std::int32_t{w[r]}));
  }
}

// One OS step of a width-1 INT8/ACC32 lane: the weight operand is the north
// value re-wrapped at input_bits (a shift pair in registers), products
// accumulate in place, and the south plane registers the re-wrapped weight
// for the next row — the raw pre-hook forward of the scalar kernel.
__attribute__((target("avx2"))) void Avx2StepOs(std::int32_t* s,
                                                std::int32_t* a,
                                                const std::int8_t* e,
                                                std::int32_t rows,
                                                int input_bits) {
  const __m128i shift = _mm_cvtsi32_si128(32 - input_bits);
  std::int32_t r0 = rows - 8;
  for (; r0 >= 0; r0 -= 8) {
    const __m256i north =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + r0));
    const __m256i wop =
        _mm256_sra_epi32(_mm256_sll_epi32(north, shift), shift);
    const __m256i acts = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(e + r0)));
    const __m256i acc = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 1 + r0)),
        _mm256_mullo_epi32(acts, wop));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + 1 + r0), acc);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 1 + r0), wop);
  }
  const int sh = 32 - input_bits;
  for (std::int32_t r = r0 + 7; r >= 0; --r) {
    const std::int32_t wop = static_cast<std::int32_t>(
                                 static_cast<std::uint32_t>(s[r]) << sh) >>
                             sh;
    a[1 + r] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(a[1 + r]) +
        static_cast<std::uint32_t>(std::int32_t{e[r]} * wop));
    s[1 + r] = wop;
  }
}

#endif  // SAFFIRE_HAVE_AVX2_KERNELS

}  // namespace

LaneGrid::LaneGrid(const ArrayConfig& config,
                   std::span<const LaneFaultParams> lanes)
    : config_(config), rows_(config.rows), cols_(config.cols) {
  config_.Validate();
  SAFFIRE_CHECK_MSG(!lanes.empty(), "at least one lane required");
  states_.reserve(lanes.size());
  std::size_t width_sum = 0;
  for (const LaneFaultParams& lane : lanes) {
    SAFFIRE_CHECK_MSG(
        lane.cone.lo >= 0 && lane.cone.lo <= lane.cone.hi &&
            lane.cone.hi < cols_,
        "cone [" << lane.cone.lo << ", " << lane.cone.hi << "] on "
                 << config_.ToString());
    SAFFIRE_CHECK_MSG(lane.pe.row >= 0 && lane.pe.row < rows_ &&
                          lane.cone.contains(lane.pe.col),
                      "PE (" << lane.pe.row << ", " << lane.pe.col
                             << ") outside cone [" << lane.cone.lo << ", "
                             << lane.cone.hi << "]");
    LaneState state;
    state.fault = lane;
    state.lo = lane.cone.lo;
    state.width = lane.cone.width();
    state.sx_shift = 64 - SignalWidth(lane.signal, config_);
    state.sel_wop =
        -static_cast<std::int64_t>(lane.signal == MacSignal::kWeightOperand);
    state.sel_mul =
        -static_cast<std::int64_t>(lane.signal == MacSignal::kMulOut);
    state.sel_add =
        -static_cast<std::int64_t>(lane.signal == MacSignal::kAdderOut);
    state.sel_south =
        -static_cast<std::int64_t>(lane.signal == MacSignal::kSouthForward);
    state.sel_act =
        -static_cast<std::int64_t>(lane.signal == MacSignal::kActForward);
    state.state_base = static_cast<std::size_t>(rows_) * width_sum;
    state.out_base = width_sum;
    width_sum += static_cast<std::size_t>(state.width);
    states_.push_back(state);
  }
  total_width_ = width_sum;
  const std::size_t plane = static_cast<std::size_t>(rows_) * total_width_;
  act_.assign(plane, 0);
  south_.assign(plane, 0);
  acc_.assign(plane, 0);
  weights_.assign(static_cast<std::size_t>(config_.num_pes()), 0);

  // SIMD dispatch, resolved once per grid: width-1 lanes on an INT8/ACC32
  // datapath qualify for the packed AVX2 kernel (operands fit int8, the
  // partial-sum wrap is native int32 wraparound). Everything else — wide
  // cones, unusual widths, non-AVX2 hosts, --simd scalar — stays on the
  // scalar path, which remains the semantic reference.
  if (UseAvx2() && config_.acc_bits == 32 && config_.input_bits <= 8) {
    for (LaneState& state : states_) {
      if (state.width != 1) continue;
      state.narrow = true;
      state.n32_base = narrow_lanes_ * static_cast<std::size_t>(rows_ + 1);
      state.w8_base = narrow_lanes_ * static_cast<std::size_t>(rows_);
      ++narrow_lanes_;
    }
  }
  const std::size_t n32 = narrow_lanes_ * static_cast<std::size_t>(rows_ + 1);
  south32_.assign(n32, 0);
  acc32_.assign(n32, 0);
  wcol8_.assign(narrow_lanes_ * static_cast<std::size_t>(rows_), 0);
  zeros8_.assign(static_cast<std::size_t>(rows_), 0);
}

void LaneGrid::RunTileWs(const Int8Tensor& a, const Int8Tensor& b,
                         std::span<const std::int64_t> rel_cycles) {
  SAFFIRE_SPAN("systolic.tile_ws");
  RunTile<true>(a, b, rel_cycles);
}

void LaneGrid::RunTileOs(const Int8Tensor& a, const Int8Tensor& b,
                         std::span<const std::int64_t> rel_cycles) {
  SAFFIRE_SPAN("systolic.tile_os");
  RunTile<false>(a, b, rel_cycles);
}

template <bool kWs>
void LaneGrid::RunTile(const Int8Tensor& a, const Int8Tensor& b,
                       std::span<const std::int64_t> rel_cycles) {
  SAFFIRE_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                    "A " << a.ShapeString() << " B " << b.ShapeString());
  const std::int64_t me = a.dim(0);
  const std::int64_t ke = a.dim(1);
  const std::int64_t ne = b.dim(1);
  const auto rows = static_cast<std::int64_t>(rows_);
  const auto cols = static_cast<std::int64_t>(cols_);
  if constexpr (kWs) {
    SAFFIRE_CHECK_MSG(ke <= rows && ne <= cols,
                      "WS tile " << ke << "x" << ne << " exceeds array");
  } else {
    SAFFIRE_CHECK_MSG(me <= rows && ne <= cols,
                      "OS tile " << me << "x" << ne << " exceeds array");
  }
  const std::int64_t steps = kWs
                                 ? WeightStationaryStreamCycles(me, config_)
                                 : OutputStationaryStreamCycles(ke, config_);
  SAFFIRE_CHECK_MSG(static_cast<std::int64_t>(rel_cycles.size()) == steps,
                    rel_cycles.size() << " rel cycles for " << steps
                                      << " steps");

  // Reset semantics: every tile invocation starts from cleared array state.
  std::fill(act_.begin(), act_.end(), 0);
  std::fill(south_.begin(), south_.end(), 0);
  std::fill(acc_.begin(), acc_.end(), 0);
  std::fill(south32_.begin(), south32_.end(), 0);
  std::fill(acc32_.begin(), acc32_.end(), 0);

  // Shared stimulus, computed once for all lanes, with exactly the
  // valid-gating and sign-extension of the schedulers (dataflow.cc):
  // SetWestInput/SetWeight store at input_bits, SetNorthInput at acc_bits.
  const int input_bits = config_.input_bits;
  west_stim_.assign(static_cast<std::size_t>(steps * rows), 0);
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t r = 0; r < rows; ++r) {
      std::int64_t value = 0;
      if constexpr (kWs) {
        const std::int64_t i = t - r;
        if (r < ke && i >= 0 && i < me) value = a(i, r);
      } else {
        const std::int64_t kk = t - r;
        if (r < me && kk >= 0 && kk < ke) value = a(r, kk);
      }
      west_stim_[static_cast<std::size_t>(t * rows + r)] =
          SignExtend(value, input_bits);
    }
  }
  if (narrow_lanes_ > 0) {
    // Re-pack the west stimulus 4-per-32-bit-word for the AVX2 kernel:
    // input_bits ≤ 8 guarantees the sign-extended values fit int8 exactly.
    west8_.resize(static_cast<std::size_t>(steps * rows));
    for (std::size_t i = 0; i < west8_.size(); ++i) {
      west8_[i] = static_cast<std::int8_t>(west_stim_[i]);
    }
  }
  if constexpr (kWs) {
    std::fill(weights_.begin(), weights_.end(), 0);
    for (std::int64_t r = 0; r < ke; ++r) {
      for (std::int64_t c = 0; c < ne; ++c) {
        weights_[static_cast<std::size_t>(r * cols + c)] =
            SignExtend(b(r, c), input_bits);
      }
    }
    for (const LaneState& state : states_) {
      if (!state.narrow) continue;
      for (std::int64_t r = 0; r < rows; ++r) {
        wcol8_[state.w8_base + static_cast<std::size_t>(r)] =
            static_cast<std::int8_t>(
                weights_[static_cast<std::size_t>(r * cols + state.lo)]);
      }
    }
  } else {
    north_stim_.assign(static_cast<std::size_t>(steps * cols), 0);
    for (std::int64_t t = 0; t < steps; ++t) {
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::int64_t kk = t - j;
        if (j < ne && kk >= 0 && kk < ke) {
          north_stim_[static_cast<std::size_t>(t * cols + j)] =
              SignExtend(b(kk, j), config_.acc_bits);
        }
      }
    }
  }

  tile_m_ = me;
  out_.assign(total_width_ * static_cast<std::size_t>(me), 0);

  for (std::int64_t t = 0; t < steps; ++t) {
    StepLanes<kWs>(t, rel_cycles[static_cast<std::size_t>(t)]);
    if constexpr (kWs) {
      // Collect the registered bottom-row outputs, as the WS scheduler does
      // after each Step: C[i][c] leaves column c after step i + (rows−1) + c.
      for (const LaneState& state : states_) {
        const std::int64_t hi = std::min<std::int64_t>(
            state.lo + state.width - 1, ne - 1);
        for (std::int64_t c = state.lo; c <= hi; ++c) {
          const std::int64_t i = t - (rows - 1) - c;
          if (i >= 0 && i < me) {
            const std::size_t k = static_cast<std::size_t>(c - state.lo);
            out_[(state.out_base + k) * static_cast<std::size_t>(me) +
                 static_cast<std::size_t>(i)] =
                state.narrow
                    ? south32_[state.n32_base + static_cast<std::size_t>(rows_)]
                    : south_[state.state_base +
                             static_cast<std::size_t>(rows_ - 1) *
                                 static_cast<std::size_t>(state.width) +
                             k];
          }
        }
      }
    }
  }

  if constexpr (!kWs) {
    // Drain the in-place accumulators, as the OS scheduler does.
    for (const LaneState& state : states_) {
      const std::int64_t hi =
          std::min<std::int64_t>(state.lo + state.width - 1, ne - 1);
      for (std::int64_t c = state.lo; c <= hi; ++c) {
        const std::size_t k = static_cast<std::size_t>(c - state.lo);
        for (std::int64_t i = 0; i < me; ++i) {
          out_[(state.out_base + k) * static_cast<std::size_t>(me) +
               static_cast<std::size_t>(i)] =
              state.narrow
                  ? acc32_[state.n32_base + 1 + static_cast<std::size_t>(i)]
                  : acc_[state.state_base +
                         static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(state.width) +
                         k];
        }
      }
    }
  }

  if (narrow_lanes_ > 0) {
    SimdLanesSteppedCounter().Increment(
        static_cast<std::int64_t>(narrow_lanes_) * steps);
  }
}

template <bool kWs>
void LaneGrid::StepLanes(std::int64_t t, std::int64_t rel_cycle) {
  const int sx_in = 64 - config_.input_bits;
  const int sx_prod = 64 - config_.product_bits();
  const int sx_acc = 64 - config_.acc_bits;
  const std::int64_t* const north_row =
      kWs ? nullptr : north_stim_.data() + t * cols_;

  for (LaneState& state : states_) {
    if (state.narrow) {
      StepNarrowLane<kWs>(state, t, rel_cycle);
      continue;
    }
    const LaneFaultParams& f = state.fault;
    const std::int64_t xor_strike =
        f.xor_mask &
        -static_cast<std::int64_t>(rel_cycle == f.strike_cycle);
    const std::int32_t w = state.width;
    std::int64_t* const act = act_.data() + state.state_base;
    std::int64_t* const south = south_.data() + state.state_base;
    std::int64_t* const acc = acc_.data() + state.state_base;
    // Columns west of the cone are a fault-free delay line: the activation
    // entering column `lo` at step t is the west stimulus of step t − lo
    // (zero before the stream reaches the cone — the array was Reset).
    const std::int64_t entry_t = t - state.lo;
    const std::int64_t* const entry =
        entry_t >= 0 ? west_stim_.data() + entry_t * rows_ : nullptr;
    std::uint64_t activations = 0;

    // In-place update: descending rows/columns so every read of a west or
    // north neighbour still sees the previous Step's registered value. Rows
    // other than the fault row can never carry the fault (the cone already
    // restricted the columns), so they take the unmasked fast body; the
    // fault row keeps the branch-free stage-selected masking.
    for (std::int32_t r = rows_ - 1; r >= 0; --r) {
      const bool fault_row = r == f.pe.row;
      const std::size_t row_base =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(w);
      for (std::int32_t k = w - 1; k >= 0; --k) {
        const std::size_t idx = row_base + static_cast<std::size_t>(k);
        const std::int64_t act_in =
            (k == 0) ? (entry != nullptr ? entry[r] : 0) : act[idx - 1];
        const std::int64_t north_in =
            (r == 0) ? (kWs ? 0 : north_row[state.lo + k])
                     : south[idx - static_cast<std::size_t>(w)];

        // Exactly StepReference's per-PE stage order and truncations, with
        // the hook call replaced by branch-free stage-selected masking.
        std::int64_t weight_operand =
            kWs ? weights_[static_cast<std::size_t>(r) *
                               static_cast<std::size_t>(cols_) +
                           static_cast<std::size_t>(state.lo + k)]
                : SxWide(north_in, sx_in);
        if (!fault_row) {
          const std::int64_t mul_out =
              SxWide(act_in * weight_operand, sx_prod);
          const std::int64_t addend = kWs ? north_in : acc[idx];
          const std::int64_t adder_out = SxWide(addend + mul_out, sx_acc);
          if constexpr (kWs) {
            south[idx] = adder_out;
          } else {
            acc[idx] = adder_out;
            south[idx] = SxWide(north_in, sx_in);  // raw, pre-hook
          }
          act[idx] = act_in;
          continue;
        }

        const std::int64_t pos =
            -static_cast<std::int64_t>(state.lo + k == f.pe.col);
        weight_operand =
            MaskSignal(weight_operand, pos & state.sel_wop, f.and_mask,
                       f.or_mask, xor_strike, state.sx_shift, activations);

        std::int64_t mul_out = SxWide(act_in * weight_operand, sx_prod);
        mul_out = MaskSignal(mul_out, pos & state.sel_mul, f.and_mask,
                             f.or_mask, xor_strike, state.sx_shift,
                             activations);

        const std::int64_t addend = kWs ? north_in : acc[idx];
        std::int64_t adder_out = SxWide(addend + mul_out, sx_acc);
        adder_out = MaskSignal(adder_out, pos & state.sel_add, f.and_mask,
                               f.or_mask, xor_strike, state.sx_shift,
                               activations);

        std::int64_t south_out;
        if constexpr (kWs) {
          south_out = adder_out;
        } else {
          acc[idx] = adder_out;
          south_out = SxWide(north_in, sx_in);  // raw north_in, pre-hook
        }
        south_out = MaskSignal(south_out, pos & state.sel_south, f.and_mask,
                               f.or_mask, xor_strike, state.sx_shift,
                               activations);

        const std::int64_t act_out =
            MaskSignal(act_in, pos & state.sel_act, f.and_mask, f.or_mask,
                       xor_strike, state.sx_shift, activations);

        act[idx] = act_out;
        south[idx] = south_out;
      }
    }
    state.activations += activations;
  }
}

// One step of a width-1 lane on the packed AVX2 datapath. The whole column
// is stepped vector-wide with no fault logic at all, then the single fault
// PE — whose old inputs were latched before the vector stores — is replayed
// through exactly the scalar kernel's stage-selected masking pipeline and
// its outputs overwrite the vector result. Only the fault row can differ
// from the fault-free column (the cone already restricted the columns), so
// the fixup touches one PE per step.
template <bool kWs>
void LaneGrid::StepNarrowLane(LaneState& state, std::int64_t t,
                              std::int64_t rel_cycle) {
#ifndef SAFFIRE_HAVE_AVX2_KERNELS
  (void)state;
  (void)t;
  (void)rel_cycle;
  SAFFIRE_CHECK_MSG(false, "narrow lanes require the AVX2 kernels");
#else
  const int sx_in = 64 - config_.input_bits;
  const int sx_prod = 64 - config_.product_bits();
  const int sx_acc = 64 - config_.acc_bits;
  const LaneFaultParams& f = state.fault;
  const std::int64_t xor_strike =
      f.xor_mask & -static_cast<std::int64_t>(rel_cycle == f.strike_cycle);

  std::int32_t* const s = south32_.data() + state.n32_base;
  std::int32_t* const acc = acc32_.data() + state.n32_base;
  const std::int64_t entry_t = t - state.lo;
  const std::int8_t* const entry8 =
      entry_t >= 0 ? west8_.data() + entry_t * rows_ : zeros8_.data();

  // The pad slot holds the virtual row −1 south value the shifted vector
  // loads read: 0 under WS (the controller never seeds partial sums), this
  // step's north stimulus under OS.
  if constexpr (!kWs) {
    s[0] = static_cast<std::int32_t>(
        north_stim_[static_cast<std::size_t>(t * cols_ + state.lo)]);
  }

  // Latch the fault PE's inputs before the vector stores clobber them.
  const std::int32_t rf = f.pe.row;
  const std::int64_t act_in =
      entry_t >= 0
          ? west_stim_[static_cast<std::size_t>(entry_t * rows_ + rf)]
          : 0;
  const std::int64_t north_in = s[rf];
  const std::int64_t acc_in = kWs ? 0 : acc[1 + rf];

  if constexpr (kWs) {
    Avx2StepWs(s, entry8, wcol8_.data() + state.w8_base, rows_);
  } else {
    Avx2StepOs(s, acc, entry8, rows_, config_.input_bits);
  }

  // Scalar fixup: the fault PE through the exact masking pipeline. The
  // position selector is all-ones by construction (a width-1 cone pins
  // pe.col to the cone column).
  std::uint64_t activations = 0;
  std::int64_t weight_operand =
      kWs ? weights_[static_cast<std::size_t>(rf) *
                         static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(state.lo)]
          : SxWide(north_in, sx_in);
  weight_operand =
      MaskSignal(weight_operand, state.sel_wop, f.and_mask, f.or_mask,
                 xor_strike, state.sx_shift, activations);

  std::int64_t mul_out = SxWide(act_in * weight_operand, sx_prod);
  mul_out = MaskSignal(mul_out, state.sel_mul, f.and_mask, f.or_mask,
                       xor_strike, state.sx_shift, activations);

  const std::int64_t addend = kWs ? north_in : acc_in;
  std::int64_t adder_out = SxWide(addend + mul_out, sx_acc);
  adder_out = MaskSignal(adder_out, state.sel_add, f.and_mask, f.or_mask,
                         xor_strike, state.sx_shift, activations);

  std::int64_t south_out;
  if constexpr (kWs) {
    south_out = adder_out;
  } else {
    acc[1 + rf] = static_cast<std::int32_t>(adder_out);
    south_out = SxWide(north_in, sx_in);  // raw north_in, pre-hook
  }
  south_out = MaskSignal(south_out, state.sel_south, f.and_mask, f.or_mask,
                         xor_strike, state.sx_shift, activations);

  // The forwarded activation is dead in a width-1 cone (no east neighbour
  // tracked), but a kActForward fault must still count its activations.
  (void)MaskSignal(act_in, state.sel_act, f.and_mask, f.or_mask, xor_strike,
                   state.sx_shift, activations);

  s[1 + rf] = static_cast<std::int32_t>(south_out);
  state.activations += activations;
#endif  // SAFFIRE_HAVE_AVX2_KERNELS
}

}  // namespace saffire
