#include "systolic/array.h"

#include <algorithm>

#include "common/bits.h"

namespace saffire {
namespace {

// SignExtend without the width checks of common/bits.h — the widths here
// come from a validated ArrayConfig, and the fast kernels run this per PE
// per cycle. `shift` is 64 - width (wide) or 32 - width (narrow).
inline std::int64_t SxWide(std::int64_t value, int shift) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(value)
                                   << shift) >>
         shift;
}

inline std::int32_t SxNarrow(std::int32_t value, int shift) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(value)
                                   << shift) >>
         shift;
}

// Wrapping 32-bit a + b·c — the acc_bits == 32 truncation for free.
inline std::int32_t MacWrap32(std::int32_t addend, std::int32_t a,
                              std::int32_t b) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(addend) +
      static_cast<std::uint32_t>(a) * static_cast<std::uint32_t>(b));
}

}  // namespace

SystolicArray::SystolicArray(const ArrayConfig& config)
    : config_(config),
      rows_(config.rows),
      cols_(config.cols),
      narrow_capable_(config.acc_bits == 32) {
  config_.Validate();
  const auto n = static_cast<std::size_t>(config_.num_pes());
  weights_.assign(n, 0);
  accumulators_.assign(n, 0);
  act_wire_.assign(n, 0);
  south_wire_.assign(n, 0);
  act_wire_next_.assign(n, 0);
  south_wire_next_.assign(n, 0);
  weights32_.assign(n, 0);
  accumulators32_.assign(n, 0);
  act32_.assign(n, 0);
  south32_.assign(n, 0);
  act32_next_.assign(n, 0);
  south32_next_.assign(n, 0);
  west_inputs_.assign(static_cast<std::size_t>(rows_), 0);
  north_inputs_.assign(static_cast<std::size_t>(cols_), 0);
  north_inputs32_.assign(static_cast<std::size_t>(cols_), 0);
  hooked_.assign(n, 0);
  col_hooked_.assign(static_cast<std::size_t>(cols_), 0);
  west_entry_.assign(static_cast<std::size_t>(rows_), 0);
}

void SystolicArray::InstallFaultHook(FaultHook* hook) {
  hook_ = hook;
  if (hook_ == nullptr) {
    std::fill(hooked_.begin(), hooked_.end(), std::uint8_t{0});
    std::fill(col_hooked_.begin(), col_hooked_.end(), std::uint8_t{0});
    return;
  }
  for (std::int32_t c = 0; c < cols_; ++c) {
    std::uint8_t any = 0;
    for (std::int32_t r = 0; r < rows_; ++r) {
      const std::uint8_t applies =
          hook_->AppliesTo(PeCoord{r, c}) ? std::uint8_t{1} : std::uint8_t{0};
      hooked_[Index(r, c)] = applies;
      any = static_cast<std::uint8_t>(any | applies);
    }
    col_hooked_[static_cast<std::size_t>(c)] = any;
  }
}

void SystolicArray::EnsureWide() {
  if (!narrow_) return;
  const std::size_t n = weights_.size();
  for (std::size_t i = 0; i < n; ++i) weights_[i] = weights32_[i];
  for (std::size_t i = 0; i < n; ++i) accumulators_[i] = accumulators32_[i];
  for (std::size_t i = 0; i < n; ++i) act_wire_[i] = act32_[i];
  for (std::size_t i = 0; i < n; ++i) south_wire_[i] = south32_[i];
  narrow_ = false;
}

void SystolicArray::EnsureNarrow() {
  if (narrow_) return;
  SAFFIRE_ASSERT(narrow_capable_);
  // Lossless by the signal-width invariant: every stored value is already
  // sign-extended to a width of at most acc_bits == 32.
  const std::size_t n = weights_.size();
  for (std::size_t i = 0; i < n; ++i) {
    weights32_[i] = static_cast<std::int32_t>(weights_[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    accumulators32_[i] = static_cast<std::int32_t>(accumulators_[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    act32_[i] = static_cast<std::int32_t>(act_wire_[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    south32_[i] = static_cast<std::int32_t>(south_wire_[i]);
  }
  narrow_ = true;
}

std::vector<std::int64_t> SystolicArray::SnapshotAccumulators() const {
  bool any = false;
  if (narrow_) {
    for (const std::int32_t v : accumulators32_) any = any || v != 0;
  } else {
    for (const std::int64_t v : accumulators_) any = any || v != 0;
  }
  if (!any) return {};  // all-zero checkpoint, stored compactly
  std::vector<std::int64_t> grid(weights_.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = narrow_ ? accumulators32_[i] : accumulators_[i];
  }
  return grid;
}

void SystolicArray::Reset() {
  if (recording_ != nullptr) {
    // Reset delimits tile invocations: capture the end-of-tile accumulator
    // state the OS drain path reads back (golden_trace.h).
    recording_->AppendAccumulatorCheckpoint(SnapshotAccumulators());
  }
  if (replay_ != nullptr) ++replay_reset_;
  std::fill(weights_.begin(), weights_.end(), 0);
  std::fill(accumulators_.begin(), accumulators_.end(), 0);
  std::fill(act_wire_.begin(), act_wire_.end(), 0);
  std::fill(south_wire_.begin(), south_wire_.end(), 0);
  std::fill(act_wire_next_.begin(), act_wire_next_.end(), 0);
  std::fill(south_wire_next_.begin(), south_wire_next_.end(), 0);
  std::fill(weights32_.begin(), weights32_.end(), 0);
  std::fill(accumulators32_.begin(), accumulators32_.end(), 0);
  std::fill(act32_.begin(), act32_.end(), 0);
  std::fill(south32_.begin(), south32_.end(), 0);
  std::fill(act32_next_.begin(), act32_next_.end(), 0);
  std::fill(south32_next_.begin(), south32_next_.end(), 0);
  std::fill(west_hist_.begin(), west_hist_.end(), 0);
  steps_since_reset_ = 0;
  ClearEdgeInputs();
}

void SystolicArray::BeginGoldenRecording(GoldenTrace* trace) {
  SAFFIRE_CHECK_MSG(trace != nullptr, "trace required");
  SAFFIRE_CHECK_MSG(recording_ == nullptr, "recording already active");
  SAFFIRE_CHECK_MSG(replay_ == nullptr,
                    "cannot record during differential execution");
  trace->Begin(rows_, cols_, cycle_);
  recording_ = trace;
}

void SystolicArray::EndGoldenRecording() {
  SAFFIRE_CHECK_MSG(recording_ != nullptr, "no recording active");
  recording_->AppendAccumulatorCheckpoint(SnapshotAccumulators());
  recording_ = nullptr;
}

void SystolicArray::BeginDifferential(ColumnCone cone,
                                      const GoldenTrace* trace) {
  SAFFIRE_CHECK_MSG(trace != nullptr, "golden trace required");
  SAFFIRE_CHECK_MSG(replay_ == nullptr, "differential mode already active");
  SAFFIRE_CHECK_MSG(recording_ == nullptr,
                    "cannot run differentially while recording");
  SAFFIRE_CHECK_MSG(tracer_ == nullptr,
                    "tracing requires the full array; detach the tracer");
  SAFFIRE_CHECK_MSG(cone.lo >= 0 && cone.lo <= cone.hi && cone.hi < cols_,
                    "cone [" << cone.lo << ", " << cone.hi << "] on "
                             << config_.ToString());
  SAFFIRE_CHECK_MSG(trace->rows() == rows_ && trace->cols() == cols_,
                    "trace recorded on " << trace->rows() << "x"
                                         << trace->cols());
  replay_ = trace;
  cone_ = cone;
  entry_col_ = cone.lo;
  replay_step_ = 0;
  replay_reset_ = 0;
  steps_since_reset_ = 0;
  west_hist_.assign(static_cast<std::size_t>(cone.lo) *
                        static_cast<std::size_t>(rows_),
                    0);
}

void SystolicArray::EndDifferential() {
  SAFFIRE_CHECK_MSG(replay_ != nullptr, "differential mode not active");
  replay_ = nullptr;
  entry_col_ = 0;
  west_hist_.clear();
}

void SystolicArray::CheckCoord(PeCoord pe) const {
  SAFFIRE_CHECK_MSG(pe.row >= 0 && pe.row < rows_ && pe.col >= 0 &&
                        pe.col < cols_,
                    "PE (" << pe.row << ", " << pe.col << ") out of "
                           << config_.ToString());
}

void SystolicArray::SetWeight(PeCoord pe, std::int64_t value) {
  CheckCoord(pe);
  const std::int64_t stored = SignExtend(value, config_.input_bits);
  if (narrow_) {
    weights32_[Index(pe.row, pe.col)] = static_cast<std::int32_t>(stored);
  } else {
    weights_[Index(pe.row, pe.col)] = stored;
  }
}

std::int64_t SystolicArray::weight(PeCoord pe) const {
  CheckCoord(pe);
  const std::size_t idx = Index(pe.row, pe.col);
  return narrow_ ? weights32_[idx] : weights_[idx];
}

std::int64_t SystolicArray::accumulator(PeCoord pe) const {
  CheckCoord(pe);
  if (replay_ != nullptr && !cone_.contains(pe.col)) {
    // Outside the cone the faulty run provably equals the golden run;
    // replay the recorded end-of-tile value instead of recomputing it.
    return replay_->AccumulatorAt(replay_reset_, pe.row, pe.col);
  }
  const std::size_t idx = Index(pe.row, pe.col);
  return narrow_ ? accumulators32_[idx] : accumulators_[idx];
}

void SystolicArray::ClearAccumulators() {
  std::fill(accumulators_.begin(), accumulators_.end(), 0);
  std::fill(accumulators32_.begin(), accumulators32_.end(), 0);
}

void SystolicArray::SetWestInput(std::int32_t row, std::int64_t value) {
  SAFFIRE_CHECK_MSG(row >= 0 && row < rows_, "row=" << row);
  west_inputs_[static_cast<std::size_t>(row)] =
      SignExtend(value, config_.input_bits);
}

void SystolicArray::SetNorthInput(std::int32_t col, std::int64_t value) {
  SAFFIRE_CHECK_MSG(col >= 0 && col < cols_, "col=" << col);
  // North inputs carry partial-sum seeds under WS (acc_bits) and streamed
  // weights under OS (input_bits); store at accumulator width and let the
  // per-signal truncation in Step() narrow as needed.
  north_inputs_[static_cast<std::size_t>(col)] =
      SignExtend(value, config_.acc_bits);
}

void SystolicArray::ClearEdgeInputs() {
  std::fill(west_inputs_.begin(), west_inputs_.end(), 0);
  std::fill(north_inputs_.begin(), north_inputs_.end(), 0);
}

void SystolicArray::PrepareWestEntry() {
  // Columns west of the cone are a pure delay line for the activation
  // stream (act_east = act_in, and no fault can exist west of the cone), so
  // the activations entering column `lo` on step t are the west edge inputs
  // of step t − lo — reproduced here with a lo-deep ring buffer instead of
  // simulating lo columns.
  const std::int32_t depth = cone_.lo;
  const std::size_t base =
      static_cast<std::size_t>(steps_since_reset_ %
                               static_cast<std::int64_t>(depth)) *
      static_cast<std::size_t>(rows_);
  for (std::int32_t r = 0; r < rows_; ++r) {
    const std::size_t slot = base + static_cast<std::size_t>(r);
    west_entry_[static_cast<std::size_t>(r)] = west_hist_[slot];
    west_hist_[slot] = west_inputs_[static_cast<std::size_t>(r)];
  }
}

void SystolicArray::StepReference(bool ws, std::int32_t c0, std::int32_t c1) {
  const int input_bits = config_.input_bits;
  const int product_bits = config_.product_bits();
  const int acc_bits = config_.acc_bits;

  for (std::int32_t r = 0; r < rows_; ++r) {
    for (std::int32_t c = c0; c <= c1; ++c) {
      const std::size_t idx = Index(r, c);
      const PeCoord coord{r, c};
      const bool hooked = hooked_[idx] != 0;

      const std::int64_t act_in =
          (c == entry_col_)
              ? (entry_col_ == 0 ? west_inputs_[static_cast<std::size_t>(r)]
                                 : west_entry_[static_cast<std::size_t>(r)])
              : act_wire_[idx - 1];
      const std::int64_t north_in =
          (r == 0) ? north_inputs_[static_cast<std::size_t>(c)]
                   : south_wire_[Index(r - 1, c)];

      // Weight operand: preloaded register (WS) or the streamed north value
      // truncated to operand width (OS).
      std::int64_t weight_operand =
          ws ? weights_[idx] : SignExtend(north_in, input_bits);
      if (hooked) {
        weight_operand = hook_->Apply(coord, MacSignal::kWeightOperand,
                                      weight_operand, cycle_);
        ++hook_invocations_;
      }

      std::int64_t mul_out = SignExtend(act_in * weight_operand, product_bits);
      if (hooked) {
        mul_out = hook_->Apply(coord, MacSignal::kMulOut, mul_out, cycle_);
        ++hook_invocations_;
      }

      const std::int64_t addend = ws ? north_in : accumulators_[idx];
      std::int64_t adder_out = SignExtend(addend + mul_out, acc_bits);
      if (hooked) {
        adder_out =
            hook_->Apply(coord, MacSignal::kAdderOut, adder_out, cycle_);
        ++hook_invocations_;
      }

      std::int64_t south_out;
      if (ws) {
        south_out = adder_out;  // partial sum continues down the column
      } else {
        accumulators_[idx] = adder_out;  // result stays in place
        south_out = SignExtend(north_in, input_bits);  // weight forwarded
      }
      if (hooked) {
        south_out = hook_->Apply(
            coord, MacSignal::kSouthForward, south_out,
            cycle_);
        ++hook_invocations_;
      }

      std::int64_t act_out = act_in;
      if (hooked) {
        act_out =
            hook_->Apply(coord, MacSignal::kActForward, act_out, cycle_);
        ++hook_invocations_;
      }

      act_wire_next_[idx] = act_out;
      south_wire_next_[idx] = south_out;

      if (tracer_ != nullptr) {
        tracer_->OnSignal(coord, MacSignal::kWeightOperand, weight_operand,
                          cycle_);
        tracer_->OnSignal(coord, MacSignal::kMulOut, mul_out, cycle_);
        tracer_->OnSignal(coord, MacSignal::kAdderOut, adder_out, cycle_);
        tracer_->OnSignal(coord, MacSignal::kSouthForward, south_out, cycle_);
        tracer_->OnSignal(coord, MacSignal::kActForward, act_out, cycle_);
      }
    }
  }
}

template <bool kWs>
void SystolicArray::StepFastWide(std::int32_t c0, std::int32_t c1) {
  const int sx_acc = 64 - config_.acc_bits;
  const int sx_in = 64 - config_.input_bits;
  const std::int64_t* const act_prev = act_wire_.data();
  const std::int64_t* const south_prev = south_wire_.data();
  const std::int64_t* const weights = weights_.data();
  std::int64_t* const acc = accumulators_.data();
  std::int64_t* const act_next = act_wire_next_.data();
  std::int64_t* const south_next = south_wire_next_.data();
  const std::int64_t* const west =
      entry_col_ == 0 ? west_inputs_.data() : west_entry_.data();

  for (std::int32_t r = 0; r < rows_; ++r) {
    const std::size_t base = Index(r, 0);
    const std::int64_t* const north =
        (r == 0) ? north_inputs_.data() : south_prev + (base - static_cast<std::size_t>(cols_));
    const std::int64_t* const act_row = act_prev + base;
    for (std::int32_t c = c0; c <= c1; ++c) {
      const std::size_t i = base + static_cast<std::size_t>(c);
      const std::int64_t act =
          (c == entry_col_) ? west[r] : act_row[c - 1];
      const std::int64_t north_in = north[c];
      if constexpr (kWs) {
        // mul_out fits product_bits − 1 bits, so its truncation is the
        // identity; only the adder truncates.
        south_next[i] = SxWide(north_in + act * weights[i], sx_acc);
      } else {
        const std::int64_t weight_operand = SxWide(north_in, sx_in);
        acc[i] = SxWide(acc[i] + act * weight_operand, sx_acc);
        south_next[i] = weight_operand;
      }
      act_next[i] = act;
    }
  }
}

template <bool kWs>
void SystolicArray::StepFastNarrow(std::int32_t c0, std::int32_t c1) {
  const int sx_in = 32 - config_.input_bits;
  const std::int32_t* const act_prev = act32_.data();
  const std::int32_t* const south_prev = south32_.data();
  const std::int32_t* const weights = weights32_.data();
  std::int32_t* const acc = accumulators32_.data();
  std::int32_t* const act_next = act32_next_.data();
  std::int32_t* const south_next = south32_next_.data();
  const std::int64_t* const west =
      entry_col_ == 0 ? west_inputs_.data() : west_entry_.data();

  for (std::int32_t r = 0; r < rows_; ++r) {
    const std::size_t base = Index(r, 0);
    const std::int32_t* const north =
        (r == 0) ? north_inputs32_.data()
                 : south_prev + (base - static_cast<std::size_t>(cols_));
    const std::int32_t* const act_row = act_prev + base;
    for (std::int32_t c = c0; c <= c1; ++c) {
      const std::size_t i = base + static_cast<std::size_t>(c);
      const std::int32_t act = (c == entry_col_)
                                   ? static_cast<std::int32_t>(west[r])
                                   : act_row[c - 1];
      const std::int32_t north_in = north[c];
      if constexpr (kWs) {
        // acc_bits == 32: the adder truncation is the 32-bit wrap itself.
        south_next[i] = MacWrap32(north_in, act, weights[i]);
      } else {
        const std::int32_t weight_operand = SxNarrow(north_in, sx_in);
        acc[i] = MacWrap32(acc[i], act, weight_operand);
        south_next[i] = weight_operand;
      }
      act_next[i] = act;
    }
  }
}

void SystolicArray::Step(Dataflow dataflow) {
  // Input-stationary is a scheduling convention over the WS datapath
  // (dataflow.h); the physical array only knows WS and OS cycles.
  SAFFIRE_CHECK_MSG(dataflow != Dataflow::kInputStationary,
                    "drive IS through InputStationaryScheduler");
  const bool ws = dataflow == Dataflow::kWeightStationary;
  const std::int32_t lo = replay_ != nullptr ? cone_.lo : 0;
  const std::int32_t hi = replay_ != nullptr ? cone_.hi : cols_ - 1;
  if (replay_ != nullptr) {
    SAFFIRE_ASSERT_MSG(replay_step_ < replay_->steps(),
                       "differential run stepped past the recorded golden "
                       "run (" << replay_->steps() << " steps)");
    if (cone_.lo > 0) PrepareWestEntry();
  }

  const bool instrument_all = tracer_ != nullptr || force_reference_;
  if (!instrument_all && hook_ == nullptr) {
    if (narrow_capable_) {
      EnsureNarrow();
      for (std::int32_t c = lo; c <= hi; ++c) {
        north_inputs32_[static_cast<std::size_t>(c)] =
            static_cast<std::int32_t>(north_inputs_[static_cast<std::size_t>(c)]);
      }
      ws ? StepFastNarrow<true>(lo, hi) : StepFastNarrow<false>(lo, hi);
    } else {
      EnsureWide();
      ws ? StepFastWide<true>(lo, hi) : StepFastWide<false>(lo, hi);
    }
  } else {
    EnsureWide();
    if (instrument_all) {
      StepReference(ws, lo, hi);
    } else {
      // Partition the active columns into maximal hooked / unhooked spans:
      // only columns containing a hooked PE pay the instrumented loop.
      std::int32_t c = lo;
      while (c <= hi) {
        const bool hooked_span = col_hooked_[static_cast<std::size_t>(c)] != 0;
        std::int32_t end = c;
        while (end + 1 <= hi &&
               (col_hooked_[static_cast<std::size_t>(end + 1)] != 0) ==
                   hooked_span) {
          ++end;
        }
        if (hooked_span) {
          StepReference(ws, c, end);
        } else {
          ws ? StepFastWide<true>(c, end) : StepFastWide<false>(c, end);
        }
        c = end + 1;
      }
    }
  }

  act_wire_.swap(act_wire_next_);
  south_wire_.swap(south_wire_next_);
  act32_.swap(act32_next_);
  south32_.swap(south32_next_);

  ++cycle_;
  ++steps_since_reset_;
  if (replay_ != nullptr) ++replay_step_;
  const auto active = static_cast<std::uint64_t>(hi - lo + 1) *
                      static_cast<std::uint64_t>(rows_);
  pe_steps_ += active;
  pe_steps_skipped_ +=
      static_cast<std::uint64_t>(config_.num_pes()) - active;

  if (recording_ != nullptr) {
    // cycle_ was just incremented; the hook-visible clock of this Step (the
    // value transient strikes compare against) is the pre-increment value.
    const std::int64_t hook_cycle = cycle_ - 1;
    const std::size_t bottom = Index(rows_ - 1, 0);
    if (narrow_) {
      // Widen through a scratch row to keep the trace int64-only.
      std::vector<std::int64_t> wide_row(static_cast<std::size_t>(cols_));
      for (std::int32_t c = 0; c < cols_; ++c) {
        wide_row[static_cast<std::size_t>(c)] =
            south32_[bottom + static_cast<std::size_t>(c)];
      }
      recording_->AppendSouthRow(wide_row.data(), hook_cycle);
    } else {
      recording_->AppendSouthRow(south_wire_.data() + bottom, hook_cycle);
    }
  }
}

std::int64_t SystolicArray::SouthOutput(std::int32_t col) const {
  SAFFIRE_CHECK_MSG(col >= 0 && col < cols_, "col=" << col);
  if (replay_ != nullptr && !cone_.contains(col)) {
    // Outside the cone the faulty run provably equals the golden run;
    // replay the recorded south output of the aligned golden Step.
    if (replay_step_ == 0) return 0;  // no Step yet: registers hold Reset
    return replay_->SouthAt(replay_step_ - 1, col);
  }
  const std::size_t idx = Index(rows_ - 1, col);
  return narrow_ ? south32_[idx] : south_wire_[idx];
}

void SystolicArray::AdvanceIdle(std::int64_t cycles) {
  SAFFIRE_CHECK_MSG(cycles >= 0, "cycles=" << cycles);
  cycle_ += cycles;
}

}  // namespace saffire
