#include "systolic/array.h"

#include <algorithm>

#include "common/bits.h"

namespace saffire {

SystolicArray::SystolicArray(const ArrayConfig& config)
    : config_(config), rows_(config.rows), cols_(config.cols) {
  config_.Validate();
  const auto n = static_cast<std::size_t>(config_.num_pes());
  weights_.assign(n, 0);
  accumulators_.assign(n, 0);
  act_wire_.assign(n, 0);
  south_wire_.assign(n, 0);
  act_wire_next_.assign(n, 0);
  south_wire_next_.assign(n, 0);
  west_inputs_.assign(static_cast<std::size_t>(rows_), 0);
  north_inputs_.assign(static_cast<std::size_t>(cols_), 0);
  hooked_.assign(n, 0);
}

void SystolicArray::InstallFaultHook(FaultHook* hook) {
  hook_ = hook;
  if (hook_ == nullptr) {
    std::fill(hooked_.begin(), hooked_.end(), std::uint8_t{0});
    return;
  }
  for (std::int32_t r = 0; r < rows_; ++r) {
    for (std::int32_t c = 0; c < cols_; ++c) {
      hooked_[Index(r, c)] =
          hook_->AppliesTo(PeCoord{r, c}) ? std::uint8_t{1} : std::uint8_t{0};
    }
  }
}

void SystolicArray::Reset() {
  std::fill(weights_.begin(), weights_.end(), 0);
  std::fill(accumulators_.begin(), accumulators_.end(), 0);
  std::fill(act_wire_.begin(), act_wire_.end(), 0);
  std::fill(south_wire_.begin(), south_wire_.end(), 0);
  std::fill(act_wire_next_.begin(), act_wire_next_.end(), 0);
  std::fill(south_wire_next_.begin(), south_wire_next_.end(), 0);
  ClearEdgeInputs();
}

void SystolicArray::CheckCoord(PeCoord pe) const {
  SAFFIRE_CHECK_MSG(pe.row >= 0 && pe.row < rows_ && pe.col >= 0 &&
                        pe.col < cols_,
                    "PE (" << pe.row << ", " << pe.col << ") out of "
                           << config_.ToString());
}

void SystolicArray::SetWeight(PeCoord pe, std::int64_t value) {
  CheckCoord(pe);
  weights_[Index(pe.row, pe.col)] = SignExtend(value, config_.input_bits);
}

std::int64_t SystolicArray::weight(PeCoord pe) const {
  CheckCoord(pe);
  return weights_[Index(pe.row, pe.col)];
}

std::int64_t SystolicArray::accumulator(PeCoord pe) const {
  CheckCoord(pe);
  return accumulators_[Index(pe.row, pe.col)];
}

void SystolicArray::ClearAccumulators() {
  std::fill(accumulators_.begin(), accumulators_.end(), 0);
}

void SystolicArray::SetWestInput(std::int32_t row, std::int64_t value) {
  SAFFIRE_CHECK_MSG(row >= 0 && row < rows_, "row=" << row);
  west_inputs_[static_cast<std::size_t>(row)] =
      SignExtend(value, config_.input_bits);
}

void SystolicArray::SetNorthInput(std::int32_t col, std::int64_t value) {
  SAFFIRE_CHECK_MSG(col >= 0 && col < cols_, "col=" << col);
  // North inputs carry partial-sum seeds under WS (acc_bits) and streamed
  // weights under OS (input_bits); store at accumulator width and let the
  // per-signal truncation in Step() narrow as needed.
  north_inputs_[static_cast<std::size_t>(col)] =
      SignExtend(value, config_.acc_bits);
}

void SystolicArray::ClearEdgeInputs() {
  std::fill(west_inputs_.begin(), west_inputs_.end(), 0);
  std::fill(north_inputs_.begin(), north_inputs_.end(), 0);
}

void SystolicArray::Step(Dataflow dataflow) {
  // Input-stationary is a scheduling convention over the WS datapath
  // (dataflow.h); the physical array only knows WS and OS cycles.
  SAFFIRE_CHECK_MSG(dataflow != Dataflow::kInputStationary,
                    "drive IS through InputStationaryScheduler");
  const bool ws = dataflow == Dataflow::kWeightStationary;
  const int input_bits = config_.input_bits;
  const int product_bits = config_.product_bits();
  const int acc_bits = config_.acc_bits;

  for (std::int32_t r = 0; r < rows_; ++r) {
    for (std::int32_t c = 0; c < cols_; ++c) {
      const std::size_t idx = Index(r, c);
      const PeCoord coord{r, c};
      const bool hooked = hooked_[idx] != 0;

      std::int64_t act_in = (c == 0)
                                ? west_inputs_[static_cast<std::size_t>(r)]
                                : act_wire_[idx - 1];
      const std::int64_t north_in =
          (r == 0) ? north_inputs_[static_cast<std::size_t>(c)]
                   : south_wire_[Index(r - 1, c)];

      // Weight operand: preloaded register (WS) or the streamed north value
      // truncated to operand width (OS).
      std::int64_t weight_operand =
          ws ? weights_[idx] : SignExtend(north_in, input_bits);
      if (hooked) {
        weight_operand = hook_->Apply(coord, MacSignal::kWeightOperand,
                                      weight_operand, cycle_);
        ++hook_invocations_;
      }

      std::int64_t mul_out = SignExtend(act_in * weight_operand, product_bits);
      if (hooked) {
        mul_out = hook_->Apply(coord, MacSignal::kMulOut, mul_out, cycle_);
        ++hook_invocations_;
      }

      const std::int64_t addend = ws ? north_in : accumulators_[idx];
      std::int64_t adder_out = SignExtend(addend + mul_out, acc_bits);
      if (hooked) {
        adder_out =
            hook_->Apply(coord, MacSignal::kAdderOut, adder_out, cycle_);
        ++hook_invocations_;
      }

      std::int64_t south_out;
      if (ws) {
        south_out = adder_out;  // partial sum continues down the column
      } else {
        accumulators_[idx] = adder_out;  // result stays in place
        south_out = SignExtend(north_in, input_bits);  // weight forwarded
      }
      if (hooked) {
        south_out = hook_->Apply(
            coord, MacSignal::kSouthForward, south_out,
            cycle_);
        ++hook_invocations_;
      }

      std::int64_t act_out = act_in;
      if (hooked) {
        act_out =
            hook_->Apply(coord, MacSignal::kActForward, act_out, cycle_);
        ++hook_invocations_;
      }

      act_wire_next_[idx] = act_out;
      south_wire_next_[idx] = south_out;

      if (tracer_ != nullptr) {
        tracer_->OnSignal(coord, MacSignal::kWeightOperand, weight_operand,
                          cycle_);
        tracer_->OnSignal(coord, MacSignal::kMulOut, mul_out, cycle_);
        tracer_->OnSignal(coord, MacSignal::kAdderOut, adder_out, cycle_);
        tracer_->OnSignal(coord, MacSignal::kSouthForward, south_out, cycle_);
        tracer_->OnSignal(coord, MacSignal::kActForward, act_out, cycle_);
      }
    }
  }

  act_wire_.swap(act_wire_next_);
  south_wire_.swap(south_wire_next_);
  ++cycle_;
  pe_steps_ += static_cast<std::uint64_t>(config_.num_pes());
}

std::int64_t SystolicArray::SouthOutput(std::int32_t col) const {
  SAFFIRE_CHECK_MSG(col >= 0 && col < cols_, "col=" << col);
  return south_wire_[Index(rows_ - 1, col)];
}

void SystolicArray::AdvanceIdle(std::int64_t cycles) {
  SAFFIRE_CHECK_MSG(cycles >= 0, "cycles=" << cycles);
  cycle_ += cycles;
}

}  // namespace saffire
