// Interception point between the simulated datapath and the fault injector.
//
// The array calls Apply() for every value produced on a hooked PE's named
// signals, every cycle — exactly the observability an RTL-level injector
// has. The hook is non-owning and optional; a null hook is the golden
// (fault-free) configuration.
#pragma once

#include <cstdint>

#include "systolic/config.h"
#include "systolic/signals.h"

namespace saffire {

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // Returns the (possibly corrupted) value of `signal` at `pe` on `cycle`.
  // `value` is the fault-free value, already truncated to the signal's
  // architectural width. Implementations must return a value representable
  // at that width.
  virtual std::int64_t Apply(PeCoord pe, MacSignal signal, std::int64_t value,
                             std::int64_t cycle) = 0;

  // True if this hook can ever modify a signal of `pe`. The array caches
  // the answer per PE when the hook is installed, so fault-free PEs pay one
  // cached-flag test per cycle instead of a virtual call per signal.
  virtual bool AppliesTo(PeCoord pe) const = 0;
};

// Observer for waveform capture (VCD dumps, golden traces in tests).
// Receives every hooked signal value *after* fault application.
class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void OnSignal(PeCoord pe, MacSignal signal, std::int64_t value,
                        std::int64_t cycle) = 0;
};

}  // namespace saffire
