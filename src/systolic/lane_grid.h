// Lane-parallel PE grid: steps W independent faulty copies of the array
// ("lanes") through one shared control-flow sweep per cycle — the classic
// lane-parallel fault-simulation layout applied to the systolic datapath.
//
// All lanes of a batch execute the same instruction stream on the same
// operands (fault injection corrupts datapath values only, never
// sequencing), so the schedule — tile loop, stream timing, idle cycles — is
// computed once and only the per-lane state planes differ. Each lane is
// further restricted to its fault's static column cone (fi/cone.h): columns
// outside the cone provably carry golden values, so the lane keeps
// per-column state only for its cone and the replay layer (fi/batch.cc)
// broadcasts golden output everywhere else.
//
// Faults are pre-lowered by the caller into branch-free mask triples
// (and/or for stuck-at, xor gated on the strike cycle for transients); the
// per-PE kernel applies `(v & and) | or` unconditionally through an
// all-ones/all-zeros position selector, so the inner loop carries no
// data-dependent branches.
//
// SIMD fast path (systolic/simd_ops.h): width-1 cones on an INT8/ACC32
// array — the dominant shape: every signal except the activation-forward
// chain cones to a single column — are stepped 8 rows per AVX2 instruction.
// Their state lives in packed int32 planes with a one-slot north pad so the
// register-shift between rows is a plain unaligned reload, the stimulus and
// weight columns are re-packed 4-per-32-bit-word (int8) and widened in
// registers, and only the single fault PE is replayed through the exact
// scalar masking pipeline afterwards. The scalar path remains for wide
// cones, non-AVX2 hosts, and `--simd scalar`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "systolic/config.h"
#include "systolic/golden_trace.h"
#include "systolic/signals.h"
#include "tensor/tensor.h"

namespace saffire {

// One lane's fault, lowered to the representation the kernel consumes. The
// grid lives in systolic/ and must not depend on fi/, so the FI layer
// (fi/batch.cc) translates its FaultSpec into this neutral form.
struct LaneFaultParams {
  PeCoord pe;
  MacSignal signal = MacSignal::kAdderOut;
  // The lane's static column cone on the physical (lowered) dataflow.
  ColumnCone cone{0, 0};
  // Stuck-at masking at the faulted signal: v' = (v & and_mask) | or_mask,
  // re-interpreted at the signal's architectural width. Identity
  // (and_mask = -1, or_mask = 0) for transient faults.
  std::int64_t and_mask = -1;
  std::int64_t or_mask = 0;
  // Transient strike: v' = v ^ xor_mask on the Step whose hook-visible
  // clock (relative to the run start) equals strike_cycle; xor_mask = 0
  // for stuck-at faults, strike_cycle = -1 when no transient is armed.
  std::int64_t xor_mask = 0;
  std::int64_t strike_cycle = -1;
};

class LaneGrid {
 public:
  // Every lane must carry a cone within [0, cols) and a PE inside its cone.
  LaneGrid(const ArrayConfig& config, std::span<const LaneFaultParams> lanes);

  // Runs one weight-stationary tile for every lane: the ke×ne weight block
  // `b` preloaded, the me×ke activation block `a` streamed west, outputs
  // collected from the bottom row exactly as WeightStationaryScheduler does
  // (partial-sum seeds are zero — the controller path never seeds).
  // rel_cycles[t] is the hook-visible clock of tile Step t relative to the
  // run start (GoldenTrace::StepRelCycle) and must cover all
  // WeightStationaryStreamCycles(me) steps.
  void RunTileWs(const Int8Tensor& a, const Int8Tensor& b,
                 std::span<const std::int64_t> rel_cycles);

  // Runs one output-stationary tile: `a` (me×ke) streamed west, `b` (ke×ne)
  // streamed north, results drained from the in-place accumulators after
  // OutputStationaryStreamCycles(ke) steps.
  void RunTileOs(const Int8Tensor& a, const Int8Tensor& b,
                 std::span<const std::int64_t> rel_cycles);

  // Tile output of `lane` at tile-local row i, array column c — valid after
  // the matching RunTile* for c inside the lane's cone and c < the tile's
  // ne (outside, the value is golden and not tracked here).
  std::int64_t OutputAt(std::size_t lane, std::int64_t i,
                        std::int32_t c) const {
    const LaneState& state = states_[lane];
    return out_[(state.out_base +
                 static_cast<std::size_t>(c - state.lo)) *
                    static_cast<std::size_t>(tile_m_) +
                static_cast<std::size_t>(i)];
  }

  // Times lane `lane`'s fault changed a signal value, accumulated across
  // every tile run since construction — the fault_activations counter.
  std::uint64_t activations(std::size_t lane) const {
    return states_[lane].activations;
  }

  std::size_t num_lanes() const { return states_.size(); }

 private:
  struct LaneState {
    LaneFaultParams fault;
    std::int32_t lo = 0;     // cone.lo
    std::int32_t width = 1;  // cone width
    int sx_shift = 0;        // 64 - SignalWidth(signal) for the mask re-wrap
    // All-ones where the lane's fault sits on the given MAC stage, all-zeros
    // elsewhere — ANDed with the PE-position selector so the kernel applies
    // every stage's masking unconditionally.
    std::int64_t sel_wop = 0;
    std::int64_t sel_mul = 0;
    std::int64_t sel_add = 0;
    std::int64_t sel_south = 0;
    std::int64_t sel_act = 0;
    std::size_t state_base = 0;  // offset into act_/south_/acc_ planes
    std::size_t out_base = 0;    // cone-column offset into out_
    std::uint64_t activations = 0;
    // Width-1 lane served by the AVX2 kernel: state lives in the packed
    // int32 planes at n32_base (stride rows + 1, slot 0 = virtual row −1)
    // and, under WS, the weight column re-packed at w8_base.
    bool narrow = false;
    std::size_t n32_base = 0;
    std::size_t w8_base = 0;
  };

  template <bool kWs>
  void RunTile(const Int8Tensor& a, const Int8Tensor& b,
               std::span<const std::int64_t> rel_cycles);
  template <bool kWs>
  void StepLanes(std::int64_t t, std::int64_t rel_cycle);
  template <bool kWs>
  void StepNarrowLane(LaneState& state, std::int64_t t,
                      std::int64_t rel_cycle);

  ArrayConfig config_;
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<LaneState> states_;
  std::size_t total_width_ = 0;  // sum of lane cone widths

  // Per-lane state planes, lane-major: lane `l` owns rows_ × width rows of
  // each plane starting at state_base, indexed [r * width + k] with k the
  // cone-local column.
  std::vector<std::int64_t> act_;
  std::vector<std::int64_t> south_;
  std::vector<std::int64_t> acc_;

  // Packed state for the AVX2 narrow (width-1, INT8/ACC32) lanes: int32
  // planes with stride rows_ + 1 per lane — slot 0 holds the virtual
  // row −1 south value (0 under WS, the step's north stimulus under OS) so
  // the vector kernel reads the north neighbour as an off-by-one unaligned
  // load — plus int8 re-packs of the shared stimulus (west8_) and each
  // lane's weight column (wcol8_, WS only).
  std::size_t narrow_lanes_ = 0;
  std::vector<std::int32_t> south32_;
  std::vector<std::int32_t> acc32_;
  std::vector<std::int8_t> west8_;
  std::vector<std::int8_t> wcol8_;
  std::vector<std::int8_t> zeros8_;  // rows_ zero bytes (pre-stream entry)

  // Shared per-tile schedule, computed once for all lanes.
  std::int64_t tile_m_ = 0;                // current tile's me
  std::vector<std::int64_t> weights_;      // rows_ × cols_ preload (WS)
  std::vector<std::int64_t> west_stim_;    // steps × rows_ west inputs
  std::vector<std::int64_t> north_stim_;   // steps × cols_ north inputs (OS)
  std::vector<std::int64_t> out_;          // total_width_ × me tile outputs
};

}  // namespace saffire
