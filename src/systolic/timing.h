// Analytical cycle-count formulas for the two dataflows.
//
// These closed forms are the contract the schedulers are tested against and
// the basis of the FI-cost model benchmarked in bench_fi_cost (the paper's
// 45 s GEMM vs 130 s convolution observation, Sec. IV).
#pragma once

#include <cstdint>

#include "systolic/config.h"

namespace saffire {

// Datapath cycles to stream an M-row operand through a weight-stationary
// array: the last output C[M−1][N−1] leaves the south edge of the last
// column after cycle (M−1) + (rows−1) + (cols−1), so M + rows + cols − 2
// steps are required.
std::int64_t WeightStationaryStreamCycles(std::int64_t m,
                                          const ArrayConfig& config);

// Total cycles for one WS tile invocation including the weight-preload
// latency (rows idle cycles).
std::int64_t WeightStationaryTileCycles(std::int64_t m,
                                        const ArrayConfig& config);

// Datapath cycles for an output-stationary reduction of depth K: the last
// product reaches PE(rows−1, cols−1) on cycle (K−1) + (rows−1) + (cols−1).
std::int64_t OutputStationaryStreamCycles(std::int64_t k,
                                          const ArrayConfig& config);

// Total cycles for one OS tile invocation including the drain latency
// (rows idle cycles).
std::int64_t OutputStationaryTileCycles(std::int64_t k,
                                        const ArrayConfig& config);

}  // namespace saffire
