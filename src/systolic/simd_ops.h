// Runtime-dispatched SIMD backend selection for the lane-parallel kernel.
//
// The batch engine's inner loop (systolic/lane_grid.cc) carries an AVX2
// datapath next to the portable scalar one; which one runs is a process-wide
// mode resolved here. The scalar path is always compiled and always
// available; AVX2 is compiled behind function-level target attributes (no
// global -mavx2, so the binary still runs on older hosts) and selected only
// when the CPU reports support. Both paths are bit-identical by contract —
// the engine-equivalence matrix test crosses every engine with every mode.
//
// Selection surface:
//   - `--simd {auto,avx2,scalar}` on the CLIs / benches,
//   - the SAFFIRE_SIMD environment variable (same values, read once on
//     first query; an explicit SetSimdMode overrides it),
//   - SetSimdMode() for tests and embedders.
#pragma once

#include <cstdint>
#include <string>

namespace saffire {

enum class SimdMode : std::uint8_t {
  // Pick the widest supported backend (AVX2 when the CPU has it).
  kAuto = 0,
  // Require the AVX2 backend; SetSimdMode throws if the CPU lacks it.
  kAvx2 = 1,
  // Force the portable scalar kernel everywhere.
  kScalar = 2,
};

// Returns "auto" / "avx2" / "scalar".
std::string ToString(SimdMode mode);

// Parses the names produced by ToString; throws std::invalid_argument
// naming the accepted values on unknown input.
SimdMode ParseSimdMode(const std::string& name);

// Alias of ParseSimdMode, kept for parity with the other enum parsers.
SimdMode SimdModeFromString(const std::string& name);

// True when the executing CPU supports AVX2 (always false off x86-64).
bool CpuSupportsAvx2();

// Sets the process-wide requested mode. Throws std::invalid_argument when
// kAvx2 is requested on a CPU without AVX2. Thread-safe, but intended to be
// called at startup (the kernels snapshot the resolved mode per grid).
void SetSimdMode(SimdMode mode);

// The requested mode: the last SetSimdMode value, else SAFFIRE_SIMD if set
// (throws std::invalid_argument on an unparseable value, naming the
// variable), else kAuto.
SimdMode RequestedSimdMode();

// Parses `value` and applies it via SetSimdMode; on failure throws
// std::invalid_argument whose message names `source` (e.g. "--simd" or
// "SAFFIRE_SIMD") and the accepted values — the CLI error convention.
void ConfigureSimdFromString(const std::string& value,
                             const std::string& source);

// The dispatch decision the kernels consult: true iff the resolved mode is
// AVX2 (requested avx2, or auto on an AVX2-capable CPU).
bool UseAvx2();

}  // namespace saffire
