#include "accel/host_memory.h"

#include "common/check.h"

namespace saffire {

HostMemory::HostMemory(std::int64_t size_bytes) {
  SAFFIRE_CHECK_MSG(size_bytes > 0 && size_bytes <= (std::int64_t{1} << 32),
                    "size_bytes=" << size_bytes);
  bytes_.assign(static_cast<std::size_t>(size_bytes), 0);
}

void HostMemory::CheckRange(std::int64_t addr, std::int64_t bytes) const {
  SAFFIRE_CHECK_MSG(addr >= 0 && bytes >= 0 && addr + bytes <= size(),
                    "access [" << addr << ", " << addr + bytes
                               << ") out of DRAM size " << size());
}

std::int8_t HostMemory::ReadInt8(std::int64_t addr) const {
  CheckRange(addr, 1);
  return static_cast<std::int8_t>(bytes_[static_cast<std::size_t>(addr)]);
}

void HostMemory::WriteInt8(std::int64_t addr, std::int8_t value) {
  CheckRange(addr, 1);
  bytes_[static_cast<std::size_t>(addr)] = static_cast<std::uint8_t>(value);
}

std::int32_t HostMemory::ReadInt32(std::int64_t addr) const {
  CheckRange(addr, 4);
  SAFFIRE_CHECK_MSG(addr % 4 == 0, "unaligned int32 read at " << addr);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | bytes_[static_cast<std::size_t>(addr + i)];
  }
  return static_cast<std::int32_t>(v);
}

void HostMemory::WriteInt32(std::int64_t addr, std::int32_t value) {
  CheckRange(addr, 4);
  SAFFIRE_CHECK_MSG(addr % 4 == 0, "unaligned int32 write at " << addr);
  auto v = static_cast<std::uint32_t>(value);
  for (int i = 0; i < 4; ++i) {
    bytes_[static_cast<std::size_t>(addr + i)] =
        static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

std::int64_t HostMemory::WriteMatrix(std::int64_t addr,
                                     const Int8Tensor& matrix) {
  SAFFIRE_CHECK(matrix.rank() == 2);
  CheckRange(addr, matrix.size());
  for (std::int64_t i = 0; i < matrix.size(); ++i) {
    WriteInt8(addr + i, matrix.flat(i));
  }
  return matrix.size();
}

std::int64_t HostMemory::WriteMatrix(std::int64_t addr,
                                     const Int32Tensor& matrix) {
  SAFFIRE_CHECK(matrix.rank() == 2);
  CheckRange(addr, matrix.size() * 4);
  for (std::int64_t i = 0; i < matrix.size(); ++i) {
    WriteInt32(addr + i * 4, matrix.flat(i));
  }
  return matrix.size() * 4;
}

Int8Tensor HostMemory::ReadInt8Matrix(std::int64_t addr, std::int64_t rows,
                                      std::int64_t cols) const {
  Int8Tensor out({rows, cols});
  CheckRange(addr, out.size());
  for (std::int64_t i = 0; i < out.size(); ++i) {
    out.flat(i) = ReadInt8(addr + i);
  }
  return out;
}

Int32Tensor HostMemory::ReadInt32Matrix(std::int64_t addr, std::int64_t rows,
                                        std::int64_t cols) const {
  Int32Tensor out({rows, cols});
  CheckRange(addr, out.size() * 4);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    out.flat(i) = ReadInt32(addr + i * 4);
  }
  return out;
}

std::int64_t HostMemory::Allocate(std::int64_t bytes, std::int64_t alignment) {
  SAFFIRE_CHECK_MSG(bytes > 0, "bytes=" << bytes);
  SAFFIRE_CHECK_MSG(alignment > 0 && (alignment & (alignment - 1)) == 0,
                    "alignment=" << alignment);
  const std::int64_t aligned = (next_free_ + alignment - 1) & ~(alignment - 1);
  SAFFIRE_CHECK_MSG(aligned + bytes <= size(),
                    "DRAM exhausted: need " << bytes << " at " << aligned
                                            << ", size " << size());
  next_free_ = aligned + bytes;
  return aligned;
}

}  // namespace saffire
