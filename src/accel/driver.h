// The software stack: plans tile loops (Sec. II-C), stages operands in
// DRAM, emits ISA programs, and reads results back — the role Gemmini's
// host-side library plays on the Rocket CPU in Fig. 2 of the paper.
//
// The tiling plan is exposed via PlanTiles() so that the analytical
// fault-pattern predictor (patterns/predictor.h) reasons about exactly the
// loop structure the hardware executed.
#pragma once

#include "accel/controller.h"
#include "tensor/conv.h"
#include "tensor/tiling.h"

namespace saffire {

// How convolutions are lowered onto the GEMM engine (ignored by Gemm).
//   kIm2Col:    cuDNN-style (Sec. II-B) — C[NPQ×K] = A[NPQ×CRS]·W[CRS×K],
//               output channels on array columns.
//   kShiftGemm: the [C·R × S·K] factorized lowering (tensor/shift_gemm.h)
//               whose column-tiling reproduces the paper's single- vs
//               multi-channel conv fault patterns (Fig. 3e–3g).
enum class ConvLowering : std::uint8_t { kIm2Col = 0, kShiftGemm = 1 };

std::string ToString(ConvLowering lowering);

// Parses "im2col"/"shift-gemm"; throws std::invalid_argument on unknown
// names.
ConvLowering ConvLoweringFromString(const std::string& name);

struct ExecOptions {
  Dataflow dataflow = Dataflow::kWeightStationary;
  Activation activation = Activation::kNone;
  std::int32_t output_shift = 0;  // used by the quantizing variants only
  ConvLowering conv_lowering = ConvLowering::kShiftGemm;
};

class Driver {
 public:
  explicit Driver(Accelerator& accel) : accel_(accel) {}

  // The tile grid used for an M×N×K GEMM:
  //   WS: A streams, so M is chunked at max_compute_rows; K maps to array
  //       rows (weight block height), N to array columns.
  //   OS: M maps to array rows, N to array columns; K is chunked at the
  //       scratchpad row width (= array columns), since an A block stores
  //       one matrix row per scratchpad row.
  static TileGrid PlanTiles(std::int64_t m, std::int64_t n, std::int64_t k,
                            const AccelConfig& config, Dataflow dataflow);

  // C[M×N] = A[M×K]·B[K×N] with INT32 results (MVOUT32).
  Int32Tensor Gemm(const Int8Tensor& a, const Int8Tensor& b,
                   const ExecOptions& options);

  // Same, but results leave the accumulator through the requantizing MVOUT8
  // path (activation + rounding shift + saturation).
  Int8Tensor GemmQuantized(const Int8Tensor& a, const Int8Tensor& b,
                           const ExecOptions& options);

  // Convolution via im2col lowering (Sec. II-B): the host reshapes input
  // and kernel, the accelerator runs the NPQ×CRS·CRS×K GEMM, and the host
  // folds the NPQ×K result back to N×K×P×Q.
  Int32Tensor Conv(const Int8Tensor& input, const Int8Tensor& kernel,
                   const ConvParams& params, const ExecOptions& options);

  Int8Tensor ConvQuantized(const Int8Tensor& input, const Int8Tensor& kernel,
                           const ConvParams& params,
                           const ExecOptions& options);

  // The ISA program emitted by the most recent operation (for audits,
  // disassembly listings, and tests).
  const Program& last_program() const { return last_program_; }

  Accelerator& accel() { return accel_; }

 private:
  // Emits and runs the tiled GEMM, leaving the INT32 result in DRAM.
  // Returns the DRAM address of C.
  std::int64_t RunTiledGemm(const Int8Tensor& a, const Int8Tensor& b,
                            const ExecOptions& options, bool quantized);

  Accelerator& accel_;
  Program last_program_;
};

}  // namespace saffire
