// Instruction set of the simulated accelerator, modelled on Gemmini's
// CISC-style RoCC commands (Fig. 2 of the paper): the host CPU issues
// CONFIG / MVIN / PRELOAD / COMPUTE / MVOUT instructions; the controller
// sequences the scratchpad, the systolic array, and the accumulator SRAM.
//
// Address spaces:
//   - DRAM:        byte-addressed host memory (HostMemory).
//   - Scratchpad:  row-addressed; each row holds `array.cols` INT8 values.
//   - Accumulator: row-addressed; each row holds `array.cols` INT32 values.
//
// Operand blocking follows Gemmini: the stationary operand (B) is always an
// array-sized block; the streamed operand (A) may span up to
// `max_compute_rows` scratchpad rows in one COMPUTE, which is how the
// weight-stationary dataflow amortizes a single weight preload over many
// activation rows.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "systolic/config.h"

namespace saffire {

// Output activation applied by MVOUT8 (quantizing store).
enum class Activation : std::uint8_t { kNone = 0, kRelu = 1 };

std::string ToString(Activation activation);

// CONFIG: selects dataflow and the MVOUT8 post-processing (activation +
// rounding right-shift used to requantize INT32 accumulators to INT8).
struct ConfigOp {
  Dataflow dataflow = Dataflow::kWeightStationary;
  Activation activation = Activation::kNone;
  std::int32_t output_shift = 0;  // arithmetic right shift with rounding
};

// MVIN: DRAM → scratchpad. Moves `rows` rows of `cols` INT8 values from a
// row-major DRAM matrix with stride `dram_stride` (in elements).
struct MvinOp {
  std::int64_t dram_addr = 0;
  std::int64_t dram_stride = 0;
  std::int32_t spad_row = 0;
  std::int32_t rows = 0;
  std::int32_t cols = 0;
};

// PRELOAD: installs the stationary B block (spad rows `b_spad_row` ..
// `b_spad_row + b_rows − 1`, first `b_cols` columns) into the PE weight
// registers. Only meaningful under the weight-stationary dataflow.
struct PreloadOp {
  std::int32_t b_spad_row = 0;
  std::int32_t b_rows = 0;
  std::int32_t b_cols = 0;
};

// COMPUTE: streams A (spad rows `a_spad_row` .., `a_rows × a_cols`) through
// the array and writes the `a_rows × out_cols` result block into the
// accumulator at `acc_row` (overwriting or accumulating).
//   WS: out_cols = the preloaded b_cols; a_cols must equal the preloaded
//       b_rows; a_rows is bounded by max_compute_rows.
//   OS: requires b fields inline (no preload): the B block is read from
//       scratchpad rows `b_spad_row`..; a_rows ≤ array rows.
struct ComputeOp {
  std::int32_t a_spad_row = 0;
  std::int32_t a_rows = 0;
  std::int32_t a_cols = 0;
  std::int32_t acc_row = 0;
  bool accumulate = false;
  // OS only: location of the streamed B block in the scratchpad.
  std::int32_t b_spad_row = 0;
  std::int32_t b_rows = 0;
  std::int32_t b_cols = 0;
};

// MVOUT32: accumulator → DRAM, raw INT32 values.
struct Mvout32Op {
  std::int64_t dram_addr = 0;
  std::int64_t dram_stride = 0;  // in elements
  std::int32_t acc_row = 0;
  std::int32_t rows = 0;
  std::int32_t cols = 0;
};

// MVOUT8: accumulator → DRAM with requantization: activation, rounding
// right-shift by the configured output_shift, saturation to INT8.
struct Mvout8Op {
  std::int64_t dram_addr = 0;
  std::int64_t dram_stride = 0;  // in elements
  std::int32_t acc_row = 0;
  std::int32_t rows = 0;
  std::int32_t cols = 0;
};

// FENCE: drains the (conceptual) command queue; a no-op in this in-order
// model, retained for ISA completeness and cost accounting.
struct FenceOp {};

using Instruction = std::variant<ConfigOp, MvinOp, PreloadOp, ComputeOp,
                                 Mvout32Op, Mvout8Op, FenceOp>;

// Human-readable disassembly, e.g. "mvin dram=0x0 stride=16 spad=0 16x16".
std::string Disassemble(const Instruction& instruction);

// A complete command stream plus a builder API, so drivers can be audited
// by disassembling the program they emitted.
class Program {
 public:
  void Push(Instruction instruction) {
    instructions_.push_back(std::move(instruction));
  }
  const std::vector<Instruction>& instructions() const {
    return instructions_;
  }
  std::size_t size() const { return instructions_.size(); }
  bool empty() const { return instructions_.empty(); }

  // Full disassembly listing, one instruction per line.
  std::string Disassembly() const;

 private:
  std::vector<Instruction> instructions_;
};

}  // namespace saffire
