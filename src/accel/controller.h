// The accelerator proper: systolic array + scratchpad + accumulator SRAM +
// DRAM, sequenced by an in-order controller executing the ISA of isa.h —
// the full-stack structure of Gemmini in Fig. 2 of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "accel/host_memory.h"
#include "accel/isa.h"
#include "accel/scratchpad.h"
#include "systolic/array.h"
#include "systolic/dataflow.h"

namespace saffire {

struct AccelConfig {
  ArrayConfig array;
  std::int32_t spad_rows = 8192;
  std::int32_t acc_rows = 4096;
  // Longest activation stream a single WS COMPUTE may issue (bounded by the
  // scratchpad region the driver dedicates to A blocks).
  std::int32_t max_compute_rows = 1024;
  // Gemmini-style double-buffered PE weight registers: the next PRELOAD
  // shifts into the shadow bank while the current COMPUTE streams, so a
  // WS compute pays only the preload latency the previous stream could not
  // hide (max(0, rows − previous stream cycles); the first compute pays it
  // in full). false models single-bank hardware: every compute pays `rows`.
  bool double_buffered_weights = true;
  std::int64_t dram_bytes = 64ll << 20;

  void Validate() const;
  std::string ToString() const;

  bool operator==(const AccelConfig&) const = default;
};

struct AccelStats {
  std::int64_t instructions = 0;
  std::int64_t mvin_rows = 0;
  std::int64_t mvout_rows = 0;
  std::int64_t computes = 0;
  std::int64_t preloads = 0;
  // Total accelerator cycles == the array's cycle counter (one clock
  // domain: datapath steps plus accounted DMA/preload/drain idles).
};

class Accelerator {
 public:
  explicit Accelerator(const AccelConfig& config);

  const AccelConfig& config() const { return config_; }

  void Execute(const Instruction& instruction);
  void Execute(const Program& program);

  HostMemory& dram() { return dram_; }
  const HostMemory& dram() const { return dram_; }
  SystolicArray& array() { return array_; }
  const SystolicArray& array() const { return array_; }
  Scratchpad& scratchpad() { return scratchpad_; }
  AccumulatorMem& accumulator() { return accumulator_; }

  const AccelStats& stats() const { return stats_; }
  std::int64_t cycles() const { return array_.cycle(); }

  // Current dataflow (from the last CONFIG; WS until configured).
  Dataflow dataflow() const { return dataflow_; }

 private:
  void Run(const ConfigOp& op);
  void Run(const MvinOp& op);
  void Run(const PreloadOp& op);
  void Run(const ComputeOp& op);
  void Run(const Mvout32Op& op);
  void Run(const Mvout8Op& op);
  void Run(const FenceOp& op);

  AccelConfig config_;
  HostMemory dram_;
  SystolicArray array_;
  Scratchpad scratchpad_;
  AccumulatorMem accumulator_;
  WeightStationaryScheduler ws_;
  OutputStationaryScheduler os_;

  Dataflow dataflow_ = Dataflow::kWeightStationary;
  Activation activation_ = Activation::kNone;
  std::int32_t output_shift_ = 0;
  // Stream cycles of the previous WS COMPUTE, available to hide the next
  // weight preload when double buffering is enabled.
  std::int64_t ws_overlap_budget_ = 0;
  // Stationary operand captured by the last PRELOAD (WS only).
  std::optional<Int8Tensor> preloaded_b_;

  AccelStats stats_;
};

}  // namespace saffire
