#include "accel/scratchpad.h"

#include <algorithm>

#include "common/check.h"

namespace saffire {

Scratchpad::Scratchpad(std::int32_t rows, std::int32_t cols)
    : rows_(rows), cols_(cols) {
  SAFFIRE_CHECK_MSG(rows > 0 && rows <= (1 << 20), "rows=" << rows);
  SAFFIRE_CHECK_MSG(cols > 0 && cols <= 1024, "cols=" << cols);
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               0);
}

void Scratchpad::CheckAccess(std::int32_t row, std::int32_t col) const {
  SAFFIRE_CHECK_MSG(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                    "scratchpad access (" << row << ", " << col << ") out of "
                                          << rows_ << "x" << cols_);
}

std::int8_t Scratchpad::Read(std::int32_t row, std::int32_t col) const {
  CheckAccess(row, col);
  return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(col)];
}

void Scratchpad::Write(std::int32_t row, std::int32_t col, std::int8_t value) {
  CheckAccess(row, col);
  data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
        static_cast<std::size_t>(col)] = value;
}

Int8Tensor Scratchpad::ReadBlock(std::int32_t row0, std::int32_t rows,
                                 std::int32_t cols) const {
  SAFFIRE_CHECK_MSG(rows > 0 && cols > 0 && cols <= cols_,
                    "block " << rows << "x" << cols);
  SAFFIRE_CHECK_MSG(row0 >= 0 && row0 + rows <= rows_,
                    "rows [" << row0 << ", " << row0 + rows << ") out of "
                             << rows_);
  Int8Tensor out({rows, cols});
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      out(r, c) = Read(row0 + r, c);
    }
  }
  return out;
}

void Scratchpad::WriteBlock(std::int32_t row0, const Int8Tensor& block) {
  SAFFIRE_CHECK(block.rank() == 2);
  const auto rows = static_cast<std::int32_t>(block.dim(0));
  const auto cols = static_cast<std::int32_t>(block.dim(1));
  SAFFIRE_CHECK_MSG(cols <= cols_, "block cols " << cols);
  SAFFIRE_CHECK_MSG(row0 >= 0 && row0 + rows <= rows_,
                    "rows [" << row0 << ", " << row0 + rows << ") out of "
                             << rows_);
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      Write(row0 + r, c, block(r, c));
    }
  }
}

void Scratchpad::Clear() { std::fill(data_.begin(), data_.end(), 0); }

AccumulatorMem::AccumulatorMem(std::int32_t rows, std::int32_t cols)
    : rows_(rows), cols_(cols) {
  SAFFIRE_CHECK_MSG(rows > 0 && rows <= (1 << 20), "rows=" << rows);
  SAFFIRE_CHECK_MSG(cols > 0 && cols <= 1024, "cols=" << cols);
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               0);
}

void AccumulatorMem::CheckAccess(std::int32_t row, std::int32_t col) const {
  SAFFIRE_CHECK_MSG(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                    "accumulator access (" << row << ", " << col
                                           << ") out of " << rows_ << "x"
                                           << cols_);
}

std::int32_t AccumulatorMem::Read(std::int32_t row, std::int32_t col) const {
  CheckAccess(row, col);
  return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(col)];
}

void AccumulatorMem::WriteBlock(std::int32_t row0, const Int32Tensor& block,
                                bool accumulate) {
  SAFFIRE_CHECK(block.rank() == 2);
  const auto rows = static_cast<std::int32_t>(block.dim(0));
  const auto cols = static_cast<std::int32_t>(block.dim(1));
  SAFFIRE_CHECK_MSG(cols <= cols_, "block cols " << cols);
  SAFFIRE_CHECK_MSG(row0 >= 0 && row0 + rows <= rows_,
                    "rows [" << row0 << ", " << row0 + rows << ") out of "
                             << rows_);
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      auto& cell =
          data_[static_cast<std::size_t>(row0 + r) *
                    static_cast<std::size_t>(cols_) +
                static_cast<std::size_t>(c)];
      // Hardware-accurate 32-bit wrap-around: faulty partial sums can sit
      // near INT32_MIN (e.g. an SA1 on bit 31), so add in unsigned space.
      cell = accumulate
                 ? static_cast<std::int32_t>(
                       static_cast<std::uint32_t>(cell) +
                       static_cast<std::uint32_t>(block(r, c)))
                 : block(r, c);
    }
  }
}

Int32Tensor AccumulatorMem::ReadBlock(std::int32_t row0, std::int32_t rows,
                                      std::int32_t cols) const {
  SAFFIRE_CHECK_MSG(rows > 0 && cols > 0 && cols <= cols_,
                    "block " << rows << "x" << cols);
  SAFFIRE_CHECK_MSG(row0 >= 0 && row0 + rows <= rows_,
                    "rows [" << row0 << ", " << row0 + rows << ") out of "
                             << rows_);
  Int32Tensor out({rows, cols});
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      out(r, c) = Read(row0 + r, c);
    }
  }
  return out;
}

Int8Tensor AccumulatorMem::ReadBlockQuantized(std::int32_t row0,
                                              std::int32_t rows,
                                              std::int32_t cols,
                                              Activation activation,
                                              std::int32_t shift) const {
  const auto raw = ReadBlock(row0, rows, cols);
  Int8Tensor out({rows, cols});
  for (std::int64_t i = 0; i < raw.size(); ++i) {
    out.flat(i) = Requantize(raw.flat(i), activation, shift);
  }
  return out;
}

void AccumulatorMem::Clear() { std::fill(data_.begin(), data_.end(), 0); }

std::int8_t Requantize(std::int32_t value, Activation activation,
                       std::int32_t shift) {
  SAFFIRE_CHECK_MSG(shift >= 0 && shift < 32, "shift=" << shift);
  std::int64_t v = value;
  if (activation == Activation::kRelu && v < 0) v = 0;
  if (shift > 0) {
    // Round half away from zero, like Gemmini's rounding shift.
    const std::int64_t half = std::int64_t{1} << (shift - 1);
    v = (v >= 0) ? ((v + half) >> shift) : (-((-v + half) >> shift));
  }
  v = std::clamp<std::int64_t>(v, -128, 127);
  return static_cast<std::int8_t>(v);
}

}  // namespace saffire
