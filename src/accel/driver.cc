#include "accel/driver.h"

#include "tensor/im2col.h"
#include "tensor/shift_gemm.h"
#include "tensor/transpose.h"

namespace saffire {

std::string ToString(ConvLowering lowering) {
  return lowering == ConvLowering::kIm2Col ? "im2col" : "shift-gemm";
}

ConvLowering ConvLoweringFromString(const std::string& name) {
  if (name == "im2col") return ConvLowering::kIm2Col;
  if (name == "shift-gemm") return ConvLowering::kShiftGemm;
  SAFFIRE_CHECK_MSG(false, "unknown conv lowering '" << name << "'");
}

TileGrid Driver::PlanTiles(std::int64_t m, std::int64_t n, std::int64_t k,
                           const AccelConfig& config, Dataflow dataflow) {
  config.Validate();
  // The reduction block is bounded by the array rows (the depth of the
  // psum chain / weight column) AND by the scratchpad row width (= array
  // cols): each streamed matrix row occupies one scratchpad row, so its
  // length cannot exceed the row width. Square arrays make this min() a
  // no-op; rows-heavy arrays leave their extra rows idle, as a real
  // cols-wide scratchpad would force.
  const std::int64_t reduction_block =
      std::min(config.array.rows, config.array.cols);
  switch (dataflow) {
    case Dataflow::kWeightStationary:
      return TileGrid(m, n, k, config.max_compute_rows, config.array.cols,
                      reduction_block);
    case Dataflow::kOutputStationary:
      return TileGrid(m, n, k, config.array.rows, config.array.cols,
                      config.array.cols);
    case Dataflow::kInputStationary:
      // The WS plan of the transposed problem, mapped back to C-space:
      // the stationary Aᵀ tile pins M to the array columns and K to the
      // reduction block; the weight stream N is chunked like a WS
      // activation stream.
      return TileGrid(m, n, k, config.array.cols, config.max_compute_rows,
                      reduction_block);
  }
  SAFFIRE_CHECK_MSG(false, "unknown dataflow");
}

std::int64_t Driver::RunTiledGemm(const Int8Tensor& a, const Int8Tensor& b,
                                  const ExecOptions& options, bool quantized) {
  SAFFIRE_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                    "A " << a.ShapeString() << " B " << b.ShapeString());
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  const AccelConfig& config = accel_.config();
  const TileGrid grid = PlanTiles(m, n, k, config, options.dataflow);

  HostMemory& dram = accel_.dram();
  dram.FreeAll();
  const std::int64_t a_addr = dram.Allocate(m * k);
  dram.WriteMatrix(a_addr, a);
  const std::int64_t b_addr = dram.Allocate(k * n);
  dram.WriteMatrix(b_addr, b);
  const std::int64_t c_addr =
      dram.Allocate(quantized ? m * n : m * n * 4);

  const std::int32_t spad_a_row = 0;
  const auto spad_b_row = config.max_compute_rows;

  Program program;
  program.Push(
      ConfigOp{options.dataflow, options.activation, options.output_shift});
  for (std::int64_t mi = 0; mi < grid.m_tiles(); ++mi) {
    const std::int64_t m0 = grid.RowStart(mi);
    const auto me = static_cast<std::int32_t>(grid.TileRows(mi));
    for (std::int64_t ni = 0; ni < grid.n_tiles(); ++ni) {
      const std::int64_t n0 = grid.ColStart(ni);
      const auto ne = static_cast<std::int32_t>(grid.TileCols(ni));
      for (std::int64_t ki = 0; ki < grid.k_tiles(); ++ki) {
        const std::int64_t k0 = grid.DepthStart(ki);
        const auto ke = static_cast<std::int32_t>(grid.TileDepth(ki));
        program.Push(
            MvinOp{b_addr + k0 * n + n0, n, spad_b_row, ke, ne});
        if (options.dataflow == Dataflow::kWeightStationary) {
          program.Push(PreloadOp{spad_b_row, ke, ne});
        }
        program.Push(MvinOp{a_addr + m0 * k + k0, k, spad_a_row, me, ke});
        ComputeOp compute;
        compute.a_spad_row = spad_a_row;
        compute.a_rows = me;
        compute.a_cols = ke;
        compute.acc_row = 0;
        compute.accumulate = ki > 0;
        if (options.dataflow == Dataflow::kOutputStationary) {
          compute.b_spad_row = spad_b_row;
          compute.b_rows = ke;
          compute.b_cols = ne;
        }
        program.Push(compute);
      }
      if (quantized) {
        program.Push(Mvout8Op{c_addr + m0 * n + n0, n, 0, me, ne});
      } else {
        program.Push(Mvout32Op{c_addr + (m0 * n + n0) * 4, n, 0, me, ne});
      }
    }
  }

  accel_.Execute(program);
  last_program_ = std::move(program);
  return c_addr;
}

Int32Tensor Driver::Gemm(const Int8Tensor& a, const Int8Tensor& b,
                         const ExecOptions& options) {
  if (options.dataflow == Dataflow::kInputStationary) {
    // IS = the WS program of the transposed problem (Cᵀ = Bᵀ·Aᵀ); the
    // host stages transposed operands and un-transposes the result.
    ExecOptions ws = options;
    ws.dataflow = Dataflow::kWeightStationary;
    return Transpose(Gemm(Transpose(b), Transpose(a), ws));
  }
  const std::int64_t c_addr =
      RunTiledGemm(a, b, options, /*quantized=*/false);
  return accel_.dram().ReadInt32Matrix(c_addr, a.dim(0), b.dim(1));
}

Int8Tensor Driver::GemmQuantized(const Int8Tensor& a, const Int8Tensor& b,
                                 const ExecOptions& options) {
  if (options.dataflow == Dataflow::kInputStationary) {
    ExecOptions ws = options;
    ws.dataflow = Dataflow::kWeightStationary;
    return Transpose(GemmQuantized(Transpose(b), Transpose(a), ws));
  }
  const std::int64_t c_addr = RunTiledGemm(a, b, options, /*quantized=*/true);
  return accel_.dram().ReadInt8Matrix(c_addr, a.dim(0), b.dim(1));
}

Int32Tensor Driver::Conv(const Int8Tensor& input, const Int8Tensor& kernel,
                         const ConvParams& params,
                         const ExecOptions& options) {
  if (options.conv_lowering == ConvLowering::kShiftGemm) {
    const auto a2 = ShiftGemmLowerInput(input, params);
    const auto w2 = ShiftGemmLowerKernel(kernel, params);
    return ShiftGemmFold(Gemm(a2, w2, options), params);
  }
  const auto patches = Im2Col(input, params);
  const auto weights = FlattenKernel(kernel, params);
  return FoldGemmOutput(Gemm(patches, weights, options), params);
}

Int8Tensor Driver::ConvQuantized(const Int8Tensor& input,
                                 const Int8Tensor& kernel,
                                 const ConvParams& params,
                                 const ExecOptions& options) {
  // Requantization must see the fully-accumulated INT32 result, which for
  // the shift-GEMM lowering only exists after the fold; apply the same
  // Requantize stage the MVOUT8 path uses, post-fold.
  ExecOptions raw = options;
  raw.activation = Activation::kNone;
  raw.output_shift = 0;
  const auto folded = Conv(input, kernel, params, raw);
  Int8Tensor out(folded.shape());
  for (std::int64_t i = 0; i < folded.size(); ++i) {
    out.flat(i) =
        Requantize(folded.flat(i), options.activation, options.output_shift);
  }
  return out;
}

}  // namespace saffire
