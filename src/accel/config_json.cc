#include "accel/config_json.h"

namespace saffire {

void WriteAccelJson(JsonWriter& w, const AccelConfig& accel) {
  w.BeginObject()
      .Key("rows").Int(accel.array.rows)
      .Key("cols").Int(accel.array.cols)
      .Key("input_bits").Int(accel.array.input_bits)
      .Key("acc_bits").Int(accel.array.acc_bits)
      .Key("spad_rows").Int(accel.spad_rows)
      .Key("acc_rows").Int(accel.acc_rows)
      .Key("max_compute_rows").Int(accel.max_compute_rows)
      .Key("double_buffered_weights").Bool(accel.double_buffered_weights)
      .Key("dram_bytes").Int(accel.dram_bytes)
      .EndObject();
}

AccelConfig ParseAccelJson(const JsonValue& json) {
  AccelConfig accel;
  accel.array.rows = static_cast<std::int32_t>(json.At("rows").AsInt());
  accel.array.cols = static_cast<std::int32_t>(json.At("cols").AsInt());
  accel.array.input_bits =
      static_cast<std::int32_t>(json.At("input_bits").AsInt());
  accel.array.acc_bits =
      static_cast<std::int32_t>(json.At("acc_bits").AsInt());
  accel.spad_rows = static_cast<std::int32_t>(json.At("spad_rows").AsInt());
  accel.acc_rows = static_cast<std::int32_t>(json.At("acc_rows").AsInt());
  accel.max_compute_rows =
      static_cast<std::int32_t>(json.At("max_compute_rows").AsInt());
  accel.double_buffered_weights =
      json.At("double_buffered_weights").AsBool();
  accel.dram_bytes = json.At("dram_bytes").AsInt();
  return accel;
}

}  // namespace saffire
