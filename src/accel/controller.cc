#include "accel/controller.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "systolic/timing.h"

namespace saffire {

void AccelConfig::Validate() const {
  array.Validate();
  SAFFIRE_CHECK_MSG(spad_rows >= 2 * array.rows, "spad_rows=" << spad_rows);
  SAFFIRE_CHECK_MSG(acc_rows >= array.rows, "acc_rows=" << acc_rows);
  SAFFIRE_CHECK_MSG(max_compute_rows >= array.rows,
                    "max_compute_rows=" << max_compute_rows);
  SAFFIRE_CHECK_MSG(max_compute_rows <= acc_rows,
                    "max_compute_rows exceeds accumulator capacity");
  SAFFIRE_CHECK_MSG(
      max_compute_rows + std::max(array.rows, array.cols) <= spad_rows,
      "A region plus a B block must fit the scratchpad");
  SAFFIRE_CHECK_MSG(dram_bytes >= (1 << 16), "dram_bytes=" << dram_bytes);
}

std::string AccelConfig::ToString() const {
  std::ostringstream os;
  os << "Accel(" << array.ToString() << ", spad=" << spad_rows
     << " rows, acc=" << acc_rows << " rows, max_compute=" << max_compute_rows
     << ")";
  return os.str();
}

Accelerator::Accelerator(const AccelConfig& config)
    : config_(config),
      dram_((config.Validate(), config.dram_bytes)),
      array_(config.array),
      scratchpad_(config.spad_rows, config.array.cols),
      accumulator_(config.acc_rows, config.array.cols),
      ws_(array_),
      os_(array_) {}

void Accelerator::Execute(const Instruction& instruction) {
  std::visit([this](const auto& op) { Run(op); }, instruction);
  ++stats_.instructions;
}

void Accelerator::Execute(const Program& program) {
  for (const Instruction& instruction : program.instructions()) {
    Execute(instruction);
  }
}

void Accelerator::Run(const ConfigOp& op) {
  SAFFIRE_CHECK_MSG(op.output_shift >= 0 && op.output_shift < 32,
                    "output_shift=" << op.output_shift);
  // IS is realized by the driver as a WS program on transposed operands
  // (driver.cc); the hardware itself exposes WS and OS, like Gemmini.
  SAFFIRE_CHECK_MSG(op.dataflow != Dataflow::kInputStationary,
                    "the ISA supports WS and OS; lower IS in the driver");
  dataflow_ = op.dataflow;
  activation_ = op.activation;
  output_shift_ = op.output_shift;
  // A new program starts with drained pipelines: no stream is in flight to
  // hide the first preload (this also keeps every run's cycle count
  // independent of what ran before — fault injection must never perturb
  // timing).
  ws_overlap_budget_ = 0;
}

void Accelerator::Run(const MvinOp& op) {
  SAFFIRE_CHECK_MSG(op.rows > 0 && op.cols > 0 &&
                        op.cols <= scratchpad_.cols(),
                    "mvin " << op.rows << "x" << op.cols);
  Int8Tensor block({op.rows, op.cols});
  for (std::int32_t r = 0; r < op.rows; ++r) {
    for (std::int32_t c = 0; c < op.cols; ++c) {
      block(r, c) = dram_.ReadInt8(op.dram_addr + r * op.dram_stride + c);
    }
  }
  scratchpad_.WriteBlock(op.spad_row, block);
  array_.AdvanceIdle(op.rows);  // DMA: one scratchpad row per cycle
  stats_.mvin_rows += op.rows;
}

void Accelerator::Run(const PreloadOp& op) {
  SAFFIRE_CHECK_MSG(dataflow_ == Dataflow::kWeightStationary,
                    "PRELOAD requires the weight-stationary dataflow");
  SAFFIRE_CHECK_MSG(op.b_rows > 0 && op.b_rows <= config_.array.rows &&
                        op.b_cols > 0 && op.b_cols <= config_.array.cols,
                    "preload block " << op.b_rows << "x" << op.b_cols);
  preloaded_b_ = scratchpad_.ReadBlock(op.b_spad_row, op.b_rows, op.b_cols);
  ++stats_.preloads;
  // The shift-in cost is charged by the scheduler on the next COMPUTE.
}

void Accelerator::Run(const ComputeOp& op) {
  SAFFIRE_CHECK_MSG(op.a_rows > 0 && op.a_cols > 0, "compute a "
                                                        << op.a_rows << "x"
                                                        << op.a_cols);
  SAFFIRE_CHECK_MSG(op.a_rows <= config_.max_compute_rows,
                    "a_rows=" << op.a_rows << " exceeds max_compute_rows "
                              << config_.max_compute_rows);
  const auto a = scratchpad_.ReadBlock(op.a_spad_row, op.a_rows, op.a_cols);

  Int32Tensor result({1, 1});
  if (dataflow_ == Dataflow::kWeightStationary) {
    SAFFIRE_CHECK_MSG(preloaded_b_.has_value(),
                      "COMPUTE without a prior PRELOAD");
    SAFFIRE_CHECK_MSG(preloaded_b_->dim(0) == op.a_cols,
                      "A cols " << op.a_cols << " vs preloaded B rows "
                                << preloaded_b_->dim(0));
    // Preload latency: fully billed on single-bank hardware; with double
    // buffering only the part the previous stream could not hide.
    std::int64_t preload_charge = config_.array.rows;
    if (config_.double_buffered_weights) {
      preload_charge = std::max<std::int64_t>(
          0, config_.array.rows - ws_overlap_budget_);
    }
    array_.AdvanceIdle(preload_charge);
    result = ws_.Multiply(a, *preloaded_b_, nullptr,
                          /*charge_preload=*/false);
    ws_overlap_budget_ = WeightStationaryStreamCycles(op.a_rows,
                                                      config_.array);
  } else {
    SAFFIRE_CHECK_MSG(op.b_rows > 0 && op.b_cols > 0,
                      "OS COMPUTE requires an inline B block");
    SAFFIRE_CHECK_MSG(op.b_rows == op.a_cols,
                      "A cols " << op.a_cols << " vs B rows " << op.b_rows);
    SAFFIRE_CHECK_MSG(op.a_rows <= config_.array.rows,
                      "OS a_rows=" << op.a_rows << " exceeds array rows");
    const auto b = scratchpad_.ReadBlock(op.b_spad_row, op.b_rows, op.b_cols);
    result = os_.Multiply(a, b);
  }
  accumulator_.WriteBlock(op.acc_row, result, op.accumulate);
  ++stats_.computes;
}

void Accelerator::Run(const Mvout32Op& op) {
  const auto block = accumulator_.ReadBlock(op.acc_row, op.rows, op.cols);
  for (std::int32_t r = 0; r < op.rows; ++r) {
    for (std::int32_t c = 0; c < op.cols; ++c) {
      dram_.WriteInt32(op.dram_addr + (r * op.dram_stride + c) * 4,
                       block(r, c));
    }
  }
  array_.AdvanceIdle(op.rows);
  stats_.mvout_rows += op.rows;
}

void Accelerator::Run(const Mvout8Op& op) {
  const auto block = accumulator_.ReadBlockQuantized(
      op.acc_row, op.rows, op.cols, activation_, output_shift_);
  for (std::int32_t r = 0; r < op.rows; ++r) {
    for (std::int32_t c = 0; c < op.cols; ++c) {
      dram_.WriteInt8(op.dram_addr + r * op.dram_stride + c, block(r, c));
    }
  }
  array_.AdvanceIdle(op.rows);
  stats_.mvout_rows += op.rows;
}

void Accelerator::Run(const FenceOp&) {
  // In-order model: nothing outstanding to drain.
}

}  // namespace saffire
