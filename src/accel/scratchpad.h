// On-chip memories of the accelerator: the INT8 scratchpad feeding the
// array and the INT32 accumulator SRAM collecting results.
//
// Both are row-organized with `cols` elements per row (cols == array
// columns), matching Gemmini. Per the paper's fault model, memory elements
// are assumed ECC-protected, so these models are functional (no fault
// hooks); all injected faults live in the MAC datapath.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/isa.h"
#include "tensor/tensor.h"

namespace saffire {

class Scratchpad {
 public:
  Scratchpad(std::int32_t rows, std::int32_t cols);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }

  std::int8_t Read(std::int32_t row, std::int32_t col) const;
  void Write(std::int32_t row, std::int32_t col, std::int8_t value);

  // Reads a `rows × cols` region starting at `row0`, column 0. Columns past
  // `cols` in each scratchpad row are ignored.
  Int8Tensor ReadBlock(std::int32_t row0, std::int32_t rows,
                       std::int32_t cols) const;
  // Writes a block at `row0`, column 0.
  void WriteBlock(std::int32_t row0, const Int8Tensor& block);

  void Clear();

 private:
  void CheckAccess(std::int32_t row, std::int32_t col) const;

  std::int32_t rows_;
  std::int32_t cols_;
  std::vector<std::int8_t> data_;
};

class AccumulatorMem {
 public:
  AccumulatorMem(std::int32_t rows, std::int32_t cols);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }

  std::int32_t Read(std::int32_t row, std::int32_t col) const;

  // Writes a block at `row0`; accumulate=true adds element-wise into the
  // existing contents (the accumulate-on-write the K-tiled GEMM relies on).
  void WriteBlock(std::int32_t row0, const Int32Tensor& block,
                  bool accumulate);

  Int32Tensor ReadBlock(std::int32_t row0, std::int32_t rows,
                        std::int32_t cols) const;

  // Requantizing read used by MVOUT8: activation, rounding arithmetic right
  // shift, saturate to INT8.
  Int8Tensor ReadBlockQuantized(std::int32_t row0, std::int32_t rows,
                                std::int32_t cols, Activation activation,
                                std::int32_t shift) const;

  void Clear();

 private:
  void CheckAccess(std::int32_t row, std::int32_t col) const;

  std::int32_t rows_;
  std::int32_t cols_;
  std::vector<std::int32_t> data_;
};

// The MVOUT8 scalar path, exposed for direct testing: activation →
// round-to-nearest-even-free rounding shift (round half away from zero) →
// saturation to [−128, 127].
std::int8_t Requantize(std::int32_t value, Activation activation,
                       std::int32_t shift);

}  // namespace saffire
