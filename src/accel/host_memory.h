// Byte-addressed host DRAM model shared by the "CPU" (driver, im2col) and
// the accelerator's DMA (MVIN/MVOUT). Faults in memory are outside the
// paper's fault model (assumed ECC-protected), so accesses are functional.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace saffire {

class HostMemory {
 public:
  explicit HostMemory(std::int64_t size_bytes);

  std::int64_t size() const { return static_cast<std::int64_t>(bytes_.size()); }

  std::int8_t ReadInt8(std::int64_t addr) const;
  void WriteInt8(std::int64_t addr, std::int8_t value);
  std::int32_t ReadInt32(std::int64_t addr) const;  // little-endian, aligned
  void WriteInt32(std::int64_t addr, std::int32_t value);

  // Matrix helpers: row-major, contiguous. Return the byte size written.
  std::int64_t WriteMatrix(std::int64_t addr, const Int8Tensor& matrix);
  std::int64_t WriteMatrix(std::int64_t addr, const Int32Tensor& matrix);
  Int8Tensor ReadInt8Matrix(std::int64_t addr, std::int64_t rows,
                            std::int64_t cols) const;
  Int32Tensor ReadInt32Matrix(std::int64_t addr, std::int64_t rows,
                              std::int64_t cols) const;

  // Simple bump allocator for drivers staging operands; `alignment` must be
  // a power of two. Throws when DRAM is exhausted.
  std::int64_t Allocate(std::int64_t bytes, std::int64_t alignment = 64);
  // Releases everything allocated so far (the driver frees per-operation).
  void FreeAll() { next_free_ = 0; }

 private:
  void CheckRange(std::int64_t addr, std::int64_t bytes) const;

  std::vector<std::uint8_t> bytes_;
  std::int64_t next_free_ = 0;
};

}  // namespace saffire
