#include "accel/isa.h"

#include <sstream>

namespace saffire {
namespace {

struct Disassembler {
  std::string operator()(const ConfigOp& op) const {
    std::ostringstream os;
    os << "config dataflow=" << ToString(op.dataflow)
       << " act=" << ToString(op.activation) << " shift=" << op.output_shift;
    return os.str();
  }
  std::string operator()(const MvinOp& op) const {
    std::ostringstream os;
    os << "mvin dram=0x" << std::hex << op.dram_addr << std::dec
       << " stride=" << op.dram_stride << " spad=" << op.spad_row << " "
       << op.rows << "x" << op.cols;
    return os.str();
  }
  std::string operator()(const PreloadOp& op) const {
    std::ostringstream os;
    os << "preload spad=" << op.b_spad_row << " " << op.b_rows << "x"
       << op.b_cols;
    return os.str();
  }
  std::string operator()(const ComputeOp& op) const {
    std::ostringstream os;
    os << "compute a_spad=" << op.a_spad_row << " " << op.a_rows << "x"
       << op.a_cols << " acc=" << op.acc_row
       << (op.accumulate ? " +=" : " =");
    if (op.b_rows > 0) {
      os << " b_spad=" << op.b_spad_row << " " << op.b_rows << "x"
         << op.b_cols;
    }
    return os.str();
  }
  std::string operator()(const Mvout32Op& op) const {
    std::ostringstream os;
    os << "mvout32 dram=0x" << std::hex << op.dram_addr << std::dec
       << " stride=" << op.dram_stride << " acc=" << op.acc_row << " "
       << op.rows << "x" << op.cols;
    return os.str();
  }
  std::string operator()(const Mvout8Op& op) const {
    std::ostringstream os;
    os << "mvout8 dram=0x" << std::hex << op.dram_addr << std::dec
       << " stride=" << op.dram_stride << " acc=" << op.acc_row << " "
       << op.rows << "x" << op.cols;
    return os.str();
  }
  std::string operator()(const FenceOp&) const { return "fence"; }
};

}  // namespace

std::string ToString(Activation activation) {
  return activation == Activation::kRelu ? "relu" : "none";
}

std::string Disassemble(const Instruction& instruction) {
  return std::visit(Disassembler{}, instruction);
}

std::string Program::Disassembly() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < instructions_.size(); ++i) {
    os << i << ": " << Disassemble(instructions_[i]) << '\n';
  }
  return os.str();
}

}  // namespace saffire
