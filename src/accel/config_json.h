// JSON (de)serialization of AccelConfig, shared by every spec type that
// embeds an accelerator configuration (service/sweep.h, appfi/appfi.h,
// service/network_sweep.h) so they agree on one schema.
#pragma once

#include "accel/controller.h"
#include "common/json.h"

namespace saffire {

// Writes the config as one JSON object (keys: rows, cols, input_bits,
// acc_bits, spad_rows, acc_rows, max_compute_rows, double_buffered_weights,
// dram_bytes).
void WriteAccelJson(JsonWriter& w, const AccelConfig& accel);

// Parses exactly what WriteAccelJson emits; throws std::invalid_argument on
// missing members.
AccelConfig ParseAccelJson(const JsonValue& json);

}  // namespace saffire
