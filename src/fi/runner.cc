#include "fi/runner.h"

namespace saffire {

RunResult FiRunner::RunGolden(const WorkloadSpec& workload,
                              Dataflow dataflow) {
  return Run(workload, dataflow, nullptr);
}

RunResult FiRunner::RunFaulty(const WorkloadSpec& workload, Dataflow dataflow,
                              std::span<const FaultSpec> faults) {
  FaultInjector injector(std::vector<FaultSpec>(faults.begin(), faults.end()),
                         accel_.config().array);
  return Run(workload, dataflow, &injector);
}

RunResult FiRunner::Run(const WorkloadSpec& workload, Dataflow dataflow,
                        FaultInjector* injector) {
  const MaterializedWorkload operands = Materialize(workload);
  ExecOptions options;
  options.dataflow = dataflow;
  options.conv_lowering = workload.lowering;

  SystolicArray& array = accel_.array();
  const std::int64_t cycles_before = array.cycle();
  const std::uint64_t steps_before = array.total_pe_steps();

  array.InstallFaultHook(injector);
  RunResult result;
  try {
    result.output = driver_.Gemm(operands.a, operands.b, options);
  } catch (...) {
    array.ClearFaultHook();
    throw;
  }
  array.ClearFaultHook();

  result.cycles = array.cycle() - cycles_before;
  result.pe_steps = array.total_pe_steps() - steps_before;
  result.fault_activations =
      injector == nullptr ? 0 : injector->activations();
  return result;
}

}  // namespace saffire
