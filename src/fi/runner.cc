#include "fi/runner.h"

#include "fi/cone.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace saffire {
namespace {

// The physical array dataflow a run executes: the driver lowers IS onto the
// WS datapath with transposed operands (accel/driver.cc).
Dataflow LoweredDataflow(Dataflow dataflow) {
  return dataflow == Dataflow::kOutputStationary
             ? Dataflow::kOutputStationary
             : Dataflow::kWeightStationary;
}

}  // namespace

RunResult FiRunner::RunGolden(const WorkloadSpec& workload,
                              Dataflow dataflow) {
  return Run(workload, dataflow, nullptr);
}

RunResult FiRunner::RunFaulty(const WorkloadSpec& workload, Dataflow dataflow,
                              std::span<const FaultSpec> faults) {
  SAFFIRE_SPAN("fi.faulty_run");
  FaultInjector injector(std::vector<FaultSpec>(faults.begin(), faults.end()),
                         accel_.config().array);
  return Run(workload, dataflow, &injector);
}

RunResult FiRunner::RunGoldenRecorded(const WorkloadSpec& workload,
                                      Dataflow dataflow, GoldenTrace* trace) {
  SAFFIRE_SPAN("fi.golden_record");
  SystolicArray& array = accel_.array();
  array.BeginGoldenRecording(trace);
  RunResult result;
  try {
    result = Run(workload, dataflow, nullptr);
  } catch (...) {
    array.EndGoldenRecording();
    throw;
  }
  array.EndGoldenRecording();
  return result;
}

RunResult FiRunner::RunFaultyDifferential(const WorkloadSpec& workload,
                                          Dataflow dataflow,
                                          std::span<const FaultSpec> faults,
                                          const GoldenTrace& trace) {
  SAFFIRE_SPAN("fi.differential_run");
  FaultInjector injector(std::vector<FaultSpec>(faults.begin(), faults.end()),
                         accel_.config().array);
  ColumnCone cone;
  {
    SAFFIRE_SPAN("fi.cone_derive");
    cone = FaultCone(faults, LoweredDataflow(dataflow), accel_.config().array);
  }
  SystolicArray& array = accel_.array();
  array.BeginDifferential(cone, &trace);
  RunResult result;
  try {
    result = Run(workload, dataflow, &injector);
  } catch (...) {
    array.EndDifferential();
    throw;
  }
  array.EndDifferential();
  return result;
}

RunResult FiRunner::Run(const WorkloadSpec& workload, Dataflow dataflow,
                        FaultInjector* injector) {
  const MaterializedWorkload operands = Materialize(workload);
  ExecOptions options;
  options.dataflow = dataflow;
  options.conv_lowering = workload.lowering;

  SystolicArray& array = accel_.array();
  const std::int64_t cycles_before = array.cycle();
  const std::uint64_t steps_before = array.total_pe_steps();
  const std::uint64_t skipped_before = array.pe_steps_skipped();

  array.InstallFaultHook(injector);
  RunResult result;
  try {
    result.output = driver_.Gemm(operands.a, operands.b, options);
  } catch (...) {
    array.ClearFaultHook();
    throw;
  }
  array.ClearFaultHook();

  result.cycles = array.cycle() - cycles_before;
  result.pe_steps = array.total_pe_steps() - steps_before;
  result.pe_steps_skipped = array.pe_steps_skipped() - skipped_before;
  result.fault_activations =
      injector == nullptr ? 0 : injector->activations();

  // Aggregate per-run PE activity into the default registry at the run
  // boundary — the inner per-PE loops stay uninstrumented (see obs/trace.h
  // cost model). Handles resolve once per process.
  static obs::Counter& fi_runs = obs::MetricsRegistry::Default().GetCounter(
      "saffire.fi.runs", "simulator runs (golden + faulty)");
  static obs::Counter& fi_pe_steps =
      obs::MetricsRegistry::Default().GetCounter(
          "saffire.fi.pe_steps", "PE step evaluations across runs");
  static obs::Counter& fi_pe_steps_skipped =
      obs::MetricsRegistry::Default().GetCounter(
          "saffire.fi.pe_steps_skipped",
          "PE steps elided by the fault-cone differential engine");
  fi_runs.Increment();
  fi_pe_steps.Increment(static_cast<std::int64_t>(result.pe_steps));
  fi_pe_steps_skipped.Increment(
      static_cast<std::int64_t>(result.pe_steps_skipped));
  return result;
}

}  // namespace saffire
