// Static influence cone of a set of faults — which array columns a faulty
// run can differ from the golden run in.
//
// The cone is a *column* range because every inter-PE wire in the array runs
// either south (partial sums / streamed weights, within one column) or east
// (activations, across columns):
//
//   - kWeightOperand / kMulOut / kAdderOut / kSouthForward at PE(r, c)
//     corrupt the MAC result and the value travelling down column c; under
//     WS that reaches the column's south output, under OS the column's
//     accumulators and the forwarded weight chain. Either way the corruption
//     never leaves column c: the only eastbound wire is act_east, which
//     carries act_in unmodified. Cone: [c, c].
//
//   - kActForward at PE(r, c) corrupts the activation entering PE(r, c+1),
//     which propagates east through every subsequent act register and feeds
//     every MAC to the right. Cone: [c, cols − 1].
//
// The rule is identical for WS and OS because both dataflows share the
// physical wire topology (systolic/array.h); only the interpretation of the
// north operand differs. Input-stationary is lowered onto the WS datapath by
// the driver with transposed operands, and fault coordinates are expressed in
// physical array space (tests/patterns/predictor_is_test.cc), so IS callers
// pass the lowered dataflow.
//
// Columns outside the cone provably compute golden values in a faulty run —
// this is what makes differential execution (SystolicArray::BeginDifferential)
// sound, and it is the simulation-side face of the paper's determinism result
// (Sec. IV): a stuck-at at (r, c) yields the same contained corruption
// footprint on every run.
#pragma once

#include <span>

#include "fi/fault.h"
#include "systolic/golden_trace.h"

namespace saffire {

// Union of the per-fault cones. `faults` must be non-empty and `dataflow`
// must be a physical array dataflow (WS or OS; lower IS first).
ColumnCone FaultCone(std::span<const FaultSpec> faults, Dataflow dataflow,
                     const ArrayConfig& config);

}  // namespace saffire
