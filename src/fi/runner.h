// Executes one workload on the simulated accelerator, fault-free (golden)
// or with faults installed — the per-experiment engine of the paper's FI
// campaigns (Sec. III-B: "fault patterns are extracted by contrasting the
// output of the systolic array with and without FI").
#pragma once

#include <span>
#include <vector>

#include "accel/driver.h"
#include "fi/fault.h"
#include "fi/injector.h"
#include "fi/workload.h"

namespace saffire {

struct RunResult {
  // The GEMM-view output matrix (for convolutions: the lowered GEMM result,
  // before folding) — the space in which fault patterns are classified.
  Int32Tensor output{{1, 1}};
  // Accelerator cycles and PE evaluations consumed by this run — the basis
  // of the FI-cost comparison (the paper's 45 s GEMM vs 130 s conv).
  std::int64_t cycles = 0;
  std::uint64_t pe_steps = 0;
  // PE evaluations avoided by differential execution (0 for golden and
  // full faulty runs). pe_steps + pe_steps_skipped equals the pe_steps of
  // the equivalent full run.
  std::uint64_t pe_steps_skipped = 0;
  // Times the injected fault actually changed a signal value (0 for golden
  // runs; 0 in a faulty run means the fault was electrically masked).
  std::uint64_t fault_activations = 0;
};

class FiRunner {
 public:
  explicit FiRunner(const AccelConfig& config) : accel_(config), driver_(accel_) {}

  // Fault-free execution.
  RunResult RunGolden(const WorkloadSpec& workload, Dataflow dataflow);

  // Execution with the given fault(s) installed for the whole run. The
  // injector is installed before the first instruction and removed after
  // the last, so permanent faults span every tile invocation — the source
  // of the paper's multi-tile fault patterns.
  RunResult RunFaulty(const WorkloadSpec& workload, Dataflow dataflow,
                      std::span<const FaultSpec> faults);

  // Fault-free execution that additionally records the golden trace needed
  // by RunFaultyDifferential (see systolic/golden_trace.h). Bit-identical
  // to RunGolden in every RunResult field.
  RunResult RunGoldenRecorded(const WorkloadSpec& workload, Dataflow dataflow,
                              GoldenTrace* trace);

  // Faulty execution restricted to the faults' static influence cone
  // (fi/cone.h); array state outside the cone is replayed from `trace`,
  // which must have been recorded by RunGoldenRecorded on the same
  // workload/dataflow/configuration. Bit-identical to RunFaulty in output,
  // cycles, and fault_activations; pe_steps + pe_steps_skipped equals
  // RunFaulty's pe_steps (tests/fi/differential_test.cc).
  RunResult RunFaultyDifferential(const WorkloadSpec& workload,
                                  Dataflow dataflow,
                                  std::span<const FaultSpec> faults,
                                  const GoldenTrace& trace);

  // Lane-parallel batched faulty execution: simulates one independent
  // single-fault experiment per entry of `faults` by replaying `trace`
  // through a shared control-flow sweep (systolic/lane_grid.h) instead of
  // re-running the accelerator once per fault. `trace` and `golden` must
  // come from RunGoldenRecorded on the same workload/dataflow/configuration.
  //
  // Unlike the per-experiment entry points, transient `at_cycle` values are
  // *relative* strike offsets into the recorded run (the convention
  // PlanFaults samples in), not absolute simulator cycles.
  //
  // A pure replay: accelerator state and counters are untouched. Each
  // result is bit-identical to RunFaultyDifferential on the same fault —
  // including the pe_steps / pe_steps_skipped split, cycles (= golden), and
  // fault_activations (tests/fi/batch_test.cc).
  std::vector<RunResult> RunFaultyBatch(const WorkloadSpec& workload,
                                        Dataflow dataflow,
                                        std::span<const FaultSpec> faults,
                                        const GoldenTrace& trace,
                                        const RunResult& golden);

  // Closed-form faulty execution: emits the same per-fault results as
  // RunFaultyBatch without stepping the array at all, by propagating each
  // fault's algebraic corruption delta through the tile schedule (the
  // FLARE-style short circuit; see fi/predicted.cc for the derivation).
  // Only provably-exact combinations are accepted: permanent stuck-at
  // faults on the three PE-local signals (kWeightOperand / kMulOut /
  // kAdderOut) — the signals whose effect never crosses a forwarding chain.
  // Everything else must go through RunFaultyBatch (the campaign layer's
  // kPredicted rung routes the residue there automatically).
  //
  // Bit-identical to RunFaultyBatch in every RunResult field, including the
  // pe_steps / pe_steps_skipped split and fault_activations
  // (tests/patterns/campaign_predicted_test.cc).
  std::vector<RunResult> RunFaultyPredicted(const WorkloadSpec& workload,
                                            Dataflow dataflow,
                                            std::span<const FaultSpec> faults,
                                            const GoldenTrace& trace,
                                            const RunResult& golden);

  Accelerator& accel() { return accel_; }
  Driver& driver() { return driver_; }

 private:
  RunResult Run(const WorkloadSpec& workload, Dataflow dataflow,
                FaultInjector* injector);

  Accelerator accel_;
  Driver driver_;
};

}  // namespace saffire
