// Workload specifications for fault-injection campaigns: the operations of
// Table I plus the operand-fill policies used to address the paper's
// Challenge 2 (near-zero weights masking fault patterns, Sec. III-A).
#pragma once

#include <cstdint>
#include <string>

#include "accel/driver.h"
#include "common/rng.h"
#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace saffire {

enum class OpType : std::uint8_t { kGemm = 0, kConv = 1 };

std::string ToString(OpType op);

// Parses "GEMM"/"Conv" (or lowercase); throws std::invalid_argument on
// unknown names.
OpType OpTypeFromString(const std::string& name);

// Operand contents.
//   kOnes:     the paper's pattern-extraction workload — uniform all-ones
//              matrices so no fault is masked by zero products.
//   kRandom:   uniform INT8 values (a realistic quantized layer).
//   kNearZero: 90% zeros, the rest ±1 — the adversarial case of Challenge 2.
enum class OperandFill : std::uint8_t {
  kOnes = 0,
  kRandom = 1,
  kNearZero = 2,
};

std::string ToString(OperandFill fill);

// Parses "ones"/"random"/"near-zero" (plus the CLI shorthand "nearzero");
// throws std::invalid_argument on unknown names.
OperandFill OperandFillFromString(const std::string& name);

struct WorkloadSpec {
  std::string name;
  OpType op = OpType::kGemm;

  // GEMM dimensions (op == kGemm): C[m×n] = A[m×k]·B[k×n].
  std::int64_t m = 16;
  std::int64_t k = 16;
  std::int64_t n = 16;

  // Convolution parameters and lowering (op == kConv).
  ConvParams conv;
  ConvLowering lowering = ConvLowering::kShiftGemm;

  OperandFill input_fill = OperandFill::kOnes;
  OperandFill weight_fill = OperandFill::kOnes;
  std::uint64_t data_seed = 2023;

  void Validate() const;
  std::string ToString() const;

  // Dimensions of the GEMM actually executed (after lowering for conv) —
  // the space in which fault patterns are extracted and classified.
  std::int64_t GemmM() const;
  std::int64_t GemmK() const;
  std::int64_t GemmN() const;
};

// The GEMM operands the accelerator streams for this workload (lowered, for
// convolutions). Deterministic in spec.data_seed.
struct MaterializedWorkload {
  Int8Tensor a;
  Int8Tensor b;
};
MaterializedWorkload Materialize(const WorkloadSpec& spec);

// Fills a tensor per policy; deterministic in rng state.
Int8Tensor MakeOperand(std::vector<std::int64_t> shape, OperandFill fill,
                       Rng& rng);

// --- Table I presets -------------------------------------------------------
// RQ1/RQ2/RQ3 operation configurations on the 16×16 INT8 array.
WorkloadSpec Gemm16x16();                 // GEMM, 16×16 (untiled)
WorkloadSpec Gemm112x112();               // GEMM, 112×112 (tiled, RQ3)
WorkloadSpec Conv16Kernel3x3x3x3();       // conv, 16×16 input, K=3 (untiled)
WorkloadSpec Conv16Kernel3x3x3x8();       // conv, 16×16 input, K=8 (tiled)
WorkloadSpec Conv112Kernel3x3x3x8();      // conv, 112×112 input, K=8 (RQ3)

}  // namespace saffire
