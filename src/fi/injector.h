// The FaultHook implementation: intercepts MAC signals on the simulated
// array and applies the configured fault(s).
#pragma once

#include <cstdint>
#include <vector>

#include "fi/fault.h"
#include "systolic/fault_hook.h"

namespace saffire {

// Applies one or more FaultSpecs. A single spec is the paper's SSF model;
// multiple specs realize the MSF model it cites (Sec. II-F).
class FaultInjector : public FaultHook {
 public:
  FaultInjector(std::vector<FaultSpec> faults, const ArrayConfig& config);

  std::int64_t Apply(PeCoord pe, MacSignal signal, std::int64_t value,
                     std::int64_t cycle) override;
  bool AppliesTo(PeCoord pe) const override;

  const std::vector<FaultSpec>& faults() const { return faults_; }

  // Number of times a fault actually changed a signal value. A permanent
  // fault whose activations stay zero over a whole run was fully masked at
  // the hardware level.
  std::uint64_t activations() const { return activations_; }
  void ResetActivations() { activations_ = 0; }

 private:
  std::vector<FaultSpec> faults_;
  std::vector<int> widths_;  // per-fault signal width, precomputed
  std::uint64_t activations_ = 0;
};

}  // namespace saffire
