#include "fi/injector.h"

#include "common/check.h"

namespace saffire {

FaultInjector::FaultInjector(std::vector<FaultSpec> faults,
                             const ArrayConfig& config)
    : faults_(std::move(faults)) {
  SAFFIRE_CHECK_MSG(!faults_.empty(), "at least one fault required");
  widths_.reserve(faults_.size());
  for (const FaultSpec& fault : faults_) {
    fault.Validate(config);
    widths_.push_back(SignalWidth(fault.signal, config));
  }
}

std::int64_t FaultInjector::Apply(PeCoord pe, MacSignal signal,
                                  std::int64_t value, std::int64_t cycle) {
  std::int64_t out = value;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const FaultSpec& fault = faults_[i];
    if (fault.pe != pe || fault.signal != signal) continue;
    std::int64_t corrupted = out;
    if (fault.kind == FaultKind::kStuckAt) {
      corrupted = ApplyStuckAt(out, fault.bit, fault.polarity, widths_[i]);
    } else if (cycle == fault.at_cycle) {
      corrupted = FlipBit(out, fault.bit, widths_[i]);
    }
    if (corrupted != out) ++activations_;
    out = corrupted;
  }
  return out;
}

bool FaultInjector::AppliesTo(PeCoord pe) const {
  for (const FaultSpec& fault : faults_) {
    if (fault.pe == pe) return true;
  }
  return false;
}

}  // namespace saffire
