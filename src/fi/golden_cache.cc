#include "fi/golden_cache.h"

#include <sstream>

namespace saffire {

GoldenRunCache& GoldenRunCache::Instance() {
  static GoldenRunCache* cache = new GoldenRunCache();
  return *cache;
}

std::string GoldenRunCache::Key(const AccelConfig& config,
                                const WorkloadSpec& workload,
                                Dataflow dataflow) {
  // Serialize every field that feeds the simulation. WorkloadSpec::ToString
  // is a display string (it omits data_seed, among others), so the key
  // enumerates fields explicitly; `name` is excluded because it does not
  // affect the data.
  std::ostringstream key;
  key << config.array.rows << ',' << config.array.cols << ','
      << config.array.input_bits << ',' << config.array.acc_bits << ';'
      << config.spad_rows << ',' << config.acc_rows << ','
      << config.max_compute_rows << ',' << config.double_buffered_weights
      << ',' << config.dram_bytes << ';' << static_cast<int>(dataflow) << ';'
      << static_cast<int>(workload.op) << ',' << workload.m << ','
      << workload.k << ',' << workload.n << ';' << workload.conv.batch << ','
      << workload.conv.in_channels << ',' << workload.conv.height << ','
      << workload.conv.width << ',' << workload.conv.out_channels << ','
      << workload.conv.kernel_h << ',' << workload.conv.kernel_w << ','
      << workload.conv.stride << ',' << workload.conv.pad << ';'
      << static_cast<int>(workload.lowering) << ','
      << static_cast<int>(workload.input_fill) << ','
      << static_cast<int>(workload.weight_fill) << ',' << workload.data_seed;
  return key.str();
}

std::shared_ptr<const GoldenRunCache::Entry> GoldenRunCache::GetOrCompute(
    const AccelConfig& config, const WorkloadSpec& workload,
    Dataflow dataflow, bool* cache_hit) {
  const std::string key = Key(config, workload, dataflow);
  // Computed under the lock: concurrent workers asking for the same key
  // (the parallel-sweep startup pattern) block until the first one has
  // published the entry instead of duplicating the golden run.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++misses_;
  if (cache_hit != nullptr) *cache_hit = false;
  auto entry = std::make_shared<Entry>();
  FiRunner runner(config);
  entry->result = runner.RunGoldenRecorded(workload, dataflow, &entry->trace);
  std::shared_ptr<const Entry> published = std::move(entry);
  entries_.emplace(key, published);
  return published;
}

void GoldenRunCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::uint64_t GoldenRunCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t GoldenRunCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t GoldenRunCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace saffire
