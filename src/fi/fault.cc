#include "fi/fault.h"

#include <sstream>

#include "common/check.h"

namespace saffire {

std::string ToString(FaultKind kind) {
  return kind == FaultKind::kStuckAt ? "stuck-at" : "transient-flip";
}

FaultKind FaultKindFromString(const std::string& name) {
  if (name == "stuck-at" || name == "stuck") return FaultKind::kStuckAt;
  if (name == "transient-flip" || name == "transient") {
    return FaultKind::kTransientFlip;
  }
  SAFFIRE_CHECK_MSG(false, "unknown fault kind '" << name << "'");
}

void FaultSpec::Validate(const ArrayConfig& config) const {
  config.Validate();
  SAFFIRE_CHECK_MSG(pe.row >= 0 && pe.row < config.rows && pe.col >= 0 &&
                        pe.col < config.cols,
                    "PE (" << pe.row << ", " << pe.col << ") out of "
                           << config.ToString());
  const int width = SignalWidth(signal, config);
  SAFFIRE_CHECK_MSG(bit >= 0 && bit < width,
                    "bit " << bit << " outside " << saffire::ToString(signal)
                           << " width " << width);
  if (kind == FaultKind::kTransientFlip) {
    SAFFIRE_CHECK_MSG(at_cycle >= 0,
                      "transient fault needs at_cycle >= 0, got " << at_cycle);
  }
}

std::string FaultSpec::ToString() const {
  std::ostringstream os;
  if (kind == FaultKind::kStuckAt) {
    os << saffire::ToString(polarity);
  } else {
    os << "FLIP";
  }
  os << " bit" << bit << " " << saffire::ToString(signal) << " @PE(" << pe.row
     << "," << pe.col << ")";
  if (kind == FaultKind::kTransientFlip) os << " cy" << at_cycle;
  return os.str();
}

FaultSpec StuckAtAdder(PeCoord pe, int bit, StuckPolarity polarity) {
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.pe = pe;
  spec.signal = MacSignal::kAdderOut;
  spec.bit = bit;
  spec.polarity = polarity;
  return spec;
}

std::vector<PeCoord> AllPeCoords(const ArrayConfig& config) {
  config.Validate();
  std::vector<PeCoord> coords;
  coords.reserve(static_cast<std::size_t>(config.num_pes()));
  for (std::int32_t r = 0; r < config.rows; ++r) {
    for (std::int32_t c = 0; c < config.cols; ++c) {
      coords.push_back(PeCoord{r, c});
    }
  }
  return coords;
}

}  // namespace saffire
