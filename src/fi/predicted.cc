// FiRunner::RunFaultyPredicted: the algebraic short circuit under the
// campaign layer's kPredicted rung — per-fault results bit-identical to
// RunFaultyBatch, computed in closed form instead of stepping the array.
//
// Why this is exact (the FLARE observation, PAPERS.md): a permanent
// stuck-at on one of the PE-local signals (weight operand, multiplier
// output, adder output) perturbs the datapath only at its own MAC stage,
// and every value between that stage and a tile output flows through
// nothing but width-wrapped additions. A wrapped addition propagates an
// additive delta unchanged modulo 2^acc_bits, so the faulty tile output is
// the golden output plus a delta that depends only on the fault, the
// operands, and the schedule — no cycle-accurate stepping required.
//
// Weight-stationary (including IS, which the driver lowers onto the WS
// datapath with transposed operands): output wave i of fault column c is
// the partial-sum chain g_r(i) = wrap(g_{r−1}(i) + m_r(i)) down the column,
// with m_r(i) the product-wrapped a(i,r)·w(r,c). A fault at row R turns the
// collected value g_{rows−1}(i) into wrap(g_{rows−1}(i) + d(i)) with
//   d(i) = force(g_R(i)) − g_R(i)        (adder output),
//   d(i) = force(m_R(i)) − m_R(i)        (multiplier output),
//   d(i) = wrap_p(a·force(w)) − m_R(i)   (weight operand).
// The golden chain is computed once per (tile, column) and shared by every
// fault in that column. Activations count every step the masked value
// differs from the clean one: each row sees exactly its tile's me data
// waves plus (steps − me) idle steps whose chain and product values are 0.
//
// Output-stationary: the fault corrupts only the in-place accumulator of
// PE (R, c), whose per-step inputs are known analytically (the west value
// a(R, kk) and the north weight b(kk, c) meet at step t = kk + R + c), so
// one O(steps) scalar recurrence per (fault, tile) reproduces the drained
// value and the per-step activation count exactly — including the idle
// steps, where a stuck adder keeps re-forcing the accumulator.
//
// Per-(mi, ni) outputs accumulate across reduction tiles with the same
// uint32 wrap-add as AccumulatorMem::WriteBlock, mirroring fi/batch.cc.
#include <algorithm>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "fi/cone.h"
#include "fi/runner.h"
#include "obs/trace.h"
#include "systolic/timing.h"
#include "tensor/tiling.h"
#include "tensor/transpose.h"

namespace saffire {
namespace {

// SignExtend without the width checks (see lane_grid.cc): `shift` is
// 64 − width for a validated ArrayConfig width.
inline std::int64_t SxWide(std::int64_t value, int shift) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(value)
                                   << shift) >>
         shift;
}

Dataflow LoweredDataflow(Dataflow dataflow) {
  return dataflow == Dataflow::kOutputStationary
             ? Dataflow::kOutputStationary
             : Dataflow::kWeightStationary;
}

// One fault's stuck-at masking, pre-lowered exactly like the lane kernel's
// LaneFaultParams: force(v) = SxWide((v & and) | or, 64 − signal width).
struct ForceSpec {
  std::int64_t and_mask = -1;
  std::int64_t or_mask = 0;
  int sx_shift = 0;

  std::int64_t operator()(std::int64_t v) const {
    return SxWide((v & and_mask) | or_mask, sx_shift);
  }
};

// Folds one tile's faulty collected value (golden chain output + delta,
// re-wrapped at acc width) into the per-(mi, ni) accumulation cell with the
// same uint32 wrap-add as AccumulatorMem::WriteBlock / fi/batch.cc.
inline std::int32_t Accumulate(std::int32_t cell, std::int64_t faulty_wide,
                               std::int64_t ki, int sx_acc) {
  const auto value = static_cast<std::int32_t>(SxWide(faulty_wide, sx_acc));
  return ki > 0 ? static_cast<std::int32_t>(static_cast<std::uint32_t>(cell) +
                                            static_cast<std::uint32_t>(value))
                : value;
}

}  // namespace

std::vector<RunResult> FiRunner::RunFaultyPredicted(
    const WorkloadSpec& workload, Dataflow dataflow,
    std::span<const FaultSpec> faults, const GoldenTrace& trace,
    const RunResult& golden) {
  SAFFIRE_CHECK_MSG(!faults.empty(), "at least one fault required");
  const AccelConfig& config = accel_.config();
  const ArrayConfig& array = config.array;
  SAFFIRE_CHECK_MSG(trace.rows() == array.rows && trace.cols() == array.cols,
                    "trace recorded on " << trace.rows() << "x"
                                         << trace.cols());

  const Dataflow lowered = LoweredDataflow(dataflow);
  const bool ws = lowered == Dataflow::kWeightStationary;
  const bool transposed = dataflow == Dataflow::kInputStationary;

  const MaterializedWorkload operands = Materialize(workload);
  const Int8Tensor a = transposed ? Transpose(operands.b) : operands.a;
  const Int8Tensor b = transposed ? Transpose(operands.a) : operands.b;
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  const TileGrid grid = Driver::PlanTiles(m, n, k, config, lowered);
  SAFFIRE_CHECK_MSG(
      trace.checkpoints() == grid.total_tiles() + 1,
      "trace has " << trace.checkpoints() << " checkpoints for "
                   << grid.total_tiles()
                   << " tiles — workload/dataflow mismatch");
  SAFFIRE_CHECK_MSG(golden.output.rank() == 2 &&
                        golden.output.dim(0) == (transposed ? n : m) &&
                        golden.output.dim(1) == (transposed ? m : n),
                    "golden output " << golden.output.ShapeString());

  // Lower each fault, rejecting anything outside the provably-exact set.
  std::vector<ForceSpec> forces(faults.size());
  std::vector<std::uint64_t> activations(faults.size(), 0);
  for (std::size_t l = 0; l < faults.size(); ++l) {
    const FaultSpec& fault = faults[l];
    fault.Validate(array);
    SAFFIRE_CHECK_MSG(fault.kind == FaultKind::kStuckAt,
                      "predicted engine covers permanent stuck-at faults "
                      "only; transient faults are batch residue");
    SAFFIRE_CHECK_MSG(fault.signal == MacSignal::kWeightOperand ||
                          fault.signal == MacSignal::kMulOut ||
                          fault.signal == MacSignal::kAdderOut,
                      "predicted engine covers PE-local signals only, got "
                          << ToString(fault.signal));
    const ColumnCone cone =
        FaultCone(std::span<const FaultSpec>(&fault, 1), lowered, array);
    SAFFIRE_CHECK_MSG(cone.width() == 1 && cone.lo == fault.pe.col,
                      "PE-local fault must cone to its own column");
    const std::int64_t bit = std::int64_t{1} << fault.bit;
    if (fault.polarity == StuckPolarity::kStuckAt0) {
      forces[l].and_mask = ~bit;
    } else {
      forces[l].or_mask = bit;
    }
    forces[l].sx_shift = 64 - SignalWidth(fault.signal, array);
  }

  std::vector<RunResult> results(faults.size());
  for (RunResult& result : results) {
    result.output = golden.output;
    result.cycles = golden.cycles;
  }

  SAFFIRE_SPAN("fi.predict.closed_form");
  const int input_bits = array.input_bits;
  const int sx_prod = 64 - array.product_bits();
  const int sx_acc = 64 - array.acc_bits;
  const auto rows = static_cast<std::int64_t>(array.rows);

  std::int64_t step0 = 0;
  std::int64_t tile_index = 0;
  // Per-(mi, ni) accumulation across ki: WS tracks the fault column's me
  // values per fault, OS the single owned cell.
  std::vector<std::int32_t> acc_ws;
  std::vector<std::int32_t> acc_os;
  // Per-tile golden partial-sum chains, one per fault column, shared by
  // every fault in that column (g[r * me + i]); rebuilt lazily per tile.
  std::vector<std::vector<std::int64_t>> col_chain(
      static_cast<std::size_t>(array.cols));

  for (std::int64_t mi = 0; mi < grid.m_tiles(); ++mi) {
    const std::int64_t m0 = grid.RowStart(mi);
    const std::int64_t me = grid.TileRows(mi);
    for (std::int64_t ni = 0; ni < grid.n_tiles(); ++ni) {
      const std::int64_t n0 = grid.ColStart(ni);
      const std::int64_t ne = grid.TileCols(ni);
      acc_ws.assign(ws ? faults.size() * static_cast<std::size_t>(me) : 0, 0);
      acc_os.assign(ws ? 0 : faults.size(), 0);
      for (std::int64_t ki = 0; ki < grid.k_tiles(); ++ki) {
        const std::int64_t k0 = grid.DepthStart(ki);
        const std::int64_t ke = grid.TileDepth(ki);
        SAFFIRE_CHECK_MSG(trace.StepsAtCheckpoint(tile_index) == step0,
                          "tile " << tile_index << " starts at step "
                                  << trace.StepsAtCheckpoint(tile_index)
                                  << ", replay expected " << step0);
        const std::int64_t steps =
            ws ? WeightStationaryStreamCycles(me, array)
               : OutputStationaryStreamCycles(ke, array);
        SAFFIRE_CHECK_MSG(step0 + steps <= trace.steps(),
                          "replay overruns the recorded run");
        const Int8Tensor a_blk = ExtractTilePadded(a, m0, k0, me, ke, me, ke);
        const Int8Tensor b_blk = ExtractTilePadded(b, k0, n0, ke, ne, ke, ne);

        if (ws) {
          for (auto& chain : col_chain) chain.clear();
          for (std::size_t l = 0; l < faults.size(); ++l) {
            const FaultSpec& fault = faults[l];
            const ForceSpec& force = forces[l];
            const std::int64_t c = fault.pe.col;
            const std::int64_t rf = fault.pe.row;
            // Preloaded weight of the fault PE (0 outside the ke×ne block,
            // exactly like the scheduler's cleared preload).
            const std::int64_t w_val =
                (rf < ke && c < ne)
                    ? SignExtend(b_blk(rf, c), input_bits)
                    : 0;
            // The golden chain for this fault column, shared per tile.
            std::vector<std::int64_t>& chain =
                col_chain[static_cast<std::size_t>(c)];
            if (chain.empty()) {
              chain.assign(static_cast<std::size_t>(rows * me), 0);
              for (std::int64_t i = 0; i < me; ++i) {
                std::int64_t g = 0;
                for (std::int64_t r = 0; r < rows; ++r) {
                  if (r < ke) {
                    const std::int64_t w_rc =
                        (c < ne) ? SignExtend(b_blk(r, c), input_bits) : 0;
                    const std::int64_t mul = SxWide(
                        SignExtend(a_blk(i, r), input_bits) * w_rc, sx_prod);
                    g = SxWide(g + mul, sx_acc);
                  }
                  chain[static_cast<std::size_t>(r * me + i)] = g;
                }
              }
            }
            const std::int64_t* g_fault =
                chain.data() + static_cast<std::size_t>(rf * me);
            const std::int64_t* g_out =
                chain.data() + static_cast<std::size_t>((rows - 1) * me);

            std::int32_t* cell = acc_ws.data() + l * static_cast<std::size_t>(me);
            std::uint64_t activ = 0;
            switch (fault.signal) {
              case MacSignal::kWeightOperand: {
                const std::int64_t w_forced = force(w_val);
                // The weight operand is consumed every step, data or idle.
                activ += static_cast<std::uint64_t>(steps) *
                         static_cast<std::uint64_t>(w_forced != w_val);
                for (std::int64_t i = 0; i < me; ++i) {
                  const std::int64_t a_in =
                      rf < ke ? SignExtend(a_blk(i, rf), input_bits) : 0;
                  const std::int64_t d =
                      SxWide(a_in * w_forced, sx_prod) -
                      SxWide(a_in * w_val, sx_prod);
                  cell[i] = Accumulate(cell[i], g_out[i] + d, ki, sx_acc);
                }
                break;
              }
              case MacSignal::kMulOut: {
                const std::int64_t idle_forced = force(0);
                activ += static_cast<std::uint64_t>(steps - me) *
                         static_cast<std::uint64_t>(idle_forced != 0);
                for (std::int64_t i = 0; i < me; ++i) {
                  const std::int64_t a_in =
                      rf < ke ? SignExtend(a_blk(i, rf), input_bits) : 0;
                  const std::int64_t mul = SxWide(a_in * w_val, sx_prod);
                  const std::int64_t forced = force(mul);
                  activ += static_cast<std::uint64_t>(forced != mul);
                  cell[i] =
                      Accumulate(cell[i], g_out[i] + (forced - mul), ki,
                                 sx_acc);
                }
                break;
              }
              default: {  // kAdderOut (the constructor rejected the rest)
                const std::int64_t idle_forced = force(0);
                activ += static_cast<std::uint64_t>(steps - me) *
                         static_cast<std::uint64_t>(idle_forced != 0);
                for (std::int64_t i = 0; i < me; ++i) {
                  const std::int64_t g = g_fault[i];
                  const std::int64_t forced = force(g);
                  activ += static_cast<std::uint64_t>(forced != g);
                  cell[i] =
                      Accumulate(cell[i], g_out[i] + (forced - g), ki,
                                 sx_acc);
                }
                break;
              }
            }
            activations[l] += activ;
          }
        } else {
          for (std::size_t l = 0; l < faults.size(); ++l) {
            const FaultSpec& fault = faults[l];
            const ForceSpec& force = forces[l];
            const std::int64_t c = fault.pe.col;
            const std::int64_t rf = fault.pe.row;
            const bool in_col = c < ne;
            std::uint64_t activ = 0;
            std::int64_t acc = 0;
            for (std::int64_t t = 0; t < steps; ++t) {
              const std::int64_t kk = t - rf - c;
              const bool valid = kk >= 0 && kk < ke;
              const std::int64_t a_in =
                  (rf < me && valid)
                      ? SignExtend(a_blk(rf, kk), input_bits)
                      : 0;
              std::int64_t wop =
                  (in_col && valid) ? SignExtend(b_blk(kk, c), input_bits)
                                    : 0;
              if (fault.signal == MacSignal::kWeightOperand) {
                const std::int64_t forced = force(wop);
                activ += static_cast<std::uint64_t>(forced != wop);
                wop = forced;
              }
              std::int64_t mul = SxWide(a_in * wop, sx_prod);
              if (fault.signal == MacSignal::kMulOut) {
                const std::int64_t forced = force(mul);
                activ += static_cast<std::uint64_t>(forced != mul);
                mul = forced;
              }
              std::int64_t adder = SxWide(acc + mul, sx_acc);
              if (fault.signal == MacSignal::kAdderOut) {
                const std::int64_t forced = force(adder);
                activ += static_cast<std::uint64_t>(forced != adder);
                adder = forced;
              }
              acc = adder;
            }
            activations[l] += activ;
            if (rf < me && in_col) {
              std::int32_t& cell = acc_os[l];
              const auto value = static_cast<std::int32_t>(acc);
              cell = ki > 0 ? static_cast<std::int32_t>(
                                  static_cast<std::uint32_t>(cell) +
                                  static_cast<std::uint32_t>(value))
                            : value;
            }
          }
        }

        step0 += steps;
        ++tile_index;
      }

      // Write the accumulated faulty values back, as fi/batch.cc does.
      for (std::size_t l = 0; l < faults.size(); ++l) {
        const std::int64_t c = faults[l].pe.col;
        const std::int64_t rf = faults[l].pe.row;
        if (c >= ne) continue;
        if (ws) {
          for (std::int64_t i = 0; i < me; ++i) {
            const std::int32_t value =
                acc_ws[l * static_cast<std::size_t>(me) +
                       static_cast<std::size_t>(i)];
            if (transposed) {
              results[l].output(n0 + c, m0 + i) = value;
            } else {
              results[l].output(m0 + i, n0 + c) = value;
            }
          }
        } else if (rf < me) {
          results[l].output(m0 + rf, n0 + c) = acc_os[l];
        }
      }
    }
  }
  SAFFIRE_CHECK_MSG(step0 == trace.steps() &&
                        trace.StepsAtCheckpoint(grid.total_tiles()) == step0,
                    "closed form covered " << step0 << " of "
                                           << trace.steps()
                                           << " recorded steps");

  // The batch engine's counter split, reproduced exactly (cone width 1).
  const auto num_pes = static_cast<std::uint64_t>(array.num_pes());
  const auto total_steps = static_cast<std::uint64_t>(trace.steps());
  const auto active = static_cast<std::uint64_t>(array.rows);
  for (std::size_t l = 0; l < results.size(); ++l) {
    results[l].pe_steps = total_steps * active;
    results[l].pe_steps_skipped = total_steps * (num_pes - active);
    results[l].fault_activations = activations[l];
  }
  return results;
}

}  // namespace saffire
