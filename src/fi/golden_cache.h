// Process-wide cache of golden runs and their traces, keyed on everything
// that determines them: the accelerator configuration, the dataflow, and the
// full workload specification (including operand fills and the data seed).
//
// Campaign sweeps over fault sites / bits / polarities / signals re-execute
// the *same* fault-free workload for every configuration cell; Table 1 alone
// replays identical golden GEMMs hundreds of times. With the cache, each
// (workload, dataflow, config) triple is simulated fault-free exactly once
// per process and every subsequent campaign — including all workers of
// a parallel sweep — shares the recorded result and trace.
//
// Entries are immutable once published (shared_ptr<const Entry>), so workers
// replay from the trace concurrently without synchronization.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fi/runner.h"

namespace saffire {

class GoldenRunCache {
 public:
  struct Entry {
    RunResult result;
    GoldenTrace trace;
  };

  static GoldenRunCache& Instance();

  // Returns the cached golden run for (config, workload, dataflow),
  // computing and recording it on first use. If `cache_hit` is non-null it
  // is set to whether the entry was already present.
  std::shared_ptr<const Entry> GetOrCompute(const AccelConfig& config,
                                            const WorkloadSpec& workload,
                                            Dataflow dataflow,
                                            bool* cache_hit = nullptr);

  // Drops all entries and zeroes the counters (tests; memory pressure).
  void Clear();

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t entries() const;

 private:
  GoldenRunCache() = default;

  static std::string Key(const AccelConfig& config,
                         const WorkloadSpec& workload, Dataflow dataflow);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace saffire
