#include "fi/cone.h"

#include <algorithm>

#include "common/check.h"

namespace saffire {

ColumnCone FaultCone(std::span<const FaultSpec> faults, Dataflow dataflow,
                     const ArrayConfig& config) {
  SAFFIRE_CHECK_MSG(!faults.empty(), "cone of an empty fault set");
  SAFFIRE_CHECK_MSG(dataflow != Dataflow::kInputStationary,
                    "IS is lowered onto the WS datapath; pass the lowered "
                    "dataflow");
  (void)dataflow;  // WS and OS share the wire topology; same rule.
  ColumnCone cone{config.cols, -1};
  for (const FaultSpec& fault : faults) {
    fault.Validate(config);
    const std::int32_t c = fault.pe.col;
    const std::int32_t hi =
        fault.signal == MacSignal::kActForward ? config.cols - 1 : c;
    cone.lo = std::min(cone.lo, c);
    cone.hi = std::max(cone.hi, hi);
  }
  return cone;
}

}  // namespace saffire
