// FiRunner::RunFaultyBatch: lane-parallel batched faulty execution.
//
// One recorded golden run (fi/runner.h RunGoldenRecorded) is replayed once
// for W faults at a time: the driver's tile schedule is re-derived from the
// workload (Driver::PlanTiles — cross-checked against the trace's
// checkpoint structure), each tile's stimulus is computed once, and the
// lane-parallel grid (systolic/lane_grid.h) steps all W faulty machines
// through it. Everything the accelerator contributes around the array —
// DMA timing, scratchpad staging, accumulator read-modify-write, DRAM
// round-trips — is data-independent, so the replay reproduces it
// analytically: cycles are the golden run's, and the per-tile accumulation
// across reduction steps mirrors AccumulatorMem::WriteBlock's uint32
// wrap-add bit-for-bit.
#include <algorithm>
#include <optional>
#include <vector>

#include "common/check.h"
#include "fi/cone.h"
#include "fi/runner.h"
#include "obs/trace.h"
#include "systolic/lane_grid.h"
#include "systolic/timing.h"
#include "tensor/tiling.h"
#include "tensor/transpose.h"

namespace saffire {
namespace {

// The physical array dataflow a run executes (see runner.cc): the driver
// lowers IS onto the WS datapath with transposed operands.
Dataflow LoweredDataflow(Dataflow dataflow) {
  return dataflow == Dataflow::kOutputStationary
             ? Dataflow::kOutputStationary
             : Dataflow::kWeightStationary;
}

}  // namespace

std::vector<RunResult> FiRunner::RunFaultyBatch(
    const WorkloadSpec& workload, Dataflow dataflow,
    std::span<const FaultSpec> faults, const GoldenTrace& trace,
    const RunResult& golden) {
  SAFFIRE_CHECK_MSG(!faults.empty(), "at least one fault required");
  const AccelConfig& config = accel_.config();
  const ArrayConfig& array = config.array;
  SAFFIRE_CHECK_MSG(trace.rows() == array.rows && trace.cols() == array.cols,
                    "trace recorded on " << trace.rows() << "x"
                                         << trace.cols());

  const Dataflow lowered = LoweredDataflow(dataflow);
  const bool ws = lowered == Dataflow::kWeightStationary;
  const bool transposed = dataflow == Dataflow::kInputStationary;

  // The physical GEMM the accelerator executed (driver.cc).
  const MaterializedWorkload operands = Materialize(workload);
  const Int8Tensor a = transposed ? Transpose(operands.b) : operands.a;
  const Int8Tensor b = transposed ? Transpose(operands.a) : operands.b;
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  const TileGrid grid = Driver::PlanTiles(m, n, k, config, lowered);
  SAFFIRE_CHECK_MSG(
      trace.checkpoints() == grid.total_tiles() + 1,
      "trace has " << trace.checkpoints() << " checkpoints for "
                   << grid.total_tiles()
                   << " tiles — workload/dataflow mismatch");
  SAFFIRE_CHECK_MSG(golden.output.rank() == 2 &&
                        golden.output.dim(0) == (transposed ? n : m) &&
                        golden.output.dim(1) == (transposed ? m : n),
                    "golden output " << golden.output.ShapeString());

  // Lower each fault into the lane representation the kernel consumes.
  std::vector<LaneFaultParams> lanes;
  lanes.reserve(faults.size());
  std::vector<std::size_t> acc_base(faults.size(), 0);
  std::size_t total_width = 0;
  std::optional<LaneGrid> lane_grid;
  {
    SAFFIRE_SPAN("fi.batch.pack");
    for (const FaultSpec& fault : faults) {
      fault.Validate(array);
      LaneFaultParams lane;
      lane.pe = fault.pe;
      lane.signal = fault.signal;
      lane.cone =
          FaultCone(std::span<const FaultSpec>(&fault, 1), lowered, array);
      const std::int64_t bit = std::int64_t{1} << fault.bit;
      if (fault.kind == FaultKind::kStuckAt) {
        if (fault.polarity == StuckPolarity::kStuckAt0) {
          lane.and_mask = ~bit;
        } else {
          lane.or_mask = bit;
        }
      } else {
        SAFFIRE_CHECK_MSG(
            fault.at_cycle >= 0,
            "batched transient needs a relative strike offset, got "
                << fault.at_cycle);
        lane.xor_mask = bit;
        lane.strike_cycle = fault.at_cycle;
      }
      acc_base[lanes.size()] = total_width;
      total_width += static_cast<std::size_t>(lane.cone.width());
      lanes.push_back(lane);
    }
    lane_grid.emplace(array, lanes);
  }

  // Per-lane outputs start as the golden result: everything outside a
  // lane's cone provably matches the fault-free run.
  std::vector<RunResult> results(faults.size());
  for (RunResult& result : results) {
    result.output = golden.output;
    result.cycles = golden.cycles;
  }

  SAFFIRE_SPAN("fi.batch.replay");
  std::int64_t step0 = 0;
  std::int64_t tile_index = 0;
  std::vector<std::int64_t> rel_cycles;
  // Per-(mi, ni) accumulator planes over each lane's cone columns,
  // total_width × me, mirroring AccumulatorMem::WriteBlock across ki.
  std::vector<std::int32_t> acc;
  for (std::int64_t mi = 0; mi < grid.m_tiles(); ++mi) {
    const std::int64_t m0 = grid.RowStart(mi);
    const std::int64_t me = grid.TileRows(mi);
    for (std::int64_t ni = 0; ni < grid.n_tiles(); ++ni) {
      const std::int64_t n0 = grid.ColStart(ni);
      const std::int64_t ne = grid.TileCols(ni);
      acc.assign(total_width * static_cast<std::size_t>(me), 0);
      for (std::int64_t ki = 0; ki < grid.k_tiles(); ++ki) {
        const std::int64_t k0 = grid.DepthStart(ki);
        const std::int64_t ke = grid.TileDepth(ki);
        SAFFIRE_CHECK_MSG(trace.StepsAtCheckpoint(tile_index) == step0,
                          "tile " << tile_index << " starts at step "
                                  << trace.StepsAtCheckpoint(tile_index)
                                  << ", replay expected " << step0);
        const std::int64_t steps =
            ws ? WeightStationaryStreamCycles(me, array)
               : OutputStationaryStreamCycles(ke, array);
        SAFFIRE_CHECK_MSG(step0 + steps <= trace.steps(),
                          "replay overruns the recorded run");
        rel_cycles.resize(static_cast<std::size_t>(steps));
        for (std::int64_t t = 0; t < steps; ++t) {
          rel_cycles[static_cast<std::size_t>(t)] =
              trace.StepRelCycle(step0 + t);
        }
        const Int8Tensor a_blk = ExtractTilePadded(a, m0, k0, me, ke, me, ke);
        const Int8Tensor b_blk = ExtractTilePadded(b, k0, n0, ke, ne, ke, ne);
        if (ws) {
          lane_grid->RunTileWs(a_blk, b_blk, rel_cycles);
        } else {
          lane_grid->RunTileOs(a_blk, b_blk, rel_cycles);
        }
        for (std::size_t l = 0; l < lanes.size(); ++l) {
          const std::int64_t lo = lanes[l].cone.lo;
          const std::int64_t hi =
              std::min<std::int64_t>(lanes[l].cone.hi, ne - 1);
          for (std::int64_t c = lo; c <= hi; ++c) {
            const std::size_t col_base =
                (acc_base[l] + static_cast<std::size_t>(c - lo)) *
                static_cast<std::size_t>(me);
            for (std::int64_t i = 0; i < me; ++i) {
              const auto value = static_cast<std::int32_t>(
                  lane_grid->OutputAt(l, i, static_cast<std::int32_t>(c)));
              std::int32_t& cell = acc[col_base + static_cast<std::size_t>(i)];
              cell = ki > 0 ? static_cast<std::int32_t>(
                                  static_cast<std::uint32_t>(cell) +
                                  static_cast<std::uint32_t>(value))
                            : value;
            }
          }
        }
        step0 += steps;
        ++tile_index;
      }
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        const std::int64_t lo = lanes[l].cone.lo;
        const std::int64_t hi =
            std::min<std::int64_t>(lanes[l].cone.hi, ne - 1);
        for (std::int64_t c = lo; c <= hi; ++c) {
          const std::size_t col_base =
              (acc_base[l] + static_cast<std::size_t>(c - lo)) *
              static_cast<std::size_t>(me);
          for (std::int64_t i = 0; i < me; ++i) {
            const std::int32_t value =
                acc[col_base + static_cast<std::size_t>(i)];
            if (transposed) {
              results[l].output(n0 + c, m0 + i) = value;
            } else {
              results[l].output(m0 + i, n0 + c) = value;
            }
          }
        }
      }
    }
  }
  SAFFIRE_CHECK_MSG(step0 == trace.steps() &&
                        trace.StepsAtCheckpoint(grid.total_tiles()) == step0,
                    "replay covered " << step0 << " of " << trace.steps()
                                      << " recorded steps");

  // The differential engine's counter split, reproduced exactly: every
  // recorded Step evaluates rows × cone-width PEs and skips the rest.
  const auto num_pes = static_cast<std::uint64_t>(array.num_pes());
  const auto total_steps = static_cast<std::uint64_t>(trace.steps());
  for (std::size_t l = 0; l < results.size(); ++l) {
    const auto active = static_cast<std::uint64_t>(array.rows) *
                        static_cast<std::uint64_t>(lanes[l].cone.width());
    results[l].pe_steps = total_steps * active;
    results[l].pe_steps_skipped = total_steps * (num_pes - active);
    results[l].fault_activations = lane_grid->activations(l);
  }
  return results;
}

}  // namespace saffire
