#include "fi/workload.h"

#include <sstream>

#include "tensor/im2col.h"
#include "tensor/shift_gemm.h"

namespace saffire {

std::string ToString(OpType op) {
  return op == OpType::kGemm ? "GEMM" : "Conv";
}

OpType OpTypeFromString(const std::string& name) {
  if (name == "GEMM" || name == "gemm") return OpType::kGemm;
  if (name == "Conv" || name == "conv") return OpType::kConv;
  SAFFIRE_CHECK_MSG(false, "unknown op type '" << name << "'");
}

std::string ToString(OperandFill fill) {
  switch (fill) {
    case OperandFill::kOnes:
      return "ones";
    case OperandFill::kRandom:
      return "random";
    case OperandFill::kNearZero:
      return "near-zero";
  }
  return "unknown";
}

OperandFill OperandFillFromString(const std::string& name) {
  if (name == "ones") return OperandFill::kOnes;
  if (name == "random") return OperandFill::kRandom;
  if (name == "near-zero" || name == "nearzero") return OperandFill::kNearZero;
  SAFFIRE_CHECK_MSG(false, "unknown operand fill '" << name << "'");
}

void WorkloadSpec::Validate() const {
  if (op == OpType::kGemm) {
    SAFFIRE_CHECK_MSG(m > 0 && k > 0 && n > 0,
                      "GEMM dims " << m << "x" << k << "x" << n);
  } else {
    conv.Validate();
  }
}

std::string WorkloadSpec::ToString() const {
  std::ostringstream os;
  if (!name.empty()) os << name << ": ";
  if (op == OpType::kGemm) {
    os << "GEMM " << m << "x" << k << "x" << n;
  } else {
    os << conv.ToString() << " via " << saffire::ToString(lowering);
  }
  os << ", input=" << saffire::ToString(input_fill)
     << ", weights=" << saffire::ToString(weight_fill);
  return os.str();
}

std::int64_t WorkloadSpec::GemmM() const {
  if (op == OpType::kGemm) return m;
  return lowering == ConvLowering::kShiftGemm ? ShiftGemmRows(conv)
                                              : conv.gemm_rows();
}

std::int64_t WorkloadSpec::GemmK() const {
  if (op == OpType::kGemm) return k;
  return lowering == ConvLowering::kShiftGemm ? ShiftGemmInner(conv)
                                              : conv.gemm_inner();
}

std::int64_t WorkloadSpec::GemmN() const {
  if (op == OpType::kGemm) return n;
  return lowering == ConvLowering::kShiftGemm ? ShiftGemmCols(conv)
                                              : conv.gemm_cols();
}

Int8Tensor MakeOperand(std::vector<std::int64_t> shape, OperandFill fill,
                       Rng& rng) {
  Int8Tensor t(std::move(shape));
  switch (fill) {
    case OperandFill::kOnes:
      for (std::int64_t i = 0; i < t.size(); ++i) t.flat(i) = 1;
      break;
    case OperandFill::kRandom:
      for (std::int64_t i = 0; i < t.size(); ++i) {
        t.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
      }
      break;
    case OperandFill::kNearZero:
      for (std::int64_t i = 0; i < t.size(); ++i) {
        t.flat(i) = rng.Bernoulli(0.1)
                        ? static_cast<std::int8_t>(rng.Bernoulli(0.5) ? 1 : -1)
                        : std::int8_t{0};
      }
      break;
  }
  return t;
}

MaterializedWorkload Materialize(const WorkloadSpec& spec) {
  spec.Validate();
  Rng rng(spec.data_seed);
  if (spec.op == OpType::kGemm) {
    auto a = MakeOperand({spec.m, spec.k}, spec.input_fill, rng);
    auto b = MakeOperand({spec.k, spec.n}, spec.weight_fill, rng);
    return MaterializedWorkload{std::move(a), std::move(b)};
  }
  const ConvParams& p = spec.conv;
  const auto input = MakeOperand({p.batch, p.in_channels, p.height, p.width},
                                 spec.input_fill, rng);
  const auto kernel =
      MakeOperand({p.out_channels, p.in_channels, p.kernel_h, p.kernel_w},
                  spec.weight_fill, rng);
  if (spec.lowering == ConvLowering::kShiftGemm) {
    return MaterializedWorkload{ShiftGemmLowerInput(input, p),
                                ShiftGemmLowerKernel(kernel, p)};
  }
  return MaterializedWorkload{Im2Col(input, p), FlattenKernel(kernel, p)};
}

namespace {

ConvParams PaperConv(std::int64_t hw, std::int64_t out_channels) {
  ConvParams p;
  p.batch = 1;
  p.in_channels = 3;
  p.height = hw;
  p.width = hw;
  p.out_channels = out_channels;
  p.kernel_h = 3;
  p.kernel_w = 3;
  p.stride = 1;
  p.pad = 0;
  return p;
}

}  // namespace

WorkloadSpec Gemm16x16() {
  WorkloadSpec spec;
  spec.name = "gemm-16x16";
  spec.op = OpType::kGemm;
  spec.m = spec.k = spec.n = 16;
  return spec;
}

WorkloadSpec Gemm112x112() {
  WorkloadSpec spec;
  spec.name = "gemm-112x112";
  spec.op = OpType::kGemm;
  spec.m = spec.k = spec.n = 112;
  return spec;
}

WorkloadSpec Conv16Kernel3x3x3x3() {
  WorkloadSpec spec;
  spec.name = "conv-16x16-3x3x3x3";
  spec.op = OpType::kConv;
  spec.conv = PaperConv(16, 3);
  return spec;
}

WorkloadSpec Conv16Kernel3x3x3x8() {
  WorkloadSpec spec;
  spec.name = "conv-16x16-3x3x3x8";
  spec.op = OpType::kConv;
  spec.conv = PaperConv(16, 8);
  return spec;
}

WorkloadSpec Conv112Kernel3x3x3x8() {
  WorkloadSpec spec;
  spec.name = "conv-112x112-3x3x3x8";
  spec.op = OpType::kConv;
  spec.conv = PaperConv(112, 8);
  return spec;
}

}  // namespace saffire
