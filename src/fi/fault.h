// Fault specification: what to inject, where, and when.
//
// The paper's fault model (Sec. II-E/F): a single permanent stuck-at fault
// on an intermediate MAC signal — specifically the adder output, before the
// accumulator register — in one randomly (or exhaustively) chosen MAC unit.
// The framework generalizes along the axes the paper names as comparisons
// or future work: transient single-bit flips (the Rech et al. contrast) and
// multiple simultaneous stuck-at faults (the MSF model of Zhang et al.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "systolic/config.h"
#include "systolic/signals.h"

namespace saffire {

enum class FaultKind : std::uint8_t {
  kStuckAt = 0,        // permanent: applies on every cycle
  kTransientFlip = 1,  // transient: inverts the bit on exactly one cycle
};

std::string ToString(FaultKind kind);

// Parses "stuck-at"/"transient-flip" (plus the CLI shorthands
// "stuck"/"transient"); throws std::invalid_argument on unknown names.
FaultKind FaultKindFromString(const std::string& name);

struct FaultSpec {
  FaultKind kind = FaultKind::kStuckAt;
  PeCoord pe;
  MacSignal signal = MacSignal::kAdderOut;
  int bit = 0;
  StuckPolarity polarity = StuckPolarity::kStuckAt1;  // stuck-at only
  std::int64_t at_cycle = -1;  // transient only: the global cycle to strike

  // Validates coordinates and bit position against the array configuration;
  // throws std::invalid_argument on violation.
  void Validate(const ArrayConfig& config) const;

  // e.g. "SA1 bit8 adder_out @PE(4,9)" or "FLIP bit3 mul_out @PE(0,0) cy120".
  std::string ToString() const;

  bool operator==(const FaultSpec&) const = default;
};

// Constructs the paper's canonical fault: a stuck-at on the adder output of
// one PE.
FaultSpec StuckAtAdder(PeCoord pe, int bit, StuckPolarity polarity);

// All PE coordinates of an array in row-major order — the exhaustive site
// list of the paper's 256-experiment campaigns.
std::vector<PeCoord> AllPeCoords(const ArrayConfig& config);

}  // namespace saffire
