// Matrix transposition, used by the input-stationary dataflow (which runs
// the weight-stationary datapath on transposed operands) and by ABFT
// checksum construction.
#pragma once

#include "tensor/tensor.h"

namespace saffire {

template <typename T>
Tensor<T> Transpose(const Tensor<T>& matrix) {
  SAFFIRE_CHECK_MSG(matrix.rank() == 2,
                    "transpose requires rank 2, got " << matrix.ShapeString());
  Tensor<T> out({matrix.dim(1), matrix.dim(0)});
  for (std::int64_t r = 0; r < matrix.dim(0); ++r) {
    for (std::int64_t c = 0; c < matrix.dim(1); ++c) {
      out(c, r) = matrix(r, c);
    }
  }
  return out;
}

}  // namespace saffire
