// Reference (CPU, non-systolic) GEMM used as the golden model for fault
// injection and as the correctness oracle for the cycle-accurate simulator.
#pragma once

#include "tensor/tensor.h"

namespace saffire {

// C[M×N] = A[M×K] · B[K×N] with INT8 operands and INT32 accumulation —
// exactly the arithmetic the simulated array performs. Inner products are
// accumulated left-to-right in k order, matching the row-by-row accumulation
// order of the weight-stationary array (intermediate psum after row r equals
// the prefix sum over k ≤ r), so golden and simulated intermediate values
// are comparable bit-for-bit.
Int32Tensor GemmRef(const Int8Tensor& a, const Int8Tensor& b);

// C += A · B for INT32 accumulators; used when summing tile contributions
// along the K dimension (Sec. II-C, Eq. 4).
void GemmAccumulateRef(const Int8Tensor& a, const Int8Tensor& b,
                       Int32Tensor& c);

// Float GEMM for the DNN training path (not accelerated).
FloatTensor GemmRef(const FloatTensor& a, const FloatTensor& b);

}  // namespace saffire
