// Operation tiling (Sec. II-C): decomposition of a GEMM that exceeds the
// systolic array dimensions into array-sized tiles.
//
// A C[M×N] = A[M×K]·B[K×N] problem on an array of `tile_m × tile_n` PEs with
// a depth budget of `tile_k` becomes an (m_tiles × n_tiles × k_tiles) grid;
// tile (mi, ni) of C is the sum over ki of A-tile(mi, ki) · B-tile(ki, ni) —
// Eq. (4) in the paper. Edge tiles are zero-padded to the full tile shape,
// which is what the real hardware does (zeros stream through the same PEs),
// so fault sites are exercised identically on ragged edges.
//
// The same grid arithmetic is reused by the analytical fault-pattern
// predictor: a faulty PE at (r, c) touches output coordinates
// {(r + mi·tile_m, c + ni·tile_n)} (output stationary) or columns
// {c + ni·tile_n} (weight stationary) across all tiles — the paper's
// "multi-tile" pattern classes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace saffire {

std::int64_t CeilDiv(std::int64_t numerator, std::int64_t denominator);

struct TileCoord {
  std::int64_t mi = 0;  // tile row index (M direction)
  std::int64_t ni = 0;  // tile col index (N direction)
  std::int64_t ki = 0;  // reduction tile index (K direction)
};

class TileGrid {
 public:
  // Dimensions of the full problem and of one tile. All must be positive.
  TileGrid(std::int64_t m, std::int64_t n, std::int64_t k, std::int64_t tile_m,
           std::int64_t tile_n, std::int64_t tile_k);

  std::int64_t m() const { return m_; }
  std::int64_t n() const { return n_; }
  std::int64_t k() const { return k_; }
  std::int64_t tile_m() const { return tile_m_; }
  std::int64_t tile_n() const { return tile_n_; }
  std::int64_t tile_k() const { return tile_k_; }

  std::int64_t m_tiles() const { return m_tiles_; }
  std::int64_t n_tiles() const { return n_tiles_; }
  std::int64_t k_tiles() const { return k_tiles_; }
  std::int64_t total_tiles() const { return m_tiles_ * n_tiles_ * k_tiles_; }

  // True when the problem fits in a single tile (no tiling effect; the
  // paper's 16×16-on-16×16 configurations).
  bool untiled() const { return total_tiles() == 1; }

  // Extent of a specific tile; interior tiles are full-sized, edge tiles
  // carry the remainder.
  std::int64_t TileRows(std::int64_t mi) const;   // rows of A/C tile mi
  std::int64_t TileCols(std::int64_t ni) const;   // cols of B/C tile ni
  std::int64_t TileDepth(std::int64_t ki) const;  // reduction extent of ki

  // First row/col/depth coordinate covered by a tile.
  std::int64_t RowStart(std::int64_t mi) const;
  std::int64_t ColStart(std::int64_t ni) const;
  std::int64_t DepthStart(std::int64_t ki) const;

  // Enumerates all tiles in the execution order used by the driver:
  // for each (mi, ni) output tile, all ki reduction steps consecutively —
  // the order in which a weight-stationary accelerator revisits the same
  // physical PEs.
  std::vector<TileCoord> EnumerateTiles() const;

  std::string ToString() const;

 private:
  std::int64_t m_, n_, k_;
  std::int64_t tile_m_, tile_n_, tile_k_;
  std::int64_t m_tiles_, n_tiles_, k_tiles_;
};

// Copies the `rows × cols` region of `source` starting at (row0, col0) into
// a zero-padded `padded_rows × padded_cols` tile.
Int8Tensor ExtractTilePadded(const Int8Tensor& source, std::int64_t row0,
                             std::int64_t col0, std::int64_t rows,
                             std::int64_t cols, std::int64_t padded_rows,
                             std::int64_t padded_cols);

// Adds the top-left `rows × cols` region of `tile` into `dest` at
// (row0, col0). Padding rows/cols of the tile are ignored.
void AccumulateTile(const Int32Tensor& tile, std::int64_t row0,
                    std::int64_t col0, std::int64_t rows, std::int64_t cols,
                    Int32Tensor& dest);

}  // namespace saffire
