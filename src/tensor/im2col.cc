#include "tensor/im2col.h"

namespace saffire {

Int8Tensor Im2Col(const Int8Tensor& input, const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(input.rank() == 4 && input.dim(0) == params.batch &&
                        input.dim(1) == params.in_channels &&
                        input.dim(2) == params.height &&
                        input.dim(3) == params.width,
                    "input shape " << input.ShapeString() << " vs "
                                   << params.ToString());
  const std::int64_t out_h = params.out_height();
  const std::int64_t out_w = params.out_width();
  Int8Tensor patches({params.gemm_rows(), params.gemm_inner()});
  std::int64_t row = 0;
  for (std::int64_t n = 0; n < params.batch; ++n) {
    for (std::int64_t p = 0; p < out_h; ++p) {
      for (std::int64_t q = 0; q < out_w; ++q, ++row) {
        std::int64_t col = 0;
        for (std::int64_t c = 0; c < params.in_channels; ++c) {
          for (std::int64_t r = 0; r < params.kernel_h; ++r) {
            for (std::int64_t s = 0; s < params.kernel_w; ++s, ++col) {
              const std::int64_t h = p * params.stride + r - params.pad;
              const std::int64_t w = q * params.stride + s - params.pad;
              if (h < 0 || h >= params.height || w < 0 || w >= params.width) {
                patches(row, col) = 0;  // zero padding
              } else {
                patches(row, col) = input(n, c, h, w);
              }
            }
          }
        }
      }
    }
  }
  return patches;
}

Int8Tensor FlattenKernel(const Int8Tensor& kernel, const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(kernel.rank() == 4 && kernel.dim(0) == params.out_channels &&
                        kernel.dim(1) == params.in_channels &&
                        kernel.dim(2) == params.kernel_h &&
                        kernel.dim(3) == params.kernel_w,
                    "kernel shape " << kernel.ShapeString() << " vs "
                                    << params.ToString());
  Int8Tensor flat({params.gemm_inner(), params.gemm_cols()});
  for (std::int64_t k = 0; k < params.out_channels; ++k) {
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < params.in_channels; ++c) {
      for (std::int64_t r = 0; r < params.kernel_h; ++r) {
        for (std::int64_t s = 0; s < params.kernel_w; ++s, ++row) {
          flat(row, k) = kernel(k, c, r, s);
        }
      }
    }
  }
  return flat;
}

Int32Tensor FoldGemmOutput(const Int32Tensor& gemm_out,
                           const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(gemm_out.rank() == 2 &&
                        gemm_out.dim(0) == params.gemm_rows() &&
                        gemm_out.dim(1) == params.gemm_cols(),
                    "gemm output shape " << gemm_out.ShapeString() << " vs "
                                         << params.ToString());
  const std::int64_t out_h = params.out_height();
  const std::int64_t out_w = params.out_width();
  Int32Tensor output({params.batch, params.out_channels, out_h, out_w});
  std::int64_t row = 0;
  for (std::int64_t n = 0; n < params.batch; ++n) {
    for (std::int64_t p = 0; p < out_h; ++p) {
      for (std::int64_t q = 0; q < out_w; ++q, ++row) {
        for (std::int64_t k = 0; k < params.out_channels; ++k) {
          output(n, k, p, q) = gemm_out(row, k);
        }
      }
    }
  }
  return output;
}

ConvOutputCoord GemmCoordToConvCoord(std::int64_t row, std::int64_t col,
                                     const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(row >= 0 && row < params.gemm_rows(), "row=" << row);
  SAFFIRE_CHECK_MSG(col >= 0 && col < params.gemm_cols(), "col=" << col);
  const std::int64_t out_h = params.out_height();
  const std::int64_t out_w = params.out_width();
  ConvOutputCoord coord;
  coord.k = col;
  coord.q = row % out_w;
  coord.p = (row / out_w) % out_h;
  coord.n = row / (out_w * out_h);
  return coord;
}

}  // namespace saffire
