// 2-D convolution: parameter bookkeeping and the direct reference
// implementation used as the golden model.
//
// Notation follows the paper (Sec. II-B): input is N×C×H×W, the kernel is
// K×C×R×S (K output channels, R×S spatial extent), and the output is
// N×K×P×Q with P/Q the output height/width.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace saffire {

struct ConvParams {
  std::int64_t batch = 1;        // N
  std::int64_t in_channels = 1;  // C
  std::int64_t height = 1;       // H
  std::int64_t width = 1;        // W
  std::int64_t out_channels = 1; // K
  std::int64_t kernel_h = 1;     // R
  std::int64_t kernel_w = 1;     // S
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  // Output spatial dimensions: P = (H + 2·pad − R)/stride + 1, similarly Q.
  std::int64_t out_height() const;  // P
  std::int64_t out_width() const;   // Q

  // Dimensions of the lowered GEMM (Sec. II-B): the convolution becomes
  // C[NPQ × K] = A[NPQ × CRS] · W[CRS × K].
  std::int64_t gemm_rows() const;  // N·P·Q
  std::int64_t gemm_inner() const; // C·R·S
  std::int64_t gemm_cols() const;  // K

  // Throws std::invalid_argument if the configuration is degenerate
  // (non-positive dims, kernel larger than padded input, ...).
  void Validate() const;

  // e.g. "conv N1 C3 H16 W16 K8 R3 S3 s1 p0" for reports.
  std::string ToString() const;
};

// Returns the paper's shorthand kernel description "R×S×C×K", e.g.
// "3x3x3x8" for Table I.
std::string KernelShorthand(const ConvParams& params);

// Direct (non-lowered) convolution; INT8 operands, INT32 accumulation.
// input: N×C×H×W, kernel: K×C×R×S → output: N×K×P×Q.
Int32Tensor ConvRef(const Int8Tensor& input, const Int8Tensor& kernel,
                    const ConvParams& params);

}  // namespace saffire
