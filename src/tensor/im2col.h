// im2col lowering of convolution to GEMM (Sec. II-B), the scheme used by
// cuDNN and by Gemmini's software stack.
//
// The paper lowers the convolution so that the output matrix is NPQ × K and
// "each output channel is mapped to each column of the systolic array"
// (Sec. IV-A2). We therefore lower to
//
//     C[NPQ × K] = A[NPQ × CRS] · W[CRS × K]
//
// with the CRS axis ordered channel-major (index = c·R·S + r·S + s) and the
// NPQ axis ordered (n, p, q). With the weight-stationary dataflow, W is the
// preloaded operand, so a fault in array column j corrupts output channel j
// — this mapping is what produces the paper's single-channel fault class.
#pragma once

#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace saffire {

// Lowers the N×C×H×W input into the A[NPQ × CRS] patch matrix.
Int8Tensor Im2Col(const Int8Tensor& input, const ConvParams& params);

// Lowers the K×C×R×S kernel into the W[CRS × K] weight matrix.
Int8Tensor FlattenKernel(const Int8Tensor& kernel, const ConvParams& params);

// Folds the C[NPQ × K] GEMM result back into the N×K×P×Q output tensor.
Int32Tensor FoldGemmOutput(const Int32Tensor& gemm_out,
                           const ConvParams& params);

// Inverse bookkeeping of FoldGemmOutput: maps a (row, col) coordinate of the
// lowered NPQ×K output matrix to the (n, k, p, q) coordinate of the
// convolution output. Used by the fault-pattern analysis to express matrix
// corruptions in channel terms.
struct ConvOutputCoord {
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::int64_t p = 0;
  std::int64_t q = 0;
};
ConvOutputCoord GemmCoordToConvCoord(std::int64_t row, std::int64_t col,
                                     const ConvParams& params);

}  // namespace saffire
