#include "tensor/conv.h"

#include <sstream>

namespace saffire {

std::int64_t ConvParams::out_height() const {
  return (height + 2 * pad - kernel_h) / stride + 1;
}

std::int64_t ConvParams::out_width() const {
  return (width + 2 * pad - kernel_w) / stride + 1;
}

std::int64_t ConvParams::gemm_rows() const {
  return batch * out_height() * out_width();
}

std::int64_t ConvParams::gemm_inner() const {
  return in_channels * kernel_h * kernel_w;
}

std::int64_t ConvParams::gemm_cols() const { return out_channels; }

void ConvParams::Validate() const {
  SAFFIRE_CHECK_MSG(batch > 0, "N=" << batch);
  SAFFIRE_CHECK_MSG(in_channels > 0, "C=" << in_channels);
  SAFFIRE_CHECK_MSG(height > 0 && width > 0,
                    "H=" << height << " W=" << width);
  SAFFIRE_CHECK_MSG(out_channels > 0, "K=" << out_channels);
  SAFFIRE_CHECK_MSG(kernel_h > 0 && kernel_w > 0,
                    "R=" << kernel_h << " S=" << kernel_w);
  SAFFIRE_CHECK_MSG(stride > 0, "stride=" << stride);
  SAFFIRE_CHECK_MSG(pad >= 0, "pad=" << pad);
  SAFFIRE_CHECK_MSG(kernel_h <= height + 2 * pad,
                    "kernel taller than padded input");
  SAFFIRE_CHECK_MSG(kernel_w <= width + 2 * pad,
                    "kernel wider than padded input");
}

std::string ConvParams::ToString() const {
  std::ostringstream os;
  os << "conv N" << batch << " C" << in_channels << " H" << height << " W"
     << width << " K" << out_channels << " R" << kernel_h << " S" << kernel_w
     << " s" << stride << " p" << pad;
  return os.str();
}

std::string KernelShorthand(const ConvParams& params) {
  std::ostringstream os;
  os << params.kernel_h << "x" << params.kernel_w << "x" << params.in_channels
     << "x" << params.out_channels;
  return os.str();
}

Int32Tensor ConvRef(const Int8Tensor& input, const Int8Tensor& kernel,
                    const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(input.rank() == 4 && input.dim(0) == params.batch &&
                        input.dim(1) == params.in_channels &&
                        input.dim(2) == params.height &&
                        input.dim(3) == params.width,
                    "input shape " << input.ShapeString() << " vs "
                                   << params.ToString());
  SAFFIRE_CHECK_MSG(kernel.rank() == 4 && kernel.dim(0) == params.out_channels &&
                        kernel.dim(1) == params.in_channels &&
                        kernel.dim(2) == params.kernel_h &&
                        kernel.dim(3) == params.kernel_w,
                    "kernel shape " << kernel.ShapeString() << " vs "
                                    << params.ToString());
  const std::int64_t out_h = params.out_height();
  const std::int64_t out_w = params.out_width();
  Int32Tensor output({params.batch, params.out_channels, out_h, out_w});
  for (std::int64_t n = 0; n < params.batch; ++n) {
    for (std::int64_t k = 0; k < params.out_channels; ++k) {
      for (std::int64_t p = 0; p < out_h; ++p) {
        for (std::int64_t q = 0; q < out_w; ++q) {
          std::int32_t acc = 0;
          for (std::int64_t c = 0; c < params.in_channels; ++c) {
            for (std::int64_t r = 0; r < params.kernel_h; ++r) {
              for (std::int64_t s = 0; s < params.kernel_w; ++s) {
                const std::int64_t h = p * params.stride + r - params.pad;
                const std::int64_t w = q * params.stride + s - params.pad;
                if (h < 0 || h >= params.height || w < 0 ||
                    w >= params.width) {
                  continue;  // zero padding contributes nothing
                }
                acc += static_cast<std::int32_t>(input(n, c, h, w)) *
                       static_cast<std::int32_t>(kernel(k, c, r, s));
              }
            }
          }
          output(n, k, p, q) = acc;
        }
      }
    }
  }
  return output;
}

}  // namespace saffire
