#include "tensor/tiling.h"

#include <sstream>

namespace saffire {

std::int64_t CeilDiv(std::int64_t numerator, std::int64_t denominator) {
  SAFFIRE_CHECK_MSG(denominator > 0, "denominator=" << denominator);
  SAFFIRE_CHECK_MSG(numerator >= 0, "numerator=" << numerator);
  return (numerator + denominator - 1) / denominator;
}

TileGrid::TileGrid(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::int64_t tile_m, std::int64_t tile_n,
                   std::int64_t tile_k)
    : m_(m), n_(n), k_(k), tile_m_(tile_m), tile_n_(tile_n), tile_k_(tile_k) {
  SAFFIRE_CHECK_MSG(m > 0 && n > 0 && k > 0,
                    "m=" << m << " n=" << n << " k=" << k);
  SAFFIRE_CHECK_MSG(tile_m > 0 && tile_n > 0 && tile_k > 0,
                    "tile_m=" << tile_m << " tile_n=" << tile_n
                              << " tile_k=" << tile_k);
  m_tiles_ = CeilDiv(m, tile_m);
  n_tiles_ = CeilDiv(n, tile_n);
  k_tiles_ = CeilDiv(k, tile_k);
}

std::int64_t TileGrid::TileRows(std::int64_t mi) const {
  SAFFIRE_CHECK_MSG(mi >= 0 && mi < m_tiles_, "mi=" << mi);
  return std::min(tile_m_, m_ - mi * tile_m_);
}

std::int64_t TileGrid::TileCols(std::int64_t ni) const {
  SAFFIRE_CHECK_MSG(ni >= 0 && ni < n_tiles_, "ni=" << ni);
  return std::min(tile_n_, n_ - ni * tile_n_);
}

std::int64_t TileGrid::TileDepth(std::int64_t ki) const {
  SAFFIRE_CHECK_MSG(ki >= 0 && ki < k_tiles_, "ki=" << ki);
  return std::min(tile_k_, k_ - ki * tile_k_);
}

std::int64_t TileGrid::RowStart(std::int64_t mi) const {
  SAFFIRE_CHECK_MSG(mi >= 0 && mi < m_tiles_, "mi=" << mi);
  return mi * tile_m_;
}

std::int64_t TileGrid::ColStart(std::int64_t ni) const {
  SAFFIRE_CHECK_MSG(ni >= 0 && ni < n_tiles_, "ni=" << ni);
  return ni * tile_n_;
}

std::int64_t TileGrid::DepthStart(std::int64_t ki) const {
  SAFFIRE_CHECK_MSG(ki >= 0 && ki < k_tiles_, "ki=" << ki);
  return ki * tile_k_;
}

std::vector<TileCoord> TileGrid::EnumerateTiles() const {
  std::vector<TileCoord> tiles;
  tiles.reserve(static_cast<std::size_t>(total_tiles()));
  for (std::int64_t mi = 0; mi < m_tiles_; ++mi) {
    for (std::int64_t ni = 0; ni < n_tiles_; ++ni) {
      for (std::int64_t ki = 0; ki < k_tiles_; ++ki) {
        tiles.push_back(TileCoord{mi, ni, ki});
      }
    }
  }
  return tiles;
}

std::string TileGrid::ToString() const {
  std::ostringstream os;
  os << "TileGrid(" << m_ << "x" << n_ << "x" << k_ << " in " << tile_m_
     << "x" << tile_n_ << "x" << tile_k_ << " tiles => " << m_tiles_ << "x"
     << n_tiles_ << "x" << k_tiles_ << ")";
  return os.str();
}

Int8Tensor ExtractTilePadded(const Int8Tensor& source, std::int64_t row0,
                             std::int64_t col0, std::int64_t rows,
                             std::int64_t cols, std::int64_t padded_rows,
                             std::int64_t padded_cols) {
  SAFFIRE_CHECK(source.rank() == 2);
  SAFFIRE_CHECK_MSG(rows > 0 && cols > 0 && rows <= padded_rows &&
                        cols <= padded_cols,
                    "rows=" << rows << " cols=" << cols);
  SAFFIRE_CHECK_MSG(row0 >= 0 && row0 + rows <= source.dim(0) && col0 >= 0 &&
                        col0 + cols <= source.dim(1),
                    "region (" << row0 << "," << col0 << ")+" << rows << "x"
                               << cols << " out of " << source.ShapeString());
  Int8Tensor tile({padded_rows, padded_cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      tile(r, c) = source(row0 + r, col0 + c);
    }
  }
  return tile;
}

void AccumulateTile(const Int32Tensor& tile, std::int64_t row0,
                    std::int64_t col0, std::int64_t rows, std::int64_t cols,
                    Int32Tensor& dest) {
  SAFFIRE_CHECK(tile.rank() == 2 && dest.rank() == 2);
  SAFFIRE_CHECK_MSG(rows > 0 && cols > 0 && rows <= tile.dim(0) &&
                        cols <= tile.dim(1),
                    "rows=" << rows << " cols=" << cols << " tile "
                            << tile.ShapeString());
  SAFFIRE_CHECK_MSG(row0 >= 0 && row0 + rows <= dest.dim(0) && col0 >= 0 &&
                        col0 + cols <= dest.dim(1),
                    "region (" << row0 << "," << col0 << ")+" << rows << "x"
                               << cols << " out of " << dest.ShapeString());
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      dest(row0 + r, col0 + c) += tile(r, c);
    }
  }
}

}  // namespace saffire
