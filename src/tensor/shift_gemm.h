// Shift-GEMM convolution lowering.
//
// The cuDNN-style im2col lowering (im2col.h) maps output channels to array
// columns, so a weight-stationary column fault corrupts exactly one channel
// regardless of kernel size. The paper, however, observes *multi-channel*
// corruption for the 3×3×3×8 kernel (Fig. 3f/3g) while the 3×3×3×3 kernel
// corrupts a single channel (Fig. 3e) — which implies a lowering whose
// stationary weight matrix is smaller than the array for the small kernel
// (9×9) and wider than the array for the large one (9×24), with (kernel
// column, output channel) pairs interleaved on the array columns. This file
// implements that lowering:
//
//     D[(n,p,x)][(k,s)] = Σ_{c,r} in_pad(n, c, p·stride + r, x) · w(k,c,r,s)
//
// i.e. a GEMM with reduction dimension C·R on the array rows and S·K
// (k-major: column index = k·S + s) on the array columns; the streamed rows
// are indexed by (n, p, x) over every padded input column x. The output is
// recovered by accumulating the S shifted contributions:
//
//     out(n,k,p,q) = Σ_s D[(n, p, q·stride + s)][(k,s)]
//
// — in hardware this is the accumulator's address generator applying a
// per-column offset; here the fold is done on the host with identical
// arithmetic, which preserves fault corruption exactly (each corrupted D
// column feeds every output pixel of its channel).
//
// Tiling consequence (the paper's Fig. 3 observations): a stuck-at fault in
// array column c corrupts D columns {c + array_cols·t}; with S·K ≤ array
// columns that is a single (k, s) pair → single-channel corruption; with
// S·K > array columns the reused column spans ≥ 2 distinct channels →
// multi-channel corruption.
#pragma once

#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace saffire {

// Dimensions of the shift-GEMM: rows stream (n, p, x), reduction C·R,
// columns S·K.
std::int64_t ShiftGemmRows(const ConvParams& params);    // N·P·(W + 2·pad)
std::int64_t ShiftGemmInner(const ConvParams& params);   // C·R
std::int64_t ShiftGemmCols(const ConvParams& params);    // S·K

// Builds the streamed operand A2[ShiftGemmRows × C·R].
Int8Tensor ShiftGemmLowerInput(const Int8Tensor& input,
                               const ConvParams& params);

// Builds the stationary operand W2[C·R × S·K] (column index = k·S + s).
Int8Tensor ShiftGemmLowerKernel(const Int8Tensor& kernel,
                                const ConvParams& params);

// Accumulates the GEMM result D back into the N×K×P×Q output tensor.
Int32Tensor ShiftGemmFold(const Int32Tensor& d, const ConvParams& params);

// Channel that shift-GEMM column `col` feeds (k = col / S).
std::int64_t ShiftGemmColToChannel(std::int64_t col, const ConvParams& params);

// Convenience: full convolution through the lowering on the CPU reference
// GEMM (used by tests and as the golden model for this mapping).
Int32Tensor ShiftGemmConvRef(const Int8Tensor& input, const Int8Tensor& kernel,
                             const ConvParams& params);

}  // namespace saffire
