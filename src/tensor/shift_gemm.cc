#include "tensor/shift_gemm.h"

#include "tensor/gemm.h"

namespace saffire {

std::int64_t ShiftGemmRows(const ConvParams& params) {
  return params.batch * params.out_height() * (params.width + 2 * params.pad);
}

std::int64_t ShiftGemmInner(const ConvParams& params) {
  return params.in_channels * params.kernel_h;
}

std::int64_t ShiftGemmCols(const ConvParams& params) {
  return params.kernel_w * params.out_channels;
}

Int8Tensor ShiftGemmLowerInput(const Int8Tensor& input,
                               const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(input.rank() == 4 && input.dim(0) == params.batch &&
                        input.dim(1) == params.in_channels &&
                        input.dim(2) == params.height &&
                        input.dim(3) == params.width,
                    "input shape " << input.ShapeString() << " vs "
                                   << params.ToString());
  const std::int64_t out_h = params.out_height();
  const std::int64_t padded_w = params.width + 2 * params.pad;
  Int8Tensor a2({ShiftGemmRows(params), ShiftGemmInner(params)});
  std::int64_t row = 0;
  for (std::int64_t n = 0; n < params.batch; ++n) {
    for (std::int64_t p = 0; p < out_h; ++p) {
      for (std::int64_t x = 0; x < padded_w; ++x, ++row) {
        std::int64_t col = 0;
        for (std::int64_t c = 0; c < params.in_channels; ++c) {
          for (std::int64_t r = 0; r < params.kernel_h; ++r, ++col) {
            const std::int64_t h = p * params.stride + r - params.pad;
            const std::int64_t w = x - params.pad;
            if (h < 0 || h >= params.height || w < 0 || w >= params.width) {
              a2(row, col) = 0;  // zero padding
            } else {
              a2(row, col) = input(n, c, h, w);
            }
          }
        }
      }
    }
  }
  return a2;
}

Int8Tensor ShiftGemmLowerKernel(const Int8Tensor& kernel,
                                const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(kernel.rank() == 4 && kernel.dim(0) == params.out_channels &&
                        kernel.dim(1) == params.in_channels &&
                        kernel.dim(2) == params.kernel_h &&
                        kernel.dim(3) == params.kernel_w,
                    "kernel shape " << kernel.ShapeString() << " vs "
                                    << params.ToString());
  Int8Tensor w2({ShiftGemmInner(params), ShiftGemmCols(params)});
  for (std::int64_t k = 0; k < params.out_channels; ++k) {
    for (std::int64_t s = 0; s < params.kernel_w; ++s) {
      const std::int64_t col = k * params.kernel_w + s;
      std::int64_t row = 0;
      for (std::int64_t c = 0; c < params.in_channels; ++c) {
        for (std::int64_t r = 0; r < params.kernel_h; ++r, ++row) {
          w2(row, col) = kernel(k, c, r, s);
        }
      }
    }
  }
  return w2;
}

Int32Tensor ShiftGemmFold(const Int32Tensor& d, const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(d.rank() == 2 && d.dim(0) == ShiftGemmRows(params) &&
                        d.dim(1) == ShiftGemmCols(params),
                    "D shape " << d.ShapeString() << " vs "
                               << params.ToString());
  const std::int64_t out_h = params.out_height();
  const std::int64_t out_w = params.out_width();
  const std::int64_t padded_w = params.width + 2 * params.pad;
  Int32Tensor output({params.batch, params.out_channels, out_h, out_w});
  for (std::int64_t n = 0; n < params.batch; ++n) {
    for (std::int64_t k = 0; k < params.out_channels; ++k) {
      for (std::int64_t p = 0; p < out_h; ++p) {
        for (std::int64_t q = 0; q < out_w; ++q) {
          std::int32_t acc = 0;
          for (std::int64_t s = 0; s < params.kernel_w; ++s) {
            const std::int64_t x = q * params.stride + s;
            const std::int64_t row = (n * out_h + p) * padded_w + x;
            acc += d(row, k * params.kernel_w + s);
          }
          output(n, k, p, q) = acc;
        }
      }
    }
  }
  return output;
}

std::int64_t ShiftGemmColToChannel(std::int64_t col,
                                   const ConvParams& params) {
  params.Validate();
  SAFFIRE_CHECK_MSG(col >= 0 && col < ShiftGemmCols(params), "col=" << col);
  return col / params.kernel_w;
}

Int32Tensor ShiftGemmConvRef(const Int8Tensor& input, const Int8Tensor& kernel,
                             const ConvParams& params) {
  const auto a2 = ShiftGemmLowerInput(input, params);
  const auto w2 = ShiftGemmLowerKernel(kernel, params);
  return ShiftGemmFold(GemmRef(a2, w2), params);
}

}  // namespace saffire
