#include "tensor/gemm.h"

namespace saffire {
namespace {

template <typename In, typename Acc>
void GemmInto(const Tensor<In>& a, const Tensor<In>& b, Tensor<Acc>& c) {
  SAFFIRE_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
                    "GEMM requires rank-2 tensors");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  SAFFIRE_CHECK_MSG(b.dim(0) == k, "A is " << a.ShapeString() << " but B is "
                                           << b.ShapeString());
  SAFFIRE_CHECK_MSG(c.dim(0) == m && c.dim(1) == n,
                    "C is " << c.ShapeString());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      Acc acc = c(i, j);
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<Acc>(a(i, p)) * static_cast<Acc>(b(p, j));
      }
      c(i, j) = acc;
    }
  }
}

}  // namespace

Int32Tensor GemmRef(const Int8Tensor& a, const Int8Tensor& b) {
  Int32Tensor c({a.dim(0), b.dim(1)});
  GemmInto(a, b, c);
  return c;
}

void GemmAccumulateRef(const Int8Tensor& a, const Int8Tensor& b,
                       Int32Tensor& c) {
  GemmInto(a, b, c);
}

FloatTensor GemmRef(const FloatTensor& a, const FloatTensor& b) {
  FloatTensor c({a.dim(0), b.dim(1)});
  GemmInto(a, b, c);
  return c;
}

}  // namespace saffire
