// Dense row-major tensor used throughout saffire.
//
// The simulator's architectural data types are INT8 operands with INT32
// accumulation (matching the paper's 16×16 INT8 Gemmini configuration), so
// the two aliases `Int8Tensor` and `Int32Tensor` carry almost all data. The
// DNN layers additionally use `FloatTensor` for pre-quantization weights.
//
// Shapes follow the paper's conventions: matrices are (rows, cols); image
// tensors are NCHW; convolution kernels are (K, C, R, S) — K output
// channels, C input channels, R×S spatial extent (Sec. II-B).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace saffire {

template <typename T>
class Tensor {
 public:
  // Constructs a zero-filled tensor. Every dimension must be positive;
  // rank-0 tensors are not supported (use a rank-1 tensor of size 1).
  explicit Tensor(std::vector<std::int64_t> shape)
      : shape_(std::move(shape)) {
    SAFFIRE_CHECK(!shape_.empty());
    std::int64_t total = 1;
    for (const std::int64_t dim : shape_) {
      SAFFIRE_CHECK_MSG(dim > 0, "dimension must be positive, got " << dim);
      SAFFIRE_CHECK_MSG(total <= (std::int64_t{1} << 40) / dim,
                        "tensor too large");
      total *= dim;
    }
    data_.assign(static_cast<std::size_t>(total), T{});
    ComputeStrides();
  }

  // Constructs a tensor filled with `value`.
  static Tensor Full(std::vector<std::int64_t> shape, T value) {
    Tensor t(std::move(shape));
    std::fill(t.data_.begin(), t.data_.end(), value);
    return t;
  }

  // Constructs a rank-2 tensor from nested initializer data (row-major).
  static Tensor FromRows(const std::vector<std::vector<T>>& rows) {
    SAFFIRE_CHECK(!rows.empty());
    const auto cols = static_cast<std::int64_t>(rows.front().size());
    SAFFIRE_CHECK(cols > 0);
    Tensor t({static_cast<std::int64_t>(rows.size()), cols});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      SAFFIRE_CHECK_MSG(static_cast<std::int64_t>(rows[r].size()) == cols,
                        "ragged rows");
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        t.data_[r * static_cast<std::size_t>(cols) + c] = rows[r][c];
      }
    }
    return t;
  }

  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }

  std::int64_t dim(std::int64_t axis) const {
    SAFFIRE_CHECK_MSG(axis >= 0 && axis < rank(), "axis=" << axis);
    return shape_[static_cast<std::size_t>(axis)];
  }

  const std::vector<std::int64_t>& shape() const { return shape_; }

  std::int64_t size() const {
    return static_cast<std::int64_t>(data_.size());
  }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

  // Flat element access (row-major order).
  T& flat(std::int64_t index) {
    SAFFIRE_CHECK_MSG(index >= 0 && index < size(), "index=" << index);
    return data_[static_cast<std::size_t>(index)];
  }
  const T& flat(std::int64_t index) const {
    SAFFIRE_CHECK_MSG(index >= 0 && index < size(), "index=" << index);
    return data_[static_cast<std::size_t>(index)];
  }

  // Rank-2 access: (row, col).
  T& operator()(std::int64_t r, std::int64_t c) {
    return data_[Offset2(r, c)];
  }
  const T& operator()(std::int64_t r, std::int64_t c) const {
    return data_[Offset2(r, c)];
  }

  // Rank-4 access: NCHW images or KCRS kernels.
  T& operator()(std::int64_t a, std::int64_t b, std::int64_t c,
                std::int64_t d) {
    return data_[Offset4(a, b, c, d)];
  }
  const T& operator()(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t d) const {
    return data_[Offset4(a, b, c, d)];
  }

  // Returns a tensor with the same flat data under a new shape; the element
  // count must match. This is the paper's "reshaping" primitive (Sec. II-B).
  Tensor Reshape(std::vector<std::int64_t> new_shape) const {
    Tensor out(std::move(new_shape));
    SAFFIRE_CHECK_MSG(out.size() == size(), "reshape changes element count");
    out.data_ = data_;
    return out;
  }

  // Element type conversion with value-preserving static_cast semantics.
  template <typename U>
  Tensor<U> Cast() const {
    Tensor<U> out(shape_);
    for (std::int64_t i = 0; i < size(); ++i) {
      out.flat(i) = static_cast<U>(data_[static_cast<std::size_t>(i)]);
    }
    return out;
  }

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

  std::string ShapeString() const {
    std::string out = "(";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(shape_[i]);
    }
    out += ")";
    return out;
  }

 private:
  std::size_t Offset2(std::int64_t r, std::int64_t c) const {
    SAFFIRE_CHECK_MSG(rank() == 2, "rank-2 access on " << ShapeString());
    SAFFIRE_CHECK_MSG(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
                      "(" << r << ", " << c << ") out of " << ShapeString());
    return static_cast<std::size_t>(r * shape_[1] + c);
  }

  std::size_t Offset4(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t d) const {
    SAFFIRE_CHECK_MSG(rank() == 4, "rank-4 access on " << ShapeString());
    SAFFIRE_CHECK_MSG(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] &&
                          c >= 0 && c < shape_[2] && d >= 0 && d < shape_[3],
                      "(" << a << ", " << b << ", " << c << ", " << d
                          << ") out of " << ShapeString());
    return static_cast<std::size_t>(((a * shape_[1] + b) * shape_[2] + c) *
                                        shape_[3] +
                                    d);
  }

  void ComputeStrides() {
    strides_.assign(shape_.size(), 1);
    for (std::size_t i = shape_.size(); i-- > 1;) {
      strides_[i - 1] = strides_[i] * shape_[i];
    }
  }

  std::vector<std::int64_t> shape_;
  std::vector<std::int64_t> strides_;
  std::vector<T> data_;
};

using Int8Tensor = Tensor<std::int8_t>;
using Int32Tensor = Tensor<std::int32_t>;
using FloatTensor = Tensor<float>;

}  // namespace saffire
