#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/json.h"

namespace saffire::obs {
namespace {

// Shortest decimal text that round-trips the double — Prometheus values and
// bucket bounds must be exact, but "0.001" must not print as
// "0.001000000000000000021".
std::string FormatNumber(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's hierarchical
// dots (and anything else) become underscores.
std::string SanitizeName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string IndexKey(std::string_view name, std::string_view labels) {
  std::string key(name);
  key += '\x1f';
  key += labels;
  return key;
}

template <typename Snapshot>
void SortSeries(std::vector<Snapshot>& series) {
  std::sort(series.begin(), series.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
}

// Emits "name{labels} value" (or "name value" when unlabelled).
void WriteSeries(std::ostream& out, const std::string& name,
                 const std::string& labels, const std::string& value) {
  out << name;
  if (!labels.empty()) out << '{' << labels << '}';
  out << ' ' << value << '\n';
}

void WriteFamilyHeader(std::ostream& out, const std::string& name,
                       const std::string& help, const char* type) {
  if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
  out << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SAFFIRE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lock-free; a
  // CAS loop is, and sum is off the per-observation fast path anyway.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

const std::vector<double>& DurationBounds() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    for (double b = 1e-6; b < 100.0; b *= 4.0) bounds.push_back(b);
    return bounds;
  }();
  return kBounds;
}

// --- MetricsSnapshot ---------------------------------------------------------

std::map<std::string, double> MetricsSnapshot::PhaseSeconds() const {
  std::map<std::string, double> phases;
  for (const HistogramSnapshot& h : histograms) {
    if (h.name != "saffire.phase.seconds") continue;
    // Labels are rendered as phase="<span name>" by obs/trace.cc.
    constexpr std::string_view kPrefix = "phase=\"";
    if (h.labels.size() < kPrefix.size() + 1 ||
        h.labels.compare(0, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    const std::string phase =
        h.labels.substr(kPrefix.size(), h.labels.size() - kPrefix.size() - 1);
    phases[phase] += h.sum;
  }
  return phases;
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view labels) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::string key = IndexKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    SAFFIRE_CHECK_MSG(it->second.first == Kind::kCounter,
                      "metric '" << name << "' already registered as a "
                                 << "different kind");
    return counters_[it->second.second];
  }
  counter_meta_.push_back(
      {std::string(name), std::string(labels), std::string(help), 0});
  counters_.emplace_back();
  index_.emplace(key, std::make_pair(Kind::kCounter, counters_.size() - 1));
  return counters_.back();
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view labels) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::string key = IndexKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    SAFFIRE_CHECK_MSG(it->second.first == Kind::kGauge,
                      "metric '" << name << "' already registered as a "
                                 << "different kind");
    return gauges_[it->second.second];
  }
  gauge_meta_.push_back(
      {std::string(name), std::string(labels), std::string(help), 0});
  gauges_.emplace_back();
  index_.emplace(key, std::make_pair(Kind::kGauge, gauges_.size() - 1));
  return gauges_.back();
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::string_view labels,
                                         const std::vector<double>& bounds) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::string key = IndexKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    SAFFIRE_CHECK_MSG(it->second.first == Kind::kHistogram,
                      "metric '" << name << "' already registered as a "
                                 << "different kind");
    return histograms_[it->second.second];
  }
  HistogramSnapshot meta;
  meta.name = std::string(name);
  meta.labels = std::string(labels);
  meta.help = std::string(help);
  histogram_meta_.push_back(std::move(meta));
  histograms_.emplace_back(bounds);
  index_.emplace(key, std::make_pair(Kind::kHistogram, histograms_.size() - 1));
  return histograms_.back();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    snapshot.counters.reserve(counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      CounterSnapshot s = counter_meta_[i];
      s.value = counters_[i].value();
      snapshot.counters.push_back(std::move(s));
    }
    snapshot.gauges.reserve(gauges_.size());
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      GaugeSnapshot s = gauge_meta_[i];
      s.value = gauges_[i].value();
      snapshot.gauges.push_back(std::move(s));
    }
    snapshot.histograms.reserve(histograms_.size());
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
      HistogramSnapshot s = histogram_meta_[i];
      s.bounds = histograms_[i].bounds();
      s.buckets = histograms_[i].BucketCounts();
      s.count = 0;
      for (const std::int64_t c : s.buckets) s.count += c;
      s.sum = histograms_[i].sum();
      snapshot.histograms.push_back(std::move(s));
    }
  }
  SortSeries(snapshot.counters);
  SortSeries(snapshot.gauges);
  SortSeries(snapshot.histograms);
  return snapshot;
}

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  const MetricsSnapshot snapshot = Snapshot();
  std::string family;
  for (const CounterSnapshot& s : snapshot.counters) {
    const std::string name = SanitizeName(s.name);
    if (name != family) {
      WriteFamilyHeader(out, name, s.help, "counter");
      family = name;
    }
    WriteSeries(out, name, s.labels, std::to_string(s.value));
  }
  family.clear();
  for (const GaugeSnapshot& s : snapshot.gauges) {
    const std::string name = SanitizeName(s.name);
    if (name != family) {
      WriteFamilyHeader(out, name, s.help, "gauge");
      family = name;
    }
    WriteSeries(out, name, s.labels, std::to_string(s.value));
  }
  family.clear();
  for (const HistogramSnapshot& s : snapshot.histograms) {
    const std::string name = SanitizeName(s.name);
    if (name != family) {
      WriteFamilyHeader(out, name, s.help, "histogram");
      family = name;
    }
    const std::string sep = s.labels.empty() ? "" : ",";
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      cumulative += s.buckets[b];
      const std::string le =
          b < s.bounds.size() ? FormatNumber(s.bounds[b]) : "+Inf";
      WriteSeries(out, name + "_bucket", s.labels + sep + "le=\"" + le + "\"",
                  std::to_string(cumulative));
    }
    WriteSeries(out, name + "_sum", s.labels, FormatNumber(s.sum));
    WriteSeries(out, name + "_count", s.labels, std::to_string(s.count));
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  const MetricsSnapshot snapshot = Snapshot();
  JsonWriter w(out);
  w.BeginObject();
  w.Key("counters").BeginArray();
  for (const CounterSnapshot& s : snapshot.counters) {
    w.BeginObject().Key("name").String(s.name);
    if (!s.labels.empty()) w.Key("labels").String(s.labels);
    w.Key("value").Int(s.value).EndObject();
  }
  w.EndArray();
  w.Key("gauges").BeginArray();
  for (const GaugeSnapshot& s : snapshot.gauges) {
    w.BeginObject().Key("name").String(s.name);
    if (!s.labels.empty()) w.Key("labels").String(s.labels);
    w.Key("value").Int(s.value).EndObject();
  }
  w.EndArray();
  w.Key("histograms").BeginArray();
  for (const HistogramSnapshot& s : snapshot.histograms) {
    w.BeginObject().Key("name").String(s.name);
    if (!s.labels.empty()) w.Key("labels").String(s.labels);
    w.Key("buckets").BeginArray();
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      w.BeginObject().Key("le");
      if (b < s.bounds.size()) {
        w.Double(s.bounds[b]);
      } else {
        w.String("+Inf");
      }
      w.Key("count").Int(s.buckets[b]).EndObject();
    }
    w.EndArray();
    w.Key("sum").Double(s.sum).Key("count").Int(s.count).EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << '\n';
}

void MetricsRegistry::Reset() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (Counter& c : counters_) c.value_.store(0, std::memory_order_relaxed);
  for (Gauge& g : gauges_) g.value_.store(0, std::memory_order_relaxed);
  for (Histogram& h : histograms_) {
    for (std::size_t i = 0; i <= h.bounds_.size(); ++i) {
      h.buckets_[i].store(0, std::memory_order_relaxed);
    }
    h.sum_.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace saffire::obs
