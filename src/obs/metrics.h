// Metrics registry: the quantitative half of the observability layer
// (src/obs/). The paper's artifact is a 49-hour FI campaign; at that scale
// "where does the time go" must be a query against live counters, not a
// rerun under a profiler. The registry holds counters, gauges, and
// histograms behind stable handles: registration takes a mutex once, every
// subsequent update is a relaxed atomic on the handle (the lock-free fast
// path), and a snapshot or exposition walks the registered instruments
// without stopping writers.
//
// Naming is hierarchical by dots ("saffire.executor.chunks"); exposition
// sanitizes to Prometheus conventions ("saffire_executor_chunks"). An
// instrument is identified by (name, labels) where labels is a pre-rendered
// Prometheus label body such as `pool="0",worker="3"` — instruments sharing
// a name form one family (one TYPE line, many labelled series).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace saffire::obs {

// Monotonically increasing count. All operations are relaxed atomics: a
// counter is a statistic, not a synchronization point.
class Counter {
 public:
  void Increment(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> value_{0};
};

// Instantaneous level (queue depths, in-flight work). Add() may go negative
// transiently when increments and decrements race a snapshot; the settled
// value is exact.
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> value_{0};
};

// Fixed-boundary histogram. `bounds` are ascending inclusive upper bounds;
// one implicit overflow bucket (+Inf) follows the last. Per-bucket counts
// are independent atomics and the total count is derived from them at
// snapshot time, so a snapshot is structurally consistent (count == sum of
// buckets) even while writers race; only `sum` can lag the buckets by the
// observations in flight.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts, size bounds().size() + 1.
  std::vector<std::int64_t> BucketCounts() const;
  std::int64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
};

// Default histogram boundaries for durations in seconds: exponential from
// 1 µs to ~67 s (powers of 4), sized for everything between one lane-grid
// tile step and a full Table I sweep.
const std::vector<double>& DurationBounds();

// --- Snapshot ----------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::string labels;  // Prometheus label body, "" when unlabelled
  std::string help;
  std::int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string labels;
  std::string help;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string labels;
  std::string help;
  std::vector<double> bounds;
  std::vector<std::int64_t> buckets;  // non-cumulative, bounds.size() + 1
  std::int64_t count = 0;             // == sum of buckets
  double sum = 0.0;
};

// A point-in-time copy of every registered instrument, sorted by
// (name, labels) so expositions and diffs are deterministic.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Sum of elapsed seconds per phase label value from the
  // "saffire.phase.seconds" histogram family (obs/trace.h spans) — the
  // phase breakdown BENCH JSON artifacts embed. Keys are the span names.
  std::map<std::string, double> PhaseSeconds() const;
};

// --- Registry ----------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every built-in instrument registers with.
  static MetricsRegistry& Default();

  // Find-or-create. The returned reference is stable for the registry's
  // lifetime; callers cache it and update lock-free. Re-registration with
  // the same (name, labels) returns the existing instrument (first help
  // string wins); registering the same key as two different kinds throws
  // std::invalid_argument.
  Counter& GetCounter(std::string_view name, std::string_view help = "",
                      std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view help = "",
                  std::string_view labels = "");
  Histogram& GetHistogram(std::string_view name, std::string_view help = "",
                          std::string_view labels = "",
                          const std::vector<double>& bounds = DurationBounds());

  MetricsSnapshot Snapshot() const;

  // Prometheus text exposition format 0.0.4: HELP/TYPE per family, one
  // series per (name, labels), histograms as cumulative _bucket/_sum/_count.
  // Dots in names become underscores.
  void WritePrometheus(std::ostream& out) const;
  // The same snapshot as a single JSON document (common/json.h writer).
  void WriteJson(std::ostream& out) const;

  // Zeroes every registered instrument (handles stay valid). For tests and
  // repeated bench measurements; production readers should diff snapshots
  // instead.
  void Reset();

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  mutable std::mutex mutex_;
  // Instruments live in deques for pointer stability across registration.
  std::deque<CounterSnapshot> counter_meta_;
  std::deque<Counter> counters_;
  std::deque<GaugeSnapshot> gauge_meta_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramSnapshot> histogram_meta_;
  std::deque<Histogram> histograms_;
  // "name\x1f labels" -> (kind, index into the kind's deque).
  std::map<std::string, std::pair<Kind, std::size_t>> index_;
};

}  // namespace saffire::obs
