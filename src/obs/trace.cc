#include "obs/trace.h"

#include <memory>
#include <mutex>
#include <vector>

#include "common/json.h"

namespace saffire::obs {

namespace internal {
std::atomic<unsigned> g_span_gates{0};
}  // namespace internal

namespace {

struct Event {
  const char* static_name;  // non-null for ScopedSpan events
  std::string owned_name;   // used when static_name is null (RecordComplete)
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;

  std::string_view name() const {
    return static_name != nullptr ? std::string_view(static_name)
                                  : std::string_view(owned_name);
  }
};

}  // namespace

// Per-thread event buffer. Each append takes the buffer's own mutex, which
// is uncontended in steady state (only the exporting thread ever competes),
// so the hot path stays one uncontended lock + vector push.
struct TraceSession::ThreadBuffer {
  std::mutex mutex;
  int tid = 0;
  std::vector<Event> events;
};

namespace {

// Registry of all thread buffers. Buffers are never destroyed (threads are
// pool workers living for the process), so exporting can hold raw pointers.
std::mutex g_buffers_mutex;
std::vector<std::unique_ptr<TraceSession::ThreadBuffer>>& Buffers() {
  static std::vector<std::unique_ptr<TraceSession::ThreadBuffer>> buffers;
  return buffers;
}

}  // namespace

TraceSession& TraceSession::Instance() {
  static TraceSession session;
  return session;
}

TraceSession::ThreadBuffer& TraceSession::LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    std::unique_lock<std::mutex> lock(g_buffers_mutex);
    raw->tid = static_cast<int>(Buffers().size() + 1);
    Buffers().push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

void TraceSession::Start() {
  Clear();
  epoch_ = std::chrono::steady_clock::now();
  internal::g_span_gates.fetch_or(internal::kTraceBit,
                                  std::memory_order_relaxed);
}

void TraceSession::Stop() {
  internal::g_span_gates.fetch_and(~internal::kTraceBit,
                                   std::memory_order_relaxed);
}

void SetPhaseMetricsEnabled(bool enabled) {
  if (enabled) {
    internal::g_span_gates.fetch_or(internal::kPhaseBit,
                                    std::memory_order_relaxed);
  } else {
    internal::g_span_gates.fetch_and(~internal::kPhaseBit,
                                     std::memory_order_relaxed);
  }
}

std::int64_t TraceSession::NowMicros() const {
  if (epoch_ == std::chrono::steady_clock::time_point{}) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSession::RecordComplete(std::string_view name, std::int64_t ts_us,
                                  std::int64_t dur_us) {
  ThreadBuffer& buffer = LocalBuffer();
  std::unique_lock<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      Event{nullptr, std::string(name), ts_us, dur_us});
}

void TraceSession::Clear() {
  std::unique_lock<std::mutex> lock(g_buffers_mutex);
  for (const auto& buffer : Buffers()) {
    std::unique_lock<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::size_t TraceSession::event_count() const {
  std::unique_lock<std::mutex> lock(g_buffers_mutex);
  std::size_t count = 0;
  for (const auto& buffer : Buffers()) {
    std::unique_lock<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

void TraceSession::WriteChromeTrace(std::ostream& out) const {
  JsonWriter w(out);
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  {
    std::unique_lock<std::mutex> lock(g_buffers_mutex);
    for (const auto& buffer : Buffers()) {
      std::unique_lock<std::mutex> buffer_lock(buffer->mutex);
      for (const Event& event : buffer->events) {
        w.BeginObject()
            .Key("name").String(event.name())
            .Key("cat").String("saffire")
            .Key("ph").String("X")
            .Key("ts").Int(event.ts_us)
            .Key("dur").Int(event.dur_us)
            .Key("pid").Int(1)
            .Key("tid").Int(buffer->tid)
            .EndObject();
      }
    }
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  out << '\n';
}

void ScopedSpan::Finish() {
  const auto end = std::chrono::steady_clock::now();
  const std::int64_t dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count();
  const unsigned gates =
      internal::g_span_gates.load(std::memory_order_relaxed);
  if ((gates & internal::kTraceBit) != 0) {
    TraceSession& session = TraceSession::Instance();
    const std::int64_t end_us = session.NowMicros();
    TraceSession::ThreadBuffer& buffer = session.LocalBuffer();
    std::unique_lock<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(
        Event{site_->name, std::string(), end_us - dur_us, dur_us});
  }
  if ((gates & internal::kPhaseBit) != 0) {
    Histogram* histogram = site_->histogram.load(std::memory_order_acquire);
    if (histogram == nullptr) {
      histogram = &MetricsRegistry::Default().GetHistogram(
          "saffire.phase.seconds", "elapsed seconds per instrumented phase",
          std::string("phase=\"") + site_->name + "\"");
      site_->histogram.store(histogram, std::memory_order_release);
    }
    histogram->Observe(static_cast<double>(dur_us) * 1e-6);
  }
}

}  // namespace saffire::obs
