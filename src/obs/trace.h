// Scoped tracing spans: the timeline half of the observability layer.
// Instrumented phases (golden recording, cone derivation, batch pack/diff,
// executor chunks, sink flushes) open a span on entry and close it on exit;
// with tracing enabled each span becomes one Chrome trace_event "complete"
// event (load the exported JSON in chrome://tracing or Perfetto), and with
// phase metrics enabled it also lands in the "saffire.phase.seconds"
// histogram family of the default registry — the per-phase cost breakdown.
//
// Cost model: spans are compiled in unconditionally but gated on one
// process-wide atomic. Disabled (the default), a span is a single relaxed
// load and a predictable branch — cheap enough for the campaign hot layers
// (though not for the per-PE inner loops, which stay uninstrumented and
// aggregate into counters at run boundaries instead). Enabled, each span
// costs two steady_clock reads plus an append to a thread-local buffer;
// buffers are only walked at export time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string_view>

#include "obs/metrics.h"

namespace saffire::obs {

// Process-wide span gates, combined into one word so the disabled fast path
// is a single load. Bit 0: trace events; bit 1: phase histograms.
namespace internal {
inline constexpr unsigned kTraceBit = 1u;
inline constexpr unsigned kPhaseBit = 2u;
extern std::atomic<unsigned> g_span_gates;
}  // namespace internal

inline bool SpanTimingEnabled() {
  return internal::g_span_gates.load(std::memory_order_relaxed) != 0;
}
inline bool PhaseMetricsEnabled() {
  return (internal::g_span_gates.load(std::memory_order_relaxed) &
          internal::kPhaseBit) != 0;
}
// Routes span durations into MetricsRegistry::Default()'s
// "saffire.phase.seconds" histograms, independent of tracing.
void SetPhaseMetricsEnabled(bool enabled);

// Collects trace events process-wide. Threads register a thread-local
// buffer on first use (their span stack's landing zone); Start() stamps the
// session epoch and raises the gate, WriteChromeTrace() merges every
// buffer into one Chrome trace_event JSON document.
class TraceSession {
 public:
  static TraceSession& Instance();

  // Clears previously collected events and enables collection. Timestamps
  // are microseconds since this call.
  void Start();
  // Stops collection; collected events stay available for export.
  void Stop();
  bool enabled() const {
    return (internal::g_span_gates.load(std::memory_order_relaxed) &
            internal::kTraceBit) != 0;
  }

  // Appends one complete-span event ("ph":"X") for the calling thread.
  // ts_us/dur_us are in microseconds relative to the session start. Public
  // so tests can synthesize deterministic timelines; instrumented code goes
  // through ScopedSpan.
  void RecordComplete(std::string_view name, std::int64_t ts_us,
                      std::int64_t dur_us);

  // Microseconds since Start() (0 before the first Start()).
  std::int64_t NowMicros() const;

  // The Chrome trace_event JSON object format:
  //   {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,
  //     "pid":1,"tid":...,"cat":"saffire"}],"displayTimeUnit":"ms"}
  // Loadable in chrome://tracing and Perfetto. Safe to call while spans are
  // still being recorded (a consistent prefix is exported).
  void WriteChromeTrace(std::ostream& out) const;

  // Drops every collected event (buffers stay registered).
  void Clear();

  // Collected events across all threads (for tests and sanity checks).
  std::size_t event_count() const;

  // Internal: the calling thread's event buffer (created and registered on
  // first use). Exposed for ScopedSpan; not part of the public surface.
  struct ThreadBuffer;
  ThreadBuffer& LocalBuffer();

 private:
  TraceSession() = default;

  std::chrono::steady_clock::time_point epoch_{};
};

// One instrumentation point, declared static at the call site so the
// phase-histogram handle is resolved once and cached (see SAFFIRE_SPAN).
struct SpanSite {
  const char* name;
  std::atomic<Histogram*> histogram{nullptr};
};

// RAII span. Does nothing unless tracing or phase metrics are enabled at
// construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) {
    if (SpanTimingEnabled()) {
      site_ = &site;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (site_ != nullptr) Finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Finish();

  SpanSite* site_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

#define SAFFIRE_SPAN_CONCAT2(a, b) a##b
#define SAFFIRE_SPAN_CONCAT(a, b) SAFFIRE_SPAN_CONCAT2(a, b)

// Opens a span covering the rest of the enclosing scope:
//   SAFFIRE_SPAN("fi.golden_record");
#define SAFFIRE_SPAN(name_literal)                                       \
  static ::saffire::obs::SpanSite SAFFIRE_SPAN_CONCAT(saffire_span_site_, \
                                                      __LINE__){name_literal}; \
  ::saffire::obs::ScopedSpan SAFFIRE_SPAN_CONCAT(saffire_span_, __LINE__)( \
      SAFFIRE_SPAN_CONCAT(saffire_span_site_, __LINE__))

}  // namespace saffire::obs
