// Deterministic fault injection for testing the resilience layer itself.
// The executor calls the hooks below at well-defined points (experiment
// attempt, batch attempt); when a ChaosSpec is installed they throw or
// stall on a fixed, index-derived schedule, so a chaos run is exactly
// reproducible and its expected retry/fallback counters can be computed in
// closed form. When nothing is installed every hook is a single relaxed
// atomic load — cheap enough to leave compiled into release builds, which
// is what lets CI drive the real campaign_cli binary through failures via
// the SAFFIRE_CHAOS environment variable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "service/network_sweep.h"
#include "service/sink.h"

namespace saffire {
namespace chaos {

// Thrown by injection points. Derives std::runtime_error so the resilience
// layer classifies it as transient (retryable), like a real engine fault —
// never std::invalid_argument, which would be treated as permanent.
class ChaosError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Injection schedule. All triggers key on plan indices, not on execution
// order, so they fire identically regardless of worker count or stealing.
struct ChaosSpec {
  // Every Nth experiment (experiment_index % N == 0) fails its first
  // `experiment_throw_attempts` attempts on the current ladder rung.
  // 0 disables. Applies to per-experiment engine paths only; batch-engine
  // groups are driven by batch_fail_every.
  int experiment_throw_every = 0;
  int experiment_throw_attempts = 1;
  // Every Nth campaign (campaign_index % N == 0) throws from every
  // batch-engine attempt, forcing the batch→differential fallback.
  int batch_fail_every = 0;
  // Every Nth experiment stalls stall_ms on its first attempt — trips the
  // experiment_timeout_ms guard without failing the attempt.
  int stall_every = 0;
  std::int64_t stall_ms = 0;
  // Every Nth campaign's sampled self-checks report a mismatch even though
  // the records agree, driving the mismatch path end to end — engine
  // demotion, symmetry-synthesis disable, unhealthy SweepOutcome, cache
  // exclusion — without corrupting any delivered record (the "mismatched"
  // group recomputes on the fallback rung, whose records are identical).
  int selfcheck_lie_every = 0;
  // Every Nth record through FlakySink throws. Consumed by FlakySink and
  // the CLI's chaos wiring, not by the executor hooks.
  int sink_throw_every = 0;
};

// Installs/clears the process-wide schedule. Not thread-safe against
// in-flight runs: install before Run(), clear after.
void Install(const ChaosSpec& spec);
void Clear();
bool Enabled();
ChaosSpec ActiveSpec();

// Parses "key=value,key=value" with the ChaosSpec field names as keys;
// throws std::invalid_argument on unknown keys or malformed values.
ChaosSpec ParseChaosSpec(const std::string& text);

// Installs from the SAFFIRE_CHAOS environment variable when set and
// non-empty; returns whether anything was installed.
bool InstallFromEnv();

// Executor hooks. No-ops when nothing is installed.
void OnExperimentAttempt(std::size_t campaign_index,
                         std::int64_t experiment_index, int attempt);
void OnBatchAttempt(std::size_t campaign_index, int attempt);
// True when selfcheck_lie_every forces this campaign's self-check
// comparisons to report a mismatch (false when nothing is installed).
bool ForceSelfCheckMismatch(std::size_t campaign_index);

// Checkpoint-corruption helpers for robustness tests: XOR one byte in
// place / truncate to `size` bytes. Both throw on I/O failure.
void FlipByteInFile(const std::string& path, std::int64_t offset);
void TruncateFileTo(const std::string& path, std::int64_t size);

// Sink decorator that forwards to `inner` but throws ChaosError from every
// Nth OnRecord (1-based count). Non-owning, like TeeSink.
class FlakySink : public RecordSink {
 public:
  FlakySink(RecordSink* inner, int throw_every);

  void OnSweepBegin(const CampaignPlan& plan) override;
  void OnCampaignBegin(const CampaignBeginInfo& info) override;
  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override;
  void OnExperimentFailed(const CampaignBeginInfo& info,
                          const FailedRecord& failure) override;
  void OnCampaignEnd(const CampaignBeginInfo& info) override;
  void OnSweepEnd() override;

  std::int64_t records_forwarded() const { return forwarded_; }

 private:
  RecordSink* inner_;
  int throw_every_;
  std::int64_t seen_ = 0;
  std::int64_t forwarded_ = 0;
};

// FlakySink's network-sweep sibling: forwards to `inner` but throws
// ChaosError from every Nth OnRecord (1-based count). Failure/begin/end
// callbacks always forward — only record delivery is flaky, matching the
// operator-level decorator.
class NetworkFlakySink : public NetworkRecordSink {
 public:
  NetworkFlakySink(NetworkRecordSink* inner, int throw_every);

  void OnSweepBegin(const NetworkSweepSpec& spec,
                    const NetworkCampaignPlan& plan) override;
  void OnCampaignBegin(const NetworkCampaignInfo& info) override;
  void OnRecord(const NetworkRecord& record) override;
  void OnExperimentFailed(const NetworkFailedRecord& failed) override;
  void OnCampaignEnd(std::size_t campaign_index) override;
  void OnSweepEnd(const SweepOutcome& outcome) override;

  std::int64_t records_forwarded() const { return forwarded_; }

 private:
  NetworkRecordSink* inner_;
  int throw_every_;
  std::int64_t seen_ = 0;
  std::int64_t forwarded_ = 0;
};

}  // namespace chaos
}  // namespace saffire
