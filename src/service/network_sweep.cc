#include "service/network_sweep.h"

#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "accel/config_json.h"
#include "common/crc32.h"
#include "common/json.h"
#include "common/log.h"
#include "service/checkpoint.h"

namespace saffire {

namespace {

constexpr const char* kNetworkRungNames[] = {"appfi", "cycle-accurate"};

void WriteNetworkSpecJson(JsonWriter& w, const NetworkSpec& network) {
  w.BeginObject()
      .Key("kind").String(ToString(network.kind))
      .Key("batch").Int(network.batch)
      .Key("seed").Uint(network.seed)
      .Key("noise").Double(network.noise)
      .Key("extraction_k").Int(network.extraction_k)
      .Key("extraction_n").Int(network.extraction_n)
      .Key("hidden").Int(network.hidden)
      .Key("train_samples").Int(network.train_samples)
      .Key("train_epochs").Int(network.train_epochs)
      .Key("train_target").Double(network.train_target)
      .Key("conv_channels").Int(network.conv_channels)
      .EndObject();
}

NetworkSpec ParseNetworkSpecJson(const JsonValue& json) {
  static const std::set<std::string> kKnown = {
      "kind",         "batch",        "seed",
      "noise",        "extraction_k", "extraction_n",
      "hidden",       "train_samples", "train_epochs",
      "train_target", "conv_channels"};
  for (const auto& [key, value] : json.AsObject()) {
    (void)value;
    SAFFIRE_CHECK_MSG(kKnown.count(key) != 0,
                      "unknown network spec key '" << key << "'");
  }
  NetworkSpec network;
  network.kind = ParseNetworkKind(json.At("kind").AsString());
  network.batch = json.At("batch").AsInt();
  network.seed = json.At("seed").AsUint();
  network.noise = json.At("noise").AsDouble();
  network.extraction_k = json.At("extraction_k").AsInt();
  network.extraction_n = json.At("extraction_n").AsInt();
  network.hidden = json.At("hidden").AsInt();
  network.train_samples = json.At("train_samples").AsInt();
  network.train_epochs = json.At("train_epochs").AsInt();
  network.train_target = json.At("train_target").AsDouble();
  network.conv_channels = json.At("conv_channels").AsInt();
  return network;
}

}  // namespace

std::string ToString(NetworkRung rung) {
  const auto index = static_cast<std::size_t>(rung);
  SAFFIRE_ASSERT_MSG(index < std::size(kNetworkRungNames),
                     "network rung " << static_cast<int>(index));
  return kNetworkRungNames[index];
}

NetworkRung ParseNetworkRung(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kNetworkRungNames); ++i) {
    if (name == kNetworkRungNames[i]) return static_cast<NetworkRung>(i);
  }
  SAFFIRE_CHECK_MSG(false, "unknown network rung '"
                               << name
                               << "' (expected appfi|cycle-accurate)");
}

std::size_t NetworkSweepSpec::CampaignCount() const {
  return dataflows.size() * signals.size() * polarities.size() *
         bits.size() * layers.size() * mitigations.size();
}

void NetworkSweepSpec::Validate() const {
  accel.Validate();
  network.Validate();
  SAFFIRE_CHECK_MSG(!dataflows.empty(), "network sweep has no dataflows");
  SAFFIRE_CHECK_MSG(!signals.empty(), "network sweep has no signals");
  SAFFIRE_CHECK_MSG(!polarities.empty(), "network sweep has no polarities");
  SAFFIRE_CHECK_MSG(!bits.empty(), "network sweep has no bit positions");
  SAFFIRE_CHECK_MSG(!layers.empty(), "network sweep has no layer scopes");
  const std::int64_t layer_count = NetworkLayerCount(network.kind);
  for (const int layer : layers) {
    SAFFIRE_CHECK_MSG(layer >= -1 && layer < layer_count,
                      "layer scope " << layer << " out of range for a "
                                     << ToString(network.kind) << " network ("
                                     << layer_count << " layers; -1 = all)");
  }
  SAFFIRE_CHECK_MSG(!mitigations.empty(), "network sweep has no mitigations");
  SAFFIRE_CHECK_MSG(max_sites >= 0, "max_sites=" << max_sites);
  SAFFIRE_CHECK_MSG(perturb.bit >= 0 && perturb.bit < 32,
                    "perturb bit=" << perturb.bit);
  for (const MitigationPolicy mitigation : mitigations) {
    if (!MitigationNeedsPredictor(mitigation)) continue;
    // Remap/prune plans are derived from the analytical predictor
    // (PredictPattern), regardless of the execution rung — so every swept
    // signal must be predictor-covered when such a policy is on the axis.
    for (const MacSignal signal : signals) {
      SAFFIRE_CHECK_MSG(signal == MacSignal::kMulOut ||
                            signal == MacSignal::kAdderOut ||
                            signal == MacSignal::kWeightOperand,
                        "mitigation " << ToString(mitigation)
                                      << " plans from the predictor, which "
                                         "does not cover signal "
                                      << ToString(signal));
    }
  }
  if (rung == NetworkRung::kAppFi) {
    // The appfi rung derives corruption from the analytical predictor,
    // which only covers the PE-local signals; forwarding-signal sweeps must
    // run cycle-accurate.
    for (const MacSignal signal : signals) {
      SAFFIRE_CHECK_MSG(signal == MacSignal::kMulOut ||
                            signal == MacSignal::kAdderOut ||
                            signal == MacSignal::kWeightOperand,
                        "signal " << ToString(signal)
                                  << " is not predictor-covered; use the "
                                     "cycle-accurate rung");
    }
  }
  // Fault bit positions are validated per FaultSpec against the signal's
  // width when each campaign's faults are built, same as SweepSpec.
}

std::string NetworkSweepSpec::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("accel");
  WriteAccelJson(w, accel);
  w.Key("network");
  WriteNetworkSpecJson(w, network);
  w.Key("dataflows").BeginArray();
  for (const Dataflow dataflow : dataflows) w.String(ToString(dataflow));
  w.EndArray();
  w.Key("signals").BeginArray();
  for (const MacSignal signal : signals) w.String(ToString(signal));
  w.EndArray();
  w.Key("polarities").BeginArray();
  for (const StuckPolarity polarity : polarities) {
    w.String(ToString(polarity));
  }
  w.EndArray();
  w.Key("bits").BeginArray();
  for (const int bit : bits) w.Int(bit);
  w.EndArray();
  w.Key("layers").BeginArray();
  for (const int layer : layers) w.Int(layer);
  w.EndArray();
  w.Key("mitigations").BeginArray();
  for (const MitigationPolicy mitigation : mitigations) {
    w.String(ToString(mitigation));
  }
  w.EndArray();
  w.Key("max_sites").Int(max_sites)
      .Key("seed").Uint(seed)
      .Key("rung").String(ToString(rung))
      .Key("abft").Bool(abft)
      .Key("perturb_mode")
      .String(perturb_auto ? "auto" : ToString(perturb.mode))
      .Key("perturb_bit").Int(perturb.bit)
      .Key("perturb_delta").Int(perturb.delta)
      .EndObject();
  return os.str();
}

NetworkSweepSpec ParseNetworkSweepSpec(const std::string& json) {
  const JsonValue root = JsonValue::Parse(json);
  // Same policy as ParseSweepSpec: a typo'd key must fail loudly instead of
  // silently sweeping a default axis.
  static const std::set<std::string> kKnown = {
      "accel",     "network", "dataflows",    "signals",
      "polarities", "bits",   "layers",       "mitigations",
      "max_sites", "seed",    "rung",         "abft",
      "perturb_mode", "perturb_bit", "perturb_delta"};
  for (const auto& [key, value] : root.AsObject()) {
    (void)value;
    SAFFIRE_CHECK_MSG(kKnown.count(key) != 0,
                      "unknown network sweep spec key '" << key << "'");
  }

  NetworkSweepSpec spec;
  spec.accel = ParseAccelJson(root.At("accel"));
  spec.network = ParseNetworkSpecJson(root.At("network"));
  spec.dataflows.clear();
  for (const JsonValue& dataflow : root.At("dataflows").AsArray()) {
    spec.dataflows.push_back(DataflowFromString(dataflow.AsString()));
  }
  spec.signals.clear();
  for (const JsonValue& signal : root.At("signals").AsArray()) {
    spec.signals.push_back(MacSignalFromString(signal.AsString()));
  }
  spec.polarities.clear();
  for (const JsonValue& polarity : root.At("polarities").AsArray()) {
    spec.polarities.push_back(StuckPolarityFromString(polarity.AsString()));
  }
  spec.bits.clear();
  for (const JsonValue& bit : root.At("bits").AsArray()) {
    spec.bits.push_back(static_cast<int>(bit.AsInt()));
  }
  spec.layers.clear();
  for (const JsonValue& layer : root.At("layers").AsArray()) {
    spec.layers.push_back(static_cast<int>(layer.AsInt()));
  }
  spec.mitigations.clear();
  for (const JsonValue& mitigation : root.At("mitigations").AsArray()) {
    spec.mitigations.push_back(ParseMitigationPolicy(mitigation.AsString()));
  }
  spec.max_sites = root.At("max_sites").AsInt();
  spec.seed = root.At("seed").AsUint();
  spec.rung = ParseNetworkRung(root.At("rung").AsString());
  spec.abft = root.At("abft").AsBool();
  const std::string& mode = root.At("perturb_mode").AsString();
  spec.perturb_auto = mode == "auto";
  if (!spec.perturb_auto) spec.perturb.mode = ParsePerturbMode(mode);
  spec.perturb.bit = static_cast<int>(root.At("perturb_bit").AsInt());
  spec.perturb.delta =
      static_cast<std::int32_t>(root.At("perturb_delta").AsInt());
  spec.Validate();
  return spec;
}

NetworkCampaignPlan BuildNetworkCampaignPlan(const NetworkSweepSpec& spec) {
  spec.Validate();
  NetworkCampaignPlan plan;
  for (const Dataflow dataflow : spec.dataflows) {
    for (const MacSignal signal : spec.signals) {
      for (const StuckPolarity polarity : spec.polarities) {
        for (const int bit : spec.bits) {
          for (const int layer : spec.layers) {
            for (const MitigationPolicy mitigation : spec.mitigations) {
              NetworkCampaign campaign;
              campaign.dataflow = dataflow;
              campaign.signal = signal;
              campaign.polarity = polarity;
              campaign.bit = bit;
              campaign.layer = layer;
              campaign.mitigation = mitigation;
              plan.campaigns.push_back(campaign);
            }
          }
        }
      }
    }
  }
  // Same site-selection algorithm as CampaignSites (patterns/campaign.cc):
  // exhaustive in row-major order, or a seeded uniform sample without
  // replacement. One shared list — every campaign visits the same sites, so
  // per-class comparisons across campaigns are paired.
  const std::vector<PeCoord> all = AllPeCoords(spec.accel.array);
  if (spec.max_sites == 0 ||
      spec.max_sites >= static_cast<std::int64_t>(all.size())) {
    plan.sites = all;
  } else {
    Rng rng(spec.seed);
    for (const std::int64_t index : rng.SampleWithoutReplacement(
             static_cast<std::int64_t>(all.size()), spec.max_sites)) {
      plan.sites.push_back(all[static_cast<std::size_t>(index)]);
    }
  }
  return plan;
}

std::string NetworkCampaignKey(const NetworkSweepSpec& spec,
                               const NetworkCampaign& campaign) {
  // CampaignKey's philosophy: serialize every field that feeds the records.
  // The execution rung is excluded — all rungs are contracted to produce
  // RungEquivalent records, which is what lets a cycle-accurate resume
  // finish an appfi checkpoint after a demotion.
  const NetworkSpec& n = spec.network;
  std::ostringstream key;
  key << spec.accel.array.rows << ',' << spec.accel.array.cols << ','
      << spec.accel.array.input_bits << ',' << spec.accel.array.acc_bits
      << ';' << spec.accel.spad_rows << ',' << spec.accel.acc_rows << ','
      << spec.accel.max_compute_rows << ','
      << spec.accel.double_buffered_weights << ',' << spec.accel.dram_bytes
      << ';' << static_cast<int>(n.kind) << ',' << n.batch << ',' << n.seed
      << ',' << n.noise << ';' << n.extraction_k << ',' << n.extraction_n
      << ';' << n.hidden << ',' << n.train_samples << ',' << n.train_epochs
      << ',' << n.train_target << ';' << n.conv_channels << ';'
      << static_cast<int>(campaign.dataflow) << ','
      << static_cast<int>(campaign.signal) << ','
      << static_cast<int>(campaign.polarity) << ',' << campaign.bit << ','
      << campaign.layer << ','
      << static_cast<int>(campaign.mitigation) << ';'
      << spec.max_sites << ',' << spec.seed << ';'
      << spec.abft << ';'
      << (spec.perturb_auto
              ? std::string("auto")
              : ToString(spec.perturb.mode) + "," +
                    std::to_string(spec.perturb.bit) + "," +
                    std::to_string(spec.perturb.delta));
  return key.str();
}

std::string NetworkSweepHash(const NetworkSweepSpec& spec) {
  // FNV-1a 64-bit over a versioned domain prefix + the spec JSON (the full
  // spec, rung included: a resume must describe the same sweep document,
  // even though records themselves are rung-invariant).
  const std::string key = "saffire-network-sweep-v1;" + spec.ToJson();
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  std::string hex(16, '0');
  static const char* kDigits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

bool RungEquivalent(const NetworkRecord& a, const NetworkRecord& b) {
  NetworkRecord left = a;
  NetworkRecord right = b;
  left.rung = right.rung;
  return left == right;
}

// --- Sinks ------------------------------------------------------------------

void NetworkCsvSink::OnSweepBegin(const NetworkSweepSpec& spec,
                                  const NetworkCampaignPlan& plan) {
  (void)spec;
  campaigns_ = plan.campaigns;
  out_ << "campaign,experiment,dataflow,signal,polarity,bit,layer,mitigation,"
          "pe_row,pe_col,pattern,corrupted,sdc,top1_flips,correct_golden,"
          "correct_faulty,abft_diagnosis,abft_corrections,abft_corrected,"
          "mit_corrupted,mit_sdc,mit_top1_flips,mit_correct_faulty\n";
}

void NetworkCsvSink::OnRecord(const NetworkRecord& record) {
  SAFFIRE_CHECK_MSG(record.campaign_index < campaigns_.size(),
                    "record for campaign " << record.campaign_index
                                           << " before OnSweepBegin");
  const NetworkCampaign& campaign = campaigns_[record.campaign_index];
  out_ << record.campaign_index << ',' << record.experiment_index << ','
       << ToString(campaign.dataflow) << ',' << ToString(campaign.signal)
       << ',' << ToString(campaign.polarity) << ',' << campaign.bit << ','
       << campaign.layer << ',' << ToString(campaign.mitigation) << ','
       << record.fault.pe.row << ','
       << record.fault.pe.col << ',' << ToString(record.pattern) << ','
       << record.corrupted_elements << ',' << (record.sdc ? 1 : 0) << ','
       << record.top1_flips << ',' << record.correct_golden << ','
       << record.correct_faulty << ',' << ToString(record.abft_diagnosis)
       << ',' << record.abft_corrections << ','
       << (record.abft_corrected ? 1 : 0) << ','
       << record.mit_corrupted << ',' << (record.mit_sdc ? 1 : 0) << ','
       << record.mit_top1_flips << ',' << record.mit_correct_faulty << '\n';
}

void NetworkJsonlSink::WriteSealedLine(const std::string& body) {
  // Identical sealing to JsonlRecordSink: strip the closing brace, append a
  // final "crc" member over everything before it.
  SAFFIRE_ASSERT_MSG(!body.empty() && body.back() == '}',
                     "sealing a non-object checkpoint line");
  const std::string prefix = body.substr(0, body.size() - 1);
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(prefix));
  out_ << prefix << ",\"crc\":\"" << crc << "\"}\n";
  if (flush_) out_ << std::flush;
}

void NetworkJsonlSink::OnSweepBegin(const NetworkSweepSpec& spec,
                                    const NetworkCampaignPlan& plan) {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("network-sweep")
      .Key("hash").String(NetworkSweepHash(spec))
      .Key("campaigns").Uint(plan.campaigns.size())
      .Key("experiments").Int(plan.total_experiments())
      .Key("spec").String(spec.ToJson())
      .EndObject();
  WriteSealedLine(line.str());
}

void NetworkJsonlSink::OnCampaignBegin(const NetworkCampaignInfo& info) {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("network-campaign")
      .Key("campaign").Uint(info.index)
      .Key("key").String(info.key)
      .Key("experiments").Int(info.experiments)
      .EndObject();
  WriteSealedLine(line.str());
}

void NetworkJsonlSink::OnRecord(const NetworkRecord& record) {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("network-record")
      .Key("campaign").Uint(record.campaign_index)
      .Key("experiment").Int(record.experiment_index)
      .Key("pe_row").Int(record.fault.pe.row)
      .Key("pe_col").Int(record.fault.pe.col)
      .Key("signal").Int(static_cast<int>(record.fault.signal))
      .Key("bit").Int(record.fault.bit)
      .Key("polarity").Int(static_cast<int>(record.fault.polarity))
      .Key("rung").String(ToString(record.rung))
      .Key("pattern").Int(static_cast<int>(record.pattern))
      .Key("pattern_class").String(ToString(record.pattern))
      .Key("corrupted").Int(record.corrupted_elements)
      .Key("sdc").Bool(record.sdc)
      .Key("top1_flips").Int(record.top1_flips)
      .Key("batch").Int(record.batch)
      .Key("correct_golden").Int(record.correct_golden)
      .Key("correct_faulty").Int(record.correct_faulty)
      .Key("abft_on").Bool(record.abft_on)
      .Key("abft_diagnosis").Int(static_cast<int>(record.abft_diagnosis))
      .Key("abft_corrections").Int(record.abft_corrections)
      .Key("abft_corrected").Bool(record.abft_corrected)
      .Key("mit_sdc").Bool(record.mit_sdc)
      .Key("mit_corrupted").Int(record.mit_corrupted)
      .Key("mit_top1_flips").Int(record.mit_top1_flips)
      .Key("mit_correct_faulty").Int(record.mit_correct_faulty)
      .EndObject();
  WriteSealedLine(line.str());
}

void NetworkJsonlSink::OnExperimentFailed(const NetworkFailedRecord& failed) {
  // Sealed like every checkpoint line, but deliberately an unknown type to
  // LoadNetworkCheckpoint: a quarantined experiment carries no result, so a
  // resume naturally re-simulates it.
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("network-failed")
      .Key("campaign").Uint(failed.campaign_index)
      .Key("experiment").Int(failed.experiment_index)
      .Key("rung").String(ToString(failed.rung))
      .Key("attempts").Int(failed.attempts)
      .Key("timed_out").Bool(failed.timed_out)
      .Key("error").String(failed.error)
      .EndObject();
  WriteSealedLine(line.str());
}

void NetworkJsonlSink::OnSweepEnd(const SweepOutcome& outcome) {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("network-sweep-end")
      .Key("records").Int(outcome.records)
      .Key("quarantined").Int(outcome.quarantined)
      .Key("retries").Int(outcome.retries)
      .Key("timeouts").Int(outcome.timeouts)
      .Key("fallbacks").Int(outcome.fallbacks)
      .Key("selfchecks").Int(outcome.selfchecks)
      .Key("selfcheck_mismatches").Int(outcome.selfcheck_mismatches)
      .Key("stopped").Bool(outcome.stopped)
      .EndObject();
  WriteSealedLine(line.str());
}

// --- Checkpoint loading -----------------------------------------------------

namespace {

NetworkRecord ParseNetworkRecordLine(const JsonValue& json) {
  NetworkRecord record;
  record.campaign_index =
      static_cast<std::size_t>(json.At("campaign").AsUint());
  record.experiment_index = json.At("experiment").AsInt();
  record.fault.kind = FaultKind::kStuckAt;
  record.fault.pe.row = static_cast<std::int32_t>(json.At("pe_row").AsInt());
  record.fault.pe.col = static_cast<std::int32_t>(json.At("pe_col").AsInt());
  const std::int64_t signal = json.At("signal").AsInt();
  SAFFIRE_CHECK_MSG(signal >= 0 && signal < kNumMacSignals,
                    "signal " << signal << " out of range");
  record.fault.signal = static_cast<MacSignal>(signal);
  record.fault.bit = static_cast<int>(json.At("bit").AsInt());
  const std::int64_t polarity = json.At("polarity").AsInt();
  SAFFIRE_CHECK_MSG(polarity == 0 || polarity == 1,
                    "polarity " << polarity << " out of range");
  record.fault.polarity = static_cast<StuckPolarity>(polarity);
  record.rung = ParseNetworkRung(json.At("rung").AsString());
  const std::int64_t pattern = json.At("pattern").AsInt();
  SAFFIRE_CHECK_MSG(pattern >= 0 && pattern < kNumPatternClasses,
                    "pattern class " << pattern << " out of range");
  record.pattern = static_cast<PatternClass>(pattern);
  record.corrupted_elements = json.At("corrupted").AsInt();
  record.sdc = json.At("sdc").AsBool();
  record.top1_flips = json.At("top1_flips").AsInt();
  record.batch = json.At("batch").AsInt();
  record.correct_golden = json.At("correct_golden").AsInt();
  record.correct_faulty = json.At("correct_faulty").AsInt();
  record.abft_on = json.At("abft_on").AsBool();
  const std::int64_t diagnosis = json.At("abft_diagnosis").AsInt();
  SAFFIRE_CHECK_MSG(
      diagnosis >= 0 &&
          diagnosis <= static_cast<std::int64_t>(AbftDiagnosis::kComplex),
      "abft diagnosis " << diagnosis << " out of range");
  record.abft_diagnosis = static_cast<AbftDiagnosis>(diagnosis);
  record.abft_corrections = json.At("abft_corrections").AsInt();
  record.abft_corrected = json.At("abft_corrected").AsBool();
  record.mit_sdc = json.At("mit_sdc").AsBool();
  record.mit_corrupted = json.At("mit_corrupted").AsInt();
  record.mit_top1_flips = json.At("mit_top1_flips").AsInt();
  record.mit_correct_faulty = json.At("mit_correct_faulty").AsInt();
  return record;
}

}  // namespace

NetworkCheckpoint LoadNetworkCheckpoint(std::istream& in) {
  NetworkCheckpoint checkpoint;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!CheckpointLineCrcOk(line)) {
      ++checkpoint.lines_dropped;
      SAFFIRE_LOG_WARN << "network checkpoint line " << line_number
                       << " failed its CRC seal, dropping it";
      continue;
    }
    try {
      const JsonValue json = JsonValue::Parse(line);
      const std::string& type = json.At("type").AsString();
      if (type == "network-sweep") {
        const std::string& hash = json.At("hash").AsString();
        SAFFIRE_CHECK_MSG(
            checkpoint.sweep_hash.empty() || checkpoint.sweep_hash == hash,
            "header for a different sweep (hash mismatch)");
        checkpoint.sweep_hash = hash;
      } else if (type == "network-campaign") {
        const auto index =
            static_cast<std::size_t>(json.At("campaign").AsUint());
        const std::string& key = json.At("key").AsString();
        const auto [slot, inserted] =
            checkpoint.campaign_keys.emplace(index, key);
        SAFFIRE_CHECK_MSG(inserted || slot->second == key,
                          "campaign " << index
                                      << " appears twice with different keys");
      } else if (type == "network-record") {
        NetworkRecord record = ParseNetworkRecordLine(json);
        checkpoint.records[{record.campaign_index,
                            record.experiment_index}] = record;
      }
      // "network-sweep-end" and unknown future types carry no resumable
      // state.
    } catch (const std::invalid_argument& error) {
      ++checkpoint.lines_dropped;
      SAFFIRE_LOG_WARN << "network checkpoint line " << line_number
                       << " dropped: " << error.what();
    }
  }
  if (checkpoint.lines_dropped > 0) {
    SAFFIRE_LOG_WARN << "network checkpoint: dropped "
                     << checkpoint.lines_dropped
                     << " lines; the affected experiments will be re-run";
  }
  return checkpoint;
}

void ValidateNetworkCheckpoint(const NetworkCheckpoint& checkpoint,
                               const NetworkSweepSpec& spec,
                               const NetworkCampaignPlan& plan) {
  SAFFIRE_CHECK_MSG(
      checkpoint.sweep_hash.empty() ||
          checkpoint.sweep_hash == NetworkSweepHash(spec),
      "checkpoint was produced by a different network sweep (hash mismatch)");
  for (const auto& [index, key] : checkpoint.campaign_keys) {
    SAFFIRE_CHECK_MSG(index < plan.campaigns.size(),
                      "checkpoint has campaign " << index << " but the plan"
                      << " has only " << plan.campaigns.size());
    SAFFIRE_CHECK_MSG(key == NetworkCampaignKey(spec, plan.campaigns[index]),
                      "checkpoint campaign "
                          << index
                          << " was produced by a different sweep than the "
                             "plan's (key mismatch)");
  }
  for (const auto& [coords, record] : checkpoint.records) {
    (void)record;
    SAFFIRE_CHECK_MSG(coords.first < plan.campaigns.size(),
                      "checkpoint record for campaign " << coords.first
                                                        << " out of range");
    SAFFIRE_CHECK_MSG(coords.second >= 0 &&
                          coords.second < plan.experiments_per_campaign(),
                      "checkpoint record for experiment "
                          << coords.second << " out of range");
  }
}

}  // namespace saffire
