#include "service/checkpoint.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/crc32.h"
#include "common/json.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace saffire {

// The raw byte sequence ,"crc":" cannot occur inside a JSON string literal
// (its quotes would be escaped), so the last occurrence is always the seal
// itself.
bool CheckpointLineCrcOk(const std::string& line) {
  const std::size_t pos = line.rfind(",\"crc\":\"");
  if (pos == std::string::npos) return true;
  // The seal is the line's final member: ,"crc":"xxxxxxxx"}
  const std::size_t hex = pos + 8;
  if (line.size() != hex + 10 || line.compare(hex + 8, 2, "\"}") != 0) {
    return false;
  }
  std::uint32_t stored = 0;
  for (std::size_t i = hex; i < hex + 8; ++i) {
    const char c = line[i];
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
    stored = stored * 16 +
             static_cast<std::uint32_t>(
                 c <= '9' ? c - '0'
                          : (c | 0x20) - 'a' + 10);
  }
  return stored == Crc32(std::string_view(line).substr(0, pos));
}

namespace {

// Rehydrates one "record" line. Enum payloads are integers in the JSONL
// (stable across renames); each is range-checked so a corrupted file cannot
// smuggle out-of-range values into downstream switch statements.
ExperimentRecord ParseRecordLine(const JsonValue& json) {
  ExperimentRecord record;
  record.fault.pe.row = static_cast<std::int32_t>(json.At("pe_row").AsInt());
  record.fault.pe.col = static_cast<std::int32_t>(json.At("pe_col").AsInt());

  const std::int64_t signal = json.At("signal").AsInt();
  SAFFIRE_CHECK_MSG(signal >= 0 && signal < kNumMacSignals,
                    "signal " << signal << " out of range");
  record.fault.signal = static_cast<MacSignal>(signal);

  record.fault.bit = static_cast<int>(json.At("bit").AsInt());

  const std::int64_t polarity = json.At("polarity").AsInt();
  SAFFIRE_CHECK_MSG(polarity == 0 || polarity == 1,
                    "polarity " << polarity << " out of range");
  record.fault.polarity = static_cast<StuckPolarity>(polarity);

  const std::int64_t kind = json.At("kind").AsInt();
  SAFFIRE_CHECK_MSG(kind == 0 || kind == 1, "kind " << kind << " out of range");
  record.fault.kind = static_cast<FaultKind>(kind);

  record.fault.at_cycle = json.At("at_cycle").AsInt();

  const std::int64_t observed = json.At("observed").AsInt();
  SAFFIRE_CHECK_MSG(observed >= 0 && observed < kNumPatternClasses,
                    "observed class " << observed << " out of range");
  record.observed = static_cast<PatternClass>(observed);

  const std::int64_t predicted = json.At("predicted").AsInt();
  SAFFIRE_CHECK_MSG(predicted >= 0 && predicted < kNumPatternClasses,
                    "predicted class " << predicted << " out of range");
  record.predicted = static_cast<PatternClass>(predicted);

  record.prediction_exact = json.At("prediction_exact").AsBool();
  record.observed_within_predicted =
      json.At("observed_within_predicted").AsBool();
  record.corrupted_count = json.At("corrupted_count").AsInt();
  record.max_abs_delta = json.At("max_abs_delta").AsInt();
  record.fault_activations = json.At("fault_activations").AsUint();
  record.cycles = json.At("cycles").AsInt();
  record.pe_steps = json.At("pe_steps").AsUint();
  record.pe_steps_skipped = json.At("pe_steps_skipped").AsUint();
  return record;
}

// Returns true when the line contributed a record (for CheckpointLoadStats).
bool ApplyLine(SweepCheckpoint& checkpoint, const JsonValue& json) {
  const std::string& type = json.At("type").AsString();
  if (type == "campaign") {
    // Parse every field before touching the checkpoint: a line that throws
    // halfway must leave no partial campaign behind (the loader drops such
    // lines, and a half-applied one would fail validation later).
    const auto index = static_cast<std::size_t>(json.At("campaign").AsUint());
    const std::string& key = json.At("key").AsString();
    const std::int64_t total_experiments = json.At("experiments").AsInt();
    const std::int64_t golden_cycles = json.At("golden_cycles").AsInt();
    const std::uint64_t golden_pe_steps = json.At("golden_pe_steps").AsUint();
    const bool golden_cache_hit = json.At("golden_cache_hit").AsBool();
    CheckpointCampaign& campaign = checkpoint.campaigns[index];
    SAFFIRE_CHECK_MSG(campaign.key.empty() || campaign.key == key,
                      "campaign " << index
                                  << " appears twice with different keys");
    campaign.key = key;
    campaign.total_experiments = total_experiments;
    campaign.golden_cycles = golden_cycles;
    campaign.golden_pe_steps = golden_pe_steps;
    campaign.golden_cache_hit = golden_cache_hit;
    return false;
  }
  if (type == "record") {
    const auto index = static_cast<std::size_t>(json.At("campaign").AsUint());
    const auto it = checkpoint.campaigns.find(index);
    SAFFIRE_CHECK_MSG(it != checkpoint.campaigns.end(),
                      "record for campaign " << index
                                             << " before its campaign line");
    const std::int64_t experiment = json.At("experiment").AsInt();
    const ExperimentRecord record = ParseRecordLine(json);
    const auto [slot, inserted] =
        it->second.records.emplace(experiment, record);
    SAFFIRE_CHECK_MSG(inserted || slot->second == record,
                      "conflicting duplicates of campaign "
                          << index << " experiment " << experiment);
    return true;
  }
  // Forward compatibility: "sweep"/"sweep_end"/"failed" markers and any
  // future line types carry no resumable state. Skipping "failed" is what
  // makes a resume retry quarantined sites.
  return false;
}

}  // namespace

void SweepCheckpoint::MergeFrom(const SweepCheckpoint& other) {
  for (const auto& [index, theirs] : other.campaigns) {
    const auto it = campaigns.find(index);
    if (it == campaigns.end()) {
      campaigns.emplace(index, theirs);
      continue;
    }
    CheckpointCampaign& ours = it->second;
    SAFFIRE_CHECK_MSG(ours.key == theirs.key,
                      "checkpoints disagree on campaign " << index
                                                          << "'s key");
    SAFFIRE_CHECK_MSG(
        ours.total_experiments == theirs.total_experiments,
        "checkpoints disagree on campaign " << index << "'s size");
    for (const auto& [experiment, record] : theirs.records) {
      const auto [slot, inserted] = ours.records.emplace(experiment, record);
      SAFFIRE_CHECK_MSG(inserted || slot->second == record,
                        "checkpoints conflict on campaign "
                            << index << " experiment " << experiment);
    }
  }
}

const ExperimentRecord* SweepCheckpoint::Find(
    std::size_t campaign_index, std::int64_t experiment_index) const {
  const auto campaign = campaigns.find(campaign_index);
  if (campaign == campaigns.end()) return nullptr;
  const auto record = campaign->second.records.find(experiment_index);
  return record == campaign->second.records.end() ? nullptr : &record->second;
}

std::int64_t SweepCheckpoint::TotalRecords() const {
  std::int64_t total = 0;
  for (const auto& [index, campaign] : campaigns) {
    total += static_cast<std::int64_t>(campaign.records.size());
  }
  return total;
}

SweepCheckpoint LoadSweepCheckpoint(std::istream& in,
                                    CheckpointLoadStats* stats) {
  SweepCheckpoint checkpoint;
  CheckpointLoadStats local;
  CheckpointLoadStats& counts = stats != nullptr ? *stats : local;
  counts = CheckpointLoadStats{};
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++counts.lines;
    if (!CheckpointLineCrcOk(line)) {
      ++counts.dropped;
      SAFFIRE_LOG_WARN << "checkpoint line " << line_number
                       << " failed its CRC seal, dropping it";
      continue;
    }
    try {
      const JsonValue json = JsonValue::Parse(line);
      if (ApplyLine(checkpoint, json)) ++counts.records;
    } catch (const std::invalid_argument& error) {
      // Truncated tail (a run killed mid-write), bit-rotted interior line
      // that happened to keep or predate its seal, or content inconsistent
      // with preceding lines — either way the line cannot be trusted, and
      // re-simulating it is always safe.
      ++counts.dropped;
      SAFFIRE_LOG_WARN << "checkpoint line " << line_number
                       << " dropped: " << error.what();
    }
  }
  if (counts.dropped > 0) {
    // Surfaced as a metric too, so monitored fleets see on-disk corruption
    // without scraping logs or the CLI's resume line.
    static obs::Counter& dropped_lines =
        obs::MetricsRegistry::Default().GetCounter(
            "saffire.checkpoint.dropped_lines",
            "corrupt or torn checkpoint lines dropped while loading");
    dropped_lines.Increment(counts.dropped);
    SAFFIRE_LOG_WARN << "checkpoint: dropped " << counts.dropped << " of "
                     << counts.lines
                     << " lines; the affected experiments will be "
                        "re-simulated";
  }
  return checkpoint;
}

void ValidateCheckpoint(const SweepCheckpoint& checkpoint,
                        const CampaignPlan& plan) {
  for (const auto& [index, campaign] : checkpoint.campaigns) {
    SAFFIRE_CHECK_MSG(index < plan.campaigns.size(),
                      "checkpoint has campaign " << index << " but the plan"
                      << " has only " << plan.campaigns.size());
    SAFFIRE_CHECK_MSG(
        campaign.key == CampaignKey(plan.campaigns[index]),
        "checkpoint campaign " << index
                               << " was produced by a different config "
                                  "than the plan's (key mismatch)");
    SAFFIRE_CHECK_MSG(campaign.total_experiments == plan.site_counts[index],
                      "checkpoint campaign "
                          << index << " has " << campaign.total_experiments
                          << " experiments, plan expects "
                          << plan.site_counts[index]);
    for (const auto& [experiment, record] : campaign.records) {
      SAFFIRE_CHECK_MSG(experiment >= 0 &&
                            experiment < campaign.total_experiments,
                        "checkpoint campaign " << index << " experiment "
                                               << experiment
                                               << " out of range");
      (void)record;
    }
  }
}

}  // namespace saffire
