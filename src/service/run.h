// The one sweep entry point. Every way of running campaigns — spec-driven
// sweeps, pre-built plans, single-campaign plans — funnels through
// RunSweep: expand to a CampaignPlan, pick the executor
// (RunOptions::executor or the process-wide shared pool), and stream
// records to the sink in canonical order. Callers choose *what* to run
// (spec/plan) and *where records go* (sink) independently of *how* it
// executes (RunOptions). When RunOptions::result_cache is set, the facade
// additionally consults the content-addressed result cache before
// executing (cached campaigns replay without simulating) and writes every
// freshly completed campaign back.
#pragma once

#include <vector>

#include "service/executor.h"
#include "service/sink.h"
#include "service/sweep.h"

namespace saffire {

// Expands the spec (BuildCampaignPlan) and runs it. Throws
// std::invalid_argument on an invalid spec, and rethrows any simulation
// error after in-flight work drains (under the default abort policy; see
// RunOptions::resilience for retry/quarantine behavior). The returned
// SweepOutcome summarizes the run — callers that tolerate quarantine must
// gate on outcome.ok() themselves.
SweepOutcome RunSweep(const SweepSpec& spec, const RunOptions& options,
                      RecordSink& sink);

// Heterogeneous sweep: the concatenated plan of every spec, in order.
SweepOutcome RunSweep(const std::vector<SweepSpec>& specs,
                      const RunOptions& options, RecordSink& sink);

// Runs an already-built plan — the overload the others lower to, and the
// one to use with SingleCampaignPlan or hand-assembled plans.
SweepOutcome RunSweep(const CampaignPlan& plan, const RunOptions& options,
                      RecordSink& sink);

}  // namespace saffire
