#include "service/run.h"

namespace saffire {

void RunSweep(const CampaignPlan& plan, const RunOptions& options,
              RecordSink& sink) {
  CampaignExecutor& executor =
      options.executor != nullptr ? *options.executor
                                  : CampaignExecutor::Shared();
  executor.Run(plan, sink, options);
}

void RunSweep(const SweepSpec& spec, const RunOptions& options,
              RecordSink& sink) {
  spec.Validate();
  RunSweep(BuildCampaignPlan(spec), options, sink);
}

void RunSweep(const std::vector<SweepSpec>& specs, const RunOptions& options,
              RecordSink& sink) {
  for (const SweepSpec& spec : specs) spec.Validate();
  RunSweep(BuildCampaignPlan(specs), options, sink);
}

}  // namespace saffire
