#include "service/run.h"

namespace saffire {

SweepOutcome RunSweep(const CampaignPlan& plan, const RunOptions& options,
                      RecordSink& sink) {
  CampaignExecutor& executor =
      options.executor != nullptr ? *options.executor
                                  : CampaignExecutor::Shared();
  return executor.Run(plan, sink, options);
}

SweepOutcome RunSweep(const SweepSpec& spec, const RunOptions& options,
                      RecordSink& sink) {
  spec.Validate();
  return RunSweep(BuildCampaignPlan(spec), options, sink);
}

SweepOutcome RunSweep(const std::vector<SweepSpec>& specs,
                      const RunOptions& options, RecordSink& sink) {
  for (const SweepSpec& spec : specs) spec.Validate();
  return RunSweep(BuildCampaignPlan(specs), options, sink);
}

}  // namespace saffire
