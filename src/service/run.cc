#include "service/run.h"

#include <exception>
#include <optional>
#include <set>
#include <utility>

#include "common/log.h"
#include "service/result_cache.h"

namespace saffire {

namespace {

// Forwards every callback to the inner sink while accumulating each
// campaign's records, and writes a campaign back to the result cache the
// moment OnCampaignEnd shows it complete (every experiment has a record —
// quarantined or sharded campaigns are not cacheable). A campaign that
// tripped a self-check mismatch is not cacheable either: it still
// completes (the mismatched group recomputes on a trusted rung), but
// records emitted before the demotion / synthesis-disable were never
// re-verified, and caching them would launder an unhealthy (exit-3) run
// into permanent silent hits for later healthy-looking runs. Campaigns
// that were themselves served from the cache are skipped;
// checkpoint-replayed ones are stored, which lets a resumed sweep warm the
// cache for free.
class CacheStoreSink : public RecordSink {
 public:
  CacheStoreSink(RecordSink& inner, const ResultCache& cache,
                 const std::set<std::size_t>& cache_hits)
      : inner_(inner), cache_(cache), cache_hits_(cache_hits) {}

  void OnSweepBegin(const CampaignPlan& plan) override {
    inner_.OnSweepBegin(plan);
  }
  void OnCampaignBegin(const CampaignBeginInfo& info) override {
    inner_.OnCampaignBegin(info);
    entry_ = CheckpointCampaign();
    entry_.total_experiments = info.total_experiments;
    entry_.golden_cycles = info.golden_cycles;
    entry_.golden_pe_steps = info.golden_pe_steps;
    entry_.golden_cache_hit = info.golden_cache_hit;
    collect_ = cache_hits_.count(info.campaign_index) == 0;
  }
  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override {
    inner_.OnRecord(info, experiment_index, record);
    if (collect_) entry_.records.emplace(experiment_index, record);
  }
  void OnExperimentFailed(const CampaignBeginInfo& info,
                          const FailedRecord& failure) override {
    inner_.OnExperimentFailed(info, failure);
    collect_ = false;
  }
  void OnCampaignEnd(const CampaignBeginInfo& info) override {
    inner_.OnCampaignEnd(info);
    if (collect_ && info.selfcheck_mismatches == 0 &&
        static_cast<std::int64_t>(entry_.records.size()) ==
            info.total_experiments) {
      if (cache_.Store(*info.config, entry_)) ++stores_;
    }
    entry_ = CheckpointCampaign();
  }
  void OnSweepEnd() override { inner_.OnSweepEnd(); }

  std::int64_t stores() const { return stores_; }

 private:
  RecordSink& inner_;
  const ResultCache& cache_;
  const std::set<std::size_t>& cache_hits_;
  CheckpointCampaign entry_;
  bool collect_ = false;
  std::int64_t stores_ = 0;
};

SweepOutcome RunWithCache(CampaignExecutor& executor, const CampaignPlan& plan,
                          const RunOptions& options, RecordSink& sink) {
  const ResultCache& cache = *options.result_cache;

  // Merge cached campaigns into the replay checkpoint. MergeFrom enforces
  // bit-identical overlap with any resume checkpoint; an entry that
  // conflicts is discarded like any other damaged entry — a cache may slow
  // a run down, never change its records.
  SweepCheckpoint merged;
  if (options.checkpoint != nullptr) merged = *options.checkpoint;
  std::set<std::size_t> hit_campaigns;
  std::int64_t misses = 0;
  for (std::size_t c = 0; c < plan.campaigns.size(); ++c) {
    const auto it = merged.campaigns.find(c);
    if (it != merged.campaigns.end() &&
        static_cast<std::int64_t>(it->second.records.size()) ==
            plan.site_counts[c]) {
      continue;  // the checkpoint already covers it fully
    }
    std::optional<CheckpointCampaign> entry =
        cache.Load(plan.campaigns[c], plan.site_counts[c]);
    if (!entry.has_value()) {
      ++misses;
      continue;
    }
    SweepCheckpoint addition;
    addition.campaigns.emplace(c, std::move(*entry));
    try {
      merged.MergeFrom(addition);
      hit_campaigns.insert(c);
    } catch (const std::exception& error) {
      SAFFIRE_LOG_WARN << "result cache: entry for campaign " << c
                       << " conflicts with the resume checkpoint, ignoring: "
                       << error.what();
      ++misses;
    }
  }

  CacheStoreSink store_sink(sink, cache, hit_campaigns);
  RunOptions effective = options;
  effective.checkpoint = merged.campaigns.empty() ? nullptr : &merged;
  SweepOutcome outcome = executor.Run(plan, store_sink, effective);
  outcome.cache_hits = static_cast<std::int64_t>(hit_campaigns.size());
  outcome.cache_misses = misses;
  outcome.cache_stores = store_sink.stores();
  return outcome;
}

}  // namespace

SweepOutcome RunSweep(const CampaignPlan& plan, const RunOptions& options,
                      RecordSink& sink) {
  CampaignExecutor& executor =
      options.executor != nullptr ? *options.executor
                                  : CampaignExecutor::Shared();
  // The cache works in whole campaigns; a shard run never completes one, so
  // it bypasses the cache entirely (and must not poison it).
  if (options.result_cache != nullptr && options.only_shard < 0) {
    return RunWithCache(executor, plan, options, sink);
  }
  return executor.Run(plan, sink, options);
}

SweepOutcome RunSweep(const SweepSpec& spec, const RunOptions& options,
                      RecordSink& sink) {
  spec.Validate();
  return RunSweep(BuildCampaignPlan(spec), options, sink);
}

SweepOutcome RunSweep(const std::vector<SweepSpec>& specs,
                      const RunOptions& options, RecordSink& sink) {
  for (const SweepSpec& spec : specs) spec.Validate();
  return RunSweep(BuildCampaignPlan(specs), options, sink);
}

}  // namespace saffire
