#include "service/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <iterator>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "obs/trace.h"

namespace saffire {

namespace {

// Set while a thread is executing inside a pool worker; a nested Run() from
// such a thread executes inline instead of queueing work its own pool can
// never pick up.
thread_local bool t_is_pool_worker = false;

// Sentinel worker index for threads outside the pool (inline nested runs).
constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

// Microseconds between two steady_clock points, for busy-time counters.
std::int64_t MicrosBetween(std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
      .count();
}

// Serializes an AccelConfig into the per-worker simulator cache key.
std::string SimulatorKey(const AccelConfig& accel) {
  std::ostringstream key;
  key << accel.array.rows << ',' << accel.array.cols << ','
      << accel.array.input_bits << ',' << accel.array.acc_bits << ','
      << accel.spad_rows << ',' << accel.acc_rows << ','
      << accel.max_compute_rows << ',' << accel.double_buffered_weights
      << ',' << accel.dram_bytes;
  return key.str();
}

}  // namespace

// A worker's cached simulator. Capacity one: each FiRunner owns a
// dram_bytes-sized memory image, so caching more than the last-used
// configuration per worker trades too much memory for too little reuse
// (within a sweep, consecutive campaigns almost always share the accel).
struct CampaignExecutor::WorkerCache {
  std::string key;
  std::optional<FiRunner> runner;
  // Pool worker index owning this cache, kNoWorker for inline nested runs —
  // the identity behind the steal counter and per-worker busy time.
  std::size_t worker_index = kNoWorker;

  // Returns a simulator for `accel`, setting *constructed to whether a new
  // one had to be built (vs a cache hit).
  FiRunner& Get(const AccelConfig& accel, bool* constructed) {
    std::string want = SimulatorKey(accel);
    if (!runner.has_value() || key != want) {
      runner.emplace(accel);
      key = std::move(want);
      *constructed = true;
    } else {
      *constructed = false;
    }
    return *runner;
  }
};

namespace {

// Per-campaign execution state inside a run. Guarded by the executor mutex
// except where noted.
struct CampaignState {
  enum class Stage : std::uint8_t {
    kPending = 0,   // not yet prepared
    kPreparing,     // a worker is running PrepareCampaign
    kReady,         // prepared; chunks claimable
    kReplayOnly,    // fully covered by the checkpoint; nothing to simulate
  };

  Stage stage = Stage::kPending;
  std::int64_t total = 0;  // plan site count
  // Worker that ran PrepareOne (kNoWorker before preparation / inline);
  // chunks claimed by any other worker count as steals.
  std::size_t prepared_by = static_cast<std::size_t>(-1);

  // Indices this run delivers (in-shard ∪ checkpointed), ascending, and the
  // subset to simulate (deliverable minus checkpointed).
  std::vector<std::int64_t> deliverable;
  std::vector<std::int64_t> to_simulate;
  std::int64_t replayed_records = 0;

  // Chunks partition to_simulate by position: chunk i covers positions
  // [chunk_bounds[i], chunk_bounds[i+1]).
  std::vector<std::int64_t> chunk_bounds;
  std::size_t next_chunk = 0;
  std::size_t chunks_finished = 0;

  // Read-only after the stage becomes kReady (workers access it without
  // the lock while running experiments).
  PreparedCampaign prepared;
  // One slot per experiment index, filled from checkpoint replay (in Run)
  // or chunk publication (under the lock).
  std::vector<std::optional<ExperimentRecord>> records;

  // Batch-engine occupancy, accumulated under the lock as chunks publish;
  // copied into `info` before OnCampaignEnd (by which point every chunk has
  // published, so the values are final).
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;

  CampaignBeginInfo info;
  bool begun = false;
  bool ended = false;
  std::size_t deliver_cursor = 0;  // position in `deliverable`

  bool HasClaimableChunk() const {
    return next_chunk + 1 < chunk_bounds.size();
  }
  bool AllChunksDone() const {
    return chunk_bounds.size() < 2 ||
           chunks_finished == chunk_bounds.size() - 1;
  }
};

}  // namespace

// One Run() invocation's shared state, living on the calling thread's
// stack; workers hold pointers only while it is registered in `active_`.
struct CampaignExecutor::RunState {
  const CampaignPlan* plan = nullptr;
  RecordSink* sink = nullptr;
  int cap = 0;               // max workers serving this run
  int active_workers = 0;    // workers currently executing its tasks
  std::size_t next_prepare = 0;
  std::vector<CampaignState> campaigns;
  std::size_t deliver_campaign = 0;  // canonical delivery frontier
  bool delivering = false;  // a thread is inside sink callbacks
  std::exception_ptr error;
  std::condition_variable done_cv;

  bool Finished() const { return deliver_campaign == campaigns.size(); }
};

CampaignExecutor::CampaignExecutor(const ExecutorOptions& options)
    : options_(options) {
  SAFFIRE_CHECK_MSG(options.threads >= 1 && options.threads <= 256,
                    "threads=" << options.threads);
  SAFFIRE_CHECK_MSG(options.lookahead >= 1,
                    "lookahead=" << options.lookahead);
  SAFFIRE_CHECK_MSG(options.batch_lanes >= 0,
                    "batch_lanes=" << options.batch_lanes);
  if (options_.metrics == nullptr) {
    options_.metrics = &obs::MetricsRegistry::Default();
  }

  // Register this pool's instrument series, labelled by instance so
  // concurrent executors sharing a registry stay distinguishable.
  static std::atomic<int> pool_ids{0};
  const std::string pool_label =
      "pool=\"" + std::to_string(pool_ids.fetch_add(1)) + "\"";
  obs::MetricsRegistry& registry = *options_.metrics;
  const auto counter = [&](const char* name, const char* help) {
    return &registry.GetCounter(name, help, pool_label);
  };
  metrics_.runs = counter("saffire.executor.runs", "Run() invocations");
  metrics_.campaigns_executed = counter("saffire.executor.campaigns_executed",
                                        "campaigns simulated");
  metrics_.campaigns_replayed = counter(
      "saffire.executor.campaigns_replayed",
      "campaigns satisfied entirely from a checkpoint");
  metrics_.experiments_run =
      counter("saffire.executor.experiments_run", "experiments simulated");
  metrics_.experiments_replayed =
      counter("saffire.executor.experiments_replayed",
              "experiments replayed from checkpointed records");
  metrics_.chunks_executed =
      counter("saffire.executor.chunks_executed", "work chunks executed");
  metrics_.chunks_stolen =
      counter("saffire.executor.chunks_stolen",
              "chunks executed by a worker that did not prepare the campaign");
  metrics_.lanes_filled = counter("saffire.executor.lanes_filled",
                                  "occupied batch-engine lanes");
  metrics_.batches_run =
      counter("saffire.executor.batches_run", "batch-engine array passes");
  metrics_.simulators_constructed =
      counter("saffire.executor.simulators_constructed",
              "FiRunner constructions");
  metrics_.simulators_reused = counter("saffire.executor.simulators_reused",
                                       "per-worker simulator cache hits");
  metrics_.golden_cache_hits =
      counter("saffire.executor.golden_cache_hits",
              "golden runs served from the process-wide cache");
  metrics_.queue_depth =
      &registry.GetGauge("saffire.executor.queue_depth",
                         "claimable chunks across active runs", pool_label);
  metrics_.busy_workers =
      &registry.GetGauge("saffire.executor.busy_workers",
                         "workers currently executing a task", pool_label);
  metrics_.chunk_seconds = &registry.GetHistogram(
      "saffire.executor.chunk_seconds", "wall time per executed chunk",
      pool_label);
  metrics_.worker_busy_us.reserve(static_cast<std::size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) {
    metrics_.worker_busy_us.push_back(&registry.GetCounter(
        "saffire.executor.worker_busy_us",
        "microseconds each worker spent executing tasks",
        pool_label + ",worker=\"" + std::to_string(i) + "\""));
  }

  workers_.reserve(static_cast<std::size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

CampaignExecutor::CampaignExecutor(int threads)
    : CampaignExecutor(ExecutorOptions{.threads = threads}) {}

CampaignExecutor::~CampaignExecutor() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

CampaignExecutor& CampaignExecutor::Shared() {
  // Meyers static: joined at process exit, so leak checkers stay quiet and
  // in-flight work drains before static destruction proceeds.
  static CampaignExecutor executor;
  return executor;
}

ExecutorStats CampaignExecutor::stats() const {
  // Thin accessor over the registry-backed counters; individual fields are
  // each exact, though a racing snapshot may observe them at slightly
  // different instants (same contract a Prometheus scrape gets).
  ExecutorStats stats;
  stats.pool_threads = static_cast<int>(workers_.size());
  stats.runs = metrics_.runs->value();
  stats.campaigns_executed = metrics_.campaigns_executed->value();
  stats.campaigns_replayed = metrics_.campaigns_replayed->value();
  stats.experiments_run = metrics_.experiments_run->value();
  stats.experiments_replayed = metrics_.experiments_replayed->value();
  stats.chunks_executed = metrics_.chunks_executed->value();
  stats.chunks_stolen = metrics_.chunks_stolen->value();
  stats.lanes_filled = metrics_.lanes_filled->value();
  stats.batches_run = metrics_.batches_run->value();
  stats.simulators_constructed = metrics_.simulators_constructed->value();
  stats.simulators_reused = metrics_.simulators_reused->value();
  stats.golden_cache_hits = metrics_.golden_cache_hits->value();
  return stats;
}

std::int64_t CampaignExecutor::EffectiveBatchLanes(
    const CampaignConfig& config) const {
  if (options_.batch_lanes <= 0) return config.batch_lanes;
  return std::min(config.batch_lanes, options_.batch_lanes);
}

void CampaignExecutor::Run(const CampaignPlan& plan, RecordSink& sink,
                           const RunOptions& options) {
  SAFFIRE_CHECK_MSG(!plan.campaigns.empty(), "empty campaign plan");
  SAFFIRE_CHECK_MSG(plan.campaigns.size() == plan.site_counts.size(),
                    "malformed plan: " << plan.campaigns.size()
                                       << " campaigns, "
                                       << plan.site_counts.size()
                                       << " site counts");
  SAFFIRE_CHECK_MSG(
      options.max_parallelism >= 0 && options.max_parallelism <= 256,
      "max_parallelism=" << options.max_parallelism);
  for (const CampaignConfig& config : plan.campaigns) {
    config.accel.Validate();
    config.workload.Validate();
  }
  if (options.checkpoint != nullptr) {
    ValidateCheckpoint(*options.checkpoint, plan);
  }

  RunState run;
  run.plan = &plan;
  run.sink = &sink;
  run.cap = options.max_parallelism == 0
                ? static_cast<int>(workers_.size())
                : std::min(options.max_parallelism,
                           static_cast<int>(workers_.size()));

  // Expand per-campaign delivery/replay/simulation sets.
  std::int64_t replay_only_campaigns = 0;
  std::int64_t replayed_experiments = 0;
  run.campaigns.resize(plan.campaigns.size());
  for (std::size_t c = 0; c < plan.campaigns.size(); ++c) {
    CampaignState& campaign = run.campaigns[c];
    campaign.total = plan.site_counts[c];
    campaign.records.resize(static_cast<std::size_t>(campaign.total));

    std::vector<bool> deliver(static_cast<std::size_t>(campaign.total),
                              options.only_shard < 0);
    if (options.only_shard >= 0) {
      for (const PlannedShard& shard : plan.shards) {
        if (shard.campaign_index != c ||
            shard.shard_index != options.only_shard) {
          continue;
        }
        for (std::int64_t i = shard.begin; i < shard.end; ++i) {
          deliver[static_cast<std::size_t>(i)] = true;
        }
      }
    }
    const CheckpointCampaign* from = nullptr;
    if (options.checkpoint != nullptr) {
      const auto it = options.checkpoint->campaigns.find(c);
      if (it != options.checkpoint->campaigns.end()) from = &it->second;
    }
    if (from != nullptr) {
      for (const auto& [index, record] : from->records) {
        deliver[static_cast<std::size_t>(index)] = true;
        campaign.records[static_cast<std::size_t>(index)] = record;
      }
    }
    for (std::int64_t i = 0; i < campaign.total; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (!deliver[s]) continue;
      campaign.deliverable.push_back(i);
      if (!campaign.records[s].has_value()) campaign.to_simulate.push_back(i);
    }
    campaign.replayed_records =
        static_cast<std::int64_t>(campaign.deliverable.size()) -
        static_cast<std::int64_t>(campaign.to_simulate.size());
    replayed_experiments += campaign.replayed_records;

    campaign.info.campaign_index = c;
    campaign.info.config = &plan.campaigns[c];
    campaign.info.total_experiments = campaign.total;
    campaign.info.scheduled_experiments =
        static_cast<std::int64_t>(campaign.deliverable.size());

    if (campaign.to_simulate.empty() && from != nullptr) {
      // Fully covered: golden metadata comes from the checkpoint too, so
      // no simulator or golden run is needed at all.
      campaign.stage = CampaignState::Stage::kReplayOnly;
      campaign.info.golden_cycles = from->golden_cycles;
      campaign.info.golden_pe_steps = from->golden_pe_steps;
      campaign.info.golden_cache_hit = from->golden_cache_hit;
      campaign.info.replayed = true;
      ++replay_only_campaigns;
    }
  }

  sink.OnSweepBegin(plan);

  if (t_is_pool_worker) {
    // Nested Run() from inside a pool worker: execute inline, serially —
    // queueing onto a pool we are currently occupying risks deadlock.
    WorkerCache cache;
    std::unique_lock<std::mutex> lock(mutex_);
    metrics_.runs->Increment();
    metrics_.campaigns_replayed->Increment(replay_only_campaigns);
    metrics_.experiments_replayed->Increment(replayed_experiments);
    for (std::size_t c = 0; c < run.campaigns.size(); ++c) {
      CampaignState& campaign = run.campaigns[c];
      if (campaign.stage == CampaignState::Stage::kReplayOnly) continue;
      campaign.stage = CampaignState::Stage::kPreparing;
      lock.unlock();
      PrepareOne(run, c, cache);
      lock.lock();
      while (campaign.HasClaimableChunk()) {
        const std::size_t chunk = campaign.next_chunk++;
        metrics_.queue_depth->Add(-1);
        lock.unlock();
        RunChunk(run, c, cache, campaign.chunk_bounds[chunk],
                 campaign.chunk_bounds[chunk + 1]);
        lock.lock();
        ++campaign.chunks_finished;
      }
    }
    Deliver(run, lock);
    SAFFIRE_ASSERT_MSG(run.Finished(), "inline run left campaigns behind");
    lock.unlock();
    sink.OnSweepEnd();
    return;
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    metrics_.runs->Increment();
    metrics_.campaigns_replayed->Increment(replay_only_campaigns);
    metrics_.experiments_replayed->Increment(replayed_experiments);
    active_.push_back(&run);
    // A replay-only prefix has no tasks to trigger its delivery; push the
    // frontier from here before handing off to the workers.
    Deliver(run, lock);
    work_ready_.notify_all();
    run.done_cv.wait(lock, [&run] {
      return run.Finished() && run.active_workers == 0 && !run.delivering;
    });
    active_.erase(std::find(active_.begin(), active_.end(), &run));
  }
  if (run.error != nullptr) std::rethrow_exception(run.error);
  sink.OnSweepEnd();
}

void CampaignExecutor::WorkerLoop(std::size_t worker_index) {
  t_is_pool_worker = true;
  WorkerCache cache;
  cache.worker_index = worker_index;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_) return;
    if (!RunOneTask(cache, lock)) work_ready_.wait(lock);
  }
}

bool CampaignExecutor::RunOneTask(WorkerCache& cache,
                                  std::unique_lock<std::mutex>& lock) {
  // Scan active runs for work, respecting each run's worker cap — this scan
  // is the work-stealing: a worker serves whichever run (and whichever
  // campaign within it) has a claimable task. Chunks of already-prepared
  // campaigns take priority over preparing new ones so a run's in-flight
  // memory (golden traces + record buffers) stays bounded.
  for (RunState* run : active_) {
    if (run->active_workers >= run->cap || run->error != nullptr) continue;

    // Pass 1: a claimable chunk from any ready campaign.
    for (std::size_t c = 0; c < run->campaigns.size(); ++c) {
      CampaignState& campaign = run->campaigns[c];
      if (campaign.stage != CampaignState::Stage::kReady ||
          !campaign.HasClaimableChunk()) {
        continue;
      }
      const std::size_t chunk = campaign.next_chunk++;
      ++run->active_workers;
      metrics_.busy_workers->Add(1);
      metrics_.queue_depth->Add(-1);
      if (campaign.prepared_by != cache.worker_index) {
        metrics_.chunks_stolen->Increment();
      }
      lock.unlock();
      try {
        RunChunk(*run, c, cache, campaign.chunk_bounds[chunk],
                 campaign.chunk_bounds[chunk + 1]);
        lock.lock();
      } catch (...) {
        lock.lock();
        if (run->error == nullptr) run->error = std::current_exception();
      }
      ++campaign.chunks_finished;
      --run->active_workers;
      metrics_.busy_workers->Add(-1);
      Deliver(*run, lock);
      work_ready_.notify_all();
      return true;
    }

    // Pass 2: prepare the next campaign, with bounded lookahead so at most
    // cap + lookahead campaigns hold prepared state at once.
    if (run->next_prepare >= run->campaigns.size()) continue;
    int in_flight = 0;
    for (const CampaignState& campaign : run->campaigns) {
      if (campaign.stage == CampaignState::Stage::kPreparing ||
          (campaign.stage == CampaignState::Stage::kReady &&
           !campaign.AllChunksDone())) {
        ++in_flight;
      }
    }
    if (in_flight > run->cap + (options_.lookahead - 1)) continue;
    // Replay-only campaigns never need preparing; skip past them.
    while (run->next_prepare < run->campaigns.size() &&
           run->campaigns[run->next_prepare].stage !=
               CampaignState::Stage::kPending) {
      ++run->next_prepare;
    }
    if (run->next_prepare >= run->campaigns.size()) continue;
    const std::size_t c = run->next_prepare++;
    run->campaigns[c].stage = CampaignState::Stage::kPreparing;
    run->campaigns[c].prepared_by = cache.worker_index;
    ++run->active_workers;
    metrics_.busy_workers->Add(1);
    lock.unlock();
    try {
      PrepareOne(*run, c, cache);
      lock.lock();
    } catch (...) {
      lock.lock();
      if (run->error == nullptr) run->error = std::current_exception();
      // Mark ready with no chunks so the delivery frontier can pass it.
      run->campaigns[c].stage = CampaignState::Stage::kReady;
      run->campaigns[c].chunk_bounds.clear();
    }
    --run->active_workers;
    metrics_.busy_workers->Add(-1);
    Deliver(*run, lock);
    work_ready_.notify_all();
    return true;
  }
  return false;
}

void CampaignExecutor::PrepareOne(RunState& run, std::size_t campaign_index,
                                  WorkerCache& cache) {
  SAFFIRE_SPAN("executor.prepare");
  const auto busy_start = std::chrono::steady_clock::now();
  CampaignState& campaign = run.campaigns[campaign_index];
  const CampaignConfig& config = run.plan->campaigns[campaign_index];

  bool constructed = false;
  FiRunner* golden_runner = nullptr;
  if (config.engine == CampaignEngine::kReference) {
    // Only the reference engine runs its golden on a local simulator; the
    // others go through the process-wide GoldenRunCache.
    golden_runner = &cache.Get(config.accel, &constructed);
  }
  PreparedCampaign prepared = PrepareCampaign(config, golden_runner);
  SAFFIRE_ASSERT_MSG(
      static_cast<std::int64_t>(prepared.faults.size()) == campaign.total,
      "campaign " << campaign_index << ": plan expects " << campaign.total
                  << " sites, prepare produced " << prepared.faults.size());

  std::unique_lock<std::mutex> lock(mutex_);
  if (golden_runner != nullptr) {
    (constructed ? metrics_.simulators_constructed
                 : metrics_.simulators_reused)
        ->Increment();
  }
  if (prepared.golden_cache_hit) metrics_.golden_cache_hits->Increment();
  metrics_.campaigns_executed->Increment();

  campaign.info.golden_cycles = prepared.golden().cycles;
  campaign.info.golden_pe_steps = prepared.golden().pe_steps;
  campaign.info.golden_cache_hit = prepared.golden_cache_hit;
  campaign.prepared = std::move(prepared);

  // Chunk the simulation list: small enough for stealing to balance load
  // across workers, large enough that claiming is not the bottleneck.
  const auto n = static_cast<std::int64_t>(campaign.to_simulate.size());
  std::int64_t chunk_size = std::clamp<std::int64_t>(
      n / (static_cast<std::int64_t>(run.cap) * 4), 1, 64);
  if (config.engine == CampaignEngine::kBatch) {
    // Align chunks to whole batches so a chunk never splits a canonical
    // batch_lanes-sized group across workers (RunChunk batches within its
    // chunk only).
    const std::int64_t lanes = EffectiveBatchLanes(config);
    chunk_size = ((chunk_size + lanes - 1) / lanes) * lanes;
  }
  campaign.chunk_bounds.clear();
  for (std::int64_t p = 0; p < n; p += chunk_size) {
    campaign.chunk_bounds.push_back(p);
  }
  campaign.chunk_bounds.push_back(n);
  campaign.stage = CampaignState::Stage::kReady;
  if (run.error == nullptr) {
    // Publish the new chunks to the queue-depth gauge. An errored run's
    // chunks are never claimed (workers skip it), so they stay off the
    // gauge entirely — Deliver retires any published before the error.
    metrics_.queue_depth->Add(
        static_cast<std::int64_t>(campaign.chunk_bounds.size()) - 1);
  }
  lock.unlock();
  if (cache.worker_index != kNoWorker) {
    metrics_.worker_busy_us[cache.worker_index]->Increment(
        MicrosBetween(busy_start, std::chrono::steady_clock::now()));
  }
}

void CampaignExecutor::RunChunk(RunState& run, std::size_t campaign_index,
                                WorkerCache& cache, std::int64_t begin,
                                std::int64_t end) {
  SAFFIRE_SPAN("executor.chunk");
  const auto busy_start = std::chrono::steady_clock::now();
  CampaignState& campaign = run.campaigns[campaign_index];
  const CampaignConfig& config = run.plan->campaigns[campaign_index];

  bool constructed = false;
  FiRunner& runner = cache.Get(config.accel, &constructed);
  // Buffer locally, publish under the lock: record slots are read by the
  // delivery frontier, which must never observe a half-written record.
  std::vector<ExperimentRecord> chunk;
  chunk.reserve(static_cast<std::size_t>(end - begin));
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;
  if (config.engine == CampaignEngine::kBatch) {
    // Pack this chunk's experiments into lane batches. Groups follow the
    // campaign's canonical batch boundaries (consecutive batch_lanes-sized
    // blocks of the site order) and additionally break wherever the
    // simulation list is non-contiguous (checkpoint holes, shard edges) —
    // RunPreparedBatch takes a contiguous index range. Records are
    // independent across lanes, so the grouping affects occupancy stats
    // only, never record content.
    const std::int64_t lanes = EffectiveBatchLanes(config);
    std::int64_t p = begin;
    while (p < end) {
      const std::int64_t first =
          campaign.to_simulate[static_cast<std::size_t>(p)];
      std::int64_t q = p + 1;
      while (q < end && q - p < lanes &&
             campaign.to_simulate[static_cast<std::size_t>(q)] ==
                 first + (q - p) &&
             (first + (q - p)) % lanes != 0) {
        ++q;
      }
      std::vector<ExperimentRecord> records = RunPreparedBatch(
          campaign.prepared, runner, static_cast<std::size_t>(first),
          static_cast<std::size_t>(first + (q - p)));
      lanes_filled += static_cast<std::uint64_t>(records.size());
      ++batches_run;
      std::move(records.begin(), records.end(), std::back_inserter(chunk));
      p = q;
    }
  } else {
    for (std::int64_t p = begin; p < end; ++p) {
      const std::int64_t index =
          campaign.to_simulate[static_cast<std::size_t>(p)];
      chunk.push_back(RunPreparedExperiment(campaign.prepared, runner,
                                            static_cast<std::size_t>(index)));
    }
  }

  const std::int64_t busy_us =
      MicrosBetween(busy_start, std::chrono::steady_clock::now());

  std::unique_lock<std::mutex> lock(mutex_);
  campaign.lanes_filled += lanes_filled;
  campaign.batches_run += batches_run;
  metrics_.lanes_filled->Increment(static_cast<std::int64_t>(lanes_filled));
  metrics_.batches_run->Increment(static_cast<std::int64_t>(batches_run));
  for (std::int64_t p = begin; p < end; ++p) {
    const std::int64_t index =
        campaign.to_simulate[static_cast<std::size_t>(p)];
    campaign.records[static_cast<std::size_t>(index)] =
        std::move(chunk[static_cast<std::size_t>(p - begin)]);
  }
  (constructed ? metrics_.simulators_constructed : metrics_.simulators_reused)
      ->Increment();
  metrics_.chunks_executed->Increment();
  metrics_.experiments_run->Increment(end - begin);
  lock.unlock();
  metrics_.chunk_seconds->Observe(static_cast<double>(busy_us) * 1e-6);
  if (cache.worker_index != kNoWorker) {
    metrics_.worker_busy_us[cache.worker_index]->Increment(busy_us);
  }
}

void CampaignExecutor::Deliver(RunState& run,
                               std::unique_lock<std::mutex>& lock) {
  if (run.delivering) return;  // the current owner will pick our records up
  run.delivering = true;
  while (run.deliver_campaign < run.campaigns.size()) {
    if (run.error != nullptr) {
      // Fail fast: abandon the frontier so waiters see a finished run once
      // in-flight workers drain; Run() rethrows the stored error. Unclaimed
      // chunks will never be picked up (workers skip errored runs), so
      // retire them from the queue-depth gauge here.
      std::int64_t abandoned = 0;
      for (CampaignState& campaign : run.campaigns) {
        if (campaign.stage != CampaignState::Stage::kReady ||
            campaign.chunk_bounds.size() < 2) {
          continue;
        }
        abandoned += static_cast<std::int64_t>(campaign.chunk_bounds.size() -
                                               1 - campaign.next_chunk);
        campaign.next_chunk = campaign.chunk_bounds.size() - 1;
      }
      if (abandoned > 0) metrics_.queue_depth->Add(-abandoned);
      run.deliver_campaign = run.campaigns.size();
      break;
    }
    CampaignState& campaign = run.campaigns[run.deliver_campaign];
    if (campaign.stage != CampaignState::Stage::kReady &&
        campaign.stage != CampaignState::Stage::kReplayOnly) {
      break;  // golden metadata not known yet
    }
    if (!campaign.begun) {
      campaign.begun = true;
      lock.unlock();
      run.sink->OnCampaignBegin(campaign.info);
      lock.lock();
    }
    while (campaign.deliver_cursor < campaign.deliverable.size()) {
      const std::int64_t index =
          campaign.deliverable[campaign.deliver_cursor];
      const std::optional<ExperimentRecord>& slot =
          campaign.records[static_cast<std::size_t>(index)];
      if (!slot.has_value()) break;
      const ExperimentRecord record = *slot;
      ++campaign.deliver_cursor;
      lock.unlock();
      run.sink->OnRecord(campaign.info, index, record);
      lock.lock();
    }
    if (campaign.deliver_cursor < campaign.deliverable.size()) break;
    if (!campaign.ended) {
      campaign.ended = true;
      // Every deliverable record has been published (the cursor reached the
      // end), so the batch counters are final — safe to copy without racing
      // RunChunk.
      campaign.info.lanes_filled = campaign.lanes_filled;
      campaign.info.batches_run = campaign.batches_run;
      lock.unlock();
      run.sink->OnCampaignEnd(campaign.info);
      lock.lock();
      // Release the campaign's bulk (golden trace reference, fault list,
      // record buffer) as soon as it is fully delivered.
      campaign.prepared = PreparedCampaign();
      campaign.records.clear();
      campaign.records.shrink_to_fit();
    }
    ++run.deliver_campaign;
  }
  run.delivering = false;
  if (run.Finished()) run.done_cv.notify_all();
}

}  // namespace saffire
