#include "service/executor.h"

#include <algorithm>
#include <exception>
#include <iterator>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace saffire {

namespace {

// Set while a thread is executing inside a pool worker; a nested Run() from
// such a thread executes inline instead of queueing work its own pool can
// never pick up.
thread_local bool t_is_pool_worker = false;

// Serializes an AccelConfig into the per-worker simulator cache key.
std::string SimulatorKey(const AccelConfig& accel) {
  std::ostringstream key;
  key << accel.array.rows << ',' << accel.array.cols << ','
      << accel.array.input_bits << ',' << accel.array.acc_bits << ','
      << accel.spad_rows << ',' << accel.acc_rows << ','
      << accel.max_compute_rows << ',' << accel.double_buffered_weights
      << ',' << accel.dram_bytes;
  return key.str();
}

}  // namespace

// A worker's cached simulator. Capacity one: each FiRunner owns a
// dram_bytes-sized memory image, so caching more than the last-used
// configuration per worker trades too much memory for too little reuse
// (within a sweep, consecutive campaigns almost always share the accel).
struct CampaignExecutor::WorkerCache {
  std::string key;
  std::optional<FiRunner> runner;

  // Returns a simulator for `accel`, setting *constructed to whether a new
  // one had to be built (vs a cache hit).
  FiRunner& Get(const AccelConfig& accel, bool* constructed) {
    std::string want = SimulatorKey(accel);
    if (!runner.has_value() || key != want) {
      runner.emplace(accel);
      key = std::move(want);
      *constructed = true;
    } else {
      *constructed = false;
    }
    return *runner;
  }
};

namespace {

// Per-campaign execution state inside a run. Guarded by the executor mutex
// except where noted.
struct CampaignState {
  enum class Stage : std::uint8_t {
    kPending = 0,   // not yet prepared
    kPreparing,     // a worker is running PrepareCampaign
    kReady,         // prepared; chunks claimable
    kReplayOnly,    // fully covered by the checkpoint; nothing to simulate
  };

  Stage stage = Stage::kPending;
  std::int64_t total = 0;  // plan site count

  // Indices this run delivers (in-shard ∪ checkpointed), ascending, and the
  // subset to simulate (deliverable minus checkpointed).
  std::vector<std::int64_t> deliverable;
  std::vector<std::int64_t> to_simulate;
  std::int64_t replayed_records = 0;

  // Chunks partition to_simulate by position: chunk i covers positions
  // [chunk_bounds[i], chunk_bounds[i+1]).
  std::vector<std::int64_t> chunk_bounds;
  std::size_t next_chunk = 0;
  std::size_t chunks_finished = 0;

  // Read-only after the stage becomes kReady (workers access it without
  // the lock while running experiments).
  PreparedCampaign prepared;
  // One slot per experiment index, filled from checkpoint replay (in Run)
  // or chunk publication (under the lock).
  std::vector<std::optional<ExperimentRecord>> records;

  // Batch-engine occupancy, accumulated under the lock as chunks publish;
  // copied into `info` before OnCampaignEnd (by which point every chunk has
  // published, so the values are final).
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;

  CampaignBeginInfo info;
  bool begun = false;
  bool ended = false;
  std::size_t deliver_cursor = 0;  // position in `deliverable`

  bool HasClaimableChunk() const {
    return next_chunk + 1 < chunk_bounds.size();
  }
  bool AllChunksDone() const {
    return chunk_bounds.size() < 2 ||
           chunks_finished == chunk_bounds.size() - 1;
  }
};

}  // namespace

// One Run() invocation's shared state, living on the calling thread's
// stack; workers hold pointers only while it is registered in `active_`.
struct CampaignExecutor::RunState {
  const CampaignPlan* plan = nullptr;
  RecordSink* sink = nullptr;
  int cap = 0;               // max workers serving this run
  int active_workers = 0;    // workers currently executing its tasks
  std::size_t next_prepare = 0;
  std::vector<CampaignState> campaigns;
  std::size_t deliver_campaign = 0;  // canonical delivery frontier
  bool delivering = false;  // a thread is inside sink callbacks
  std::exception_ptr error;
  std::condition_variable done_cv;

  bool Finished() const { return deliver_campaign == campaigns.size(); }
};

CampaignExecutor::CampaignExecutor(int threads) {
  SAFFIRE_CHECK_MSG(threads >= 1 && threads <= 256, "threads=" << threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  stats_.pool_threads = threads;
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

CampaignExecutor::~CampaignExecutor() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

CampaignExecutor& CampaignExecutor::Shared() {
  // Meyers static: joined at process exit, so leak checkers stay quiet and
  // in-flight work drains before static destruction proceeds.
  static CampaignExecutor executor;
  return executor;
}

ExecutorStats CampaignExecutor::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

void CampaignExecutor::Run(const CampaignPlan& plan, RecordSink& sink,
                           const RunOptions& options) {
  SAFFIRE_CHECK_MSG(!plan.campaigns.empty(), "empty campaign plan");
  SAFFIRE_CHECK_MSG(plan.campaigns.size() == plan.site_counts.size(),
                    "malformed plan: " << plan.campaigns.size()
                                       << " campaigns, "
                                       << plan.site_counts.size()
                                       << " site counts");
  SAFFIRE_CHECK_MSG(
      options.max_parallelism >= 0 && options.max_parallelism <= 256,
      "max_parallelism=" << options.max_parallelism);
  for (const CampaignConfig& config : plan.campaigns) {
    config.accel.Validate();
    config.workload.Validate();
  }
  if (options.checkpoint != nullptr) {
    ValidateCheckpoint(*options.checkpoint, plan);
  }

  RunState run;
  run.plan = &plan;
  run.sink = &sink;
  run.cap = options.max_parallelism == 0
                ? static_cast<int>(workers_.size())
                : std::min(options.max_parallelism,
                           static_cast<int>(workers_.size()));

  // Expand per-campaign delivery/replay/simulation sets.
  std::int64_t replay_only_campaigns = 0;
  std::int64_t replayed_experiments = 0;
  run.campaigns.resize(plan.campaigns.size());
  for (std::size_t c = 0; c < plan.campaigns.size(); ++c) {
    CampaignState& campaign = run.campaigns[c];
    campaign.total = plan.site_counts[c];
    campaign.records.resize(static_cast<std::size_t>(campaign.total));

    std::vector<bool> deliver(static_cast<std::size_t>(campaign.total),
                              options.only_shard < 0);
    if (options.only_shard >= 0) {
      for (const PlannedShard& shard : plan.shards) {
        if (shard.campaign_index != c ||
            shard.shard_index != options.only_shard) {
          continue;
        }
        for (std::int64_t i = shard.begin; i < shard.end; ++i) {
          deliver[static_cast<std::size_t>(i)] = true;
        }
      }
    }
    const CheckpointCampaign* from = nullptr;
    if (options.checkpoint != nullptr) {
      const auto it = options.checkpoint->campaigns.find(c);
      if (it != options.checkpoint->campaigns.end()) from = &it->second;
    }
    if (from != nullptr) {
      for (const auto& [index, record] : from->records) {
        deliver[static_cast<std::size_t>(index)] = true;
        campaign.records[static_cast<std::size_t>(index)] = record;
      }
    }
    for (std::int64_t i = 0; i < campaign.total; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (!deliver[s]) continue;
      campaign.deliverable.push_back(i);
      if (!campaign.records[s].has_value()) campaign.to_simulate.push_back(i);
    }
    campaign.replayed_records =
        static_cast<std::int64_t>(campaign.deliverable.size()) -
        static_cast<std::int64_t>(campaign.to_simulate.size());
    replayed_experiments += campaign.replayed_records;

    campaign.info.campaign_index = c;
    campaign.info.config = &plan.campaigns[c];
    campaign.info.total_experiments = campaign.total;
    campaign.info.scheduled_experiments =
        static_cast<std::int64_t>(campaign.deliverable.size());

    if (campaign.to_simulate.empty() && from != nullptr) {
      // Fully covered: golden metadata comes from the checkpoint too, so
      // no simulator or golden run is needed at all.
      campaign.stage = CampaignState::Stage::kReplayOnly;
      campaign.info.golden_cycles = from->golden_cycles;
      campaign.info.golden_pe_steps = from->golden_pe_steps;
      campaign.info.golden_cache_hit = from->golden_cache_hit;
      campaign.info.replayed = true;
      ++replay_only_campaigns;
    }
  }

  sink.OnSweepBegin(plan);

  if (t_is_pool_worker) {
    // Nested Run() from inside a pool worker: execute inline, serially —
    // queueing onto a pool we are currently occupying risks deadlock.
    WorkerCache cache;
    std::unique_lock<std::mutex> lock(mutex_);
    ++stats_.runs;
    stats_.campaigns_replayed += replay_only_campaigns;
    stats_.experiments_replayed += replayed_experiments;
    for (std::size_t c = 0; c < run.campaigns.size(); ++c) {
      CampaignState& campaign = run.campaigns[c];
      if (campaign.stage == CampaignState::Stage::kReplayOnly) continue;
      campaign.stage = CampaignState::Stage::kPreparing;
      lock.unlock();
      PrepareOne(run, c, cache);
      lock.lock();
      while (campaign.HasClaimableChunk()) {
        const std::size_t chunk = campaign.next_chunk++;
        lock.unlock();
        RunChunk(run, c, cache, campaign.chunk_bounds[chunk],
                 campaign.chunk_bounds[chunk + 1]);
        lock.lock();
        ++campaign.chunks_finished;
      }
    }
    Deliver(run, lock);
    SAFFIRE_ASSERT_MSG(run.Finished(), "inline run left campaigns behind");
    lock.unlock();
    sink.OnSweepEnd();
    return;
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++stats_.runs;
    stats_.campaigns_replayed += replay_only_campaigns;
    stats_.experiments_replayed += replayed_experiments;
    active_.push_back(&run);
    // A replay-only prefix has no tasks to trigger its delivery; push the
    // frontier from here before handing off to the workers.
    Deliver(run, lock);
    work_ready_.notify_all();
    run.done_cv.wait(lock, [&run] {
      return run.Finished() && run.active_workers == 0 && !run.delivering;
    });
    active_.erase(std::find(active_.begin(), active_.end(), &run));
  }
  if (run.error != nullptr) std::rethrow_exception(run.error);
  sink.OnSweepEnd();
}

void CampaignExecutor::WorkerLoop(std::size_t /*worker_index*/) {
  t_is_pool_worker = true;
  WorkerCache cache;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_) return;
    if (!RunOneTask(cache, lock)) work_ready_.wait(lock);
  }
}

bool CampaignExecutor::RunOneTask(WorkerCache& cache,
                                  std::unique_lock<std::mutex>& lock) {
  // Scan active runs for work, respecting each run's worker cap — this scan
  // is the work-stealing: a worker serves whichever run (and whichever
  // campaign within it) has a claimable task. Chunks of already-prepared
  // campaigns take priority over preparing new ones so a run's in-flight
  // memory (golden traces + record buffers) stays bounded.
  for (RunState* run : active_) {
    if (run->active_workers >= run->cap || run->error != nullptr) continue;

    // Pass 1: a claimable chunk from any ready campaign.
    for (std::size_t c = 0; c < run->campaigns.size(); ++c) {
      CampaignState& campaign = run->campaigns[c];
      if (campaign.stage != CampaignState::Stage::kReady ||
          !campaign.HasClaimableChunk()) {
        continue;
      }
      const std::size_t chunk = campaign.next_chunk++;
      ++run->active_workers;
      lock.unlock();
      try {
        RunChunk(*run, c, cache, campaign.chunk_bounds[chunk],
                 campaign.chunk_bounds[chunk + 1]);
        lock.lock();
      } catch (...) {
        lock.lock();
        if (run->error == nullptr) run->error = std::current_exception();
      }
      ++campaign.chunks_finished;
      --run->active_workers;
      Deliver(*run, lock);
      work_ready_.notify_all();
      return true;
    }

    // Pass 2: prepare the next campaign, with bounded lookahead so at most
    // cap+1 campaigns hold prepared state at once.
    if (run->next_prepare >= run->campaigns.size()) continue;
    int in_flight = 0;
    for (const CampaignState& campaign : run->campaigns) {
      if (campaign.stage == CampaignState::Stage::kPreparing ||
          (campaign.stage == CampaignState::Stage::kReady &&
           !campaign.AllChunksDone())) {
        ++in_flight;
      }
    }
    if (in_flight > run->cap) continue;
    // Replay-only campaigns never need preparing; skip past them.
    while (run->next_prepare < run->campaigns.size() &&
           run->campaigns[run->next_prepare].stage !=
               CampaignState::Stage::kPending) {
      ++run->next_prepare;
    }
    if (run->next_prepare >= run->campaigns.size()) continue;
    const std::size_t c = run->next_prepare++;
    run->campaigns[c].stage = CampaignState::Stage::kPreparing;
    ++run->active_workers;
    lock.unlock();
    try {
      PrepareOne(*run, c, cache);
      lock.lock();
    } catch (...) {
      lock.lock();
      if (run->error == nullptr) run->error = std::current_exception();
      // Mark ready with no chunks so the delivery frontier can pass it.
      run->campaigns[c].stage = CampaignState::Stage::kReady;
      run->campaigns[c].chunk_bounds.clear();
    }
    --run->active_workers;
    Deliver(*run, lock);
    work_ready_.notify_all();
    return true;
  }
  return false;
}

void CampaignExecutor::PrepareOne(RunState& run, std::size_t campaign_index,
                                  WorkerCache& cache) {
  CampaignState& campaign = run.campaigns[campaign_index];
  const CampaignConfig& config = run.plan->campaigns[campaign_index];

  bool constructed = false;
  FiRunner* golden_runner = nullptr;
  if (config.engine == CampaignEngine::kReference) {
    // Only the reference engine runs its golden on a local simulator; the
    // others go through the process-wide GoldenRunCache.
    golden_runner = &cache.Get(config.accel, &constructed);
  }
  PreparedCampaign prepared = PrepareCampaign(config, golden_runner);
  SAFFIRE_ASSERT_MSG(
      static_cast<std::int64_t>(prepared.faults.size()) == campaign.total,
      "campaign " << campaign_index << ": plan expects " << campaign.total
                  << " sites, prepare produced " << prepared.faults.size());

  std::unique_lock<std::mutex> lock(mutex_);
  if (golden_runner != nullptr) {
    ++(constructed ? stats_.simulators_constructed
                   : stats_.simulators_reused);
  }
  if (prepared.golden_cache_hit) ++stats_.golden_cache_hits;
  ++stats_.campaigns_executed;

  campaign.info.golden_cycles = prepared.golden().cycles;
  campaign.info.golden_pe_steps = prepared.golden().pe_steps;
  campaign.info.golden_cache_hit = prepared.golden_cache_hit;
  campaign.prepared = std::move(prepared);

  // Chunk the simulation list: small enough for stealing to balance load
  // across workers, large enough that claiming is not the bottleneck.
  const auto n = static_cast<std::int64_t>(campaign.to_simulate.size());
  std::int64_t chunk_size = std::clamp<std::int64_t>(
      n / (static_cast<std::int64_t>(run.cap) * 4), 1, 64);
  if (config.engine == CampaignEngine::kBatch) {
    // Align chunks to whole batches so a chunk never splits a canonical
    // batch_lanes-sized group across workers (RunChunk batches within its
    // chunk only).
    chunk_size = ((chunk_size + config.batch_lanes - 1) / config.batch_lanes) *
                 config.batch_lanes;
  }
  campaign.chunk_bounds.clear();
  for (std::int64_t p = 0; p < n; p += chunk_size) {
    campaign.chunk_bounds.push_back(p);
  }
  campaign.chunk_bounds.push_back(n);
  campaign.stage = CampaignState::Stage::kReady;
}

void CampaignExecutor::RunChunk(RunState& run, std::size_t campaign_index,
                                WorkerCache& cache, std::int64_t begin,
                                std::int64_t end) {
  CampaignState& campaign = run.campaigns[campaign_index];
  const CampaignConfig& config = run.plan->campaigns[campaign_index];

  bool constructed = false;
  FiRunner& runner = cache.Get(config.accel, &constructed);
  // Buffer locally, publish under the lock: record slots are read by the
  // delivery frontier, which must never observe a half-written record.
  std::vector<ExperimentRecord> chunk;
  chunk.reserve(static_cast<std::size_t>(end - begin));
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;
  if (config.engine == CampaignEngine::kBatch) {
    // Pack this chunk's experiments into lane batches. Groups follow the
    // campaign's canonical batch boundaries (consecutive batch_lanes-sized
    // blocks of the site order) and additionally break wherever the
    // simulation list is non-contiguous (checkpoint holes, shard edges) —
    // RunPreparedBatch takes a contiguous index range. Records are
    // independent across lanes, so the grouping affects occupancy stats
    // only, never record content.
    const std::int64_t lanes = config.batch_lanes;
    std::int64_t p = begin;
    while (p < end) {
      const std::int64_t first =
          campaign.to_simulate[static_cast<std::size_t>(p)];
      std::int64_t q = p + 1;
      while (q < end && q - p < lanes &&
             campaign.to_simulate[static_cast<std::size_t>(q)] ==
                 first + (q - p) &&
             (first + (q - p)) % lanes != 0) {
        ++q;
      }
      std::vector<ExperimentRecord> records = RunPreparedBatch(
          campaign.prepared, runner, static_cast<std::size_t>(first),
          static_cast<std::size_t>(first + (q - p)));
      lanes_filled += static_cast<std::uint64_t>(records.size());
      ++batches_run;
      std::move(records.begin(), records.end(), std::back_inserter(chunk));
      p = q;
    }
  } else {
    for (std::int64_t p = begin; p < end; ++p) {
      const std::int64_t index =
          campaign.to_simulate[static_cast<std::size_t>(p)];
      chunk.push_back(RunPreparedExperiment(campaign.prepared, runner,
                                            static_cast<std::size_t>(index)));
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  campaign.lanes_filled += lanes_filled;
  campaign.batches_run += batches_run;
  stats_.lanes_filled += static_cast<std::int64_t>(lanes_filled);
  stats_.batches_run += static_cast<std::int64_t>(batches_run);
  for (std::int64_t p = begin; p < end; ++p) {
    const std::int64_t index =
        campaign.to_simulate[static_cast<std::size_t>(p)];
    campaign.records[static_cast<std::size_t>(index)] =
        std::move(chunk[static_cast<std::size_t>(p - begin)]);
  }
  ++(constructed ? stats_.simulators_constructed : stats_.simulators_reused);
  ++stats_.chunks_executed;
  stats_.experiments_run += end - begin;
}

void CampaignExecutor::Deliver(RunState& run,
                               std::unique_lock<std::mutex>& lock) {
  if (run.delivering) return;  // the current owner will pick our records up
  run.delivering = true;
  while (run.deliver_campaign < run.campaigns.size()) {
    if (run.error != nullptr) {
      // Fail fast: abandon the frontier so waiters see a finished run once
      // in-flight workers drain; Run() rethrows the stored error.
      run.deliver_campaign = run.campaigns.size();
      break;
    }
    CampaignState& campaign = run.campaigns[run.deliver_campaign];
    if (campaign.stage != CampaignState::Stage::kReady &&
        campaign.stage != CampaignState::Stage::kReplayOnly) {
      break;  // golden metadata not known yet
    }
    if (!campaign.begun) {
      campaign.begun = true;
      lock.unlock();
      run.sink->OnCampaignBegin(campaign.info);
      lock.lock();
    }
    while (campaign.deliver_cursor < campaign.deliverable.size()) {
      const std::int64_t index =
          campaign.deliverable[campaign.deliver_cursor];
      const std::optional<ExperimentRecord>& slot =
          campaign.records[static_cast<std::size_t>(index)];
      if (!slot.has_value()) break;
      const ExperimentRecord record = *slot;
      ++campaign.deliver_cursor;
      lock.unlock();
      run.sink->OnRecord(campaign.info, index, record);
      lock.lock();
    }
    if (campaign.deliver_cursor < campaign.deliverable.size()) break;
    if (!campaign.ended) {
      campaign.ended = true;
      // Every deliverable record has been published (the cursor reached the
      // end), so the batch counters are final — safe to copy without racing
      // RunChunk.
      campaign.info.lanes_filled = campaign.lanes_filled;
      campaign.info.batches_run = campaign.batches_run;
      lock.unlock();
      run.sink->OnCampaignEnd(campaign.info);
      lock.lock();
      // Release the campaign's bulk (golden trace reference, fault list,
      // record buffer) as soon as it is fully delivered.
      campaign.prepared = PreparedCampaign();
      campaign.records.clear();
      campaign.records.shrink_to_fit();
    }
    ++run.deliver_campaign;
  }
  run.delivering = false;
  if (run.Finished()) run.done_cv.notify_all();
}

}  // namespace saffire
