#include "service/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <iterator>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "obs/trace.h"
#include "service/chaos.h"

namespace saffire {

namespace {

// Set while a thread is executing inside a pool worker; a nested Run() from
// such a thread executes inline instead of queueing work its own pool can
// never pick up.
thread_local bool t_is_pool_worker = false;

// Sentinel worker index for threads outside the pool (inline nested runs).
constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

// Microseconds between two steady_clock points, for busy-time counters.
std::int64_t MicrosBetween(std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
      .count();
}

// Sleeps the deterministic backoff delay before retry `attempt` (no-op
// when the policy disables backoff).
void SleepBackoff(const ResilienceOptions& res, std::uint64_t seed,
                  std::size_t campaign_index, std::int64_t experiment_index,
                  int attempt) {
  const std::int64_t delay_ms =
      BackoffDelayMs(res, seed, campaign_index, experiment_index, attempt);
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

// Serializes an AccelConfig into the per-worker simulator cache key.
std::string SimulatorKey(const AccelConfig& accel) {
  std::ostringstream key;
  key << accel.array.rows << ',' << accel.array.cols << ','
      << accel.array.input_bits << ',' << accel.array.acc_bits << ','
      << accel.spad_rows << ',' << accel.acc_rows << ','
      << accel.max_compute_rows << ',' << accel.double_buffered_weights
      << ',' << accel.dram_bytes;
  return key.str();
}

}  // namespace

// A worker's cached simulator. Capacity one: each FiRunner owns a
// dram_bytes-sized memory image, so caching more than the last-used
// configuration per worker trades too much memory for too little reuse
// (within a sweep, consecutive campaigns almost always share the accel).
struct CampaignExecutor::WorkerCache {
  std::string key;
  std::optional<FiRunner> runner;
  // Pool worker index owning this cache, kNoWorker for inline nested runs —
  // the identity behind the steal counter and per-worker busy time.
  std::size_t worker_index = kNoWorker;

  // Returns a simulator for `accel`, setting *constructed to whether a new
  // one had to be built (vs a cache hit).
  FiRunner& Get(const AccelConfig& accel, bool* constructed) {
    std::string want = SimulatorKey(accel);
    if (!runner.has_value() || key != want) {
      runner.emplace(accel);
      key = std::move(want);
      *constructed = true;
    } else {
      *constructed = false;
    }
    return *runner;
  }
};

namespace {

// Per-campaign execution state inside a run. Guarded by the executor mutex
// except where noted.
struct CampaignState {
  enum class Stage : std::uint8_t {
    kPending = 0,   // not yet prepared
    kPreparing,     // a worker is running PrepareCampaign
    kReady,         // prepared; chunks claimable
    kReplayOnly,    // fully covered by the checkpoint; nothing to simulate
  };

  Stage stage = Stage::kPending;
  std::int64_t total = 0;  // plan site count
  // Effective engine, starting at the configured one; graceful degradation
  // demotes it down the ladder (FallbackEngine) for the whole campaign.
  // Read at chunk-claim time and passed into RunChunk, so a chunk claimed
  // before a demotion may still finish on the old engine — harmless, since
  // every rung produces identical records.
  CampaignEngine engine = CampaignEngine::kDifferential;
  // Worker that ran PrepareOne (kNoWorker before preparation / inline);
  // chunks claimed by any other worker count as steals.
  std::size_t prepared_by = static_cast<std::size_t>(-1);

  // Indices this run delivers (in-shard ∪ checkpointed), ascending, and the
  // subset to simulate (deliverable minus checkpointed).
  std::vector<std::int64_t> deliverable;
  std::vector<std::int64_t> to_simulate;
  std::int64_t replayed_records = 0;

  // Chunks partition to_simulate by position: chunk i covers positions
  // [chunk_bounds[i], chunk_bounds[i+1]).
  std::vector<std::int64_t> chunk_bounds;
  std::size_t next_chunk = 0;
  std::size_t chunks_finished = 0;

  // Read-only after the stage becomes kReady (workers access it without
  // the lock while running experiments).
  PreparedCampaign prepared;
  // One slot per experiment index, filled from checkpoint replay (in Run)
  // or chunk publication (under the lock).
  std::vector<std::optional<ExperimentRecord>> records;
  // Quarantined experiments by index: an empty record slot whose index is
  // here is delivered as OnExperimentFailed instead of blocking the
  // frontier.
  std::map<std::int64_t, FailedRecord> failed;

  // Batch-engine occupancy and self-check mismatches, accumulated under
  // the lock as chunks publish; copied into `info` before OnCampaignEnd
  // (by which point every chunk has published, so the values are final).
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;
  std::int64_t selfcheck_mismatches = 0;

  CampaignBeginInfo info;
  bool begun = false;
  bool ended = false;
  std::size_t deliver_cursor = 0;  // position in `deliverable`

  bool HasClaimableChunk() const {
    return next_chunk + 1 < chunk_bounds.size();
  }
  bool AllChunksDone() const {
    return chunk_bounds.size() < 2 ||
           chunks_finished == chunk_bounds.size() - 1;
  }
};

}  // namespace

// One Run() invocation's shared state, living on the calling thread's
// stack; workers hold pointers only while it is registered in `active_`.
struct CampaignExecutor::RunState {
  const CampaignPlan* plan = nullptr;
  RecordSink* sink = nullptr;
  int cap = 0;               // max workers serving this run
  int active_workers = 0;    // workers currently executing its tasks
  std::size_t next_prepare = 0;
  std::vector<CampaignState> campaigns;
  std::size_t deliver_campaign = 0;  // canonical delivery frontier
  bool delivering = false;  // a thread is inside sink callbacks
  std::exception_ptr error;
  std::condition_variable done_cv;
  // Resilience policy and the cooperative stop token for this run.
  ResilienceOptions resilience;
  const std::atomic<bool>* stop = nullptr;
  // This run's tallies (guarded by the executor mutex), returned from Run().
  SweepOutcome outcome;

  bool Finished() const { return deliver_campaign == campaigns.size(); }
  bool StopRequested() const {
    return stop != nullptr && stop->load(std::memory_order_relaxed);
  }
};

CampaignExecutor::CampaignExecutor(const ExecutorOptions& options)
    : options_(options) {
  SAFFIRE_CHECK_MSG(options.threads >= 1 && options.threads <= 256,
                    "threads=" << options.threads);
  SAFFIRE_CHECK_MSG(options.lookahead >= 1,
                    "lookahead=" << options.lookahead);
  SAFFIRE_CHECK_MSG(options.batch_lanes >= 0,
                    "batch_lanes=" << options.batch_lanes);
  if (options_.metrics == nullptr) {
    options_.metrics = &obs::MetricsRegistry::Default();
  }

  // Register this pool's instrument series, labelled by instance so
  // concurrent executors sharing a registry stay distinguishable.
  static std::atomic<int> pool_ids{0};
  const std::string pool_label =
      "pool=\"" + std::to_string(pool_ids.fetch_add(1)) + "\"";
  obs::MetricsRegistry& registry = *options_.metrics;
  const auto counter = [&](const char* name, const char* help) {
    return &registry.GetCounter(name, help, pool_label);
  };
  metrics_.runs = counter("saffire.executor.runs", "Run() invocations");
  metrics_.campaigns_executed = counter("saffire.executor.campaigns_executed",
                                        "campaigns simulated");
  metrics_.campaigns_replayed = counter(
      "saffire.executor.campaigns_replayed",
      "campaigns satisfied entirely from a checkpoint");
  metrics_.experiments_run =
      counter("saffire.executor.experiments_run", "experiments simulated");
  metrics_.experiments_replayed =
      counter("saffire.executor.experiments_replayed",
              "experiments replayed from checkpointed records");
  metrics_.chunks_executed =
      counter("saffire.executor.chunks_executed", "work chunks executed");
  metrics_.chunks_stolen =
      counter("saffire.executor.chunks_stolen",
              "chunks executed by a worker that did not prepare the campaign");
  metrics_.lanes_filled = counter("saffire.executor.lanes_filled",
                                  "occupied batch-engine lanes");
  metrics_.batches_run =
      counter("saffire.executor.batches_run", "batch-engine array passes");
  metrics_.simulators_constructed =
      counter("saffire.executor.simulators_constructed",
              "FiRunner constructions");
  metrics_.simulators_reused = counter("saffire.executor.simulators_reused",
                                       "per-worker simulator cache hits");
  metrics_.golden_cache_hits =
      counter("saffire.executor.golden_cache_hits",
              "golden runs served from the process-wide cache");
  metrics_.retries = counter("saffire.resilience.retries",
                             "failed experiment/batch attempts retried");
  metrics_.fallbacks =
      counter("saffire.resilience.fallbacks",
              "campaign engine demotions down the fallback ladder");
  metrics_.quarantined =
      counter("saffire.resilience.quarantined",
              "experiments quarantined after exhausting every retry");
  metrics_.selfchecks =
      counter("saffire.resilience.selfchecks",
              "batch records cross-validated against the differential engine");
  metrics_.selfcheck_mismatches =
      counter("saffire.resilience.selfcheck_mismatches",
              "cross-validated batch records that disagreed");
  metrics_.timeouts =
      counter("saffire.resilience.timeouts",
              "experiment attempts that exceeded the deadline");
  metrics_.predict_selfchecks =
      counter("saffire.predict.selfchecks",
              "predicted-engine records cross-validated against the "
              "differential engine");
  metrics_.queue_depth =
      &registry.GetGauge("saffire.executor.queue_depth",
                         "claimable chunks across active runs", pool_label);
  metrics_.busy_workers =
      &registry.GetGauge("saffire.executor.busy_workers",
                         "workers currently executing a task", pool_label);
  metrics_.chunk_seconds = &registry.GetHistogram(
      "saffire.executor.chunk_seconds", "wall time per executed chunk",
      pool_label);
  metrics_.worker_busy_us.reserve(static_cast<std::size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) {
    metrics_.worker_busy_us.push_back(&registry.GetCounter(
        "saffire.executor.worker_busy_us",
        "microseconds each worker spent executing tasks",
        pool_label + ",worker=\"" + std::to_string(i) + "\""));
  }

  workers_.reserve(static_cast<std::size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

CampaignExecutor::CampaignExecutor(int threads)
    : CampaignExecutor(ExecutorOptions{.threads = threads}) {}

CampaignExecutor::~CampaignExecutor() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

CampaignExecutor& CampaignExecutor::Shared() {
  // Meyers static: joined at process exit, so leak checkers stay quiet and
  // in-flight work drains before static destruction proceeds.
  static CampaignExecutor executor;
  return executor;
}

ExecutorStats CampaignExecutor::stats() const {
  // Thin accessor over the registry-backed counters; individual fields are
  // each exact, though a racing snapshot may observe them at slightly
  // different instants (same contract a Prometheus scrape gets).
  ExecutorStats stats;
  stats.pool_threads = static_cast<int>(workers_.size());
  stats.runs = metrics_.runs->value();
  stats.campaigns_executed = metrics_.campaigns_executed->value();
  stats.campaigns_replayed = metrics_.campaigns_replayed->value();
  stats.experiments_run = metrics_.experiments_run->value();
  stats.experiments_replayed = metrics_.experiments_replayed->value();
  stats.chunks_executed = metrics_.chunks_executed->value();
  stats.chunks_stolen = metrics_.chunks_stolen->value();
  stats.lanes_filled = metrics_.lanes_filled->value();
  stats.batches_run = metrics_.batches_run->value();
  stats.simulators_constructed = metrics_.simulators_constructed->value();
  stats.simulators_reused = metrics_.simulators_reused->value();
  stats.golden_cache_hits = metrics_.golden_cache_hits->value();
  stats.retries = metrics_.retries->value();
  stats.fallbacks = metrics_.fallbacks->value();
  stats.quarantined = metrics_.quarantined->value();
  stats.selfchecks = metrics_.selfchecks->value();
  stats.selfcheck_mismatches = metrics_.selfcheck_mismatches->value();
  stats.timeouts = metrics_.timeouts->value();
  stats.predict_selfchecks = metrics_.predict_selfchecks->value();
  return stats;
}

std::int64_t CampaignExecutor::EffectiveBatchLanes(
    const CampaignConfig& config) const {
  if (options_.batch_lanes <= 0) return config.batch_lanes;
  return std::min(config.batch_lanes, options_.batch_lanes);
}

SweepOutcome CampaignExecutor::Run(const CampaignPlan& plan, RecordSink& sink,
                                   const RunOptions& options) {
  SAFFIRE_CHECK_MSG(!plan.campaigns.empty(), "empty campaign plan");
  SAFFIRE_CHECK_MSG(plan.campaigns.size() == plan.site_counts.size(),
                    "malformed plan: " << plan.campaigns.size()
                                       << " campaigns, "
                                       << plan.site_counts.size()
                                       << " site counts");
  SAFFIRE_CHECK_MSG(
      options.max_parallelism >= 0 && options.max_parallelism <= 256,
      "max_parallelism=" << options.max_parallelism);
  SAFFIRE_CHECK_MSG(options.resilience.max_retries >= 0,
                    "max_retries=" << options.resilience.max_retries);
  SAFFIRE_CHECK_MSG(options.resilience.experiment_timeout_ms >= 0,
                    "experiment_timeout_ms="
                        << options.resilience.experiment_timeout_ms);
  SAFFIRE_CHECK_MSG(options.resilience.selfcheck_rate >= 0.0 &&
                        options.resilience.selfcheck_rate <= 1.0,
                    "selfcheck_rate=" << options.resilience.selfcheck_rate);
  SAFFIRE_CHECK_MSG(options.resilience.backoff_base_ms >= 0 &&
                        options.resilience.backoff_cap_ms >= 0,
                    "backoff base=" << options.resilience.backoff_base_ms
                                    << " cap="
                                    << options.resilience.backoff_cap_ms);
  for (const CampaignConfig& config : plan.campaigns) {
    config.accel.Validate();
    config.workload.Validate();
  }
  if (options.checkpoint != nullptr) {
    ValidateCheckpoint(*options.checkpoint, plan);
  }

  RunState run;
  run.plan = &plan;
  run.sink = &sink;
  run.resilience = options.resilience;
  run.stop = options.stop;
  run.cap = options.max_parallelism == 0
                ? static_cast<int>(workers_.size())
                : std::min(options.max_parallelism,
                           static_cast<int>(workers_.size()));

  // Expand per-campaign delivery/replay/simulation sets.
  std::int64_t replay_only_campaigns = 0;
  std::int64_t replayed_experiments = 0;
  run.campaigns.resize(plan.campaigns.size());
  for (std::size_t c = 0; c < plan.campaigns.size(); ++c) {
    CampaignState& campaign = run.campaigns[c];
    campaign.total = plan.site_counts[c];
    campaign.engine = plan.campaigns[c].engine;
    campaign.records.resize(static_cast<std::size_t>(campaign.total));

    std::vector<bool> deliver(static_cast<std::size_t>(campaign.total),
                              options.only_shard < 0);
    if (options.only_shard >= 0) {
      for (const PlannedShard& shard : plan.shards) {
        if (shard.campaign_index != c ||
            shard.shard_index != options.only_shard) {
          continue;
        }
        for (std::int64_t i = shard.begin; i < shard.end; ++i) {
          deliver[static_cast<std::size_t>(i)] = true;
        }
      }
    }
    const CheckpointCampaign* from = nullptr;
    if (options.checkpoint != nullptr) {
      const auto it = options.checkpoint->campaigns.find(c);
      if (it != options.checkpoint->campaigns.end()) from = &it->second;
    }
    if (from != nullptr) {
      for (const auto& [index, record] : from->records) {
        deliver[static_cast<std::size_t>(index)] = true;
        campaign.records[static_cast<std::size_t>(index)] = record;
      }
    }
    for (std::int64_t i = 0; i < campaign.total; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (!deliver[s]) continue;
      campaign.deliverable.push_back(i);
      if (!campaign.records[s].has_value()) campaign.to_simulate.push_back(i);
    }
    campaign.replayed_records =
        static_cast<std::int64_t>(campaign.deliverable.size()) -
        static_cast<std::int64_t>(campaign.to_simulate.size());
    replayed_experiments += campaign.replayed_records;

    campaign.info.campaign_index = c;
    campaign.info.config = &plan.campaigns[c];
    campaign.info.total_experiments = campaign.total;
    campaign.info.scheduled_experiments =
        static_cast<std::int64_t>(campaign.deliverable.size());
    // "No reduction" until PrepareOne installs the real partition; stays
    // this way for replay-only campaigns (nothing simulated either way).
    campaign.info.symmetry_classes = campaign.total;

    if (campaign.to_simulate.empty() && from != nullptr) {
      // Fully covered: golden metadata comes from the checkpoint too, so
      // no simulator or golden run is needed at all.
      campaign.stage = CampaignState::Stage::kReplayOnly;
      campaign.info.golden_cycles = from->golden_cycles;
      campaign.info.golden_pe_steps = from->golden_pe_steps;
      campaign.info.golden_cache_hit = from->golden_cache_hit;
      campaign.info.replayed = true;
      ++replay_only_campaigns;
    }
  }

  sink.OnSweepBegin(plan);

  if (t_is_pool_worker) {
    // Nested Run() from inside a pool worker: execute inline, serially —
    // queueing onto a pool we are currently occupying risks deadlock.
    WorkerCache cache;
    std::unique_lock<std::mutex> lock(mutex_);
    metrics_.runs->Increment();
    metrics_.campaigns_replayed->Increment(replay_only_campaigns);
    metrics_.experiments_replayed->Increment(replayed_experiments);
    for (std::size_t c = 0;
         c < run.campaigns.size() && !run.StopRequested(); ++c) {
      CampaignState& campaign = run.campaigns[c];
      if (campaign.stage == CampaignState::Stage::kReplayOnly) continue;
      campaign.stage = CampaignState::Stage::kPreparing;
      PrepareWithPolicy(run, c, cache, lock);
      if (run.error != nullptr) break;
      while (campaign.HasClaimableChunk() && !run.StopRequested() &&
             run.error == nullptr) {
        const std::size_t chunk = campaign.next_chunk++;
        const CampaignEngine engine = campaign.engine;
        metrics_.queue_depth->Add(-1);
        lock.unlock();
        try {
          RunChunk(run, c, cache, campaign.chunk_bounds[chunk],
                   campaign.chunk_bounds[chunk + 1], engine);
          lock.lock();
        } catch (...) {
          lock.lock();
          if (run.error == nullptr) run.error = std::current_exception();
        }
        ++campaign.chunks_finished;
      }
    }
    Deliver(run, lock);
    SAFFIRE_ASSERT_MSG(run.Finished(), "inline run left campaigns behind");
    const SweepOutcome outcome = run.outcome;
    const std::exception_ptr error = run.error;
    lock.unlock();
    if (error != nullptr) std::rethrow_exception(error);
    sink.OnSweepEnd();
    return outcome;
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    metrics_.runs->Increment();
    metrics_.campaigns_replayed->Increment(replay_only_campaigns);
    metrics_.experiments_replayed->Increment(replayed_experiments);
    active_.push_back(&run);
    // A replay-only prefix has no tasks to trigger its delivery; push the
    // frontier from here before handing off to the workers.
    Deliver(run, lock);
    work_ready_.notify_all();
    const auto finished = [&run] {
      return run.Finished() && run.active_workers == 0 && !run.delivering;
    };
    // wait_for instead of wait: a stop request can arrive while no worker
    // holds a task of this run (all parked, or serving other runs), in
    // which case nobody else will push the frontier to its drained state —
    // the waiter itself does, on the next poll tick.
    while (!finished()) {
      run.done_cv.wait_for(lock, std::chrono::milliseconds(50), finished);
      if (!finished() && run.StopRequested()) Deliver(run, lock);
    }
    active_.erase(std::find(active_.begin(), active_.end(), &run));
  }
  if (run.error != nullptr) std::rethrow_exception(run.error);
  sink.OnSweepEnd();
  return run.outcome;
}

void CampaignExecutor::WorkerLoop(std::size_t worker_index) {
  t_is_pool_worker = true;
  WorkerCache cache;
  cache.worker_index = worker_index;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_) return;
    if (!RunOneTask(cache, lock)) work_ready_.wait(lock);
  }
}

bool CampaignExecutor::RunOneTask(WorkerCache& cache,
                                  std::unique_lock<std::mutex>& lock) {
  // Scan active runs for work, respecting each run's worker cap — this scan
  // is the work-stealing: a worker serves whichever run (and whichever
  // campaign within it) has a claimable task. Chunks of already-prepared
  // campaigns take priority over preparing new ones so a run's in-flight
  // memory (golden traces + record buffers) stays bounded.
  for (RunState* run : active_) {
    if (run->active_workers >= run->cap || run->error != nullptr ||
        run->StopRequested()) {
      continue;
    }

    // Pass 1: a claimable chunk from any ready campaign.
    for (std::size_t c = 0; c < run->campaigns.size(); ++c) {
      CampaignState& campaign = run->campaigns[c];
      if (campaign.stage != CampaignState::Stage::kReady ||
          !campaign.HasClaimableChunk()) {
        continue;
      }
      const std::size_t chunk = campaign.next_chunk++;
      const CampaignEngine engine = campaign.engine;
      ++run->active_workers;
      metrics_.busy_workers->Add(1);
      metrics_.queue_depth->Add(-1);
      if (campaign.prepared_by != cache.worker_index) {
        metrics_.chunks_stolen->Increment();
      }
      lock.unlock();
      try {
        RunChunk(*run, c, cache, campaign.chunk_bounds[chunk],
                 campaign.chunk_bounds[chunk + 1], engine);
        lock.lock();
      } catch (...) {
        lock.lock();
        if (run->error == nullptr) run->error = std::current_exception();
      }
      ++campaign.chunks_finished;
      --run->active_workers;
      metrics_.busy_workers->Add(-1);
      Deliver(*run, lock);
      work_ready_.notify_all();
      return true;
    }

    // Pass 2: prepare the next campaign, with bounded lookahead so at most
    // cap + lookahead campaigns hold prepared state at once.
    if (run->next_prepare >= run->campaigns.size()) continue;
    int in_flight = 0;
    for (const CampaignState& campaign : run->campaigns) {
      if (campaign.stage == CampaignState::Stage::kPreparing ||
          (campaign.stage == CampaignState::Stage::kReady &&
           !campaign.AllChunksDone())) {
        ++in_flight;
      }
    }
    if (in_flight > run->cap + (options_.lookahead - 1)) continue;
    // Replay-only campaigns never need preparing; skip past them.
    while (run->next_prepare < run->campaigns.size() &&
           run->campaigns[run->next_prepare].stage !=
               CampaignState::Stage::kPending) {
      ++run->next_prepare;
    }
    if (run->next_prepare >= run->campaigns.size()) continue;
    const std::size_t c = run->next_prepare++;
    run->campaigns[c].stage = CampaignState::Stage::kPreparing;
    run->campaigns[c].prepared_by = cache.worker_index;
    ++run->active_workers;
    metrics_.busy_workers->Add(1);
    PrepareWithPolicy(*run, c, cache, lock);
    --run->active_workers;
    metrics_.busy_workers->Add(-1);
    Deliver(*run, lock);
    work_ready_.notify_all();
    return true;
  }
  return false;
}

void CampaignExecutor::PrepareWithPolicy(RunState& run,
                                         std::size_t campaign_index,
                                         WorkerCache& cache,
                                         std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  try {
    PrepareOne(run, campaign_index, cache);
    lock.lock();
    return;
  } catch (const std::exception& error) {
    const std::exception_ptr raised = std::current_exception();
    lock.lock();
    CampaignState& campaign = run.campaigns[campaign_index];
    // Mark ready with no chunks either way, so the delivery frontier can
    // pass the campaign.
    campaign.stage = CampaignState::Stage::kReady;
    campaign.chunk_bounds.clear();
    if (run.resilience.on_failure == OnFailure::kQuarantine) {
      // Quarantine the whole campaign: every experiment it would have
      // simulated becomes a FailedRecord (checkpointed records still
      // deliver normally). Preparation is all-or-nothing — there is no
      // per-experiment rung to fall down.
      SAFFIRE_LOG_WARN << "campaign " << campaign_index
                       << ": preparation failed, quarantining "
                       << campaign.to_simulate.size()
                       << " experiments: " << error.what();
      for (const std::int64_t index : campaign.to_simulate) {
        FailedRecord failure;
        failure.campaign_index = campaign_index;
        failure.experiment_index = index;
        failure.engine = campaign.engine;
        failure.attempts = 1;
        failure.error = error.what();
        campaign.failed.emplace(index, std::move(failure));
      }
      const auto n = static_cast<std::int64_t>(campaign.to_simulate.size());
      run.outcome.quarantined += n;
      metrics_.quarantined->Increment(n);
      return;
    }
    if (run.error == nullptr) run.error = raised;
  } catch (...) {
    lock.lock();
    CampaignState& campaign = run.campaigns[campaign_index];
    campaign.stage = CampaignState::Stage::kReady;
    campaign.chunk_bounds.clear();
    if (run.error == nullptr) run.error = std::current_exception();
  }
}

void CampaignExecutor::PrepareOne(RunState& run, std::size_t campaign_index,
                                  WorkerCache& cache) {
  SAFFIRE_SPAN("executor.prepare");
  const auto busy_start = std::chrono::steady_clock::now();
  CampaignState& campaign = run.campaigns[campaign_index];
  const CampaignConfig& config = run.plan->campaigns[campaign_index];

  bool constructed = false;
  FiRunner* golden_runner = nullptr;
  if (config.engine == CampaignEngine::kReference) {
    // Only the reference engine runs its golden on a local simulator; the
    // others go through the process-wide GoldenRunCache.
    golden_runner = &cache.Get(config.accel, &constructed);
  }
  PreparedCampaign prepared = PrepareCampaign(config, golden_runner);
  SAFFIRE_ASSERT_MSG(
      static_cast<std::int64_t>(prepared.faults.size()) == campaign.total,
      "campaign " << campaign_index << ": plan expects " << campaign.total
                  << " sites, prepare produced " << prepared.faults.size());

  std::unique_lock<std::mutex> lock(mutex_);
  if (golden_runner != nullptr) {
    (constructed ? metrics_.simulators_constructed
                 : metrics_.simulators_reused)
        ->Increment();
  }
  if (prepared.golden_cache_hit) metrics_.golden_cache_hits->Increment();
  metrics_.campaigns_executed->Increment();

  campaign.info.golden_cycles = prepared.golden().cycles;
  campaign.info.golden_pe_steps = prepared.golden().pe_steps;
  campaign.info.golden_cache_hit = prepared.golden_cache_hit;
  campaign.info.symmetry_classes =
      static_cast<std::int64_t>(prepared.symmetry_classes);
  campaign.info.symmetry_active = prepared.SymmetryActive();
  campaign.prepared = std::move(prepared);

  // Chunk the simulation list: small enough for stealing to balance load
  // across workers, large enough that claiming is not the bottleneck.
  const auto n = static_cast<std::int64_t>(campaign.to_simulate.size());
  std::int64_t chunk_size = std::clamp<std::int64_t>(
      n / (static_cast<std::int64_t>(run.cap) * 4), 1, 64);
  if (GroupedCampaignEngine(config.engine)) {
    // Align chunks to whole batches so a chunk never splits a canonical
    // batch_lanes-sized group across workers (RunChunk batches within its
    // chunk only).
    const std::int64_t lanes = EffectiveBatchLanes(config);
    chunk_size = ((chunk_size + lanes - 1) / lanes) * lanes;
  }
  campaign.chunk_bounds.clear();
  for (std::int64_t p = 0; p < n; p += chunk_size) {
    campaign.chunk_bounds.push_back(p);
  }
  campaign.chunk_bounds.push_back(n);
  campaign.stage = CampaignState::Stage::kReady;
  if (run.error == nullptr) {
    // Publish the new chunks to the queue-depth gauge. An errored run's
    // chunks are never claimed (workers skip it), so they stay off the
    // gauge entirely — Deliver retires any published before the error.
    metrics_.queue_depth->Add(
        static_cast<std::int64_t>(campaign.chunk_bounds.size()) - 1);
  }
  lock.unlock();
  if (cache.worker_index != kNoWorker) {
    metrics_.worker_busy_us[cache.worker_index]->Increment(
        MicrosBetween(busy_start, std::chrono::steady_clock::now()));
  }
}

void CampaignExecutor::RunChunk(RunState& run, std::size_t campaign_index,
                                WorkerCache& cache, std::int64_t begin,
                                std::int64_t end, CampaignEngine engine) {
  SAFFIRE_SPAN("executor.chunk");
  const auto busy_start = std::chrono::steady_clock::now();
  CampaignState& campaign = run.campaigns[campaign_index];
  const CampaignConfig& config = run.plan->campaigns[campaign_index];
  const ResilienceOptions& res = run.resilience;

  bool constructed = false;
  FiRunner& runner = cache.Get(config.accel, &constructed);
  // Buffer locally, publish under the lock: record slots are read by the
  // delivery frontier, which must never observe a half-written record.
  // Slots left empty correspond to entries in `failures`.
  std::vector<std::optional<ExperimentRecord>> chunk(
      static_cast<std::size_t>(end - begin));
  std::vector<FailedRecord> failures;
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;

  // Runs the experiment at simulation-list position `p` through the
  // retry/fallback ladder starting at `rung`.
  const auto run_one = [&](std::int64_t p, CampaignEngine rung) {
    const std::int64_t index =
        campaign.to_simulate[static_cast<std::size_t>(p)];
    ExperimentRecord record;
    FailedRecord failure;
    if (RunExperimentResilient(run, campaign_index, runner, index, rung,
                               &record, &failure)) {
      // Replicated-record self-check: grouped runs cross-validate in their
      // batch loop below; here a record synthesized from a symmetry
      // representative is sampled against a direct run of the same rung
      // engine, which bypasses the memo by construction. Same rung, not
      // kDifferential: this check validates the symmetry class, and
      // engines legitimately differ in occupancy fields (a full-engine
      // record never skips PE steps, a differential one does).
      if (res.selfcheck_rate > 0.0 && campaign.prepared.SymmetryActive() &&
          campaign.prepared.symmetry_rep_of[static_cast<std::size_t>(
              index)] != static_cast<std::size_t>(index) &&
          SelfCheckSampled(res.selfcheck_rate, config.seed, campaign_index,
                           index)) {
        NoteSelfCheck(run, rung);
        try {
          const ExperimentRecord check = RunPreparedExperimentDirect(
              campaign.prepared, runner, static_cast<std::size_t>(index),
              rung);
          if (!(check == record) ||
              chaos::ForceSelfCheckMismatch(campaign_index)) {
            NoteMismatch(run, campaign_index, index);
            // The class lied for this site: stop synthesizing for the
            // campaign's remainder and keep the directly simulated record.
            campaign.prepared.symmetry_memo->Disable();
            record = check;
          }
        } catch (const std::exception&) {
          // The cross-check failing says nothing about the record; the
          // resilient path already vouched for it.
        }
      }
      chunk[static_cast<std::size_t>(p - begin)] = std::move(record);
    } else {
      failures.push_back(std::move(failure));
    }
  };

  if (GroupedCampaignEngine(engine)) {
    // Pack this chunk's experiments into lane batches. Groups follow the
    // campaign's canonical batch boundaries (consecutive batch_lanes-sized
    // blocks of the site order) and additionally break wherever the
    // simulation list is non-contiguous (checkpoint holes, shard edges) —
    // RunPreparedBatch takes a contiguous index range. Records are
    // independent across lanes, so the grouping affects occupancy stats
    // only, never record content. The predicted engine follows the same
    // grouping; its closed-form groups never touch a lane, so they stay out
    // of the occupancy counters (matching RunCampaignSerial).
    const std::int64_t lanes = EffectiveBatchLanes(config);
    std::int64_t p = begin;
    while (p < end) {
      const std::int64_t first =
          campaign.to_simulate[static_cast<std::size_t>(p)];
      std::int64_t q = p + 1;
      while (q < end && q - p < lanes &&
             campaign.to_simulate[static_cast<std::size_t>(q)] ==
                 first + (q - p) &&
             (first + (q - p)) % lanes != 0) {
        ++q;
      }
      if (!GroupedCampaignEngine(engine)) {
        // An earlier group in this chunk demoted the campaign below the
        // grouped rungs; finish the remaining groups on the fallback
        // engine, one experiment at a time.
        for (std::int64_t i = p; i < q; ++i) run_one(i, engine);
        p = q;
        continue;
      }
      const CampaignEngine group_engine = engine;
      std::vector<ExperimentRecord> records;
      std::uint64_t group_simulated = 0;
      bool ok = false;
      for (int attempt = 0; attempt <= res.max_retries; ++attempt) {
        if (attempt > 0) {
          NoteRetry(run);
          SleepBackoff(res, config.seed, campaign_index, first, attempt - 1);
        }
        try {
          chaos::OnBatchAttempt(campaign_index, attempt);
          records = RunPreparedBatch(
              campaign.prepared, runner, static_cast<std::size_t>(first),
              static_cast<std::size_t>(first + (q - p)), group_engine,
              &group_simulated);
          ok = true;
          break;
        } catch (const std::invalid_argument&) {
          break;  // permanent: retrying the identical config cannot help
        } catch (const std::exception&) {
          // Transient batch failure: retry, then fall down the ladder.
        }
      }
      if (ok && res.selfcheck_rate > 0.0) {
        // Cross-validate sampled lanes against the differential engine.
        for (std::int64_t i = 0; ok && i < q - p; ++i) {
          if (!SelfCheckSampled(res.selfcheck_rate, config.seed,
                                campaign_index, first + i)) {
            continue;
          }
          NoteSelfCheck(run, group_engine);
          try {
            // Direct: the ground truth must bypass the symmetry memo, or a
            // synthesized record would be "validated" against itself.
            const ExperimentRecord check = RunPreparedExperimentDirect(
                campaign.prepared, runner,
                static_cast<std::size_t>(first + i),
                CampaignEngine::kDifferential);
            if (!(check == records[static_cast<std::size_t>(i)]) ||
                chaos::ForceSelfCheckMismatch(campaign_index)) {
              NoteMismatch(run, campaign_index, first + i);
              // Indistinguishable between an engine defect and a bad
              // symmetry class — degrade both: stop synthesizing and let
              // the rerun below demote the engine.
              if (campaign.prepared.symmetry_memo != nullptr) {
                campaign.prepared.symmetry_memo->Disable();
              }
              ok = false;
            }
          } catch (const std::exception&) {
            // The cross-check itself failing is indistinguishable from a
            // batch-engine defect — degrade the same way.
            ok = false;
          }
        }
      }
      if (!ok) {
        // The group never produced (trusted) records; recompute it on the
        // fallback engine. The demotion is campaign-wide and sticky — and
        // may land on a still-grouped rung (predicted→batch), in which case
        // later groups keep batching.
        engine = DemoteEngine(run, campaign_index, group_engine);
        for (std::int64_t i = p; i < q; ++i) run_one(i, engine);
      } else {
        // Occupancy counts lanes actually simulated: under a symmetry plan
        // a group shrinks to its unseen representatives and may vanish
        // entirely (no array pass at all).
        if (!(group_engine == CampaignEngine::kPredicted &&
              PredictedEngineExact(config)) &&
            group_simulated > 0) {
          lanes_filled += group_simulated;
          ++batches_run;
        }
        for (std::int64_t i = 0; i < q - p; ++i) {
          chunk[static_cast<std::size_t>(p - begin + i)] =
              std::move(records[static_cast<std::size_t>(i)]);
        }
      }
      p = q;
    }
  } else {
    for (std::int64_t p = begin; p < end; ++p) run_one(p, engine);
  }

  const std::int64_t busy_us =
      MicrosBetween(busy_start, std::chrono::steady_clock::now());

  std::unique_lock<std::mutex> lock(mutex_);
  campaign.lanes_filled += lanes_filled;
  campaign.batches_run += batches_run;
  metrics_.lanes_filled->Increment(static_cast<std::int64_t>(lanes_filled));
  metrics_.batches_run->Increment(static_cast<std::int64_t>(batches_run));
  for (std::int64_t p = begin; p < end; ++p) {
    std::optional<ExperimentRecord>& slot =
        chunk[static_cast<std::size_t>(p - begin)];
    if (!slot.has_value()) continue;
    const std::int64_t index =
        campaign.to_simulate[static_cast<std::size_t>(p)];
    campaign.records[static_cast<std::size_t>(index)] = std::move(*slot);
  }
  for (FailedRecord& failure : failures) {
    const std::int64_t index = failure.experiment_index;
    campaign.failed.emplace(index, std::move(failure));
  }
  (constructed ? metrics_.simulators_constructed : metrics_.simulators_reused)
      ->Increment();
  metrics_.chunks_executed->Increment();
  metrics_.experiments_run->Increment(
      end - begin - static_cast<std::int64_t>(failures.size()));
  lock.unlock();
  metrics_.chunk_seconds->Observe(static_cast<double>(busy_us) * 1e-6);
  if (cache.worker_index != kNoWorker) {
    metrics_.worker_busy_us[cache.worker_index]->Increment(busy_us);
  }
}

bool CampaignExecutor::RunExperimentResilient(
    RunState& run, std::size_t campaign_index, FiRunner& runner,
    std::int64_t index, CampaignEngine engine, ExperimentRecord* record,
    FailedRecord* failure) {
  CampaignState& campaign = run.campaigns[campaign_index];
  const ResilienceOptions& res = run.resilience;
  const std::uint64_t seed = campaign.prepared.config.seed;
  int total_attempts = 0;
  bool timed_out = false;
  bool permanent = false;
  std::exception_ptr last_error;
  std::string last_what;
  while (true) {
    for (int attempt = 0; attempt <= res.max_retries; ++attempt) {
      if (total_attempts > 0) {
        NoteRetry(run);
        SleepBackoff(res, seed, campaign_index, index, total_attempts - 1);
      }
      ++total_attempts;
      try {
        // Clock before the chaos hook so an injected stall lands inside the
        // measured window, exactly like a real wedged attempt.
        std::chrono::steady_clock::time_point start;
        if (res.experiment_timeout_ms > 0) {
          start = std::chrono::steady_clock::now();
        }
        chaos::OnExperimentAttempt(campaign_index, index, attempt);
        ExperimentRecord result = RunPreparedExperimentWithEngine(
            campaign.prepared, runner, static_cast<std::size_t>(index),
            engine);
        if (res.experiment_timeout_ms > 0) {
          const std::int64_t elapsed_ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (elapsed_ms > res.experiment_timeout_ms) {
            // The deadline guard is cooperative: the attempt already
            // returned, but trusting one that stalled past its budget would
            // let a single wedged site consume the sweep — classify it
            // failed and retry.
            NoteTimeout(run);
            timed_out = true;
            last_error = nullptr;
            std::ostringstream os;
            os << "experiment " << index << " exceeded the "
               << res.experiment_timeout_ms << " ms deadline (took "
               << elapsed_ms << " ms)";
            last_what = os.str();
            continue;
          }
        }
        *record = std::move(result);
        return true;
      } catch (const std::invalid_argument& error) {
        last_error = std::current_exception();
        last_what = error.what();
        timed_out = false;
        permanent = true;  // the same config fails identically on any rung
        break;
      } catch (const std::exception& error) {
        last_error = std::current_exception();
        last_what = error.what();
        timed_out = false;
      }
    }
    if (permanent) break;
    const CampaignEngine demoted = DemoteEngine(run, campaign_index, engine);
    if (demoted == engine) break;  // bottom of the ladder
    engine = demoted;
  }
  if (res.on_failure == OnFailure::kAbort) {
    if (last_error != nullptr) std::rethrow_exception(last_error);
    throw std::runtime_error(last_what);
  }
  failure->campaign_index = campaign_index;
  failure->experiment_index = index;
  failure->engine = engine;
  failure->attempts = total_attempts;
  failure->timed_out = timed_out;
  failure->error = last_what;
  NoteQuarantine(run);
  SAFFIRE_LOG_WARN << "campaign " << campaign_index << " experiment " << index
                   << ": quarantined after " << total_attempts
                   << " attempts: " << last_what;
  return false;
}

CampaignEngine CampaignExecutor::DemoteEngine(RunState& run,
                                              std::size_t campaign_index,
                                              CampaignEngine from) {
  std::lock_guard<std::mutex> lock(mutex_);
  CampaignState& campaign = run.campaigns[campaign_index];
  if (campaign.engine != from) return campaign.engine;  // already demoted
  const std::optional<CampaignEngine> next = FallbackEngine(from);
  if (!next.has_value()) return from;
  campaign.engine = *next;
  ++run.outcome.fallbacks;
  metrics_.fallbacks->Increment();
  SAFFIRE_LOG_WARN << "campaign " << campaign_index << ": falling back from "
                   << ToString(from) << " to the " << ToString(*next)
                   << " engine";
  return *next;
}

void CampaignExecutor::NoteRetry(RunState& run) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++run.outcome.retries;
  metrics_.retries->Increment();
}

void CampaignExecutor::NoteTimeout(RunState& run) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++run.outcome.timeouts;
  metrics_.timeouts->Increment();
}

void CampaignExecutor::NoteSelfCheck(RunState& run, CampaignEngine engine) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++run.outcome.selfchecks;
  metrics_.selfchecks->Increment();
  if (engine == CampaignEngine::kPredicted) {
    metrics_.predict_selfchecks->Increment();
  }
}

void CampaignExecutor::NoteMismatch(RunState& run, std::size_t campaign_index,
                                    std::int64_t experiment_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++run.outcome.selfcheck_mismatches;
    ++run.campaigns[campaign_index].selfcheck_mismatches;
    metrics_.selfcheck_mismatches->Increment();
  }
  SAFFIRE_LOG_WARN << "campaign " << campaign_index << " experiment "
                   << experiment_index
                   << ": batch self-check mismatch against the differential "
                      "engine";
}

void CampaignExecutor::NoteQuarantine(RunState& run) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++run.outcome.quarantined;
  metrics_.quarantined->Increment();
}

void CampaignExecutor::AbandonUnclaimed(RunState& run) {
  // Unclaimed chunks will never be picked up (workers skip errored and
  // stopped runs), so retire them from the queue-depth gauge and collapse
  // the frontier; waiters then see a finished run once in-flight workers
  // drain.
  std::int64_t abandoned = 0;
  for (CampaignState& campaign : run.campaigns) {
    if (campaign.stage != CampaignState::Stage::kReady ||
        campaign.chunk_bounds.size() < 2) {
      continue;
    }
    abandoned += static_cast<std::int64_t>(campaign.chunk_bounds.size() - 1 -
                                           campaign.next_chunk);
    campaign.next_chunk = campaign.chunk_bounds.size() - 1;
  }
  if (abandoned > 0) metrics_.queue_depth->Add(-abandoned);
  run.deliver_campaign = run.campaigns.size();
}

void CampaignExecutor::Deliver(RunState& run,
                               std::unique_lock<std::mutex>& lock) {
  if (run.delivering) return;  // the current owner will pick our records up
  run.delivering = true;
  // Invokes one sink callback outside the lock. A throwing sink aborts the
  // run (stored error, rethrown by Run) instead of unwinding through the
  // executor with the delivery frontier half-advanced.
  const auto call_sink = [&](auto&& invoke) {
    lock.unlock();
    try {
      invoke();
      lock.lock();
      return true;
    } catch (...) {
      lock.lock();
      if (run.error == nullptr) run.error = std::current_exception();
      return false;
    }
  };
  while (run.deliver_campaign < run.campaigns.size()) {
    if (run.error != nullptr) {
      // Fail fast: Run() rethrows the stored error once workers drain.
      AbandonUnclaimed(run);
      break;
    }
    // A cooperative stop finalizes only after the last in-flight worker has
    // published: records a worker was holding at the stop are delivered
    // (and checkpointed) before the run is declared stopped, which is what
    // makes --resume continue exactly where the drain ended.
    const bool stop_drained = run.StopRequested() && run.active_workers == 0;
    CampaignState& campaign = run.campaigns[run.deliver_campaign];
    if (campaign.stage != CampaignState::Stage::kReady &&
        campaign.stage != CampaignState::Stage::kReplayOnly) {
      if (stop_drained) {
        run.outcome.stopped = true;
        AbandonUnclaimed(run);
      }
      break;  // golden metadata not known yet
    }
    if (!campaign.begun) {
      campaign.begun = true;
      if (!call_sink([&] { run.sink->OnCampaignBegin(campaign.info); })) {
        continue;
      }
    }
    while (campaign.deliver_cursor < campaign.deliverable.size()) {
      const std::int64_t index =
          campaign.deliverable[campaign.deliver_cursor];
      const std::optional<ExperimentRecord>& slot =
          campaign.records[static_cast<std::size_t>(index)];
      if (slot.has_value()) {
        const ExperimentRecord record = *slot;
        ++campaign.deliver_cursor;
        ++run.outcome.records;
        if (!call_sink(
                [&] { run.sink->OnRecord(campaign.info, index, record); })) {
          break;
        }
        continue;
      }
      // An empty slot is either still simulating (frontier waits) or
      // quarantined (delivered as a failure so the frontier can pass it).
      const auto failed = campaign.failed.find(index);
      if (failed == campaign.failed.end()) break;
      const FailedRecord failure = failed->second;
      ++campaign.deliver_cursor;
      if (!call_sink([&] {
            run.sink->OnExperimentFailed(campaign.info, failure);
          })) {
        break;
      }
    }
    if (run.error != nullptr) continue;  // settle via the error branch
    if (campaign.deliver_cursor < campaign.deliverable.size()) {
      if (stop_drained) {
        run.outcome.stopped = true;
        AbandonUnclaimed(run);
      }
      break;
    }
    if (!campaign.ended) {
      campaign.ended = true;
      // Every deliverable record has been published (the cursor reached the
      // end), so the batch and mismatch counters are final — safe to copy
      // without racing RunChunk.
      campaign.info.lanes_filled = campaign.lanes_filled;
      campaign.info.batches_run = campaign.batches_run;
      campaign.info.selfcheck_mismatches = campaign.selfcheck_mismatches;
      if (!call_sink([&] { run.sink->OnCampaignEnd(campaign.info); })) {
        continue;
      }
      // Release the campaign's bulk (golden trace reference, fault list,
      // record buffer) as soon as it is fully delivered.
      campaign.prepared = PreparedCampaign();
      campaign.records.clear();
      campaign.records.shrink_to_fit();
    }
    ++run.deliver_campaign;
  }
  run.delivering = false;
  if (run.Finished()) run.done_cv.notify_all();
}

}  // namespace saffire
