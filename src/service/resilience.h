// Resilience policy for sweep execution. The paper's 49-hour FPGA campaign
// (Sec. III-B) only produced trustworthy Table I data because every
// experiment either completed or was visibly rerun; this header defines the
// native equivalent: what the executor does when an experiment throws,
// stalls past its deadline, or an engine disagrees with its baseline —
// retry with deterministic backoff, fall down the engine ladder, and
// finally quarantine into a FailedRecord stream instead of silently losing
// or poisoning records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "patterns/campaign.h"

namespace saffire {

// What happens to an experiment whose retries (across the whole fallback
// ladder) are exhausted.
enum class OnFailure : std::uint8_t {
  // Emit a FailedRecord through RecordSink::OnExperimentFailed (and the
  // JSONL "failed" line) and keep sweeping. The library default for
  // long-running campaigns: one poisoned site must not cost the other
  // thousands of records.
  kQuarantine = 0,
  // Rethrow the final error from Run(), draining in-flight work first —
  // the pre-resilience fail-fast behavior.
  kAbort = 1,
};

std::string ToString(OnFailure policy);
// Parses "quarantine"/"abort"; throws std::invalid_argument otherwise.
OnFailure ParseOnFailure(const std::string& name);

// Per-run resilience knobs, carried by RunOptions. Defaults retry transient
// errors but abort on exhaustion, which preserves the historical "an
// experiment error fails the sweep" contract; services and the CLI opt into
// quarantine explicitly.
struct ResilienceOptions {
  // Extra attempts after the first failure, per ladder rung. 0 disables
  // retries entirely.
  int max_retries = 2;
  // Deadline per experiment attempt; an attempt observed to exceed it is
  // treated as failed (and counted as a timeout) even if it eventually
  // produced a record. 0 disables the guard. Detection is cooperative: a
  // stalled attempt is only classified once it returns.
  std::int64_t experiment_timeout_ms = 0;
  // Fraction of batch- and predicted-engine records cross-validated against
  // the differential engine, sampled deterministically from the campaign
  // seed.
  // A mismatch demotes the campaign down the ladder and recomputes the
  // affected batch from the trusted engine. 0 disables self-checking.
  double selfcheck_rate = 0.0;
  OnFailure on_failure = OnFailure::kAbort;
  // Backoff before retry k is min(cap, base << k) plus a deterministic
  // seed-derived jitter in [0, base] — no wall-clock or global randomness,
  // so reruns schedule identically. base 0 disables sleeping (tests).
  std::int64_t backoff_base_ms = 1;
  std::int64_t backoff_cap_ms = 100;
};

// One quarantined experiment: everything needed to audit the failure and to
// re-run the site later (a resumed sweep re-simulates quarantined indices).
struct FailedRecord {
  std::size_t campaign_index = 0;
  std::int64_t experiment_index = -1;
  // Engine of the final attempt (the bottom of the ladder reached).
  CampaignEngine engine = CampaignEngine::kDifferential;
  // Total attempts spent across every rung.
  int attempts = 0;
  bool timed_out = false;
  // what() of the final failure.
  std::string error;
};

// Summary of one Run()/RunSweep() invocation. `ok()` gating is the
// service-level health check: the CLI exits non-zero when it fails even
// though the sweep "completed".
struct SweepOutcome {
  // Records delivered to the sink (simulated + replayed).
  std::int64_t records = 0;
  // Experiments that exhausted every retry and rung.
  std::int64_t quarantined = 0;
  // Failed attempts that were retried (any rung).
  std::int64_t retries = 0;
  // Campaign engine demotions (predicted→batch→differential→full).
  std::int64_t fallbacks = 0;
  // Batch/predicted records cross-validated, and how many disagreed.
  std::int64_t selfchecks = 0;
  std::int64_t selfcheck_mismatches = 0;
  // Attempts that exceeded experiment_timeout_ms.
  std::int64_t timeouts = 0;
  // Corrupt/truncated checkpoint lines dropped while loading the resume
  // stream (filled by callers that loaded one; the executor leaves it 0).
  std::int64_t checkpoint_lines_dropped = 0;
  // Result-cache traffic (filled by the RunSweep facade when
  // RunOptions::result_cache is set; the executor leaves them 0): campaigns
  // fully served from the cache, campaigns that had to simulate, and
  // freshly completed campaigns written back. Not part of ok() — a cold
  // cache is healthy.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_stores = 0;
  // True when a cooperative stop (RunOptions::stop) drained the run before
  // every record was delivered.
  bool stopped = false;

  bool ok() const {
    return quarantined == 0 && selfcheck_mismatches == 0 && !stopped;
  }
};

// The graceful-degradation ladder: predicted → batch → differential → full;
// the per-experiment engines have no cheaper-but-equivalent sibling to fall
// back to (reference IS the baseline), so they return nullopt. Every rung
// produces bit-identical records by construction, which is what makes
// demotion invisible in the output.
std::optional<CampaignEngine> FallbackEngine(CampaignEngine engine);

// Backoff before retry `attempt` (0-based) of the given experiment:
// min(cap, base << attempt) + jitter(seed, campaign, experiment, attempt)
// with jitter in [0, base]. Pure function of its arguments.
std::int64_t BackoffDelayMs(const ResilienceOptions& options,
                            std::uint64_t seed, std::size_t campaign_index,
                            std::int64_t experiment_index, int attempt);

// True when the deterministic self-check sample includes this experiment:
// a seed-derived hash of (campaign, experiment) falls below `rate`.
bool SelfCheckSampled(double rate, std::uint64_t seed,
                      std::size_t campaign_index,
                      std::int64_t experiment_index);

}  // namespace saffire
