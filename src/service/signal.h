// Cooperative SIGINT/SIGTERM drain for long-running sweeps. A killed
// 49-hour campaign (the paper's Sec. III-B scale) should leave a complete,
// resumable checkpoint, not a torn one — so instead of letting the default
// handler abort mid-write, the CLI installs ScopedSignalDrain and passes
// its token as RunOptions::stop: the handler only flips an atomic, workers
// finish the records they are holding, the executor drains the delivery
// frontier, and every sink (including the JSONL checkpoint) is flushed
// before the process exits with the conventional 128+signo status.
#pragma once

#include <atomic>

namespace saffire {

// RAII signal-handler installation. At most one instance may be live at a
// time (the handlers write process-wide flags); the constructor enforces
// this. The destructor restores the previous handlers.
class ScopedSignalDrain {
 public:
  ScopedSignalDrain();
  ~ScopedSignalDrain();
  ScopedSignalDrain(const ScopedSignalDrain&) = delete;
  ScopedSignalDrain& operator=(const ScopedSignalDrain&) = delete;

  // Stop token to pass as RunOptions::stop. Set (only) by the handler.
  const std::atomic<bool>* token() const;

  // True once SIGINT or SIGTERM was received.
  bool triggered() const;

  // The signal that triggered the drain, or 0. The CLI exits 128 + this.
  int signal_number() const;
};

}  // namespace saffire
