// Checkpoint/resume for partial sweeps. The JSONL stream a JsonlRecordSink
// writes (service/sink.h) is loadable as a SweepCheckpoint: every record
// already on disk is replayed into the sinks instead of re-simulated, so an
// interrupted multi-hour sweep (the paper reports 49 h of FPGA fault
// injection, Sec. III-B) resumes from its last flushed line, and per-shard
// JSONL files from split runs merge back into the full sweep.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>

#include "patterns/campaign.h"
#include "service/sweep.h"

namespace saffire {

// Checkpointed state of one campaign.
struct CheckpointCampaign {
  // CampaignKey of the config the records came from — the identity guard
  // ValidateCheckpoint matches against the plan being resumed.
  std::string key;
  std::int64_t total_experiments = 0;
  std::int64_t golden_cycles = 0;
  std::uint64_t golden_pe_steps = 0;
  bool golden_cache_hit = false;
  // experiment index -> record; sparse (a shard checkpoints only its range).
  std::map<std::int64_t, ExperimentRecord> records;

  // True when the records are exactly {0, …, total_experiments − 1}. The
  // map is sorted, so size plus both endpoints proves density — a sparse
  // map of the right size but stray indices (e.g. 1…N) must not pass as
  // "complete", or a malformed entry could round-trip through the result
  // cache as a full campaign.
  bool Complete() const {
    if (static_cast<std::int64_t>(records.size()) != total_experiments) {
      return false;
    }
    return records.empty() ||
           (records.begin()->first == 0 &&
            records.rbegin()->first == total_experiments - 1);
  }
};

struct SweepCheckpoint {
  // plan campaign index -> checkpointed state.
  std::map<std::size_t, CheckpointCampaign> campaigns;

  // Merges another checkpoint (e.g. a different shard's JSONL) into this
  // one. Duplicate (campaign, experiment) entries must agree bit-for-bit;
  // conflicting duplicates or mismatched campaign keys throw.
  void MergeFrom(const SweepCheckpoint& other);

  // The checkpointed record, or nullptr when not covered.
  const ExperimentRecord* Find(std::size_t campaign_index,
                               std::int64_t experiment_index) const;

  std::int64_t TotalRecords() const;
};

// What LoadSweepCheckpoint saw while scanning a stream — surfaced by
// --resume so dropped corruption is visible, not silent.
struct CheckpointLoadStats {
  // Non-empty lines scanned.
  std::int64_t lines = 0;
  // "record" lines successfully rehydrated.
  std::int64_t records = 0;
  // Lines dropped: failed CRC, malformed JSON, or inconsistent content
  // (e.g. a record whose campaign line was itself dropped).
  std::int64_t dropped = 0;
};

// Parses a JSONL stream produced by JsonlRecordSink. Unknown line types
// ("sweep", "sweep_end", "failed") are ignored — quarantined experiments
// deliberately reload as "not yet simulated" so a resumed sweep retries
// them. Lines sealed with a "crc" member are verified against it; unsealed
// lines (format v1) load unchecked. Damaged lines — failed CRC, malformed
// or truncated JSON, content inconsistent with the lines before it — are
// dropped and counted in `stats` (never thrown): a checkpoint is a cache of
// work already done, and the worst case of dropping a line is re-simulating
// it, while trusting a damaged one poisons the merged output.
SweepCheckpoint LoadSweepCheckpoint(std::istream& in,
                                    CheckpointLoadStats* stats = nullptr);

// Verifies the checkpoint matches `plan`: every checkpointed campaign index
// exists in the plan, its key equals CampaignKey(plan.campaigns[i]), its
// experiment count equals the plan's site count, and record indices are in
// range. Throws std::invalid_argument on any mismatch — resuming records
// into the wrong sweep must fail loudly, never merge silently.
void ValidateCheckpoint(const SweepCheckpoint& checkpoint,
                        const CampaignPlan& plan);

// Verifies a single JSONL line's trailing "crc" seal when present; returns
// false only on a failed or malformed seal (unsealed lines pass — format v1
// files predate the seal). Shared by every sealed-JSONL loader, including
// the network-sweep checkpoint (service/network_sweep.h).
bool CheckpointLineCrcOk(const std::string& line);

}  // namespace saffire
