// Streaming consumption of campaign records. The executor pushes each
// record to a RecordSink as soon as its campaign's canonical turn comes up,
// so consumers (CSV files, JSONL checkpoints, live progress, histograms)
// see results incrementally instead of waiting for a CampaignResult to
// materialize — on the paper's scale (hours-long sweeps, Sec. III-B) the
// difference is whether a killed run leaves anything behind.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "patterns/campaign.h"
#include "service/resilience.h"
#include "service/sweep.h"

namespace saffire {

// Per-campaign header handed to every campaign-scoped callback.
struct CampaignBeginInfo {
  std::size_t campaign_index = 0;
  const CampaignConfig* config = nullptr;
  // Experiments in the campaign; records are delivered with indices in
  // [0, total_experiments) but a sharded/resumed run may deliver a subset.
  std::int64_t total_experiments = 0;
  // Experiments this run will actually deliver (in-shard + replayed).
  std::int64_t scheduled_experiments = 0;
  std::int64_t golden_cycles = 0;
  std::uint64_t golden_pe_steps = 0;
  bool golden_cache_hit = false;
  // True when the campaign was satisfied entirely from a checkpoint (no
  // simulation happened; golden_* come from the checkpoint too).
  bool replayed = false;
  // Batch-engine occupancy (patterns/campaign.h CampaignResult): populated
  // only once every record has been published, so these are zero in every
  // callback before OnCampaignEnd.
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;
  // Self-check mismatches charged to this campaign (service/resilience.h).
  // Populated like the occupancy counters — final only in OnCampaignEnd,
  // zero in earlier callbacks. A nonzero count means some records were
  // emitted before the demotion / synthesis-disable and never re-verified;
  // consumers that persist completed campaigns (the result cache) must
  // gate on it.
  std::int64_t selfcheck_mismatches = 0;
  // Symmetry plan (CampaignConfig::symmetry): the number of site-equivalence
  // classes among total_experiments sites (== total_experiments when no plan
  // is active), and whether member records are synthesized from
  // representatives this run. Campaigns replayed from a checkpoint report
  // classes == total_experiments — nothing was simulated either way.
  std::int64_t symmetry_classes = 0;
  bool symmetry_active = false;
};

// Consumer interface. Delivery contract (service/executor.h): callbacks
// arrive in canonical order — OnSweepBegin, then for each campaign in plan
// order OnCampaignBegin / OnRecord (experiment indices strictly
// increasing) / OnCampaignEnd, then OnSweepEnd — and are serialized by the
// executor, so implementations need no locking. All methods default to
// no-ops so sinks override only what they consume.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  virtual void OnSweepBegin(const CampaignPlan& /*plan*/) {}
  virtual void OnCampaignBegin(const CampaignBeginInfo& /*info*/) {}
  virtual void OnRecord(const CampaignBeginInfo& /*info*/,
                        std::int64_t /*experiment_index*/,
                        const ExperimentRecord& /*record*/) {}
  // A quarantined experiment (service/resilience.h), delivered at the
  // position its record would have occupied — the frontier stays canonical
  // even when sites fail. Only emitted under OnFailure::kQuarantine.
  virtual void OnExperimentFailed(const CampaignBeginInfo& /*info*/,
                                  const FailedRecord& /*failure*/) {}
  virtual void OnCampaignEnd(const CampaignBeginInfo& /*info*/) {}
  virtual void OnSweepEnd() {}
};

// Accumulates full CampaignResult values — for callers that want the batch
// CampaignResult analysis API after a streaming run.
class CollectorSink : public RecordSink {
 public:
  void OnCampaignBegin(const CampaignBeginInfo& info) override;
  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override;
  void OnCampaignEnd(const CampaignBeginInfo& info) override;

  // One result per campaign, in plan order. Valid after the run returns.
  std::vector<CampaignResult> TakeResults() { return std::move(results_); }
  const std::vector<CampaignResult>& results() const { return results_; }

 private:
  std::vector<CampaignResult> results_;
};

// Aggregates observed-class counts across all campaigns without retaining
// records — the sweep-wide version of CampaignResult::Histogram().
class HistogramSink : public RecordSink {
 public:
  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override;

  const std::map<PatternClass, std::int64_t>& histogram() const {
    return histogram_;
  }
  std::int64_t total() const { return total_; }

 private:
  std::map<PatternClass, std::int64_t> histogram_;
  std::int64_t total_ = 0;
};

// Streams the WriteCampaignCsv schema: one header, then one row per record
// across every campaign in the sweep. For a single campaign the output is
// byte-identical to WriteCampaignCsv (tests/service/sink_test.cc).
class CsvRecordSink : public RecordSink {
 public:
  explicit CsvRecordSink(std::ostream& out);

  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override;

 private:
  CsvWriter writer_;
};

// Streams the checkpoint format (service/checkpoint.h): one JSON object per
// line — a "campaign" line per OnCampaignBegin carrying the CampaignKey
// identity guard, then a "record" line per experiment and a "failed" line
// per quarantined one. Every line is sealed with a trailing "crc" member
// (CRC-32 of everything before it), so the loader can drop lines corrupted
// on disk instead of resuming from poisoned data; each line stays a valid
// standalone JSON object. The file doubles as a resumable checkpoint and a
// machine-readable result log.
class JsonlRecordSink : public RecordSink {
 public:
  explicit JsonlRecordSink(std::ostream& out) : out_(out) {}

  void OnSweepBegin(const CampaignPlan& plan) override;
  void OnCampaignBegin(const CampaignBeginInfo& info) override;
  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override;
  void OnExperimentFailed(const CampaignBeginInfo& info,
                          const FailedRecord& failure) override;
  void OnSweepEnd() override;

 private:
  // Seals `body` (a complete JSON object) with the "crc" member and writes
  // it as one line.
  void WriteSealedLine(const std::string& body, bool flush);

  std::ostream& out_;
};

// Live progress / ETA on an interactive stream, throttled so hot loops do
// not spend their time formatting ("\r"-refreshed single line).
class ProgressSink : public RecordSink {
 public:
  explicit ProgressSink(std::ostream& out,
                        std::chrono::milliseconds min_interval =
                            std::chrono::milliseconds(500))
      : out_(out), min_interval_(min_interval) {}

  void OnSweepBegin(const CampaignPlan& plan) override;
  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override;
  void OnSweepEnd() override;

 private:
  void Render(bool final);

  std::ostream& out_;
  std::chrono::milliseconds min_interval_;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point last_render_{};
  std::int64_t total_ = 0;
  std::int64_t done_ = 0;
};

// Fans every callback out to several sinks (non-owning), in order.
class TeeSink : public RecordSink {
 public:
  explicit TeeSink(std::vector<RecordSink*> sinks);

  void OnSweepBegin(const CampaignPlan& plan) override;
  void OnCampaignBegin(const CampaignBeginInfo& info) override;
  void OnRecord(const CampaignBeginInfo& info, std::int64_t experiment_index,
                const ExperimentRecord& record) override;
  void OnExperimentFailed(const CampaignBeginInfo& info,
                          const FailedRecord& failure) override;
  void OnCampaignEnd(const CampaignBeginInfo& info) override;
  void OnSweepEnd() override;

 private:
  std::vector<RecordSink*> sinks_;
};

// Discards everything — for timing runs where consumption cost must be 0.
class NullSink : public RecordSink {};

}  // namespace saffire
