#include "service/signal.h"

#include <csignal>

#include "common/check.h"

namespace saffire {

namespace {

// Process-wide because signal handlers cannot carry state. Written only
// from the handler (flags) and from ScopedSignalDrain's ctor/dtor.
std::atomic<bool> g_stop{false};
std::atomic<int> g_signal{0};
std::atomic<int> g_instances{0};

// Async-signal-safe: lock-free atomic stores only.
extern "C" void SaffireDrainHandler(int signo) {
  g_signal.store(signo, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_relaxed);
}

void (*g_prev_int)(int) = nullptr;
void (*g_prev_term)(int) = nullptr;

}  // namespace

ScopedSignalDrain::ScopedSignalDrain() {
  if (g_instances.fetch_add(1) != 0) {
    // Roll back before throwing: a failed construction never runs the
    // destructor, and a leaked count would block every later instance.
    g_instances.fetch_sub(1);
    SAFFIRE_CHECK_MSG(false,
                      "only one ScopedSignalDrain may be live at a time");
  }
  g_stop.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
  g_prev_int = std::signal(SIGINT, SaffireDrainHandler);
  g_prev_term = std::signal(SIGTERM, SaffireDrainHandler);
}

ScopedSignalDrain::~ScopedSignalDrain() {
  std::signal(SIGINT, g_prev_int == SIG_ERR ? SIG_DFL : g_prev_int);
  std::signal(SIGTERM, g_prev_term == SIG_ERR ? SIG_DFL : g_prev_term);
  g_instances.fetch_sub(1);
}

const std::atomic<bool>* ScopedSignalDrain::token() const { return &g_stop; }

bool ScopedSignalDrain::triggered() const {
  return g_stop.load(std::memory_order_relaxed);
}

int ScopedSignalDrain::signal_number() const {
  return g_signal.load(std::memory_order_relaxed);
}

}  // namespace saffire
