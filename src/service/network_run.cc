#include "service/network_run.h"

#include <algorithm>
#include <array>

#include "accel/controller.h"
#include "accel/driver.h"
#include "fi/injector.h"
#include "mitigation/abft.h"
#include "obs/metrics.h"
#include "patterns/corruption.h"
#include "patterns/predictor.h"
#include "tensor/gemm.h"

namespace saffire {

namespace {

// --- Metrics ----------------------------------------------------------------

obs::Counter& ExperimentsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.experiments", "network-level fault experiments executed");
  return counter;
}

obs::Counter& SdcCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.sdc",
      "network experiments whose final logits deviated from golden");
  return counter;
}

obs::Counter& MaskedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.masked",
      "network experiments with no final-logit deviation");
  return counter;
}

obs::Counter& Top1FlipsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.top1_flips",
      "evaluation samples whose top-1 class flipped under fault");
  return counter;
}

obs::Counter& SelfchecksCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.selfchecks",
      "appfi-rung experiments cross-validated against the cycle-accurate "
      "rung");
  return counter;
}

obs::Counter& SelfcheckMismatchesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.selfcheck_mismatches",
      "network selfchecks where the appfi rung disagreed with ground truth");
  return counter;
}

obs::Counter& DemotionsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.demotions",
      "network campaigns demoted from the appfi rung to cycle-accurate");
  return counter;
}

obs::Counter& AbftDetectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.abft.detected",
      "network experiments where ABFT flagged at least one layer");
  return counter;
}

obs::Counter& AbftCorrectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.abft.corrected",
      "network experiments where every flagged layer re-verified clean");
  return counter;
}

obs::Counter& AbftUncorrectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.abft.uncorrected",
      "network experiments where ABFT detected corruption it could not "
      "repair");
  return counter;
}

obs::Counter& PatternCounter(PatternClass pattern) {
  // One labelled series per class, resolved once per process.
  static std::array<obs::Counter*, kNumPatternClasses> counters = [] {
    std::array<obs::Counter*, kNumPatternClasses> resolved{};
    for (int i = 0; i < kNumPatternClasses; ++i) {
      resolved[static_cast<std::size_t>(i)] =
          &obs::MetricsRegistry::Default().GetCounter(
              "saffire.dnn.pattern",
              "network experiments by first-layer pattern class",
              "class=" + ToString(static_cast<PatternClass>(i)));
    }
    return resolved;
  }();
  return *counters[static_cast<std::size_t>(pattern)];
}

// --- Experiment execution ---------------------------------------------------

// Per-experiment observations collected by the layer executor as inference
// flows through it.
struct LayerProbe {
  // First in-scope layer's output, post-injection, pre-ABFT-correction —
  // the raw fault manifestation the pattern is classified from.
  Int32Tensor first_faulty{{1, 1}};
  bool captured = false;
  AbftDiagnosis worst = AbftDiagnosis::kClean;
  std::int64_t corrections = 0;
  bool any_detected = false;
  bool all_verified = true;
};

struct ExperimentContext {
  const NetworkSweepSpec& spec;
  const NetworkCampaign& campaign;
  const PreparedNetwork& network;
  const PreparedNetwork::Inference& golden;
  std::int64_t golden_correct;
  const ClassifyContext& first_context;
  const NetworkFi& injector;
  // The first layer the fault applies to — where corruption enters from
  // clean inputs and the reach contract holds on both rungs.
  int first_scope;
};

struct ExperimentResult {
  NetworkRecord record;
  // Corruption at the first in-scope layer (golden vs pre-ABFT faulty).
  CorruptionMap first_map;
};

bool InScope(const NetworkCampaign& campaign, int layer) {
  return campaign.layer == -1 || campaign.layer == layer;
}

// Shared per-layer bookkeeping: capture the raw first-scope output, then
// (optionally) ABFT-verify and correct in place so the corrected tensor is
// what propagates forward.
void ObserveLayer(const ExperimentContext& context, LayerProbe& probe,
                  int layer, const Int8Tensor& a, const Int8Tensor& b,
                  Int32Tensor& out) {
  if (layer == context.first_scope && !probe.captured) {
    probe.first_faulty = out;
    probe.captured = true;
  }
  if (context.spec.abft) {
    const AbftReport report = VerifyAndCorrect(a, b, out);
    probe.worst = std::max(probe.worst, report.diagnosis);
    probe.corrections += report.corrections;
    if (report.detected()) {
      probe.any_detected = true;
      if (!report.verified_after_correction) probe.all_verified = false;
    }
  }
}

ExperimentResult FinishExperiment(const ExperimentContext& context,
                                  const FaultSpec& fault, NetworkRung rung,
                                  const PreparedNetwork::Inference& faulty,
                                  const LayerProbe& probe) {
  SAFFIRE_CHECK_MSG(probe.captured, "first in-scope layer never executed");
  ExperimentResult result;
  result.first_map = ExtractCorruption(
      context.golden
          .layer_outputs[static_cast<std::size_t>(context.first_scope)],
      probe.first_faulty);

  NetworkRecord& record = result.record;
  record.fault = fault;
  record.rung = rung;
  record.pattern = Classify(result.first_map, context.first_context);
  record.corrupted_elements = result.first_map.count();
  record.sdc = !(faulty.logits == context.golden.logits);
  record.top1_flips = Top1Flips(context.golden.top1, faulty.top1);
  record.batch = context.network.batch();
  const std::vector<int>& labels = context.network.labels();
  if (!labels.empty()) {
    record.correct_golden = context.golden_correct;
    std::int64_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (faulty.top1[i] == labels[i]) ++correct;
    }
    record.correct_faulty = correct;
  }
  record.abft_on = context.spec.abft;
  record.abft_diagnosis = probe.worst;
  record.abft_corrections = probe.corrections;
  record.abft_corrected = probe.any_detected && probe.all_verified;
  return result;
}

// The fast rung: clean host GEMMs with the predicted reach perturbed in.
ExperimentResult RunAppFiExperiment(const ExperimentContext& context,
                                    const FaultSpec& fault) {
  LayerProbe probe;
  const LayerGemm gemm = [&context, &fault, &probe](
                             int layer, const Int8Tensor& a,
                             const Int8Tensor& b) {
    Int32Tensor out = GemmRef(a, b);
    if (InScope(context.campaign, layer)) {
      const WorkloadSpec& workload = context.network.layer_workload(layer);
      out = context.spec.perturb_auto
                ? context.injector.InjectForFault(out, workload, fault)
                : context.injector.Inject(out, workload, fault);
    }
    ObserveLayer(context, probe, layer, a, b, out);
    return out;
  };
  const PreparedNetwork::Inference faulty = context.network.Run(gemm);
  return FinishExperiment(context, fault, NetworkRung::kAppFi, faulty, probe);
}

// Ground truth: the simulated accelerator runs every layer, with the fault
// hook installed only while in-scope layers stream through the array.
ExperimentResult RunCycleExperiment(const ExperimentContext& context,
                                    const FaultSpec& fault) {
  Accelerator accelerator(context.spec.accel);
  Driver driver(accelerator);
  FaultInjector hook({fault}, context.spec.accel.array);
  ExecOptions exec;
  exec.dataflow = context.campaign.dataflow;

  LayerProbe probe;
  const LayerGemm gemm = [&context, &probe, &accelerator, &driver, &hook,
                          &exec](int layer, const Int8Tensor& a,
                                 const Int8Tensor& b) {
    if (InScope(context.campaign, layer)) {
      accelerator.array().InstallFaultHook(&hook);
    }
    Int32Tensor out = driver.Gemm(a, b, exec);
    accelerator.array().ClearFaultHook();
    ObserveLayer(context, probe, layer, a, b, out);
    return out;
  };
  const PreparedNetwork::Inference faulty = context.network.Run(gemm);
  return FinishExperiment(context, fault, NetworkRung::kCycleAccurate, faulty,
                          probe);
}

ExperimentResult RunExperimentOnRung(const ExperimentContext& context,
                                     const FaultSpec& fault,
                                     NetworkRung rung) {
  return rung == NetworkRung::kAppFi ? RunAppFiExperiment(context, fault)
                                     : RunCycleExperiment(context, fault);
}

// Soundness check of the fast rung against ground truth: every corrupted
// element the hardware produced at the first in-scope layer must lie inside
// the analytically predicted reach.
bool ObservedWithinReach(const CorruptionMap& observed,
                         const PredictedPattern& predicted) {
  for (const MatrixCoord& coord : observed.corrupted) {
    if (!std::binary_search(predicted.coords.begin(), predicted.coords.end(),
                            coord)) {
      return false;
    }
  }
  return true;
}

void CountRecordMetrics(const NetworkRecord& record) {
  ExperimentsCounter().Increment();
  PatternCounter(record.pattern).Increment();
  (record.sdc ? SdcCounter() : MaskedCounter()).Increment();
  Top1FlipsCounter().Increment(record.top1_flips);
  if (record.abft_on && record.abft_diagnosis != AbftDiagnosis::kClean) {
    AbftDetectedCounter().Increment();
    (record.abft_corrected ? AbftCorrectedCounter()
                           : AbftUncorrectedCounter())
        .Increment();
  }
}

}  // namespace

SweepOutcome RunNetworkSweep(const NetworkSweepSpec& spec,
                             const NetworkRunOptions& options,
                             NetworkRecordSink& sink) {
  spec.Validate();
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  if (options.resume != nullptr) {
    ValidateNetworkCheckpoint(*options.resume, spec, plan);
  }

  // Prepared once: training/quantization dominate setup, and both rungs
  // share the model. The golden inference runs on the host reference GEMM,
  // which the fault-free accelerator matches bit-for-bit (the driver
  // equivalence invariant), so one golden serves every campaign.
  const PreparedNetwork network(spec.network);
  const PreparedNetwork::Inference golden =
      network.Run([](int layer, const Int8Tensor& a, const Int8Tensor& b) {
        (void)layer;
        return GemmRef(a, b);
      });
  std::int64_t golden_correct = -1;
  if (!network.labels().empty()) {
    golden_correct = 0;
    for (std::size_t i = 0; i < network.labels().size(); ++i) {
      if (golden.top1[i] == network.labels()[i]) ++golden_correct;
    }
  }

  SweepOutcome outcome;
  if (options.resume != nullptr) {
    outcome.checkpoint_lines_dropped = options.resume->lines_dropped;
  }
  sink.OnSweepBegin(spec, plan);

  bool stop_requested = false;
  for (std::size_t ci = 0; ci < plan.campaigns.size() && !stop_requested;
       ++ci) {
    const NetworkCampaign& campaign = plan.campaigns[ci];
    NetworkCampaignInfo info;
    info.index = ci;
    info.campaign = campaign;
    info.key = NetworkCampaignKey(spec, campaign);
    info.experiments = plan.experiments_per_campaign();
    sink.OnCampaignBegin(info);

    const int first_scope = campaign.layer == -1 ? 0 : campaign.layer;
    const ClassifyContext first_context = MakeClassifyContext(
        network.layer_workload(first_scope), spec.accel, campaign.dataflow);

    AppFiSpec fi_spec;
    fi_spec.accel = spec.accel;
    fi_spec.dataflow = campaign.dataflow;
    fi_spec.perturb = spec.perturb;
    const NetworkFi injector(fi_spec);

    ExperimentContext context{spec,           campaign, network,
                              golden,         golden_correct,
                              first_context,  injector, first_scope};

    // A selfcheck mismatch demotes the campaign's remainder to ground
    // truth, mirroring the operator-level engine ladder.
    bool demoted = false;

    for (std::int64_t ei = 0; ei < plan.experiments_per_campaign(); ++ei) {
      if (options.stop != nullptr &&
          options.stop->load(std::memory_order_relaxed)) {
        stop_requested = true;
        break;
      }
      if (options.resume != nullptr) {
        const auto replay = options.resume->records.find({ci, ei});
        if (replay != options.resume->records.end()) {
          sink.OnRecord(replay->second);
          ++outcome.records;
          continue;
        }
      }

      FaultSpec fault;
      fault.kind = FaultKind::kStuckAt;
      fault.pe = plan.sites[static_cast<std::size_t>(ei)];
      fault.signal = campaign.signal;
      fault.bit = campaign.bit;
      fault.polarity = campaign.polarity;
      fault.Validate(spec.accel.array);

      const NetworkRung rung =
          demoted ? NetworkRung::kCycleAccurate : spec.rung;
      ExperimentResult result = RunExperimentOnRung(context, fault, rung);

      if (rung == NetworkRung::kAppFi &&
          SelfCheckSampled(options.resilience.selfcheck_rate, spec.seed, ci,
                           ei)) {
        ++outcome.selfchecks;
        SelfchecksCounter().Increment();
        const ExperimentResult truth = RunCycleExperiment(context, fault);
        const PredictedPattern& predicted = PredictPattern(
            network.layer_workload(first_scope), spec.accel,
            campaign.dataflow, fault);
        // Mismatch = a falsified contract: ground-truth corruption escaping
        // the predicted reach, or — where the analytical path is provably
        // bit-exact — any record difference. Cross-rung deviation inside
        // the reach on trained networks is quantization-model tolerance,
        // not a mismatch.
        bool mismatch = !ObservedWithinReach(truth.first_map, predicted);
        if (!mismatch &&
            injector.ExtractionExact(network.layer_workload(first_scope),
                                     fault)) {
          mismatch = !RungEquivalent(result.record, truth.record);
        }
        if (mismatch) {
          ++outcome.selfcheck_mismatches;
          SelfcheckMismatchesCounter().Increment();
          if (!demoted) {
            demoted = true;
            ++outcome.fallbacks;
            DemotionsCounter().Increment();
          }
          result = truth;  // keep the trusted record
        }
      }

      result.record.campaign_index = ci;
      result.record.experiment_index = ei;
      sink.OnRecord(result.record);
      ++outcome.records;
      CountRecordMetrics(result.record);
    }
    sink.OnCampaignEnd(ci);
  }

  outcome.stopped = stop_requested;
  sink.OnSweepEnd(outcome);
  return outcome;
}

}  // namespace saffire
