#include "service/network_run.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

#include "accel/controller.h"
#include "accel/driver.h"
#include "common/log.h"
#include "fi/injector.h"
#include "mitigation/abft.h"
#include "obs/metrics.h"
#include "patterns/corruption.h"
#include "patterns/predictor.h"
#include "service/chaos.h"
#include "tensor/gemm.h"

namespace saffire {

namespace {

// --- Metrics ----------------------------------------------------------------

obs::Counter& ExperimentsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.experiments", "network-level fault experiments executed");
  return counter;
}

obs::Counter& SdcCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.sdc",
      "network experiments whose final logits deviated from golden");
  return counter;
}

obs::Counter& MaskedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.masked",
      "network experiments with no final-logit deviation");
  return counter;
}

obs::Counter& Top1FlipsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.top1_flips",
      "evaluation samples whose top-1 class flipped under fault");
  return counter;
}

obs::Counter& SelfchecksCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.selfchecks",
      "appfi-rung experiments cross-validated against the cycle-accurate "
      "rung");
  return counter;
}

obs::Counter& SelfcheckMismatchesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.selfcheck_mismatches",
      "network selfchecks where the appfi rung disagreed with ground truth");
  return counter;
}

obs::Counter& DemotionsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.demotions",
      "network campaigns demoted from the appfi rung to cycle-accurate");
  return counter;
}

obs::Counter& AbftDetectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.abft.detected",
      "network experiments where ABFT flagged at least one layer");
  return counter;
}

obs::Counter& AbftCorrectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.abft.corrected",
      "network experiments where every flagged layer re-verified clean");
  return counter;
}

obs::Counter& AbftUncorrectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.abft.uncorrected",
      "network experiments where ABFT detected corruption it could not "
      "repair");
  return counter;
}

obs::Counter& PatternCounter(PatternClass pattern) {
  // One labelled series per class, resolved once per process.
  static std::array<obs::Counter*, kNumPatternClasses> counters = [] {
    std::array<obs::Counter*, kNumPatternClasses> resolved{};
    for (int i = 0; i < kNumPatternClasses; ++i) {
      resolved[static_cast<std::size_t>(i)] =
          &obs::MetricsRegistry::Default().GetCounter(
              "saffire.dnn.pattern",
              "network experiments by first-layer pattern class",
              "class=" + ToString(static_cast<PatternClass>(i)));
    }
    return resolved;
  }();
  return *counters[static_cast<std::size_t>(pattern)];
}

// The executor registers the saffire.resilience.* family with pool labels;
// the network runner contributes its own series under layer="network" so
// both layers surface through one metric name without colliding.
obs::Counter& NetRetriesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.resilience.retries",
      "failed experiment/batch attempts retried", "layer=\"network\"");
  return counter;
}

obs::Counter& NetTimeoutsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.resilience.timeouts",
      "experiment attempts that exceeded the deadline", "layer=\"network\"");
  return counter;
}

obs::Counter& NetQuarantinedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.resilience.quarantined",
      "experiments quarantined after exhausting every retry",
      "layer=\"network\"");
  return counter;
}

obs::Counter& MitigatedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.mitigation.experiments",
      "network experiments that also ran a mitigated inference");
  return counter;
}

obs::Counter& MitRecoveredCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.mitigation.recovered_samples",
      "evaluation samples classified correctly under mitigation but not "
      "under the unmitigated fault");
  return counter;
}

obs::Counter& MitResidualSdcCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.dnn.mitigation.residual_sdc",
      "mitigated inferences whose final logits still deviated from golden");
  return counter;
}

// Sleeps the deterministic backoff delay before retry `attempt` (no-op
// when the policy disables backoff).
void SleepBackoff(const ResilienceOptions& res, std::uint64_t seed,
                  std::size_t campaign_index, std::int64_t experiment_index,
                  int attempt) {
  const std::int64_t delay_ms =
      BackoffDelayMs(res, seed, campaign_index, experiment_index, attempt);
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

// --- Experiment execution ---------------------------------------------------

// Per-experiment observations collected by the layer executor as inference
// flows through it.
struct LayerProbe {
  // First in-scope layer's output, post-injection, pre-ABFT-correction —
  // the raw fault manifestation the pattern is classified from.
  Int32Tensor first_faulty{{1, 1}};
  bool captured = false;
  AbftDiagnosis worst = AbftDiagnosis::kClean;
  std::int64_t corrections = 0;
  bool any_detected = false;
  bool all_verified = true;
};

struct ExperimentContext {
  const NetworkSweepSpec& spec;
  const NetworkCampaign& campaign;
  const PreparedNetwork& network;
  const PreparedNetwork::Inference& golden;
  std::int64_t golden_correct;
  const ClassifyContext& first_context;
  const NetworkFi& injector;
  // Fault-free per-layer weight operands, captured from the golden run —
  // the row-remap planner's cost input.
  const std::vector<Int8Tensor>& golden_b;
  // The first layer the fault applies to — where corruption enters from
  // clean inputs and the reach contract holds on both rungs.
  int first_scope;
};

struct ExperimentResult {
  NetworkRecord record;
  // Corruption at the first in-scope layer (golden vs pre-ABFT faulty).
  CorruptionMap first_map;
};

bool InScope(const NetworkCampaign& campaign, int layer) {
  return campaign.layer == -1 || campaign.layer == layer;
}

// Mitigation plans for one experiment: the campaign's policy planned
// against this fault site at every in-scope layer, identity elsewhere.
// Empty when the campaign runs unmitigated.
std::vector<LayerMitigationPlan> BuildMitigationPlans(
    const ExperimentContext& context, const FaultSpec& fault) {
  if (context.campaign.mitigation == MitigationPolicy::kNone) return {};
  std::vector<LayerMitigationPlan> plans(
      static_cast<std::size_t>(context.network.layer_count()));
  for (std::int64_t layer = 0; layer < context.network.layer_count();
       ++layer) {
    if (!InScope(context.campaign, static_cast<int>(layer))) continue;
    plans[static_cast<std::size_t>(layer)] = PlanLayerMitigation(
        context.campaign.mitigation, context.network.layer_workload(layer),
        context.spec.accel, context.campaign.dataflow, fault,
        context.network.channel_salience(layer),
        &context.golden_b[static_cast<std::size_t>(layer)]);
  }
  return plans;
}

// Shared per-layer bookkeeping: capture the raw first-scope output, then
// (optionally) ABFT-verify and correct in place so the corrected tensor is
// what propagates forward.
void ObserveLayer(const ExperimentContext& context, LayerProbe& probe,
                  int layer, const Int8Tensor& a, const Int8Tensor& b,
                  Int32Tensor& out) {
  if (layer == context.first_scope && !probe.captured) {
    probe.first_faulty = out;
    probe.captured = true;
  }
  if (context.spec.abft) {
    const AbftReport report = VerifyAndCorrect(a, b, out);
    probe.worst = std::max(probe.worst, report.diagnosis);
    probe.corrections += report.corrections;
    if (report.detected()) {
      probe.any_detected = true;
      if (!report.verified_after_correction) probe.all_verified = false;
    }
  }
}

// Second inference of the experiment, with the campaign's plans applied
// around the same physical executor, filling the record's mit_* fields.
// The observer corrects first (sweep-wide ABFT, or the plan's own
// abft_correct) and captures after, so mit_corrupted is the residual
// first-layer damage the mitigation failed to absorb.
void RunMitigatedInference(const ExperimentContext& context,
                           const std::vector<LayerMitigationPlan>& plans,
                           const LayerGemm& physical,
                           NetworkRecord& record) {
  if (plans.empty()) return;
  Int32Tensor mit_first{{1, 1}};
  bool captured = false;
  const PreparedNetwork::LayerObserver observe =
      [&context, &plans, &mit_first, &captured](
          int layer, const Int8Tensor& a, const Int8Tensor& b,
          Int32Tensor& out) {
        if (context.spec.abft ||
            plans[static_cast<std::size_t>(layer)].abft) {
          (void)VerifyAndCorrect(a, b, out);
        }
        if (layer == context.first_scope && !captured) {
          mit_first = out;
          captured = true;
        }
      };
  const PreparedNetwork::Inference mitigated =
      context.network.Run(physical, plans, observe);
  SAFFIRE_CHECK_MSG(captured, "first in-scope layer never executed");

  record.mit_corrupted =
      ExtractCorruption(
          context.golden
              .layer_outputs[static_cast<std::size_t>(context.first_scope)],
          mit_first)
          .count();
  record.mit_sdc = !(mitigated.logits == context.golden.logits);
  record.mit_top1_flips = Top1Flips(context.golden.top1, mitigated.top1);
  const std::vector<int>& labels = context.network.labels();
  if (!labels.empty()) {
    std::int64_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (mitigated.top1[i] == labels[i]) ++correct;
    }
    record.mit_correct_faulty = correct;
  }
}

ExperimentResult FinishExperiment(const ExperimentContext& context,
                                  const FaultSpec& fault, NetworkRung rung,
                                  const PreparedNetwork::Inference& faulty,
                                  const LayerProbe& probe) {
  SAFFIRE_CHECK_MSG(probe.captured, "first in-scope layer never executed");
  ExperimentResult result;
  result.first_map = ExtractCorruption(
      context.golden
          .layer_outputs[static_cast<std::size_t>(context.first_scope)],
      probe.first_faulty);

  NetworkRecord& record = result.record;
  record.fault = fault;
  record.rung = rung;
  record.pattern = Classify(result.first_map, context.first_context);
  record.corrupted_elements = result.first_map.count();
  record.sdc = !(faulty.logits == context.golden.logits);
  record.top1_flips = Top1Flips(context.golden.top1, faulty.top1);
  record.batch = context.network.batch();
  const std::vector<int>& labels = context.network.labels();
  if (!labels.empty()) {
    record.correct_golden = context.golden_correct;
    std::int64_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (faulty.top1[i] == labels[i]) ++correct;
    }
    record.correct_faulty = correct;
  }
  record.abft_on = context.spec.abft;
  record.abft_diagnosis = probe.worst;
  record.abft_corrections = probe.corrections;
  record.abft_corrected = probe.any_detected && probe.all_verified;
  return result;
}

// The fast rung: clean host GEMMs with the predicted reach perturbed in.
// The same physical executor serves the baseline and the mitigated
// inference — under mitigation the injector perturbs the remapped
// (physical) coordinates, and RestoreOutput permutes them back.
ExperimentResult RunAppFiExperiment(
    const ExperimentContext& context, const FaultSpec& fault,
    const std::vector<LayerMitigationPlan>& plans) {
  const LayerGemm physical = [&context, &fault](int layer,
                                                const Int8Tensor& a,
                                                const Int8Tensor& b) {
    Int32Tensor out = GemmRef(a, b);
    if (InScope(context.campaign, layer)) {
      const WorkloadSpec& workload = context.network.layer_workload(layer);
      out = context.spec.perturb_auto
                ? context.injector.InjectForFault(out, workload, fault)
                : context.injector.Inject(out, workload, fault);
    }
    return out;
  };
  LayerProbe probe;
  const LayerGemm gemm = [&context, &physical, &probe](
                             int layer, const Int8Tensor& a,
                             const Int8Tensor& b) {
    Int32Tensor out = physical(layer, a, b);
    ObserveLayer(context, probe, layer, a, b, out);
    return out;
  };
  const PreparedNetwork::Inference faulty = context.network.Run(gemm);
  ExperimentResult result =
      FinishExperiment(context, fault, NetworkRung::kAppFi, faulty, probe);
  RunMitigatedInference(context, plans, physical, result.record);
  return result;
}

// Ground truth: the simulated accelerator runs every layer, with the fault
// hook installed only while in-scope layers stream through the array. The
// mitigated inference drives the same faulty array with the remapped
// workload, so rung cross-validation gates the remap math end to end.
ExperimentResult RunCycleExperiment(
    const ExperimentContext& context, const FaultSpec& fault,
    const std::vector<LayerMitigationPlan>& plans) {
  Accelerator accelerator(context.spec.accel);
  Driver driver(accelerator);
  FaultInjector hook({fault}, context.spec.accel.array);
  ExecOptions exec;
  exec.dataflow = context.campaign.dataflow;

  const LayerGemm physical = [&context, &accelerator, &driver, &hook, &exec](
                                 int layer, const Int8Tensor& a,
                                 const Int8Tensor& b) {
    if (InScope(context.campaign, layer)) {
      accelerator.array().InstallFaultHook(&hook);
    }
    Int32Tensor out = driver.Gemm(a, b, exec);
    accelerator.array().ClearFaultHook();
    return out;
  };
  LayerProbe probe;
  const LayerGemm gemm = [&context, &physical, &probe](
                             int layer, const Int8Tensor& a,
                             const Int8Tensor& b) {
    Int32Tensor out = physical(layer, a, b);
    ObserveLayer(context, probe, layer, a, b, out);
    return out;
  };
  const PreparedNetwork::Inference faulty = context.network.Run(gemm);
  ExperimentResult result = FinishExperiment(
      context, fault, NetworkRung::kCycleAccurate, faulty, probe);
  RunMitigatedInference(context, plans, physical, result.record);
  return result;
}

ExperimentResult RunExperimentOnRung(
    const ExperimentContext& context, const FaultSpec& fault,
    const std::vector<LayerMitigationPlan>& plans, NetworkRung rung) {
  return rung == NetworkRung::kAppFi
             ? RunAppFiExperiment(context, fault, plans)
             : RunCycleExperiment(context, fault, plans);
}

// The network resilience ladder, mirroring the operator executor's
// RunExperimentResilient: max_retries attempts per rung with deterministic
// backoff, cooperative deadline classification, then demotion appfi →
// cycle-accurate (the network's only fallback rung) and one more attempt
// cycle. std::invalid_argument is permanent — the same spec fails
// identically everywhere — and skips straight to the failure policy.
// Returns true with *result filled, or false with *failure filled
// (quarantine); under OnFailure::kAbort the final error is rethrown.
bool RunExperimentResilient(const ExperimentContext& context,
                            const FaultSpec& fault,
                            const std::vector<LayerMitigationPlan>& plans,
                            const ResilienceOptions& res, std::size_t ci,
                            std::int64_t ei, NetworkRung rung, bool& demoted,
                            SweepOutcome& outcome, ExperimentResult* result,
                            NetworkFailedRecord* failure) {
  int total_attempts = 0;
  bool timed_out = false;
  bool permanent = false;
  std::exception_ptr last_error;
  std::string last_what;
  while (true) {
    for (int attempt = 0; attempt <= res.max_retries; ++attempt) {
      if (total_attempts > 0) {
        ++outcome.retries;
        NetRetriesCounter().Increment();
        SleepBackoff(res, context.spec.seed, ci, ei, total_attempts - 1);
      }
      ++total_attempts;
      try {
        // Clock before the chaos hook so an injected stall lands inside the
        // measured window, exactly like a real wedged attempt.
        std::chrono::steady_clock::time_point start;
        if (res.experiment_timeout_ms > 0) {
          start = std::chrono::steady_clock::now();
        }
        chaos::OnExperimentAttempt(ci, ei, attempt);
        ExperimentResult attempt_result =
            RunExperimentOnRung(context, fault, plans, rung);
        if (res.experiment_timeout_ms > 0) {
          const std::int64_t elapsed_ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (elapsed_ms > res.experiment_timeout_ms) {
            // Cooperative deadline: the attempt already returned, but
            // trusting one that stalled past its budget would let a single
            // wedged site consume the sweep — classify it failed and retry.
            ++outcome.timeouts;
            NetTimeoutsCounter().Increment();
            timed_out = true;
            last_error = nullptr;
            std::ostringstream os;
            os << "experiment " << ei << " exceeded the "
               << res.experiment_timeout_ms << " ms deadline (took "
               << elapsed_ms << " ms)";
            last_what = os.str();
            continue;
          }
        }
        *result = std::move(attempt_result);
        return true;
      } catch (const std::invalid_argument& error) {
        last_error = std::current_exception();
        last_what = error.what();
        timed_out = false;
        permanent = true;  // the same spec fails identically on any rung
        break;
      } catch (const std::exception& error) {
        last_error = std::current_exception();
        last_what = error.what();
        timed_out = false;
      }
    }
    if (permanent) break;
    if (rung == NetworkRung::kCycleAccurate) break;  // bottom of the ladder
    rung = NetworkRung::kCycleAccurate;
    if (!demoted) {
      // Failure-driven demotion sticks for the campaign's remainder, like a
      // selfcheck mismatch.
      demoted = true;
      ++outcome.fallbacks;
      DemotionsCounter().Increment();
      SAFFIRE_LOG_WARN << "network campaign " << ci
                       << ": demoting to the cycle-accurate rung after "
                       << total_attempts << " failed appfi attempts";
    }
  }
  if (res.on_failure == OnFailure::kAbort) {
    if (last_error != nullptr) std::rethrow_exception(last_error);
    throw std::runtime_error(last_what);
  }
  failure->campaign_index = ci;
  failure->experiment_index = ei;
  failure->rung = rung;
  failure->attempts = total_attempts;
  failure->timed_out = timed_out;
  failure->error = last_what;
  ++outcome.quarantined;
  NetQuarantinedCounter().Increment();
  SAFFIRE_LOG_WARN << "network campaign " << ci << " experiment " << ei
                   << ": quarantined after " << total_attempts
                   << " attempts: " << last_what;
  return false;
}

// Soundness check of the fast rung against ground truth: every corrupted
// element the hardware produced at the first in-scope layer must lie inside
// the analytically predicted reach.
bool ObservedWithinReach(const CorruptionMap& observed,
                         const PredictedPattern& predicted) {
  for (const MatrixCoord& coord : observed.corrupted) {
    if (!std::binary_search(predicted.coords.begin(), predicted.coords.end(),
                            coord)) {
      return false;
    }
  }
  return true;
}

void CountRecordMetrics(const NetworkCampaign& campaign,
                        const NetworkRecord& record) {
  ExperimentsCounter().Increment();
  PatternCounter(record.pattern).Increment();
  (record.sdc ? SdcCounter() : MaskedCounter()).Increment();
  Top1FlipsCounter().Increment(record.top1_flips);
  if (record.abft_on && record.abft_diagnosis != AbftDiagnosis::kClean) {
    AbftDetectedCounter().Increment();
    (record.abft_corrected ? AbftCorrectedCounter()
                           : AbftUncorrectedCounter())
        .Increment();
  }
  if (campaign.mitigation != MitigationPolicy::kNone) {
    MitigatedCounter().Increment();
    if (record.mit_sdc) MitResidualSdcCounter().Increment();
    if (record.correct_faulty >= 0 &&
        record.mit_correct_faulty > record.correct_faulty) {
      MitRecoveredCounter().Increment(record.mit_correct_faulty -
                                      record.correct_faulty);
    }
  }
}

}  // namespace

SweepOutcome RunNetworkSweep(const NetworkSweepSpec& spec,
                             const NetworkRunOptions& options,
                             NetworkRecordSink& sink) {
  spec.Validate();
  const NetworkCampaignPlan plan = BuildNetworkCampaignPlan(spec);
  if (options.resume != nullptr) {
    ValidateNetworkCheckpoint(*options.resume, spec, plan);
  }

  // Prepared once: training/quantization dominate setup, and both rungs
  // share the model. The golden inference runs on the host reference GEMM,
  // which the fault-free accelerator matches bit-for-bit (the driver
  // equivalence invariant), so one golden serves every campaign. The
  // per-layer weight operands are kept for the row-remap cost model.
  const PreparedNetwork network(spec.network);
  std::vector<Int8Tensor> golden_b(
      static_cast<std::size_t>(network.layer_count()), Int8Tensor{{1, 1}});
  const PreparedNetwork::Inference golden = network.Run(
      [&golden_b](int layer, const Int8Tensor& a, const Int8Tensor& b) {
        golden_b[static_cast<std::size_t>(layer)] = b;
        return GemmRef(a, b);
      });
  std::int64_t golden_correct = -1;
  if (!network.labels().empty()) {
    golden_correct = 0;
    for (std::size_t i = 0; i < network.labels().size(); ++i) {
      if (golden.top1[i] == network.labels()[i]) ++golden_correct;
    }
  }

  SweepOutcome outcome;
  if (options.resume != nullptr) {
    outcome.checkpoint_lines_dropped = options.resume->lines_dropped;
  }
  sink.OnSweepBegin(spec, plan);

  bool stop_requested = false;
  for (std::size_t ci = 0; ci < plan.campaigns.size() && !stop_requested;
       ++ci) {
    const NetworkCampaign& campaign = plan.campaigns[ci];
    NetworkCampaignInfo info;
    info.index = ci;
    info.campaign = campaign;
    info.key = NetworkCampaignKey(spec, campaign);
    info.experiments = plan.experiments_per_campaign();
    sink.OnCampaignBegin(info);

    const int first_scope = campaign.layer == -1 ? 0 : campaign.layer;
    const ClassifyContext first_context = MakeClassifyContext(
        network.layer_workload(first_scope), spec.accel, campaign.dataflow);

    AppFiSpec fi_spec;
    fi_spec.accel = spec.accel;
    fi_spec.dataflow = campaign.dataflow;
    fi_spec.perturb = spec.perturb;
    const NetworkFi injector(fi_spec);

    ExperimentContext context{spec,          campaign,       network,
                              golden,        golden_correct, first_context,
                              injector,      golden_b,       first_scope};

    // A selfcheck mismatch or an exhausted appfi retry ladder demotes the
    // campaign's remainder to ground truth, mirroring the operator-level
    // engine ladder.
    bool demoted = false;

    for (std::int64_t ei = 0; ei < plan.experiments_per_campaign(); ++ei) {
      if (options.stop != nullptr &&
          options.stop->load(std::memory_order_relaxed)) {
        stop_requested = true;
        break;
      }
      if (options.resume != nullptr) {
        const auto replay = options.resume->records.find({ci, ei});
        if (replay != options.resume->records.end()) {
          sink.OnRecord(replay->second);
          ++outcome.records;
          continue;
        }
        // Quarantined lines carry no result, so a missing record — failed
        // or never reached — re-simulates here.
      }

      FaultSpec fault;
      fault.kind = FaultKind::kStuckAt;
      fault.pe = plan.sites[static_cast<std::size_t>(ei)];
      fault.signal = campaign.signal;
      fault.bit = campaign.bit;
      fault.polarity = campaign.polarity;
      fault.Validate(spec.accel.array);
      const std::vector<LayerMitigationPlan> mit_plans =
          BuildMitigationPlans(context, fault);

      const NetworkRung rung =
          demoted ? NetworkRung::kCycleAccurate : spec.rung;
      ExperimentResult result;
      NetworkFailedRecord failure;
      if (!RunExperimentResilient(context, fault, mit_plans,
                                  options.resilience, ci, ei, rung, demoted,
                                  outcome, &result, &failure)) {
        sink.OnExperimentFailed(failure);
        continue;
      }

      if (result.record.rung == NetworkRung::kAppFi &&
          SelfCheckSampled(options.resilience.selfcheck_rate, spec.seed, ci,
                           ei)) {
        ++outcome.selfchecks;
        SelfchecksCounter().Increment();
        const ExperimentResult truth =
            RunCycleExperiment(context, fault, mit_plans);
        const PredictedPattern& predicted = PredictPattern(
            network.layer_workload(first_scope), spec.accel,
            campaign.dataflow, fault);
        // Mismatch = a falsified contract: ground-truth corruption escaping
        // the predicted reach, or — where the analytical path is provably
        // bit-exact — any record difference. Cross-rung deviation inside
        // the reach on trained networks is quantization-model tolerance,
        // not a mismatch.
        bool mismatch = !ObservedWithinReach(truth.first_map, predicted);
        if (!mismatch &&
            injector.ExtractionExact(network.layer_workload(first_scope),
                                     fault)) {
          mismatch = !RungEquivalent(result.record, truth.record);
        }
        if (chaos::ForceSelfCheckMismatch(ci)) mismatch = true;
        if (mismatch) {
          ++outcome.selfcheck_mismatches;
          SelfcheckMismatchesCounter().Increment();
          if (!demoted) {
            demoted = true;
            ++outcome.fallbacks;
            DemotionsCounter().Increment();
          }
          result = truth;  // keep the trusted record
        }
      }

      result.record.campaign_index = ci;
      result.record.experiment_index = ei;
      sink.OnRecord(result.record);
      ++outcome.records;
      CountRecordMetrics(campaign, result.record);
    }
    sink.OnCampaignEnd(ci);
  }

  outcome.stopped = stop_requested;
  sink.OnSweepEnd(outcome);
  return outcome;
}

}  // namespace saffire
