// Sweep planning: the paper's evaluation is not one campaign but *sweeps*
// of hundreds of them (Sec. III-B — every signal × polarity × bit ×
// dataflow × workload; 49 h on the F1 FPGA). A SweepSpec makes that matrix
// data instead of a hand-written bench loop: it names the axes, expands to
// a CampaignPlan (one CampaignConfig per cartesian cell plus explicit shard
// ranges over fault sites), and serializes to JSON so a sweep can be
// version-controlled, shipped to a service endpoint, or split across
// processes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "patterns/campaign.h"

namespace saffire {

// JSON (de)serialization of one workload, shared by SweepSpec and
// NetworkSweepSpec (service/network_sweep.h) so spec files agree on one
// schema. The accelerator analogue lives in accel/config_json.h.
void WriteWorkloadJson(JsonWriter& w, const WorkloadSpec& workload);
WorkloadSpec ParseWorkloadJson(const JsonValue& json);

// The cartesian fault-model axes of one sweep. Every axis must be
// non-empty; single-element axes pin that dimension (a single campaign is
// the degenerate sweep with every axis pinned). Heterogeneous sweeps —
// e.g. Table I's per-row site sampling — are lists of specs; plans
// concatenate.
struct SweepSpec {
  AccelConfig accel;
  std::vector<WorkloadSpec> workloads;
  std::vector<Dataflow> dataflows{Dataflow::kWeightStationary};
  std::vector<MacSignal> signals{MacSignal::kAdderOut};
  std::vector<StuckPolarity> polarities{StuckPolarity::kStuckAt1};
  std::vector<int> bits{8};

  FaultKind kind = FaultKind::kStuckAt;
  // Site selection per campaign: 0 = exhaustive, else uniform sample.
  std::int64_t max_sites = 0;
  std::uint64_t seed = 1;
  CampaignEngine engine = CampaignEngine::kDifferential;
  // Shard ranges per campaign (for multi-process splits and partial runs);
  // executors subdivide further for load balance, so 1 is fine locally.
  int shards = 1;
  // Propagated to CampaignConfig::symmetry on every expanded campaign.
  // Optional in spec JSON (absent = false) so pre-existing spec files parse.
  bool symmetry = false;

  // Campaigns this spec expands to (the axis product).
  std::size_t CampaignCount() const;

  // Throws std::invalid_argument on empty axes or invalid members.
  void Validate() const;

  // JSON round-trip. Enums serialize as their ToString names so spec files
  // are hand-editable; ParseSweepSpec accepts exactly what ToJson emits
  // (unknown keys are rejected to catch typos early).
  std::string ToJson() const;
};

SweepSpec ParseSweepSpec(const std::string& json);

// One contiguous range of a campaign's canonical site order. Shards of one
// campaign partition [0, sites); executing any subset of shards yields
// exactly those records, and the deterministic merge is concatenation.
struct PlannedShard {
  std::size_t campaign_index = 0;
  int shard_index = 0;  // within the campaign
  std::int64_t begin = 0;
  std::int64_t end = 0;  // exclusive
};

// A fully expanded sweep: campaigns in canonical order (spec order, then
// workload × dataflow × signal × polarity × bit, each axis in list order)
// and their shard ranges.
struct CampaignPlan {
  std::vector<CampaignConfig> campaigns;
  // Sites per campaign (the campaign's experiment count).
  std::vector<std::int64_t> site_counts;
  // Campaign-major: all shards of campaign 0, then campaign 1, ...
  std::vector<PlannedShard> shards;

  std::int64_t total_experiments() const;
};

CampaignPlan BuildCampaignPlan(const SweepSpec& spec);
CampaignPlan BuildCampaignPlan(const std::vector<SweepSpec>& specs);

// The one-campaign degenerate plan (tests and single-campaign tools).
CampaignPlan SingleCampaignPlan(const CampaignConfig& config);

// Serializes every field that determines a campaign's records — the
// identity guard checkpoints store so a resume against a different plan is
// rejected instead of silently merged (service/checkpoint.h).
std::string CampaignKey(const CampaignConfig& config);

// FNV-1a 64-bit hash of CampaignKey (16 lowercase hex chars) — the
// content address of a campaign's record set, invariant across engines,
// thread counts, symmetry, and workload names (none affect the records).
// Used as the result cache's filename (service/result_cache.h); the cache
// re-verifies the full key on load, so a hash collision degrades to a miss,
// never to wrong records.
std::string CampaignContentHash(const CampaignConfig& config);

}  // namespace saffire
