#include "service/resilience.h"

#include <algorithm>

#include "common/check.h"

namespace saffire {

namespace {

// SplitMix64 — the same mixer common/rng.h seeds with; good enough to turn
// (seed, campaign, experiment, attempt) into an unbiased jitter stream.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashExperiment(std::uint64_t seed, std::size_t campaign_index,
                             std::int64_t experiment_index) {
  std::uint64_t h = Mix64(seed ^ 0x7265736955ULL);
  h = Mix64(h ^ static_cast<std::uint64_t>(campaign_index));
  h = Mix64(h ^ static_cast<std::uint64_t>(experiment_index));
  return h;
}

}  // namespace

std::string ToString(OnFailure policy) {
  switch (policy) {
    case OnFailure::kQuarantine:
      return "quarantine";
    case OnFailure::kAbort:
      return "abort";
  }
  SAFFIRE_ASSERT_MSG(false, "policy " << static_cast<int>(policy));
}

OnFailure ParseOnFailure(const std::string& name) {
  if (name == "quarantine") return OnFailure::kQuarantine;
  if (name == "abort") return OnFailure::kAbort;
  SAFFIRE_CHECK_MSG(false, "unknown failure policy '"
                               << name << "' (expected quarantine|abort)");
}

std::optional<CampaignEngine> FallbackEngine(CampaignEngine engine) {
  switch (engine) {
    case CampaignEngine::kPredicted:
      return CampaignEngine::kBatch;
    case CampaignEngine::kBatch:
      return CampaignEngine::kDifferential;
    case CampaignEngine::kDifferential:
      return CampaignEngine::kFull;
    case CampaignEngine::kFull:
    case CampaignEngine::kReference:
      return std::nullopt;
  }
  return std::nullopt;
}

std::int64_t BackoffDelayMs(const ResilienceOptions& options,
                            std::uint64_t seed, std::size_t campaign_index,
                            std::int64_t experiment_index, int attempt) {
  if (options.backoff_base_ms <= 0) return 0;
  const int shift = std::min(attempt, 20);
  const std::int64_t exponential =
      std::min(options.backoff_cap_ms, options.backoff_base_ms << shift);
  const std::uint64_t h =
      Mix64(HashExperiment(seed, campaign_index, experiment_index) ^
            static_cast<std::uint64_t>(attempt));
  const std::int64_t jitter = static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(options.backoff_base_ms + 1));
  return exponential + jitter;
}

bool SelfCheckSampled(double rate, std::uint64_t seed,
                      std::size_t campaign_index,
                      std::int64_t experiment_index) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const std::uint64_t h =
      HashExperiment(seed ^ 0x73656C66ULL, campaign_index, experiment_index);
  // Top 53 bits → uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < rate;
}

}  // namespace saffire
