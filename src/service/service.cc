// The batch campaign API (declared in patterns/campaign.h), kept as thin
// deprecated wrappers over the RunSweep facade (service/run.h): a
// single-campaign plan, a collector sink, and the process-wide worker pool.
// Living here keeps saffire_patterns free of any threading/orchestration
// code while callers of RunCampaign* transparently benefit from pool and
// simulator reuse. New code should call RunSweep directly.
// This file deliberately exercises the deprecated RunCampaign*
// wrappers (their contract is what is being tested/provided).
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "common/log.h"
#include "patterns/campaign.h"
#include "service/run.h"
#include "service/sink.h"
#include "service/sweep.h"

namespace saffire {

namespace {

// The shared implementation behind both deprecated wrappers (so neither
// calls the other and trips its own deprecation warning).
CampaignResult RunSingleCampaign(const CampaignConfig& config, int threads) {
  config.accel.Validate();
  config.workload.Validate();
  SAFFIRE_CHECK_MSG(threads >= 1 && threads <= 256,
                    "threads=" << threads);

  const CampaignPlan plan = SingleCampaignPlan(config);
  SAFFIRE_LOG_INFO << "campaign: " << config.ToString() << " — "
                   << plan.total_experiments() << " fault sites, "
                   << ToString(config.engine) << " engine, up to " << threads
                   << " thread(s)";

  CollectorSink collector;
  RunOptions options;
  options.max_parallelism = threads;
  RunSweep(plan, options, collector);

  std::vector<CampaignResult> results = collector.TakeResults();
  SAFFIRE_ASSERT_MSG(results.size() == 1,
                     "single-campaign plan produced " << results.size()
                                                      << " results");
  return std::move(results.front());
}

}  // namespace

CampaignResult RunCampaign(const CampaignConfig& config) {
  return RunSingleCampaign(config, 1);
}

CampaignResult RunCampaignParallel(const CampaignConfig& config,
                                   int threads) {
  return RunSingleCampaign(config, threads);
}

}  // namespace saffire
