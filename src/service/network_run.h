// RunNetworkSweep: the network-level facade beside RunSweep (service/run.h)
// — expands a NetworkSweepSpec into campaigns, executes every experiment on
// the configured rung, streams NetworkRecords to a sink, and returns the
// shared SweepOutcome health summary.
//
// Rung semantics:
//   kAppFi          — golden host inference + predicted-reach perturbation
//                     per in-scope layer (appfi/appfi.h). Orders of
//                     magnitude faster than simulation; the paper's
//                     application-level-injector use case.
//   kCycleAccurate  — every experiment drives the simulated accelerator
//                     with the fault installed on the array, and the real
//                     corrupted tensors propagate through the network.
//
// Cross-validation (ResilienceOptions::selfcheck_rate): a seed-deterministic
// sample of appfi-rung experiments is re-run on the cycle-accurate rung.
// A mismatch — observed corruption escaping the predicted reach, or, where
// the analytical path is provably bit-exact (NetworkFi::ExtractionExact),
// any record difference — counts in SweepOutcome::selfcheck_mismatches,
// demotes the campaign's remaining experiments to the cycle-accurate rung
// (SweepOutcome::fallbacks), and keeps the trusted cycle-accurate record.
// Top-1 disagreement on trained networks within the reach contract is
// quantization-model tolerance, not a mismatch; it is still visible in
// records because a demoted record carries the cycle-accurate outcome.
#pragma once

#include <atomic>

#include "service/network_sweep.h"

namespace saffire {

struct NetworkRunOptions {
  // Full resilience ladder, matching the operator executor: max_retries
  // capped-backoff attempts per rung, cooperative experiment_timeout_ms
  // deadlines, demotion appfi → cycle-accurate on an exhausted ladder, and
  // on_failure routing exhausted experiments to quarantine
  // (OnExperimentFailed + a re-simulatable "network-failed" checkpoint
  // line) or abort.
  ResilienceOptions resilience;
  // Completed records replayed to the sink instead of re-executed. Must
  // have passed ValidateNetworkCheckpoint for this spec (RunNetworkSweep
  // re-validates).
  const NetworkCheckpoint* resume = nullptr;
  // Cooperative stop: checked between experiments; a drained run returns
  // outcome.stopped = true.
  const std::atomic<bool>* stop = nullptr;
};

SweepOutcome RunNetworkSweep(const NetworkSweepSpec& spec,
                             const NetworkRunOptions& options,
                             NetworkRecordSink& sink);

inline SweepOutcome RunNetworkSweep(const NetworkSweepSpec& spec,
                                    NetworkRecordSink& sink) {
  return RunNetworkSweep(spec, NetworkRunOptions{}, sink);
}

}  // namespace saffire
