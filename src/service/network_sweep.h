// Network-level sweep planning: the end-to-end analogue of service/sweep.h.
// Where a SweepSpec sweeps stuck-at faults over one operator and records
// corruption maps, a NetworkSweepSpec sweeps them over the layers of a
// whole quantized network (dnn/network.h) and records what the corruption
// does to the application — SDC, top-1 flips, accuracy degradation —
// classified by the paper's pattern classes, plus ABFT detection/correction
// coverage when mitigation is enabled.
//
// Two execution rungs realize each experiment:
//   kAppFi          — the fast tensor-level path the paper proposes for
//                     application-level injectors: clean host GEMMs with
//                     the predicted fault reach perturbed in (appfi/appfi.h);
//   kCycleAccurate  — ground truth: the faulty simulated accelerator runs
//                     every in-scope layer, and the real corrupted tensors
//                     feed forward.
// RunNetworkSweep (service/network_run.h) cross-validates the fast rung
// against ground truth with seed-deterministic selfcheck sampling and
// demotes a campaign to the cycle-accurate rung on any mismatch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "appfi/appfi.h"
#include "dnn/network.h"
#include "mitigation/abft.h"
#include "mitigation/remap.h"
#include "patterns/classify.h"
#include "service/resilience.h"

namespace saffire {

// Which engine realizes the network experiments.
enum class NetworkRung : std::uint8_t {
  kAppFi = 0,
  kCycleAccurate = 1,
};

std::string ToString(NetworkRung rung);

// Parses exactly the ToString names; throws std::invalid_argument naming
// the accepted values ("appfi|cycle-accurate") otherwise.
NetworkRung ParseNetworkRung(const std::string& name);

// The cartesian fault-model axes of one network sweep. Every axis must be
// non-empty; single-element axes pin that dimension. The fault model is the
// paper's: one permanent stuck-at per experiment (transient strikes need
// per-run cycle planning and stay at the operator level).
struct NetworkSweepSpec {
  AccelConfig accel;
  NetworkSpec network;
  std::vector<Dataflow> dataflows{Dataflow::kWeightStationary};
  std::vector<MacSignal> signals{MacSignal::kAdderOut};
  std::vector<StuckPolarity> polarities{StuckPolarity::kStuckAt1};
  std::vector<int> bits{8};
  // Injection scopes: each entry is either a 0-based layer index (the fault
  // is active only while that layer's GEMM runs — a per-layer fault study)
  // or -1 (the fault is active for the whole network — a true permanent
  // fault).
  std::vector<int> layers{-1};
  // Graceful-degradation axis (mitigation/remap.h): for every policy other
  // than kNone each experiment runs a baseline and a mitigated inference
  // and records the recovered-accuracy / residual-SDC deltas. The
  // remap/prune policies plan from the analytical predictor, so they
  // require predictor-covered signals on either rung.
  std::vector<MitigationPolicy> mitigations{MitigationPolicy::kNone};

  // Site selection per campaign: 0 = exhaustive, else uniform sample.
  std::int64_t max_sites = 0;
  std::uint64_t seed = 1;
  NetworkRung rung = NetworkRung::kAppFi;
  // Run every in-scope layer's GEMM through ABFT verify-and-correct
  // (mitigation/abft.h) and record per-class coverage.
  bool abft = false;
  // Perturbation the appfi rung applies to predicted coordinates.
  // perturb_auto derives it from each fault (set/clear the fault's bit per
  // polarity — PerturbForFault); otherwise `perturb` applies verbatim.
  bool perturb_auto = true;
  PerturbSpec perturb;

  // Campaigns this spec expands to (the axis product).
  std::size_t CampaignCount() const;

  // Throws std::invalid_argument on empty axes, out-of-range layer
  // indices, or invalid members.
  void Validate() const;

  // JSON round-trip. Enums serialize as their ToString names
  // (perturb_mode additionally accepts "auto"); ParseNetworkSweepSpec
  // accepts exactly what ToJson emits and rejects unknown keys.
  std::string ToJson() const;
};

NetworkSweepSpec ParseNetworkSweepSpec(const std::string& json);

// One expanded campaign: a fault axis cell. Sites are shared across
// campaigns (same array, same seed) and live on the plan.
struct NetworkCampaign {
  Dataflow dataflow = Dataflow::kWeightStationary;
  MacSignal signal = MacSignal::kAdderOut;
  StuckPolarity polarity = StuckPolarity::kStuckAt1;
  int bit = 8;
  int layer = -1;  // -1 = whole network
  MitigationPolicy mitigation = MitigationPolicy::kNone;
};

struct NetworkCampaignPlan {
  std::vector<NetworkCampaign> campaigns;  // canonical axis order
  std::vector<PeCoord> sites;              // per-campaign experiment sites

  std::int64_t experiments_per_campaign() const {
    return static_cast<std::int64_t>(sites.size());
  }
  std::int64_t total_experiments() const {
    return static_cast<std::int64_t>(campaigns.size()) *
           experiments_per_campaign();
  }
};

NetworkCampaignPlan BuildNetworkCampaignPlan(const NetworkSweepSpec& spec);

// Serializes every field that determines a campaign's records — the
// identity guard network checkpoints store so a resume against a different
// sweep is rejected instead of silently merged.
std::string NetworkCampaignKey(const NetworkSweepSpec& spec,
                               const NetworkCampaign& campaign);

// FNV-1a 64-bit hash (16 lowercase hex chars) of the spec JSON under a
// versioned domain prefix — the whole-sweep identity stamped on checkpoint
// header lines.
std::string NetworkSweepHash(const NetworkSweepSpec& spec);

// One completed network experiment.
struct NetworkRecord {
  std::size_t campaign_index = 0;
  std::int64_t experiment_index = -1;
  FaultSpec fault;
  // Rung that actually produced this record (demotion can differ from the
  // spec's rung). Excluded from the CSV sink so rung-equivalent sweeps
  // diff byte-identically.
  NetworkRung rung = NetworkRung::kAppFi;

  // Fault manifestation at the first in-scope layer, in GEMM view.
  PatternClass pattern = PatternClass::kMasked;
  std::int64_t corrupted_elements = 0;

  // Network-level outcome. `sdc` is any final-logit deviation from golden;
  // correct_* are right-label counts over the batch (-1 when the network
  // has no labels, e.g. kExtraction).
  bool sdc = false;
  std::int64_t top1_flips = 0;
  std::int64_t batch = 0;
  std::int64_t correct_golden = -1;
  std::int64_t correct_faulty = -1;

  // ABFT coverage (meaningful when the sweep ran with abft = true).
  bool abft_on = false;
  AbftDiagnosis abft_diagnosis = AbftDiagnosis::kClean;  // worst layer
  std::int64_t abft_corrections = 0;
  // Every flagged layer re-verified clean after correction.
  bool abft_corrected = false;

  // Mitigated-run outcome (campaign.mitigation != kNone; sentinels
  // otherwise). The mitigated inference re-runs the experiment with the
  // campaign's LayerMitigationPlans applied; these fields are its residual
  // damage, so (mit_correct_faulty - correct_faulty) is the recovered
  // accuracy and mit_corrupted the residual first-layer corruption after
  // remapping/pruning/correction.
  bool mit_sdc = false;
  std::int64_t mit_corrupted = 0;
  std::int64_t mit_top1_flips = 0;
  std::int64_t mit_correct_faulty = -1;

  bool operator==(const NetworkRecord&) const = default;
};

// True when the two records agree on everything an execution rung is
// contracted to reproduce (all fields except `rung` itself).
bool RungEquivalent(const NetworkRecord& a, const NetworkRecord& b);

// --- Record sinks -----------------------------------------------------------
// The network analogue of service/sink.h, with the same streaming
// discipline: begin/record/end callbacks in canonical order, single sweep
// at a time.

struct NetworkCampaignInfo {
  std::size_t index = 0;
  NetworkCampaign campaign;
  std::string key;
  std::int64_t experiments = 0;
};

// One quarantined network experiment — the network analogue of
// FailedRecord, with the execution rung in place of the operator engine.
struct NetworkFailedRecord {
  std::size_t campaign_index = 0;
  std::int64_t experiment_index = -1;
  // Rung of the final attempt (the bottom of the ladder reached).
  NetworkRung rung = NetworkRung::kCycleAccurate;
  // Total attempts spent across both rungs.
  int attempts = 0;
  bool timed_out = false;
  // what() of the final failure.
  std::string error;
};

class NetworkRecordSink {
 public:
  virtual ~NetworkRecordSink() = default;
  virtual void OnSweepBegin(const NetworkSweepSpec& spec,
                            const NetworkCampaignPlan& plan) {
    (void)spec;
    (void)plan;
  }
  virtual void OnCampaignBegin(const NetworkCampaignInfo& info) {
    (void)info;
  }
  virtual void OnRecord(const NetworkRecord& record) { (void)record; }
  // A quarantined experiment (retries exhausted under on_failure =
  // kQuarantine). Delivered in canonical position — where OnRecord would
  // have been.
  virtual void OnExperimentFailed(const NetworkFailedRecord& failed) {
    (void)failed;
  }
  virtual void OnCampaignEnd(std::size_t campaign_index) {
    (void)campaign_index;
  }
  virtual void OnSweepEnd(const SweepOutcome& outcome) { (void)outcome; }
};

// Accumulates every record in memory.
class NetworkCollectorSink : public NetworkRecordSink {
 public:
  void OnRecord(const NetworkRecord& record) override {
    records.push_back(record);
  }
  void OnExperimentFailed(const NetworkFailedRecord& failed) override {
    failures.push_back(failed);
  }
  std::vector<NetworkRecord> records;
  std::vector<NetworkFailedRecord> failures;
};

// Streams records as CSV (header + one row per record, canonical order).
// The rung column is deliberately absent — see NetworkRecord::rung.
class NetworkCsvSink : public NetworkRecordSink {
 public:
  explicit NetworkCsvSink(std::ostream& out) : out_(out) {}
  void OnSweepBegin(const NetworkSweepSpec& spec,
                    const NetworkCampaignPlan& plan) override;
  void OnRecord(const NetworkRecord& record) override;

 private:
  std::ostream& out_;
  // Rows carry the campaign's axes, which live on the plan.
  std::vector<NetworkCampaign> campaigns_;
};

// Streams the sweep as CRC-sealed JSONL — the checkpoint format
// LoadNetworkCheckpoint reads back. Line types: "network-sweep" (header,
// spec hash), "network-campaign" (key guard), "network-record",
// "network-failed" (quarantine marker; carries no resumable result, so the
// loader skips it and a resume re-simulates the experiment).
class NetworkJsonlSink : public NetworkRecordSink {
 public:
  // flush_every_line makes each line durable immediately (checkpoints);
  // leave it off for plain exports.
  explicit NetworkJsonlSink(std::ostream& out, bool flush_every_line = false)
      : out_(out), flush_(flush_every_line) {}
  void OnSweepBegin(const NetworkSweepSpec& spec,
                    const NetworkCampaignPlan& plan) override;
  void OnCampaignBegin(const NetworkCampaignInfo& info) override;
  void OnRecord(const NetworkRecord& record) override;
  void OnExperimentFailed(const NetworkFailedRecord& failed) override;
  void OnSweepEnd(const SweepOutcome& outcome) override;

 private:
  void WriteSealedLine(const std::string& body);

  std::ostream& out_;
  bool flush_;
};

// Fans every callback out to several sinks in order.
class NetworkTeeSink : public NetworkRecordSink {
 public:
  explicit NetworkTeeSink(std::vector<NetworkRecordSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void OnSweepBegin(const NetworkSweepSpec& spec,
                    const NetworkCampaignPlan& plan) override {
    for (NetworkRecordSink* sink : sinks_) sink->OnSweepBegin(spec, plan);
  }
  void OnCampaignBegin(const NetworkCampaignInfo& info) override {
    for (NetworkRecordSink* sink : sinks_) sink->OnCampaignBegin(info);
  }
  void OnRecord(const NetworkRecord& record) override {
    for (NetworkRecordSink* sink : sinks_) sink->OnRecord(record);
  }
  void OnExperimentFailed(const NetworkFailedRecord& failed) override {
    for (NetworkRecordSink* sink : sinks_) sink->OnExperimentFailed(failed);
  }
  void OnCampaignEnd(std::size_t campaign_index) override {
    for (NetworkRecordSink* sink : sinks_) sink->OnCampaignEnd(campaign_index);
  }
  void OnSweepEnd(const SweepOutcome& outcome) override {
    for (NetworkRecordSink* sink : sinks_) sink->OnSweepEnd(outcome);
  }

 private:
  std::vector<NetworkRecordSink*> sinks_;
};

// --- Checkpoint loading -----------------------------------------------------

struct NetworkCheckpoint {
  // Records by (campaign, experiment); duplicates keep the last line.
  std::map<std::pair<std::size_t, std::int64_t>, NetworkRecord> records;
  // Campaign keys seen (for the resume identity guard).
  std::map<std::size_t, std::string> campaign_keys;
  std::string sweep_hash;  // from the header line; empty if none survived
  std::int64_t lines_dropped = 0;

  bool empty() const { return records.empty(); }
};

// Reads a stream of NetworkJsonlSink lines. Never throws on malformed,
// truncated, or seal-failing lines — they are counted in lines_dropped and
// skipped, so a checkpoint cut mid-line resumes cleanly.
NetworkCheckpoint LoadNetworkCheckpoint(std::istream& in);

// Resume identity guard: throws std::invalid_argument when the checkpoint
// carries a different sweep hash or a campaign key that disagrees with the
// plan's.
void ValidateNetworkCheckpoint(const NetworkCheckpoint& checkpoint,
                               const NetworkSweepSpec& spec,
                               const NetworkCampaignPlan& plan);

}  // namespace saffire
