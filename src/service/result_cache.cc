#include "service/result_cache.h"

#include <exception>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/atomic_file.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "service/sink.h"
#include "service/sweep.h"

namespace saffire {

namespace {

obs::Counter& CacheHitsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.cache.hits", "campaigns fully served from the result cache");
  return counter;
}

obs::Counter& CacheMissesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.cache.misses",
      "result-cache lookups that had to simulate (absent, corrupt, "
      "incomplete, or key-mismatched entries)");
  return counter;
}

obs::Counter& CacheStoresCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.cache.stores",
      "completed campaigns written back to the result cache");
  return counter;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  SAFFIRE_CHECK_MSG(!dir_.empty(), "empty result-cache directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  SAFFIRE_CHECK_MSG(!ec, "cannot create result-cache directory '"
                             << dir_ << "': " << ec.message());
}

std::string ResultCache::EntryPath(const CampaignConfig& config) const {
  return dir_ + "/" + CampaignContentHash(config) + ".jsonl";
}

std::optional<CheckpointCampaign> ResultCache::Load(
    const CampaignConfig& config, std::int64_t expected_experiments) const {
  const std::string path = EntryPath(config);
  std::optional<CheckpointCampaign> entry;
  std::ifstream in(path);
  if (in) {
    // The checkpoint loader already treats damage as "not yet simulated";
    // here any irregularity at all — extra campaigns, foreign key, wrong
    // count, holes — additionally voids the whole entry. A cache may only
    // answer with exactly the records a fresh simulation would produce.
    SweepCheckpoint checkpoint = LoadSweepCheckpoint(in);
    const auto it = checkpoint.campaigns.find(0);
    if (checkpoint.campaigns.size() == 1 && it != checkpoint.campaigns.end() &&
        it->second.key == CampaignKey(config) &&
        it->second.total_experiments == expected_experiments &&
        it->second.Complete()) {
      entry = std::move(it->second);
    }
  }
  (entry.has_value() ? CacheHitsCounter() : CacheMissesCounter()).Increment();
  return entry;
}

bool ResultCache::Store(const CampaignConfig& config,
                        const CheckpointCampaign& entry) const {
  const std::int64_t total = entry.total_experiments;
  // Density precondition: exactly indices 0…total−1. Size alone would let
  // a same-sized map with stray indices (1…N) through, and such an entry
  // would also pass Load's Complete() gate on the way back out.
  SAFFIRE_CHECK_MSG(
      static_cast<std::int64_t>(entry.records.size()) == total &&
          (entry.records.empty() ||
           (entry.records.begin()->first == 0 &&
            entry.records.rbegin()->first == total - 1)),
      "caching a partial campaign: " << entry.records.size() << " of "
                                     << total << " records");
  try {
    AtomicFileWriter writer(EntryPath(config));
    JsonlRecordSink sink(writer.stream());
    CampaignBeginInfo info;
    info.campaign_index = 0;
    info.config = &config;
    info.total_experiments = total;
    info.scheduled_experiments = total;
    info.golden_cycles = entry.golden_cycles;
    info.golden_pe_steps = entry.golden_pe_steps;
    info.golden_cache_hit = entry.golden_cache_hit;
    sink.OnCampaignBegin(info);
    for (const auto& [experiment_index, record] : entry.records) {
      sink.OnRecord(info, experiment_index, record);
    }
    writer.Commit();
  } catch (const std::exception& error) {
    SAFFIRE_LOG_WARN << "result cache: failed to store "
                     << EntryPath(config) << ": " << error.what();
    return false;
  }
  CacheStoresCounter().Increment();
  return true;
}

}  // namespace saffire
