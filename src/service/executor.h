// The campaign execution service: one persistent worker pool that runs
// whole CampaignPlans, work-stealing across every campaign in a batch, and
// streams records to RecordSinks in a deterministic canonical order.
//
// Why a service instead of a spawn-per-call model:
// a paper-scale sweep is hundreds of campaigns (Sec. III-B), and per-call
// orchestration pays thread spawn/join and simulator construction (each
// FiRunner owns a dram_bytes-sized memory image) once per campaign. The
// executor pays them once per *process*: workers live across Run() calls,
// each worker caches its simulator keyed by the accelerator configuration,
// and the tail of one campaign overlaps the head of the next instead of
// serializing at a join barrier. ExecutorStats counts exactly these savings.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "patterns/campaign.h"
#include "service/checkpoint.h"
#include "service/resilience.h"
#include "service/sink.h"
#include "service/sweep.h"

namespace saffire {

// Cumulative counters since construction, assembled by stats() from the
// executor's registry-backed instruments (obs/metrics.h) — the struct is a
// point-in-time view kept for API compatibility; the live values are the
// "saffire.executor.*" series (one label set per pool) that --metrics-out
// and Prometheus scrapes read. Deltas across a Run() are the per-batch
// cost.
struct ExecutorStats {
  int pool_threads = 0;
  std::int64_t runs = 0;
  // Campaigns simulated vs satisfied entirely from a checkpoint.
  std::int64_t campaigns_executed = 0;
  std::int64_t campaigns_replayed = 0;
  // Experiments simulated vs replayed from checkpointed records.
  std::int64_t experiments_run = 0;
  std::int64_t experiments_replayed = 0;
  std::int64_t chunks_executed = 0;
  // Batch-engine occupancy across all kBatch campaigns (0 otherwise):
  // occupied lanes and array passes, the pool-wide sum of the per-campaign
  // CampaignResult counters.
  std::int64_t lanes_filled = 0;
  std::int64_t batches_run = 0;
  // Simulator (FiRunner) construction vs per-worker cache hits — the
  // acceptance criterion: across a batch, constructed must stay below
  // campaigns × workers while reused grows.
  std::int64_t simulators_constructed = 0;
  std::int64_t simulators_reused = 0;
  // Golden runs served from the process-wide GoldenRunCache.
  std::int64_t golden_cache_hits = 0;
  // Chunks executed by a worker other than the one that prepared the
  // campaign — the work-stealing traffic.
  std::int64_t chunks_stolen = 0;
  // Resilience-layer traffic (the "saffire.resilience.*" series): failed
  // attempts retried, campaign engine demotions, experiments quarantined
  // after exhausting retries, batch records cross-validated (and the
  // mismatches among them), and attempts that exceeded the deadline.
  std::int64_t retries = 0;
  std::int64_t fallbacks = 0;
  std::int64_t quarantined = 0;
  std::int64_t selfchecks = 0;
  std::int64_t selfcheck_mismatches = 0;
  std::int64_t timeouts = 0;
  // Self-checked records whose group ran on the predicted engine (the
  // "saffire.predict.selfchecks" series) — a subset of `selfchecks`.
  std::int64_t predict_selfchecks = 0;
};

// Construction-time configuration of a CampaignExecutor. One struct instead
// of positional arguments so new knobs (and the observability flags that
// feed them) thread through a single place.
struct ExecutorOptions {
  // Worker pool size, [1, 256].
  int threads = DefaultCampaignThreads();
  // Campaigns a run may hold prepared beyond its worker cap, >= 1. Each
  // prepared campaign pins its golden trace and record buffer, so this
  // bounds in-flight memory; 1 reproduces the pre-options behavior (at most
  // cap + 1 campaigns in flight).
  int lookahead = 1;
  // Cap on lanes per batch-engine array pass; 0 keeps each campaign's
  // configured CampaignConfig::batch_lanes. A smaller cap changes occupancy
  // counters and cost only — record streams are lane-count invariant.
  std::int64_t batch_lanes = 0;
  // Registry receiving the executor's instruments; nullptr means
  // obs::MetricsRegistry::Default(). Each executor labels its series
  // pool="<instance>" so concurrent pools stay distinguishable.
  obs::MetricsRegistry* metrics = nullptr;
};

class CampaignExecutor;
class ResultCache;

struct RunOptions {
  // Cap on workers serving this run; 0 means the whole pool. Kept as a cap
  // (not an exact count) so a 1-thread run on a busy pool still means
  // "at most one experiment in flight", which is what determinism tests
  // exercise.
  int max_parallelism = 0;
  // Restrict execution to one plan shard index per campaign (-1 = all).
  // Records outside the shard are delivered only if the checkpoint covers
  // them — the multi-process split workflow.
  int only_shard = -1;
  // Previously completed records to replay instead of re-simulating.
  // Validated against the plan (ValidateCheckpoint) before anything runs.
  const SweepCheckpoint* checkpoint = nullptr;
  // Content-addressed cross-sweep result store (service/result_cache.h),
  // consumed by the RunSweep facade: campaigns found in the cache merge
  // into the replay checkpoint before execution, and freshly completed
  // campaigns are written back. Ignored by CampaignExecutor::Run itself
  // (like `executor`) — pass through RunSweep to get cache semantics.
  // nullptr disables caching. Not combined with only_shard (a shard run
  // never completes a whole campaign).
  ResultCache* result_cache = nullptr;
  // Executor serving the run when going through the RunSweep facade
  // (service/run.h); nullptr means CampaignExecutor::Shared(). Ignored by
  // CampaignExecutor::Run itself (the callee is already chosen).
  CampaignExecutor* executor = nullptr;
  // Retry/fallback/quarantine policy (service/resilience.h). The default
  // retries transient failures but aborts once they are exhausted,
  // preserving the historical "an experiment error fails the sweep"
  // contract.
  ResilienceOptions resilience;
  // Cooperative stop token (graceful shutdown): when it becomes true,
  // workers stop claiming this run's work, in-flight experiments finish and
  // their records are delivered, and Run returns with outcome.stopped set.
  // Typically ScopedSignalDrain::token() (service/signal.h).
  const std::atomic<bool>* stop = nullptr;
};

// The persistent executor. Thread-safe: concurrent Run() calls interleave
// their campaigns on the shared pool. A Run() issued from inside a pool
// worker (a sink or experiment that recursively runs campaigns) executes
// inline on the calling thread instead of deadlocking on its own pool.
class CampaignExecutor {
 public:
  explicit CampaignExecutor(const ExecutorOptions& options = {});
  // Deprecated positional form, equivalent to ExecutorOptions{.threads =
  // threads}; prefer the options constructor.
  explicit CampaignExecutor(int threads);
  ~CampaignExecutor();

  CampaignExecutor(const CampaignExecutor&) = delete;
  CampaignExecutor& operator=(const CampaignExecutor&) = delete;

  // Executes the plan, streaming every record to `sink` in canonical order
  // (campaign-major, site order within a campaign) no matter how the work
  // was scheduled. Blocks until the sink has seen OnSweepEnd. Sink
  // callbacks are serialized by the executor (RecordSink needs no locks)
  // but may run on any worker thread.
  //
  // Failure semantics (service/resilience.h): a throwing experiment is
  // retried with deterministic backoff, then its campaign falls down the
  // engine ladder (predicted→batch→differential→full), and only exhaustion
  // applies ResilienceOptions::on_failure — abort (rethrow after in-flight work
  // drains, preserving the original exception) or quarantine (deliver a
  // FailedRecord via RecordSink::OnExperimentFailed and keep going). A
  // throwing sink aborts the run the same way. The returned SweepOutcome
  // carries this run's record/retry/fallback/quarantine tallies;
  // outcome.ok() is the health check callers should gate on.
  SweepOutcome Run(const CampaignPlan& plan, RecordSink& sink,
                   const RunOptions& options = {});

  // The process-wide shared executor (sized DefaultCampaignThreads()),
  // constructed on first use and joined at exit.
  static CampaignExecutor& Shared();

  // Point-in-time view of the registry-backed counters (thin accessor; the
  // same numbers are scrapeable as the pool-labelled "saffire.executor.*"
  // series).
  ExecutorStats stats() const;
  int threads() const { return static_cast<int>(workers_.size()); }
  const ExecutorOptions& options() const { return options_; }

 private:
  struct RunState;
  struct WorkerCache;

  // The executor's registered instruments; handles are resolved once at
  // construction, updates are lock-free.
  struct Metrics {
    obs::Counter* runs = nullptr;
    obs::Counter* campaigns_executed = nullptr;
    obs::Counter* campaigns_replayed = nullptr;
    obs::Counter* experiments_run = nullptr;
    obs::Counter* experiments_replayed = nullptr;
    obs::Counter* chunks_executed = nullptr;
    obs::Counter* chunks_stolen = nullptr;
    obs::Counter* lanes_filled = nullptr;
    obs::Counter* batches_run = nullptr;
    obs::Counter* simulators_constructed = nullptr;
    obs::Counter* simulators_reused = nullptr;
    obs::Counter* golden_cache_hits = nullptr;
    // The resilience layer ("saffire.resilience.*" series).
    obs::Counter* retries = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* selfchecks = nullptr;
    obs::Counter* selfcheck_mismatches = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* predict_selfchecks = nullptr;
    // Claimable-but-unclaimed chunks across active runs.
    obs::Gauge* queue_depth = nullptr;
    // Workers currently executing a task (vs parked on the condvar).
    obs::Gauge* busy_workers = nullptr;
    // Wall time of each executed chunk — the load-balance distribution.
    obs::Histogram* chunk_seconds = nullptr;
    // Per-worker busy microseconds (utilization = delta / wall time).
    std::vector<obs::Counter*> worker_busy_us;
  };

  void WorkerLoop(std::size_t worker_index);
  // Claims the next task of any active run; returns false when idle.
  bool RunOneTask(WorkerCache& cache, std::unique_lock<std::mutex>& lock);
  // Executes experiments [begin, end) of a prepared campaign on `engine`
  // (the campaign's effective engine at claim time — demotion may move it
  // below the configured one).
  void RunChunk(RunState& run, std::size_t campaign_index, WorkerCache& cache,
                std::int64_t begin, std::int64_t end, CampaignEngine engine);
  void PrepareOne(RunState& run, std::size_t campaign_index,
                  WorkerCache& cache);
  // PrepareOne plus failure policy: on a throw, either quarantines the
  // whole campaign (kQuarantine) or records the run error (kAbort), leaving
  // the campaign ready-with-no-chunks so the frontier can pass it. Caller
  // holds `mutex_`; it is dropped around the preparation itself.
  void PrepareWithPolicy(RunState& run, std::size_t campaign_index,
                         WorkerCache& cache,
                         std::unique_lock<std::mutex>& lock);
  // Runs one experiment through the retry/fallback ladder. Returns true
  // with *record on success; on exhaustion applies the run's on_failure
  // policy — kQuarantine fills *failure and returns false, kAbort rethrows
  // the final error.
  bool RunExperimentResilient(RunState& run, std::size_t campaign_index,
                              FiRunner& runner, std::int64_t index,
                              CampaignEngine engine, ExperimentRecord* record,
                              FailedRecord* failure);
  // Demotes the campaign's effective engine one ladder rung if it still sits
  // at `from`; returns the (possibly unchanged) engine to continue on.
  CampaignEngine DemoteEngine(RunState& run, std::size_t campaign_index,
                              CampaignEngine from);
  // Tally helpers: bump the run's outcome (under `mutex_`) and the matching
  // resilience counter.
  void NoteRetry(RunState& run);
  void NoteTimeout(RunState& run);
  // `engine` is the rung whose record is being cross-validated; predicted
  // checks additionally feed the "saffire.predict.selfchecks" series.
  void NoteSelfCheck(RunState& run, CampaignEngine engine);
  void NoteMismatch(RunState& run, std::size_t campaign_index,
                    std::int64_t experiment_index);
  void NoteQuarantine(RunState& run);
  // Retires every unclaimed chunk (queue-depth gauge included) and marks the
  // run finished — the error/stop abandonment path. Caller holds `mutex_`.
  void AbandonUnclaimed(RunState& run);
  // Delivers every ready record at the canonical frontier. Caller holds
  // `mutex_`; delivery drops it around sink callbacks.
  void Deliver(RunState& run, std::unique_lock<std::mutex>& lock);
  // The batch-lane width RunChunk/PrepareOne use for `config`, after the
  // executor-level cap.
  std::int64_t EffectiveBatchLanes(const CampaignConfig& config) const;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::vector<RunState*> active_;  // runs with undelivered work
  bool shutdown_ = false;
  ExecutorOptions options_;
  Metrics metrics_;
  std::vector<std::thread> workers_;
};

}  // namespace saffire
