// Content-addressed on-disk store of completed campaign results — the
// cross-sweep counterpart of checkpoint/resume. A checkpoint resumes *one*
// interrupted sweep; the result cache recognizes a campaign it has ever
// completed, in any sweep, by the content hash of its CampaignKey
// (service/sweep.h) and serves the records without simulating. On the
// paper's scale (49 h of FPGA fault injection for one table, Sec. III-B)
// repeated and overlapping sub-sweeps are the norm — per-dataflow reruns,
// added bit positions, reproduced figures — and every overlap drops to a
// file read.
//
// Layout: one file per campaign, `<dir>/<CampaignContentHash>.jsonl`, in
// the CRC-sealed checkpoint JSONL format (service/checkpoint.h) with the
// campaign stored at index 0. Writes are atomic (tmp + rename, so a
// crashed writer never leaves a half entry under the final name) and loads
// are corruption-tolerant: a damaged, truncated, incomplete, or
// key-mismatched entry is a cache miss, never a wrong record.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "patterns/campaign.h"
#include "service/checkpoint.h"

namespace saffire {

class ResultCache {
 public:
  // Creates `dir` (and parents) if missing; throws std::invalid_argument
  // when that fails.
  explicit ResultCache(std::string dir);

  // Loads the cached records of `config`, or nullopt on any kind of miss:
  // no entry, unreadable/corrupt file, an embedded key that does not match
  // CampaignKey(config) (hash collision or tampering), or an entry whose
  // record count differs from `expected_experiments` (the plan's site
  // count). Counts saffire.cache.{hits,misses}.
  std::optional<CheckpointCampaign> Load(
      const CampaignConfig& config, std::int64_t expected_experiments) const;

  // Atomically writes a completed campaign as `config`'s entry, replacing
  // any previous one. `entry.records` must cover [0, total_experiments)
  // densely — partial campaigns are not cacheable — and the stored key is
  // derived from `config` (entry.key is ignored). Best-effort: an I/O
  // failure is logged and swallowed (a sweep must not fail because its
  // cache directory did), and false is returned. Counts
  // saffire.cache.stores.
  bool Store(const CampaignConfig& config,
             const CheckpointCampaign& entry) const;

  // The entry path Load/Store use for `config` (tests and tooling).
  std::string EntryPath(const CampaignConfig& config) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace saffire
