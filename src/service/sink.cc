#include "service/sink.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/crc32.h"
#include "common/json.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "patterns/report.h"

namespace saffire {

namespace {

// Sink throughput counters in the default registry ("records/sec" is the
// rate query over these). Handles resolve once per process; sink callbacks
// are already serialized by the executor, so relaxed increments suffice.
obs::Counter& CsvRowsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.sink.csv_rows", "record rows written by CSV sinks");
  return counter;
}

obs::Counter& JsonlRecordsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.sink.jsonl_records", "record lines written by JSONL sinks");
  return counter;
}

obs::Counter& JsonlFlushesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.sink.jsonl_flushes",
      "explicit stream flushes issued by JSONL sinks (checkpoint durability)");
  return counter;
}

}  // namespace

// --- CollectorSink ----------------------------------------------------------

void CollectorSink::OnCampaignBegin(const CampaignBeginInfo& info) {
  SAFFIRE_ASSERT_MSG(info.campaign_index == results_.size(),
                     "campaign " << info.campaign_index
                                 << " delivered out of order");
  CampaignResult result;
  result.config = *info.config;
  result.golden_cycles = info.golden_cycles;
  result.golden_pe_steps = info.golden_pe_steps;
  result.golden_cache_hit = info.golden_cache_hit;
  result.records.reserve(static_cast<std::size_t>(info.total_experiments));
  results_.push_back(std::move(result));
}

void CollectorSink::OnRecord(const CampaignBeginInfo& info,
                             std::int64_t experiment_index,
                             const ExperimentRecord& record) {
  CampaignResult& result = results_.at(info.campaign_index);
  // In-order delivery means indices arrive strictly increasing; a sharded
  // run may skip ranges, which leaves holes the CampaignResult API cannot
  // represent — the collector just concatenates what it sees.
  SAFFIRE_ASSERT_MSG(
      experiment_index >= static_cast<std::int64_t>(result.records.size()),
      "experiment " << experiment_index << " delivered out of order");
  result.records.push_back(record);
}

void CollectorSink::OnCampaignEnd(const CampaignBeginInfo& info) {
  // Batch occupancy is only known once every record has been published.
  CampaignResult& result = results_.at(info.campaign_index);
  result.lanes_filled = info.lanes_filled;
  result.batches_run = info.batches_run;
}

// --- HistogramSink ----------------------------------------------------------

void HistogramSink::OnRecord(const CampaignBeginInfo& /*info*/,
                             std::int64_t /*experiment_index*/,
                             const ExperimentRecord& record) {
  ++histogram_[record.observed];
  ++total_;
}

// --- CsvRecordSink ----------------------------------------------------------

CsvRecordSink::CsvRecordSink(std::ostream& out)
    : writer_(out, CampaignCsvHeader()) {}

void CsvRecordSink::OnRecord(const CampaignBeginInfo& info,
                             std::int64_t /*experiment_index*/,
                             const ExperimentRecord& record) {
  writer_.WriteRow(CampaignCsvRow(*info.config, record));
  CsvRowsCounter().Increment();
}

// --- JsonlRecordSink --------------------------------------------------------

void JsonlRecordSink::WriteSealedLine(const std::string& body, bool flush) {
  // The seal lives inside the object: strip the closing brace and append a
  // final "crc" member computed over everything before it. Each line stays
  // a standalone JSON object (downstream json.loads keeps working); the
  // loader re-derives the covered prefix by splitting at the last ,"crc":"
  // occurrence.
  SAFFIRE_ASSERT_MSG(!body.empty() && body.back() == '}',
                     "sealing a non-object checkpoint line");
  const std::string prefix = body.substr(0, body.size() - 1);
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(prefix));
  out_ << prefix << ",\"crc\":\"" << crc << "\"}\n";
  // Flush per line: the file is a checkpoint, and a resumable line is only
  // worth anything if it reaches the disk before a crash.
  if (flush) {
    out_ << std::flush;
    JsonlFlushesCounter().Increment();
  }
}

void JsonlRecordSink::OnSweepBegin(const CampaignPlan& plan) {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("sweep")
      .Key("campaigns").Uint(plan.campaigns.size())
      .Key("experiments").Int(plan.total_experiments())
      .EndObject();
  WriteSealedLine(line.str(), /*flush=*/false);
}

void JsonlRecordSink::OnCampaignBegin(const CampaignBeginInfo& info) {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("campaign")
      .Key("campaign").Uint(info.campaign_index)
      .Key("key").String(CampaignKey(*info.config))
      .Key("experiments").Int(info.total_experiments)
      .Key("golden_cycles").Int(info.golden_cycles)
      .Key("golden_pe_steps").Uint(info.golden_pe_steps)
      .Key("golden_cache_hit").Bool(info.golden_cache_hit)
      .Key("config").String(info.config->ToString())
      .EndObject();
  WriteSealedLine(line.str(), /*flush=*/false);
}

void JsonlRecordSink::OnRecord(const CampaignBeginInfo& info,
                               std::int64_t experiment_index,
                               const ExperimentRecord& record) {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("record")
      .Key("campaign").Uint(info.campaign_index)
      .Key("experiment").Int(experiment_index)
      .Key("pe_row").Int(record.fault.pe.row)
      .Key("pe_col").Int(record.fault.pe.col)
      .Key("signal").Int(static_cast<int>(record.fault.signal))
      .Key("bit").Int(record.fault.bit)
      .Key("polarity").Int(static_cast<int>(record.fault.polarity))
      .Key("kind").Int(static_cast<int>(record.fault.kind))
      .Key("at_cycle").Int(record.fault.at_cycle)
      .Key("observed").Int(static_cast<int>(record.observed))
      .Key("observed_class").String(ToString(record.observed))
      .Key("predicted").Int(static_cast<int>(record.predicted))
      .Key("prediction_exact").Bool(record.prediction_exact)
      .Key("observed_within_predicted").Bool(record.observed_within_predicted)
      .Key("corrupted_count").Int(record.corrupted_count)
      .Key("max_abs_delta").Int(record.max_abs_delta)
      .Key("fault_activations").Uint(record.fault_activations)
      .Key("cycles").Int(record.cycles)
      .Key("pe_steps").Uint(record.pe_steps)
      .Key("pe_steps_skipped").Uint(record.pe_steps_skipped)
      .EndObject();
  WriteSealedLine(line.str(), /*flush=*/true);
  JsonlRecordsCounter().Increment();
}

void JsonlRecordSink::OnExperimentFailed(const CampaignBeginInfo& info,
                                         const FailedRecord& failure) {
  // The quarantine stream rides in the same file. The loader ignores
  // "failed" lines when rebuilding records, so a resumed sweep re-simulates
  // quarantined sites — exactly the semantics a transient failure wants.
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject()
      .Key("type").String("failed")
      .Key("campaign").Uint(info.campaign_index)
      .Key("experiment").Int(failure.experiment_index)
      .Key("engine").String(ToString(failure.engine))
      .Key("attempts").Int(failure.attempts)
      .Key("timed_out").Bool(failure.timed_out)
      .Key("error").String(failure.error)
      .EndObject();
  WriteSealedLine(line.str(), /*flush=*/true);
}

void JsonlRecordSink::OnSweepEnd() {
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject().Key("type").String("sweep_end").EndObject();
  WriteSealedLine(line.str(), /*flush=*/true);
}

// --- ProgressSink -----------------------------------------------------------

void ProgressSink::OnSweepBegin(const CampaignPlan& plan) {
  total_ = plan.total_experiments();
  done_ = 0;
  start_ = std::chrono::steady_clock::now();
  last_render_ = start_ - min_interval_;
}

void ProgressSink::OnRecord(const CampaignBeginInfo& /*info*/,
                            std::int64_t /*experiment_index*/,
                            const ExperimentRecord& /*record*/) {
  ++done_;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_render_ < min_interval_) return;
  last_render_ = now;
  Render(/*final=*/false);
}

void ProgressSink::OnSweepEnd() { Render(/*final=*/true); }

void ProgressSink::Render(bool final) {
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_);
  const double seconds = static_cast<double>(elapsed.count()) / 1000.0;
  const double percent =
      total_ == 0 ? 100.0
                  : 100.0 * static_cast<double>(done_) /
                        static_cast<double>(total_);
  out_ << '\r' << done_ << '/' << total_ << " experiments ("
       << FormatDouble(percent, 1) << "%), " << FormatDouble(seconds, 1)
       << "s elapsed";
  if (!final && done_ > 0 && total_ > done_) {
    const double eta = seconds * static_cast<double>(total_ - done_) /
                       static_cast<double>(done_);
    out_ << ", ETA " << FormatDouble(eta, 1) << "s";
  }
  if (final) out_ << '\n';
  out_ << std::flush;
}

// --- TeeSink ----------------------------------------------------------------

TeeSink::TeeSink(std::vector<RecordSink*> sinks) : sinks_(std::move(sinks)) {
  for (RecordSink* sink : sinks_) {
    SAFFIRE_CHECK_MSG(sink != nullptr, "null sink in tee");
  }
}

void TeeSink::OnSweepBegin(const CampaignPlan& plan) {
  for (RecordSink* sink : sinks_) sink->OnSweepBegin(plan);
}

void TeeSink::OnCampaignBegin(const CampaignBeginInfo& info) {
  for (RecordSink* sink : sinks_) sink->OnCampaignBegin(info);
}

void TeeSink::OnRecord(const CampaignBeginInfo& info,
                       std::int64_t experiment_index,
                       const ExperimentRecord& record) {
  for (RecordSink* sink : sinks_) {
    sink->OnRecord(info, experiment_index, record);
  }
}

void TeeSink::OnExperimentFailed(const CampaignBeginInfo& info,
                                 const FailedRecord& failure) {
  for (RecordSink* sink : sinks_) sink->OnExperimentFailed(info, failure);
}

void TeeSink::OnCampaignEnd(const CampaignBeginInfo& info) {
  for (RecordSink* sink : sinks_) sink->OnCampaignEnd(info);
}

void TeeSink::OnSweepEnd() {
  for (RecordSink* sink : sinks_) sink->OnSweepEnd();
}

}  // namespace saffire
