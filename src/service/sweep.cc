#include "service/sweep.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "accel/config_json.h"
#include "common/json.h"

namespace saffire {

void WriteWorkloadJson(JsonWriter& w, const WorkloadSpec& workload) {
  w.BeginObject()
      .Key("name").String(workload.name)
      .Key("op").String(ToString(workload.op));
  if (workload.op == OpType::kGemm) {
    w.Key("m").Int(workload.m).Key("k").Int(workload.k).Key("n").Int(
        workload.n);
  } else {
    w.Key("conv").BeginObject()
        .Key("batch").Int(workload.conv.batch)
        .Key("in_channels").Int(workload.conv.in_channels)
        .Key("height").Int(workload.conv.height)
        .Key("width").Int(workload.conv.width)
        .Key("out_channels").Int(workload.conv.out_channels)
        .Key("kernel_h").Int(workload.conv.kernel_h)
        .Key("kernel_w").Int(workload.conv.kernel_w)
        .Key("stride").Int(workload.conv.stride)
        .Key("pad").Int(workload.conv.pad)
        .EndObject();
    w.Key("lowering").String(ToString(workload.lowering));
  }
  w.Key("input_fill").String(ToString(workload.input_fill))
      .Key("weight_fill").String(ToString(workload.weight_fill))
      .Key("data_seed").Uint(workload.data_seed)
      .EndObject();
}

WorkloadSpec ParseWorkloadJson(const JsonValue& json) {
  WorkloadSpec workload;
  workload.name = json.At("name").AsString();
  workload.op = OpTypeFromString(json.At("op").AsString());
  if (workload.op == OpType::kGemm) {
    workload.m = json.At("m").AsInt();
    workload.k = json.At("k").AsInt();
    workload.n = json.At("n").AsInt();
  } else {
    const JsonValue& conv = json.At("conv");
    workload.conv.batch = conv.At("batch").AsInt();
    workload.conv.in_channels = conv.At("in_channels").AsInt();
    workload.conv.height = conv.At("height").AsInt();
    workload.conv.width = conv.At("width").AsInt();
    workload.conv.out_channels = conv.At("out_channels").AsInt();
    workload.conv.kernel_h = conv.At("kernel_h").AsInt();
    workload.conv.kernel_w = conv.At("kernel_w").AsInt();
    workload.conv.stride = conv.At("stride").AsInt();
    workload.conv.pad = conv.At("pad").AsInt();
    workload.lowering = ConvLoweringFromString(json.At("lowering").AsString());
  }
  workload.input_fill =
      OperandFillFromString(json.At("input_fill").AsString());
  workload.weight_fill =
      OperandFillFromString(json.At("weight_fill").AsString());
  workload.data_seed = json.At("data_seed").AsUint();
  return workload;
}

std::size_t SweepSpec::CampaignCount() const {
  return workloads.size() * dataflows.size() * signals.size() *
         polarities.size() * bits.size();
}

void SweepSpec::Validate() const {
  accel.Validate();
  SAFFIRE_CHECK_MSG(!workloads.empty(), "sweep has no workloads");
  SAFFIRE_CHECK_MSG(!dataflows.empty(), "sweep has no dataflows");
  SAFFIRE_CHECK_MSG(!signals.empty(), "sweep has no signals");
  SAFFIRE_CHECK_MSG(!polarities.empty(), "sweep has no polarities");
  SAFFIRE_CHECK_MSG(!bits.empty(), "sweep has no bit positions");
  SAFFIRE_CHECK_MSG(shards >= 1 && shards <= 4096, "shards=" << shards);
  SAFFIRE_CHECK_MSG(max_sites >= 0, "max_sites=" << max_sites);
  for (const WorkloadSpec& workload : workloads) workload.Validate();
  // Bit positions are validated against each signal's width when the
  // campaign's faults are planned (FaultSpec::Validate) — widths differ per
  // signal, so a sweep-level check would be either too strict or too loose.
}

std::string SweepSpec::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("accel");
  WriteAccelJson(w, accel);
  w.Key("workloads").BeginArray();
  for (const WorkloadSpec& workload : workloads) {
    WriteWorkloadJson(w, workload);
  }
  w.EndArray();
  w.Key("dataflows").BeginArray();
  for (const Dataflow dataflow : dataflows) w.String(ToString(dataflow));
  w.EndArray();
  w.Key("signals").BeginArray();
  for (const MacSignal signal : signals) w.String(ToString(signal));
  w.EndArray();
  w.Key("polarities").BeginArray();
  for (const StuckPolarity polarity : polarities) {
    w.String(ToString(polarity));
  }
  w.EndArray();
  w.Key("bits").BeginArray();
  for (const int bit : bits) w.Int(bit);
  w.EndArray();
  w.Key("kind").String(ToString(kind))
      .Key("max_sites").Int(max_sites)
      .Key("seed").Uint(seed)
      .Key("engine").String(ToString(engine))
      .Key("shards").Int(shards)
      .Key("symmetry").Bool(symmetry)
      .EndObject();
  return os.str();
}

SweepSpec ParseSweepSpec(const std::string& json) {
  const JsonValue root = JsonValue::Parse(json);
  // Reject unknown keys so a typo ("polarity" for "polarities") fails loudly
  // instead of silently sweeping the default axis.
  static const std::set<std::string> kKnown = {
      "accel", "workloads", "dataflows", "signals", "polarities", "bits",
      "kind",  "max_sites", "seed",      "engine",  "shards", "symmetry"};
  for (const auto& [key, value] : root.AsObject()) {
    (void)value;
    SAFFIRE_CHECK_MSG(kKnown.count(key) != 0,
                      "unknown sweep spec key '" << key << "'");
  }

  SweepSpec spec;
  spec.accel = ParseAccelJson(root.At("accel"));
  spec.workloads.clear();
  for (const JsonValue& workload : root.At("workloads").AsArray()) {
    spec.workloads.push_back(ParseWorkloadJson(workload));
  }
  spec.dataflows.clear();
  for (const JsonValue& dataflow : root.At("dataflows").AsArray()) {
    spec.dataflows.push_back(DataflowFromString(dataflow.AsString()));
  }
  spec.signals.clear();
  for (const JsonValue& signal : root.At("signals").AsArray()) {
    spec.signals.push_back(MacSignalFromString(signal.AsString()));
  }
  spec.polarities.clear();
  for (const JsonValue& polarity : root.At("polarities").AsArray()) {
    spec.polarities.push_back(StuckPolarityFromString(polarity.AsString()));
  }
  spec.bits.clear();
  for (const JsonValue& bit : root.At("bits").AsArray()) {
    spec.bits.push_back(static_cast<int>(bit.AsInt()));
  }
  spec.kind = FaultKindFromString(root.At("kind").AsString());
  spec.max_sites = root.At("max_sites").AsInt();
  spec.seed = root.At("seed").AsUint();
  spec.engine = CampaignEngineFromString(root.At("engine").AsString());
  spec.shards = static_cast<int>(root.At("shards").AsInt());
  // Optional for back-compat: spec files written before the symmetry flag
  // existed parse with it off.
  const JsonValue* symmetry = root.Find("symmetry");
  spec.symmetry = symmetry != nullptr && symmetry->AsBool();
  spec.Validate();
  return spec;
}

std::int64_t CampaignPlan::total_experiments() const {
  std::int64_t total = 0;
  for (const std::int64_t count : site_counts) total += count;
  return total;
}

namespace {

// Appends one campaign and its shard partition to the plan.
void AppendCampaign(CampaignPlan& plan, const CampaignConfig& config,
                    int shard_count) {
  const std::size_t index = plan.campaigns.size();
  plan.campaigns.push_back(config);
  const auto sites =
      static_cast<std::int64_t>(CampaignSites(config).size());
  plan.site_counts.push_back(sites);
  const auto shards = static_cast<std::int64_t>(
      std::min<std::int64_t>(shard_count, std::max<std::int64_t>(sites, 1)));
  for (std::int64_t s = 0; s < shards; ++s) {
    PlannedShard shard;
    shard.campaign_index = index;
    shard.shard_index = static_cast<int>(s);
    shard.begin = sites * s / shards;
    shard.end = sites * (s + 1) / shards;
    plan.shards.push_back(shard);
  }
}

void AppendSpec(CampaignPlan& plan, const SweepSpec& spec) {
  spec.Validate();
  for (const WorkloadSpec& workload : spec.workloads) {
    for (const Dataflow dataflow : spec.dataflows) {
      for (const MacSignal signal : spec.signals) {
        for (const StuckPolarity polarity : spec.polarities) {
          for (const int bit : spec.bits) {
            CampaignConfig config;
            config.accel = spec.accel;
            config.workload = workload;
            config.dataflow = dataflow;
            config.signal = signal;
            config.polarity = polarity;
            config.bit = bit;
            config.kind = spec.kind;
            config.max_sites = spec.max_sites;
            config.seed = spec.seed;
            config.engine = spec.engine;
            config.symmetry = spec.symmetry;
            AppendCampaign(plan, config, spec.shards);
          }
        }
      }
    }
  }
}

}  // namespace

CampaignPlan BuildCampaignPlan(const SweepSpec& spec) {
  CampaignPlan plan;
  AppendSpec(plan, spec);
  return plan;
}

CampaignPlan BuildCampaignPlan(const std::vector<SweepSpec>& specs) {
  SAFFIRE_CHECK_MSG(!specs.empty(), "empty sweep list");
  CampaignPlan plan;
  for (const SweepSpec& spec : specs) AppendSpec(plan, spec);
  return plan;
}

CampaignPlan SingleCampaignPlan(const CampaignConfig& config) {
  CampaignPlan plan;
  AppendCampaign(plan, config, 1);
  return plan;
}

std::string CampaignKey(const CampaignConfig& config) {
  // Mirrors GoldenRunCache::Key's philosophy: serialize every field that
  // feeds the records, explicitly, so two configs collide iff their
  // campaigns are bit-identical. The workload name is excluded (it does not
  // affect the data); the engine is excluded too, because all engines
  // produce identical records by contract.
  const WorkloadSpec& w = config.workload;
  std::ostringstream key;
  key << config.accel.array.rows << ',' << config.accel.array.cols << ','
      << config.accel.array.input_bits << ',' << config.accel.array.acc_bits
      << ';' << config.accel.spad_rows << ',' << config.accel.acc_rows << ','
      << config.accel.max_compute_rows << ','
      << config.accel.double_buffered_weights << ','
      << config.accel.dram_bytes << ';' << static_cast<int>(config.dataflow)
      << ';' << static_cast<int>(w.op) << ',' << w.m << ',' << w.k << ','
      << w.n << ';' << w.conv.batch << ',' << w.conv.in_channels << ','
      << w.conv.height << ',' << w.conv.width << ',' << w.conv.out_channels
      << ',' << w.conv.kernel_h << ',' << w.conv.kernel_w << ','
      << w.conv.stride << ',' << w.conv.pad << ';'
      << static_cast<int>(w.lowering) << ','
      << static_cast<int>(w.input_fill) << ','
      << static_cast<int>(w.weight_fill) << ',' << w.data_seed << ';'
      << static_cast<int>(config.kind) << ','
      << static_cast<int>(config.signal) << ',' << config.bit << ','
      << static_cast<int>(config.polarity) << ';' << config.max_sites << ','
      << config.seed;
  return key.str();
}

std::string CampaignContentHash(const CampaignConfig& config) {
  // FNV-1a 64-bit over a versioned domain prefix + the full key. The
  // version tag means a future key-format change moves every address
  // instead of aliasing old cache entries.
  const std::string key = "saffire-campaign-v1;" + CampaignKey(config);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  std::string hex(16, '0');
  static const char* kDigits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

}  // namespace saffire
