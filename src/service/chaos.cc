#include "service/chaos.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/strings.h"

namespace saffire {
namespace chaos {

namespace {

std::atomic<bool> g_enabled{false};
ChaosSpec g_spec;  // Written only while g_enabled is false (Install/Clear).

bool Hits(int every, std::int64_t index) {
  return every > 0 && index % every == 0;
}

}  // namespace

void Install(const ChaosSpec& spec) {
  g_enabled.store(false, std::memory_order_relaxed);
  g_spec = spec;
  g_enabled.store(true, std::memory_order_release);
}

void Clear() {
  g_enabled.store(false, std::memory_order_relaxed);
  g_spec = ChaosSpec{};
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

ChaosSpec ActiveSpec() { return Enabled() ? g_spec : ChaosSpec{}; }

ChaosSpec ParseChaosSpec(const std::string& text) {
  ChaosSpec spec;
  for (const std::string& part : Split(text, ',')) {
    if (Trim(part).empty()) continue;
    const std::vector<std::string> kv = Split(part, '=');
    SAFFIRE_CHECK_MSG(kv.size() == 2,
                      "chaos entry '" << part << "' is not key=value");
    const std::string key = Trim(kv[0]);
    const std::int64_t value = ParseInt(kv[1]);
    if (key == "experiment_throw_every") {
      spec.experiment_throw_every = static_cast<int>(value);
    } else if (key == "experiment_throw_attempts") {
      spec.experiment_throw_attempts = static_cast<int>(value);
    } else if (key == "batch_fail_every") {
      spec.batch_fail_every = static_cast<int>(value);
    } else if (key == "stall_every") {
      spec.stall_every = static_cast<int>(value);
    } else if (key == "stall_ms") {
      spec.stall_ms = value;
    } else if (key == "selfcheck_lie_every") {
      spec.selfcheck_lie_every = static_cast<int>(value);
    } else if (key == "sink_throw_every") {
      spec.sink_throw_every = static_cast<int>(value);
    } else {
      SAFFIRE_CHECK_MSG(false, "unknown chaos key '" << key << "'");
    }
  }
  return spec;
}

bool InstallFromEnv() {
  const char* env = std::getenv("SAFFIRE_CHAOS");
  if (env == nullptr || *env == '\0') return false;
  Install(ParseChaosSpec(env));
  return true;
}

void OnExperimentAttempt(std::size_t campaign_index,
                         std::int64_t experiment_index, int attempt) {
  if (!Enabled()) return;
  const ChaosSpec& spec = g_spec;
  if (attempt == 0 && Hits(spec.stall_every, experiment_index) &&
      spec.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.stall_ms));
  }
  if (Hits(spec.experiment_throw_every, experiment_index) &&
      attempt < spec.experiment_throw_attempts) {
    std::ostringstream os;
    os << "chaos: injected experiment failure (campaign " << campaign_index
       << ", experiment " << experiment_index << ", attempt " << attempt
       << ")";
    throw ChaosError(os.str());
  }
}

void OnBatchAttempt(std::size_t campaign_index, int attempt) {
  if (!Enabled()) return;
  const ChaosSpec& spec = g_spec;
  if (Hits(spec.batch_fail_every,
           static_cast<std::int64_t>(campaign_index))) {
    std::ostringstream os;
    os << "chaos: injected batch failure (campaign " << campaign_index
       << ", attempt " << attempt << ")";
    throw ChaosError(os.str());
  }
}

bool ForceSelfCheckMismatch(std::size_t campaign_index) {
  if (!Enabled()) return false;
  return Hits(g_spec.selfcheck_lie_every,
              static_cast<std::int64_t>(campaign_index));
}

void FlipByteInFile(const std::string& path, std::int64_t offset) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  SAFFIRE_CHECK_MSG(file.good(), "cannot open '" << path << "'");
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  SAFFIRE_CHECK_MSG(file.good(),
                    "cannot read '" << path << "' at offset " << offset);
  byte = static_cast<char>(byte ^ 0x04);
  file.seekp(offset);
  file.write(&byte, 1);
  SAFFIRE_CHECK_MSG(file.good(),
                    "cannot write '" << path << "' at offset " << offset);
}

void TruncateFileTo(const std::string& path, std::int64_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, static_cast<std::uintmax_t>(size), ec);
  SAFFIRE_CHECK_MSG(!ec, "cannot truncate '" << path << "' to " << size
                                             << " bytes: " << ec.message());
}

FlakySink::FlakySink(RecordSink* inner, int throw_every)
    : inner_(inner), throw_every_(throw_every) {
  SAFFIRE_CHECK(inner != nullptr);
  SAFFIRE_CHECK_MSG(throw_every > 0, "throw_every=" << throw_every);
}

void FlakySink::OnSweepBegin(const CampaignPlan& plan) {
  inner_->OnSweepBegin(plan);
}

void FlakySink::OnCampaignBegin(const CampaignBeginInfo& info) {
  inner_->OnCampaignBegin(info);
}

void FlakySink::OnRecord(const CampaignBeginInfo& info,
                         std::int64_t experiment_index,
                         const ExperimentRecord& record) {
  ++seen_;
  if (seen_ % throw_every_ == 0) {
    std::ostringstream os;
    os << "chaos: injected sink failure (record " << seen_ << ")";
    throw ChaosError(os.str());
  }
  inner_->OnRecord(info, experiment_index, record);
  ++forwarded_;
}

void FlakySink::OnExperimentFailed(const CampaignBeginInfo& info,
                                   const FailedRecord& failure) {
  inner_->OnExperimentFailed(info, failure);
}

void FlakySink::OnCampaignEnd(const CampaignBeginInfo& info) {
  inner_->OnCampaignEnd(info);
}

void FlakySink::OnSweepEnd() { inner_->OnSweepEnd(); }

NetworkFlakySink::NetworkFlakySink(NetworkRecordSink* inner, int throw_every)
    : inner_(inner), throw_every_(throw_every) {
  SAFFIRE_CHECK(inner != nullptr);
  SAFFIRE_CHECK_MSG(throw_every > 0, "throw_every=" << throw_every);
}

void NetworkFlakySink::OnSweepBegin(const NetworkSweepSpec& spec,
                                    const NetworkCampaignPlan& plan) {
  inner_->OnSweepBegin(spec, plan);
}

void NetworkFlakySink::OnCampaignBegin(const NetworkCampaignInfo& info) {
  inner_->OnCampaignBegin(info);
}

void NetworkFlakySink::OnRecord(const NetworkRecord& record) {
  ++seen_;
  if (seen_ % throw_every_ == 0) {
    std::ostringstream os;
    os << "chaos: injected network sink failure (record " << seen_ << ")";
    throw ChaosError(os.str());
  }
  inner_->OnRecord(record);
  ++forwarded_;
}

void NetworkFlakySink::OnExperimentFailed(const NetworkFailedRecord& failed) {
  inner_->OnExperimentFailed(failed);
}

void NetworkFlakySink::OnCampaignEnd(std::size_t campaign_index) {
  inner_->OnCampaignEnd(campaign_index);
}

void NetworkFlakySink::OnSweepEnd(const SweepOutcome& outcome) {
  inner_->OnSweepEnd(outcome);
}

}  // namespace chaos
}  // namespace saffire
