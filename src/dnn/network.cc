#include "dnn/network.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/conv.h"

namespace saffire {

namespace {

constexpr const char* kNetworkKindNames[] = {"extraction", "mlp", "cnn"};

// Column-wise L1 mass of an INT8 matrix — the "incoming weight" salience
// of a layer's output channels.
std::vector<double> ColumnL1(const Int8Tensor& w) {
  std::vector<double> mass(static_cast<std::size_t>(w.dim(1)), 0.0);
  for (std::int64_t i = 0; i < w.dim(0); ++i) {
    for (std::int64_t j = 0; j < w.dim(1); ++j) {
      mass[static_cast<std::size_t>(j)] +=
          std::abs(static_cast<double>(w(i, j)));
    }
  }
  return mass;
}

// Row-wise L1 mass, grouped: rows [c·group, (c+1)·group) of `w` all consume
// channel c of the previous layer, so their combined mass is how much that
// channel matters downstream (group = 1 for dense-to-dense).
std::vector<double> GroupedRowL1(const Int8Tensor& w, std::int64_t channels,
                                 std::int64_t group) {
  std::vector<double> mass(static_cast<std::size_t>(channels), 0.0);
  for (std::int64_t i = 0; i < w.dim(0); ++i) {
    const std::int64_t channel = i / group;
    for (std::int64_t j = 0; j < w.dim(1); ++j) {
      mass[static_cast<std::size_t>(channel)] +=
          std::abs(static_cast<double>(w(i, j)));
    }
  }
  return mass;
}

ConvParams DigitConv(std::int64_t batch, std::int64_t channels) {
  ConvParams conv;
  conv.batch = batch;
  conv.in_channels = 1;
  conv.height = 8;
  conv.width = 8;
  conv.out_channels = channels;
  conv.kernel_h = 3;
  conv.kernel_w = 3;
  conv.stride = 1;
  conv.pad = 1;
  return conv;
}

}  // namespace

std::string ToString(NetworkKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  SAFFIRE_ASSERT_MSG(index < std::size(kNetworkKindNames),
                     "network kind " << static_cast<int>(index));
  return kNetworkKindNames[index];
}

NetworkKind ParseNetworkKind(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kNetworkKindNames); ++i) {
    if (name == kNetworkKindNames[i]) return static_cast<NetworkKind>(i);
  }
  SAFFIRE_CHECK_MSG(
      false, "unknown network kind '" << name
                                      << "' (expected extraction|mlp|cnn)");
}

std::int64_t NetworkLayerCount(NetworkKind kind) {
  return kind == NetworkKind::kExtraction ? 1 : 2;
}

void NetworkSpec::Validate() const {
  SAFFIRE_CHECK_MSG(batch >= 1 && batch <= 4096, "batch=" << batch);
  SAFFIRE_CHECK_MSG(noise >= 0.0 && noise <= 1.0, "noise=" << noise);
  switch (kind) {
    case NetworkKind::kExtraction:
      SAFFIRE_CHECK_MSG(extraction_k >= 1 && extraction_n >= 1,
                        "extraction " << extraction_k << "x" << extraction_n);
      break;
    case NetworkKind::kMlp:
      SAFFIRE_CHECK_MSG(hidden >= 2, "hidden=" << hidden);
      SAFFIRE_CHECK_MSG(train_samples >= 10,
                        "train_samples=" << train_samples);
      SAFFIRE_CHECK_MSG(train_epochs >= 1, "train_epochs=" << train_epochs);
      SAFFIRE_CHECK_MSG(train_target > 0.0 && train_target <= 1.0,
                        "train_target=" << train_target);
      break;
    case NetworkKind::kCnn:
      SAFFIRE_CHECK_MSG(conv_channels >= 1 && conv_channels <= 64,
                        "conv_channels=" << conv_channels);
      break;
  }
}

PreparedNetwork::PreparedNetwork(const NetworkSpec& spec) : spec_(spec) {
  spec_.Validate();
  switch (spec_.kind) {
    case NetworkKind::kExtraction: {
      ones_a_ = Int8Tensor({spec_.batch, spec_.extraction_k});
      ones_b_ = Int8Tensor({spec_.extraction_k, spec_.extraction_n});
      for (std::int64_t i = 0; i < ones_a_.size(); ++i) ones_a_.flat(i) = 1;
      for (std::int64_t i = 0; i < ones_b_.size(); ++i) ones_b_.flat(i) = 1;
      WorkloadSpec layer;
      layer.name = "extract";
      layer.op = OpType::kGemm;
      layer.m = spec_.batch;
      layer.k = spec_.extraction_k;
      layer.n = spec_.extraction_n;
      layer.input_fill = OperandFill::kOnes;
      layer.weight_fill = OperandFill::kOnes;
      layer.data_seed = spec_.seed;
      workloads_.push_back(layer);
      break;
    }
    case NetworkKind::kMlp: {
      const Dataset train =
          MakeSyntheticDigits(spec_.train_samples, spec_.noise, spec_.seed);
      const Dataset eval =
          MakeSyntheticDigits(spec_.batch, spec_.noise, spec_.seed + 1);
      Mlp mlp(kDigitPixels, spec_.hidden, kDigitClasses, spec_.seed);
      Rng rng(spec_.seed + 2);
      mlp.TrainUntil(train, spec_.train_target, spec_.train_epochs, 0.1, rng);
      mlp_.emplace(mlp, train);
      eval_inputs_ = eval.inputs;
      labels_ = eval.labels;

      WorkloadSpec fc1;
      fc1.name = "fc1";
      fc1.op = OpType::kGemm;
      fc1.m = spec_.batch;
      fc1.k = kDigitPixels;
      fc1.n = spec_.hidden;
      fc1.input_fill = OperandFill::kRandom;
      fc1.weight_fill = OperandFill::kRandom;
      fc1.data_seed = spec_.seed;
      workloads_.push_back(fc1);

      WorkloadSpec fc2 = fc1;
      fc2.name = "fc2";
      fc2.k = spec_.hidden;
      fc2.n = kDigitClasses;
      workloads_.push_back(fc2);
      break;
    }
    case NetworkKind::kCnn: {
      const Dataset eval =
          MakeSyntheticDigits(spec_.batch, spec_.noise, spec_.seed + 1);
      const ConvParams conv = DigitConv(spec_.batch, spec_.conv_channels);
      cnn_.emplace(conv, kDigitClasses, spec_.seed);
      float scale = 1.0f;
      cnn_inputs_ = QuantizeSymmetric(eval.inputs, scale)
                        .Reshape({spec_.batch, 1, std::int64_t{8},
                                  std::int64_t{8}});
      labels_ = eval.labels;

      WorkloadSpec conv_layer;
      conv_layer.name = "conv";
      conv_layer.op = OpType::kConv;
      conv_layer.conv = conv;
      conv_layer.lowering = ConvLowering::kIm2Col;
      conv_layer.input_fill = OperandFill::kRandom;
      conv_layer.weight_fill = OperandFill::kRandom;
      conv_layer.data_seed = spec_.seed;
      workloads_.push_back(conv_layer);

      const std::int64_t pooled =
          conv.out_channels * (conv.out_height() / 2) * (conv.out_width() / 2);
      WorkloadSpec dense;
      dense.name = "dense";
      dense.op = OpType::kGemm;
      dense.m = spec_.batch;
      dense.k = pooled;
      dense.n = kDigitClasses;
      dense.input_fill = OperandFill::kRandom;
      dense.weight_fill = OperandFill::kRandom;
      dense.data_seed = spec_.seed;
      workloads_.push_back(dense);
      break;
    }
  }
  for (const WorkloadSpec& workload : workloads_) workload.Validate();

  // Channel salience per layer, the remap planner's victim ranking: a
  // hidden channel is as important as the L1 mass of the next layer's
  // weights consuming it; the final layer's channels (the logits) by their
  // incoming columns. Extraction outputs have no downstream consumer —
  // uniform, so the remap victim choice is deterministic but arbitrary.
  switch (spec_.kind) {
    case NetworkKind::kExtraction:
      salience_.push_back(std::vector<double>(
          static_cast<std::size_t>(spec_.extraction_n), 1.0));
      break;
    case NetworkKind::kMlp:
      salience_.push_back(GroupedRowL1(mlp_->w2q(), spec_.hidden, 1));
      salience_.push_back(ColumnL1(mlp_->w2q()));
      break;
    case NetworkKind::kCnn: {
      const ConvParams conv = DigitConv(spec_.batch, spec_.conv_channels);
      const std::int64_t pooled_per_channel =
          (conv.out_height() / 2) * (conv.out_width() / 2);
      salience_.push_back(GroupedRowL1(cnn_->dense_weights(),
                                       spec_.conv_channels,
                                       pooled_per_channel));
      salience_.push_back(ColumnL1(cnn_->dense_weights()));
      break;
    }
  }
  SAFFIRE_ASSERT_MSG(salience_.size() == workloads_.size(),
                     salience_.size() << " vs " << workloads_.size());
  for (std::size_t i = 0; i < salience_.size(); ++i) {
    SAFFIRE_ASSERT_MSG(
        static_cast<std::int64_t>(salience_[i].size()) ==
            workloads_[i].GemmN(),
        "layer " << i << " salience " << salience_[i].size());
  }
}

const std::vector<double>& PreparedNetwork::channel_salience(
    std::int64_t layer) const {
  SAFFIRE_CHECK_MSG(layer >= 0 && layer < layer_count(),
                    "layer " << layer << " of " << layer_count());
  return salience_[static_cast<std::size_t>(layer)];
}

const WorkloadSpec& PreparedNetwork::layer_workload(
    std::int64_t layer) const {
  SAFFIRE_CHECK_MSG(layer >= 0 && layer < layer_count(),
                    "layer " << layer << " of " << layer_count());
  return workloads_[static_cast<std::size_t>(layer)];
}

PreparedNetwork::Inference PreparedNetwork::Run(const LayerGemm& gemm) const {
  Inference inference;
  inference.layer_outputs.assign(workloads_.size(), Int32Tensor({1, 1}));
  const LayerGemm capture = [&](int layer, const Int8Tensor& a,
                                const Int8Tensor& b) {
    Int32Tensor out = gemm(layer, a, b);
    SAFFIRE_CHECK_MSG(
        layer >= 0 && layer < layer_count() &&
            out.rank() == 2 &&
            out.dim(0) == workloads_[static_cast<std::size_t>(layer)].GemmM() &&
            out.dim(1) == workloads_[static_cast<std::size_t>(layer)].GemmN(),
        "layer " << layer << " output " << out.ShapeString());
    inference.layer_outputs[static_cast<std::size_t>(layer)] = out;
    return out;
  };

  switch (spec_.kind) {
    case NetworkKind::kExtraction:
      inference.logits = capture(0, ones_a_, ones_b_);
      break;
    case NetworkKind::kMlp:
      inference.logits = mlp_->LogitsWith(eval_inputs_, capture);
      break;
    case NetworkKind::kCnn:
      inference.logits = cnn_->ForwardWith(cnn_inputs_, capture).logits;
      break;
  }
  inference.top1 = ArgmaxRows(inference.logits);
  return inference;
}

PreparedNetwork::Inference PreparedNetwork::Run(
    const LayerGemm& gemm, const std::vector<LayerMitigationPlan>& plans,
    const LayerObserver& observe) const {
  if (plans.empty() && observe == nullptr) return Run(gemm);
  SAFFIRE_CHECK_MSG(
      plans.empty() ||
          static_cast<std::int64_t>(plans.size()) == layer_count(),
      plans.size() << " plans for " << layer_count() << " layers");
  static const LayerMitigationPlan kIdentity;
  const LayerGemm mitigated = [&](int layer, const Int8Tensor& a,
                                  const Int8Tensor& b) {
    const LayerMitigationPlan& plan =
        plans.empty() ? kIdentity : plans[static_cast<std::size_t>(layer)];
    Int32Tensor out{{1, 1}};
    if (plan.identity()) {
      out = gemm(layer, a, b);
      if (observe != nullptr) observe(layer, a, b, out);
      return out;
    }
    // Physical space in, logical space out: the executor (host reference,
    // appfi injector, or driver) only ever sees the transformed operands,
    // so the faulty physical columns stay fixed while the logical channels
    // routed through them move.
    const Int8Tensor a_phys = PermuteInputColumns(plan, a);
    const Int8Tensor b_phys = TransformWeights(plan, b);
    out = RestoreOutput(plan, gemm(layer, a_phys, b_phys));
    if (observe != nullptr) {
      const Int8Tensor b_logical = EffectiveWeights(plan, b);
      observe(layer, a, b_logical, out);
    }
    return out;
  };
  return Run(mitigated);
}

double LabelAccuracy(const std::vector<int>& predictions,
                     const std::vector<int>& labels) {
  SAFFIRE_CHECK_MSG(predictions.size() == labels.size() && !labels.empty(),
                    predictions.size() << " predictions vs " << labels.size()
                                       << " labels");
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

std::int64_t Top1Flips(const std::vector<int>& golden,
                       const std::vector<int>& faulty) {
  SAFFIRE_CHECK_MSG(golden.size() == faulty.size(),
                    golden.size() << " vs " << faulty.size());
  std::int64_t flips = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    if (golden[i] != faulty[i]) ++flips;
  }
  return flips;
}

}  // namespace saffire
