// Post-training symmetric INT8 quantization and the three inference paths
// of the accuracy-degradation study:
//   1. CPU reference (bit-identical arithmetic to the accelerator),
//   2. the simulated accelerator (optionally with hardware faults on the
//      array — RTL-style FI), and
//   3. application-level FI: clean GEMMs perturbed with predicted fault
//      patterns (the TensorFI/LLTFI-style fast path).
//
// Scheme: per-tensor symmetric scales (zero-point 0, as in Gemmini's INT8
// flow). Activations are requantized between layers with a power-of-two
// rounding right-shift — the only rescaling the modeled MVOUT8 hardware
// supports — chosen from calibration data.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "accel/driver.h"
#include "appfi/appfi.h"
#include "dnn/mlp.h"
#include "dnn/synthetic.h"
#include "fi/fault.h"

namespace saffire {

// Per-layer GEMM executor — the seam through which a network's inference is
// bound to an execution rung (CPU reference, simulated accelerator, or
// application-level FI on either): returns the INT32 GEMM-view product a·b
// of layer `layer` (0-based in network order). Host epilogue stages (bias,
// activation, requantization, pooling) stay with the network; only the
// accelerated operator is swappable.
using LayerGemm = std::function<Int32Tensor(
    int layer, const Int8Tensor& a, const Int8Tensor& b)>;

// Quantizes to INT8 with the symmetric per-tensor scale max|x|/127.
// Returns the quantized tensor; `scale` receives the dequantization factor
// (x ≈ scale · x_q).
Int8Tensor QuantizeSymmetric(const FloatTensor& tensor, float& scale);

// Smallest right-shift that brings `max_magnitude` under the INT8 ceiling.
std::int32_t ChooseRequantShift(std::int64_t max_magnitude);

class QuantizedMlp {
 public:
  // Quantizes a trained float MLP; `calibration` fixes the inter-layer
  // requantization shift.
  QuantizedMlp(const Mlp& mlp, const Dataset& calibration);

  // Quantizes an input batch with the input scale fixed at construction.
  Int8Tensor QuantizeInputs(const FloatTensor& batch) const;

  // Inference parameterized over the per-layer GEMM executor (layer 0 =
  // input·w1, layer 1 = hidden·w2); every Predict* path below is this with
  // a specific rung bound. LogitsWith returns the INT32 output logits.
  Int32Tensor LogitsWith(const FloatTensor& batch,
                         const LayerGemm& gemm) const;
  std::vector<int> PredictWith(const FloatTensor& batch,
                               const LayerGemm& gemm) const;

  // CPU reference inference (INT8 GEMM + bias + ReLU + shift, INT32
  // logits); returns per-sample predicted classes.
  std::vector<int> PredictCpu(const FloatTensor& batch) const;

  // Inference with both dense layers executed on the simulated accelerator.
  // Any fault hook already installed on `driver`'s array stays active for
  // every tile of both layers (RTL-style FI).
  std::vector<int> PredictAccel(const FloatTensor& batch, Driver& driver,
                                Dataflow dataflow) const;

  // Application-level FI: clean CPU GEMMs, then the predicted pattern of
  // each fault perturbed into the corresponding layer outputs (set/clear
  // bit per polarity). No simulation.
  std::vector<int> PredictAppFi(const FloatTensor& batch,
                                const AccelConfig& accel, Dataflow dataflow,
                                std::span<const FaultSpec> faults) const;

  double AccuracyCpu(const Dataset& dataset) const;
  double AccuracyAccel(const Dataset& dataset, Driver& driver,
                       Dataflow dataflow) const;
  double AccuracyAppFi(const Dataset& dataset, const AccelConfig& accel,
                       Dataflow dataflow,
                       std::span<const FaultSpec> faults) const;

  const Int8Tensor& w1q() const { return w1q_; }
  const Int8Tensor& w2q() const { return w2q_; }
  std::int32_t layer1_shift() const { return layer1_shift_; }

 private:
  // Bias add (broadcast row) and the inter-layer ReLU/shift/saturate stage.
  Int32Tensor AddBias(const Int32Tensor& accum, const Int32Tensor& bias) const;
  Int8Tensor RequantizeHidden(const Int32Tensor& accum) const;

  std::int64_t inputs_;
  std::int64_t hidden_;
  std::int64_t outputs_;
  float input_scale_ = 1.0f;
  float w1_scale_ = 1.0f;
  float w2_scale_ = 1.0f;
  Int8Tensor w1q_{{1, 1}};
  Int8Tensor w2q_{{1, 1}};
  Int32Tensor b1q_{{1, 1}};  // bias in layer-1 accumulator units
  Int32Tensor b2q_{{1, 1}};  // bias in layer-2 accumulator units
  std::int32_t layer1_shift_ = 0;
};

}  // namespace saffire
