#include "dnn/synthetic.h"

#include <array>
#include <string_view>

#include "common/check.h"
#include "common/rng.h"

namespace saffire {
namespace {

// 8×8 glyphs, '#' = on. Hand-drawn to be mutually distinguishable under
// one-pixel jitter and moderate noise.
constexpr std::array<std::string_view, kDigitClasses> kGlyphs = {
    // 0
    ".####..."
    "#....#.."
    "#....#.."
    "#....#.."
    "#....#.."
    "#....#.."
    ".####..."
    "........",
    // 1
    "...#...."
    "..##...."
    "...#...."
    "...#...."
    "...#...."
    "...#...."
    "..###..."
    "........",
    // 2
    ".####..."
    "#....#.."
    ".....#.."
    "...##..."
    "..#....."
    ".#......"
    "######.."
    "........",
    // 3
    "#####..."
    "....#..."
    "....#..."
    ".####..."
    "....#..."
    "....#..."
    "#####..."
    "........",
    // 4
    "....#..."
    "...##..."
    "..#.#..."
    ".#..#..."
    "######.."
    "....#..."
    "....#..."
    "........",
    // 5
    "######.."
    "#......."
    "#####..."
    ".....#.."
    ".....#.."
    "#....#.."
    ".####..."
    "........",
    // 6
    "..##...."
    ".#......"
    "#......."
    "#.##...."
    "##..#..."
    "#...#..."
    ".###...."
    "........",
    // 7
    "######.."
    ".....#.."
    "....#..."
    "...#...."
    "..#....."
    "..#....."
    "..#....."
    "........",
    // 8
    ".####..."
    "#....#.."
    "#....#.."
    ".####..."
    "#....#.."
    "#....#.."
    ".####..."
    "........",
    // 9
    ".###...."
    "#...#..."
    "#..##..."
    ".##.#..."
    "....#..."
    "...#...."
    ".##....."
    "........",
};

}  // namespace

FloatTensor DigitGlyph(int digit) {
  SAFFIRE_CHECK_MSG(digit >= 0 && digit < kDigitClasses, "digit=" << digit);
  const std::string_view glyph = kGlyphs[static_cast<std::size_t>(digit)];
  SAFFIRE_ASSERT(static_cast<std::int64_t>(glyph.size()) == kDigitPixels);
  FloatTensor row({1, kDigitPixels});
  for (std::int64_t i = 0; i < kDigitPixels; ++i) {
    row.flat(i) = glyph[static_cast<std::size_t>(i)] == '#' ? 1.0f : 0.0f;
  }
  return row;
}

Dataset MakeSyntheticDigits(std::int64_t count, double noise,
                            std::uint64_t seed) {
  SAFFIRE_CHECK_MSG(count > 0, "count=" << count);
  SAFFIRE_CHECK_MSG(noise >= 0.0 && noise <= 0.5, "noise=" << noise);
  Rng rng(seed);
  Dataset dataset;
  dataset.inputs = FloatTensor({count, kDigitPixels});
  dataset.labels.reserve(static_cast<std::size_t>(count));

  for (std::int64_t sample = 0; sample < count; ++sample) {
    const int digit = static_cast<int>(rng.UniformInt(0, kDigitClasses - 1));
    dataset.labels.push_back(digit);
    const FloatTensor glyph = DigitGlyph(digit);
    const std::int64_t dy = rng.UniformInt(-1, 1);
    const std::int64_t dx = rng.UniformInt(-1, 1);
    const float gain = 0.75f + 0.25f * static_cast<float>(rng.UniformDouble());
    for (std::int64_t y = 0; y < kDigitGridSize; ++y) {
      for (std::int64_t x = 0; x < kDigitGridSize; ++x) {
        const std::int64_t sy = y - dy;
        const std::int64_t sx = x - dx;
        float value = 0.0f;
        if (sy >= 0 && sy < kDigitGridSize && sx >= 0 && sx < kDigitGridSize) {
          value = glyph.flat(sy * kDigitGridSize + sx);
        }
        if (rng.Bernoulli(noise)) value = 1.0f - value;
        dataset.inputs(sample, y * kDigitGridSize + x) = value * gain;
      }
    }
  }
  return dataset;
}

}  // namespace saffire
