// A small two-layer perceptron (dense → ReLU → dense) with from-scratch
// SGD training. The inference phase — the paper's focus (Sec. I) — is what
// gets quantized and mapped onto the simulated accelerator; training stays
// in float on the host, as it would with a real edge TPU.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "dnn/synthetic.h"
#include "tensor/tensor.h"

namespace saffire {

class Mlp {
 public:
  // He-initialized weights; deterministic in `seed`.
  Mlp(std::int64_t inputs, std::int64_t hidden, std::int64_t outputs,
      std::uint64_t seed);

  std::int64_t inputs() const { return inputs_; }
  std::int64_t hidden() const { return hidden_; }
  std::int64_t outputs() const { return outputs_; }

  // Logits for a batch [batch × inputs] → [batch × outputs].
  FloatTensor Forward(const FloatTensor& batch) const;

  // One epoch of minibatch SGD with softmax cross-entropy; returns the mean
  // loss over the epoch. Sample order is shuffled with `rng`.
  double TrainEpoch(const Dataset& dataset, double learning_rate,
                    std::int64_t batch_size, Rng& rng);

  // Classification accuracy in [0, 1].
  double Accuracy(const Dataset& dataset) const;

  // Trains until `dataset` accuracy reaches `target` or `max_epochs` pass;
  // returns the final accuracy.
  double TrainUntil(const Dataset& dataset, double target,
                    std::int64_t max_epochs, double learning_rate, Rng& rng);

  const FloatTensor& w1() const { return w1_; }
  const FloatTensor& b1() const { return b1_; }
  const FloatTensor& w2() const { return w2_; }
  const FloatTensor& b2() const { return b2_; }

 private:
  std::int64_t inputs_;
  std::int64_t hidden_;
  std::int64_t outputs_;
  FloatTensor w1_;  // [inputs × hidden]
  FloatTensor b1_;  // [1 × hidden]
  FloatTensor w2_;  // [hidden × outputs]
  FloatTensor b2_;  // [1 × outputs]
};

// Argmax over each row of a logits matrix.
std::vector<int> ArgmaxRows(const FloatTensor& logits);
std::vector<int> ArgmaxRows(const Int32Tensor& logits);

}  // namespace saffire
