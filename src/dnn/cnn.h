// A small quantized CNN with per-layer observation taps, for studying how
// systolic-array fault patterns manifest at the intermediate layers of a
// DNN — the gap the paper's introduction calls out: "it is not clear how
// these faults manifest at the intermediate layers of the DNNs", which is
// "important because understanding fault manifestation at the intermediate
// layers ... provides insights into building more resilient DNN
// architectures" (Sec. I).
//
// Pipeline (INT8 operands, INT32 accumulation, matching the array):
//
//   input 1×C×H×W ─conv K×C×3×3─ relu/shift ─maxpool 2×2─ flatten ─dense─ logits
//
// The convolution and the dense layer run on the simulated accelerator
// (or on the bit-identical CPU reference); pooling and requantization are
// host stages. Weights are fixed pseudo-random INT8 — propagation analysis
// compares golden and faulty activations layer by layer, which does not
// require a trained network.
#pragma once

#include <cstdint>

#include "accel/driver.h"
#include "common/rng.h"
#include "dnn/quantize.h"
#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace saffire {

class SmallCnn {
 public:
  // `conv` fixes the convolution geometry (e.g. the paper's 16×16 input
  // with a 3×3×3×8 kernel); `classes` sizes the dense head. Weights are
  // deterministic in `seed`.
  SmallCnn(const ConvParams& conv, std::int64_t classes, std::uint64_t seed);

  const ConvParams& conv_params() const { return conv_; }
  std::int64_t classes() const { return classes_; }
  // Dense-head weights [K·(P/2)·(Q/2) × classes] — row k·(P/2)·(Q/2) + p·(Q/2)
  // + q consumes pooled position (p, q) of conv channel k (the flatten
  // order of ForwardWith), which is what channel-salience analysis needs.
  const Int8Tensor& dense_weights() const { return dense_; }

  // Activations captured after every stage of one forward pass.
  struct LayerTaps {
    Int32Tensor conv_raw{{1, 1}};   // N×K×P×Q accumulators
    Int8Tensor conv_act{{1, 1}};    // after ReLU + rounding shift
    Int8Tensor pooled{{1, 1}};      // after 2×2 max-pooling
    Int32Tensor logits{{1, 1}};     // dense head accumulators [N × classes]
  };

  // Runs one image batch. With `driver` non-null the convolution and the
  // dense layer execute on the accelerator under `options` (any installed
  // fault hook applies); with nullptr the bit-identical CPU reference runs.
  LayerTaps Forward(const Int8Tensor& input, Driver* driver,
                    const ExecOptions& options) const;

  // Forward pass parameterized over the per-layer GEMM executor
  // (dnn/quantize.h): layer 0 is the im2col-lowered convolution GEMM
  // (A[NPQ×CRS]·W[CRS×K], folded back to N×K×P×Q on the host), layer 1 the
  // dense head. Bit-identical to Forward for every executor that computes
  // the exact product (convolution is exact integer math, so the lowering
  // choice cannot change values).
  LayerTaps ForwardWith(const Int8Tensor& input, const LayerGemm& gemm) const;

  // Fraction of elements in `faulty` differing from `golden` (same shape).
  template <typename T>
  static double CorruptedFraction(const Tensor<T>& golden,
                                  const Tensor<T>& faulty) {
    SAFFIRE_CHECK_MSG(golden.shape() == faulty.shape(),
                      golden.ShapeString() << " vs " << faulty.ShapeString());
    std::int64_t corrupted = 0;
    for (std::int64_t i = 0; i < golden.size(); ++i) {
      if (golden.flat(i) != faulty.flat(i)) ++corrupted;
    }
    return static_cast<double>(corrupted) /
           static_cast<double>(golden.size());
  }

 private:
  ConvParams conv_;
  std::int64_t classes_;
  std::int32_t conv_shift_;
  Int8Tensor kernel_{{1, 1, 1, 1}};   // K×C×R×S
  Int8Tensor dense_{{1, 1}};          // [K·(P/2)·(Q/2) × classes]
};

// 2×2 max-pooling with stride 2 over N×K×P×Q (odd trailing row/col
// dropped, standard floor semantics).
Int8Tensor MaxPool2x2(const Int8Tensor& input);

}  // namespace saffire
