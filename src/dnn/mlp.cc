#include "dnn/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/gemm.h"

namespace saffire {

Mlp::Mlp(std::int64_t inputs, std::int64_t hidden, std::int64_t outputs,
         std::uint64_t seed)
    : inputs_(inputs),
      hidden_(hidden),
      outputs_(outputs),
      w1_({std::max<std::int64_t>(inputs, 1),
           std::max<std::int64_t>(hidden, 1)}),
      b1_({1, std::max<std::int64_t>(hidden, 1)}),
      w2_({std::max<std::int64_t>(hidden, 1),
           std::max<std::int64_t>(outputs, 1)}),
      b2_({1, std::max<std::int64_t>(outputs, 1)}) {
  SAFFIRE_CHECK_MSG(inputs > 0 && hidden > 0 && outputs > 0,
                    inputs << "/" << hidden << "/" << outputs);
  Rng rng(seed);
  const double scale1 = std::sqrt(2.0 / static_cast<double>(inputs));
  for (std::int64_t i = 0; i < w1_.size(); ++i) {
    w1_.flat(i) = static_cast<float>(rng.Normal(0.0, scale1));
  }
  const double scale2 = std::sqrt(2.0 / static_cast<double>(hidden));
  for (std::int64_t i = 0; i < w2_.size(); ++i) {
    w2_.flat(i) = static_cast<float>(rng.Normal(0.0, scale2));
  }
}

FloatTensor Mlp::Forward(const FloatTensor& batch) const {
  SAFFIRE_CHECK_MSG(batch.rank() == 2 && batch.dim(1) == inputs_,
                    "batch " << batch.ShapeString());
  FloatTensor z1 = GemmRef(batch, w1_);
  for (std::int64_t r = 0; r < z1.dim(0); ++r) {
    for (std::int64_t c = 0; c < z1.dim(1); ++c) {
      z1(r, c) = std::max(0.0f, z1(r, c) + b1_(0, c));
    }
  }
  FloatTensor z2 = GemmRef(z1, w2_);
  for (std::int64_t r = 0; r < z2.dim(0); ++r) {
    for (std::int64_t c = 0; c < z2.dim(1); ++c) {
      z2(r, c) += b2_(0, c);
    }
  }
  return z2;
}

double Mlp::TrainEpoch(const Dataset& dataset, double learning_rate,
                       std::int64_t batch_size, Rng& rng) {
  SAFFIRE_CHECK_MSG(batch_size > 0, "batch_size=" << batch_size);
  SAFFIRE_CHECK_MSG(dataset.inputs.dim(1) == inputs_,
                    "dataset width " << dataset.inputs.dim(1));
  std::vector<std::int64_t> order(static_cast<std::size_t>(dataset.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::int64_t>(i);
  }
  rng.Shuffle(order);

  double total_loss = 0.0;
  for (std::int64_t start = 0; start < dataset.size(); start += batch_size) {
    const std::int64_t size =
        std::min(batch_size, dataset.size() - start);

    FloatTensor x({size, inputs_});
    std::vector<int> labels(static_cast<std::size_t>(size));
    for (std::int64_t i = 0; i < size; ++i) {
      const std::int64_t src = order[static_cast<std::size_t>(start + i)];
      for (std::int64_t c = 0; c < inputs_; ++c) {
        x(i, c) = dataset.inputs(src, c);
      }
      labels[static_cast<std::size_t>(i)] =
          dataset.labels[static_cast<std::size_t>(src)];
    }

    // Forward with cached activations.
    FloatTensor z1 = GemmRef(x, w1_);
    FloatTensor h = z1;
    for (std::int64_t r = 0; r < h.dim(0); ++r) {
      for (std::int64_t c = 0; c < h.dim(1); ++c) {
        h(r, c) = std::max(0.0f, z1(r, c) + b1_(0, c));
      }
    }
    FloatTensor logits = GemmRef(h, w2_);
    for (std::int64_t r = 0; r < logits.dim(0); ++r) {
      for (std::int64_t c = 0; c < logits.dim(1); ++c) {
        logits(r, c) += b2_(0, c);
      }
    }

    // Softmax + cross-entropy; dlogits = softmax − onehot.
    FloatTensor dlogits({size, outputs_});
    for (std::int64_t r = 0; r < size; ++r) {
      float max_logit = logits(r, 0);
      for (std::int64_t c = 1; c < outputs_; ++c) {
        max_logit = std::max(max_logit, logits(r, c));
      }
      double denom = 0.0;
      for (std::int64_t c = 0; c < outputs_; ++c) {
        denom += std::exp(static_cast<double>(logits(r, c) - max_logit));
      }
      const int label = labels[static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < outputs_; ++c) {
        const double p =
            std::exp(static_cast<double>(logits(r, c) - max_logit)) / denom;
        dlogits(r, c) = static_cast<float>(p) - (c == label ? 1.0f : 0.0f);
        if (c == label) total_loss += -std::log(std::max(p, 1e-12));
      }
    }

    const float step =
        static_cast<float>(learning_rate / static_cast<double>(size));

    // Gradients: dW2 = hᵀ·dlogits, db2 = Σrows dlogits,
    // dh = dlogits·W2ᵀ (gated by ReLU), dW1 = xᵀ·dh, db1 = Σrows dh.
    FloatTensor dh({size, hidden_});
    for (std::int64_t r = 0; r < size; ++r) {
      for (std::int64_t c = 0; c < hidden_; ++c) {
        float grad = 0.0f;
        for (std::int64_t o = 0; o < outputs_; ++o) {
          grad += dlogits(r, o) * w2_(c, o);
        }
        dh(r, c) = h(r, c) > 0.0f ? grad : 0.0f;
      }
    }
    for (std::int64_t c = 0; c < hidden_; ++c) {
      for (std::int64_t o = 0; o < outputs_; ++o) {
        float grad = 0.0f;
        for (std::int64_t r = 0; r < size; ++r) {
          grad += h(r, c) * dlogits(r, o);
        }
        w2_(c, o) -= step * grad;
      }
    }
    for (std::int64_t o = 0; o < outputs_; ++o) {
      float grad = 0.0f;
      for (std::int64_t r = 0; r < size; ++r) grad += dlogits(r, o);
      b2_(0, o) -= step * grad;
    }
    for (std::int64_t i = 0; i < inputs_; ++i) {
      for (std::int64_t c = 0; c < hidden_; ++c) {
        float grad = 0.0f;
        for (std::int64_t r = 0; r < size; ++r) {
          grad += x(r, i) * dh(r, c);
        }
        w1_(i, c) -= step * grad;
      }
    }
    for (std::int64_t c = 0; c < hidden_; ++c) {
      float grad = 0.0f;
      for (std::int64_t r = 0; r < size; ++r) grad += dh(r, c);
      b1_(0, c) -= step * grad;
    }
  }
  return total_loss / static_cast<double>(dataset.size());
}

double Mlp::Accuracy(const Dataset& dataset) const {
  const auto predictions = ArgmaxRows(Forward(dataset.inputs));
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == dataset.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double Mlp::TrainUntil(const Dataset& dataset, double target,
                       std::int64_t max_epochs, double learning_rate,
                       Rng& rng) {
  double accuracy = Accuracy(dataset);
  for (std::int64_t epoch = 0; epoch < max_epochs && accuracy < target;
       ++epoch) {
    TrainEpoch(dataset, learning_rate, 32, rng);
    accuracy = Accuracy(dataset);
  }
  return accuracy;
}

namespace {

template <typename T>
std::vector<int> ArgmaxRowsImpl(const Tensor<T>& logits) {
  SAFFIRE_CHECK(logits.rank() == 2);
  std::vector<int> out(static_cast<std::size_t>(logits.dim(0)));
  for (std::int64_t r = 0; r < logits.dim(0); ++r) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < logits.dim(1); ++c) {
      if (logits(r, c) > logits(r, best)) best = c;
    }
    out[static_cast<std::size_t>(r)] = static_cast<int>(best);
  }
  return out;
}

}  // namespace

std::vector<int> ArgmaxRows(const FloatTensor& logits) {
  return ArgmaxRowsImpl(logits);
}

std::vector<int> ArgmaxRows(const Int32Tensor& logits) {
  return ArgmaxRowsImpl(logits);
}

}  // namespace saffire
