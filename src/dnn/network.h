// Network topologies for end-to-end reliability campaigns — the bridge
// between the paper's single-operator fault patterns and whole-network
// outcomes (SDC, top-1 flips, accuracy degradation). A NetworkSpec names a
// topology + quantization recipe; preparing it trains/quantizes the model
// once and exposes every accelerated layer as an explicit GEMM, so one
// inference can be re-run under any execution rung (CPU reference,
// cycle-accurate faulty accelerator, or the appfi tensor-level injector)
// by swapping the LayerGemm executor.
//
// Three topologies, matching the evaluation ladder:
//   kExtraction — one all-ones GEMM layer, the paper's pattern-extraction
//                 workload, where the appfi rung is provably bit-exact;
//   kMlp        — the trained+quantized two-layer perceptron of the
//                 accuracy-degradation study (dnn/quantize.h);
//   kCnn        — the conv+dense SmallCnn (dnn/cnn.h), its convolution run
//                 as the im2col-lowered GEMM so conv-specific pattern
//                 classes (single/multi-channel) appear.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnn/cnn.h"
#include "dnn/mlp.h"
#include "dnn/quantize.h"
#include "dnn/synthetic.h"
#include "fi/workload.h"
#include "mitigation/remap.h"

namespace saffire {

enum class NetworkKind : std::uint8_t {
  kExtraction = 0,
  kMlp = 1,
  kCnn = 2,
};

std::string ToString(NetworkKind kind);

// Parses exactly the ToString names; throws std::invalid_argument naming
// the accepted values ("extraction|mlp|cnn") otherwise.
NetworkKind ParseNetworkKind(const std::string& name);

// Topology + data recipe of one network campaign. Everything is
// deterministic in `seed`: weights, training order, and the synthetic
// evaluation batch.
struct NetworkSpec {
  NetworkKind kind = NetworkKind::kMlp;
  // Evaluation samples — the GEMM M dimension of every dense layer.
  std::int64_t batch = 32;
  std::uint64_t seed = 7;
  // Synthetic-digit pixel noise (kMlp / kCnn data).
  double noise = 0.02;

  // kExtraction: one all-ones batch×k · k×n GEMM.
  std::int64_t extraction_k = 16;
  std::int64_t extraction_n = 16;

  // kMlp: hidden width and the training recipe (dnn/mlp.h).
  std::int64_t hidden = 32;
  std::int64_t train_samples = 600;
  std::int64_t train_epochs = 80;
  double train_target = 0.97;

  // kCnn: convolution output channels on the fixed 1×8×8 digit geometry
  // (3×3 kernel, stride 1, pad 1 → 8×8 out, pooled to 4×4).
  std::int64_t conv_channels = 4;

  // Throws std::invalid_argument on degenerate members.
  void Validate() const;
};

// Number of accelerated layers a prepared `kind` network will have — known
// statically (kExtraction: 1; kMlp, kCnn: 2), so sweep specs can validate
// per-layer injection scopes without training the model first.
std::int64_t NetworkLayerCount(NetworkKind kind);

// The spec, realized: model trained and quantized, evaluation data
// materialized, and one GEMM-view WorkloadSpec per accelerated layer (the
// space fault patterns are predicted and classified in). Immutable after
// construction; Run() is const and safe to call concurrently.
class PreparedNetwork {
 public:
  explicit PreparedNetwork(const NetworkSpec& spec);

  const NetworkSpec& spec() const { return spec_; }
  std::int64_t layer_count() const {
    return static_cast<std::int64_t>(workloads_.size());
  }
  // GEMM-view workload of layer `layer` (dims + conv lowering; the name
  // field carries the layer name: "extract", "fc1"/"fc2", "conv"/"dense").
  const WorkloadSpec& layer_workload(std::int64_t layer) const;

  // Per-sample labels of the evaluation batch; empty for kExtraction
  // (whose output has no classification semantics).
  const std::vector<int>& labels() const { return labels_; }
  std::int64_t batch() const { return spec_.batch; }

  struct Inference {
    // What the executor returned per layer — the GEMM-view outputs the
    // corruption analysis compares (pre-bias/epilogue).
    std::vector<Int32Tensor> layer_outputs;
    // Final classification-space accumulators (post-epilogue).
    Int32Tensor logits{{1, 1}};
    // Per-sample argmax of `logits`.
    std::vector<int> top1;
  };

  // One full inference of the evaluation batch with every accelerated
  // layer executed by `gemm` (layer indices match layer_workload).
  Inference Run(const LayerGemm& gemm) const;

  // Post-mitigation per-layer observer: called with the logical-space
  // inputs the restored output corresponds to (EffectiveWeights of the
  // layer's plan); mutating `out` — e.g. ABFT correction — propagates into
  // the rest of the inference.
  using LayerObserver = std::function<void(
      int layer, const Int8Tensor& a, const Int8Tensor& b, Int32Tensor& out)>;

  // Mitigated inference: every layer's plan (mitigation/remap.h) is applied
  // around `gemm` — inputs/weights transformed into physical space before
  // the executor runs, the output restored to logical channel order after —
  // so the same plans drive the host reference, the appfi injector, and the
  // cycle-accurate driver identically. `plans` must be empty (no
  // mitigation) or size layer_count(). Remap-only plans are pure
  // permutations: on a fault-free executor the inference is byte-identical
  // to Run(gemm).
  Inference Run(const LayerGemm& gemm,
                const std::vector<LayerMitigationPlan>& plans,
                const LayerObserver& observe = nullptr) const;

  // Per-logical-channel salience of layer `layer`'s output, the remap
  // planner's victim-selection input: hidden layers weigh each channel by
  // the L1 mass of its outgoing next-layer weights, the final layer by its
  // incoming weight column; kExtraction is uniform.
  const std::vector<double>& channel_salience(std::int64_t layer) const;

 private:
  NetworkSpec spec_;
  std::vector<WorkloadSpec> workloads_;
  std::vector<int> labels_;
  std::vector<std::vector<double>> salience_;  // per layer, size GemmN

  // kExtraction operands.
  Int8Tensor ones_a_{{1, 1}};
  Int8Tensor ones_b_{{1, 1}};
  // kMlp model + float evaluation inputs.
  std::optional<QuantizedMlp> mlp_;
  FloatTensor eval_inputs_{{1, 1}};
  // kCnn model + quantized evaluation images.
  std::optional<SmallCnn> cnn_;
  Int8Tensor cnn_inputs_{{1, 1, 1, 1}};
};

// Fraction of `predictions` agreeing with `labels` (sizes must match).
double LabelAccuracy(const std::vector<int>& predictions,
                     const std::vector<int>& labels);

// Number of positions where the two prediction vectors disagree.
std::int64_t Top1Flips(const std::vector<int>& golden,
                       const std::vector<int>& faulty);

}  // namespace saffire
