#include "dnn/cnn.h"

#include <algorithm>

#include "accel/scratchpad.h"
#include "dnn/quantize.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace saffire {

SmallCnn::SmallCnn(const ConvParams& conv, std::int64_t classes,
                   std::uint64_t seed)
    : conv_(conv), classes_(classes) {
  conv_.Validate();
  SAFFIRE_CHECK_MSG(classes > 1, "classes=" << classes);
  SAFFIRE_CHECK_MSG(conv_.out_height() >= 2 && conv_.out_width() >= 2,
                    "conv output too small to pool: " << conv_.ToString());
  Rng rng(seed);
  kernel_ = Int8Tensor({conv_.out_channels, conv_.in_channels, conv_.kernel_h,
                        conv_.kernel_w});
  for (std::int64_t i = 0; i < kernel_.size(); ++i) {
    kernel_.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-6, 6));
  }
  const std::int64_t pooled_h = conv_.out_height() / 2;
  const std::int64_t pooled_w = conv_.out_width() / 2;
  dense_ = Int8Tensor({conv_.out_channels * pooled_h * pooled_w, classes_});
  for (std::int64_t i = 0; i < dense_.size(); ++i) {
    dense_.flat(i) = static_cast<std::int8_t>(rng.UniformInt(-6, 6));
  }
  // Worst-case conv accumulator magnitude: CRS × |in|max × |w|max.
  const std::int64_t worst =
      conv_.gemm_inner() * 127 * 6;
  conv_shift_ = ChooseRequantShift(worst);
}

Int8Tensor MaxPool2x2(const Int8Tensor& input) {
  SAFFIRE_CHECK_MSG(input.rank() == 4, "input " << input.ShapeString());
  const std::int64_t n = input.dim(0);
  const std::int64_t k = input.dim(1);
  const std::int64_t h = input.dim(2) / 2;
  const std::int64_t w = input.dim(3) / 2;
  SAFFIRE_CHECK_MSG(h > 0 && w > 0, "input too small " << input.ShapeString());
  Int8Tensor out({n, k, h, w});
  for (std::int64_t nn = 0; nn < n; ++nn) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          out(nn, kk, y, x) = std::max(
              std::max(input(nn, kk, 2 * y, 2 * x),
                       input(nn, kk, 2 * y, 2 * x + 1)),
              std::max(input(nn, kk, 2 * y + 1, 2 * x),
                       input(nn, kk, 2 * y + 1, 2 * x + 1)));
        }
      }
    }
  }
  return out;
}

SmallCnn::LayerTaps SmallCnn::ForwardWith(const Int8Tensor& input,
                                          const LayerGemm& gemm) const {
  SAFFIRE_CHECK_MSG(input.rank() == 4 && input.dim(1) == conv_.in_channels &&
                        input.dim(2) == conv_.height &&
                        input.dim(3) == conv_.width,
                    "input " << input.ShapeString() << " vs "
                             << conv_.ToString());
  ConvParams batch_params = conv_;
  batch_params.batch = input.dim(0);

  LayerTaps taps;
  const Int8Tensor patches = Im2Col(input, batch_params);
  const Int8Tensor weights = FlattenKernel(kernel_, batch_params);
  taps.conv_raw = FoldGemmOutput(gemm(0, patches, weights), batch_params);

  taps.conv_act = Int8Tensor(taps.conv_raw.shape());
  for (std::int64_t i = 0; i < taps.conv_raw.size(); ++i) {
    taps.conv_act.flat(i) =
        Requantize(taps.conv_raw.flat(i), Activation::kRelu, conv_shift_);
  }

  taps.pooled = MaxPool2x2(taps.conv_act);

  const Int8Tensor flat =
      taps.pooled.Reshape({input.dim(0), dense_.dim(0)});
  taps.logits = gemm(1, flat, dense_);
  return taps;
}

SmallCnn::LayerTaps SmallCnn::Forward(const Int8Tensor& input, Driver* driver,
                                      const ExecOptions& options) const {
  SAFFIRE_CHECK_MSG(input.rank() == 4 && input.dim(1) == conv_.in_channels &&
                        input.dim(2) == conv_.height &&
                        input.dim(3) == conv_.width,
                    "input " << input.ShapeString() << " vs "
                             << conv_.ToString());
  ConvParams batch_params = conv_;
  batch_params.batch = input.dim(0);

  LayerTaps taps;
  if (driver != nullptr) {
    taps.conv_raw = driver->Conv(input, kernel_, batch_params, options);
  } else {
    taps.conv_raw = ConvRef(input, kernel_, batch_params);
  }

  taps.conv_act = Int8Tensor(taps.conv_raw.shape());
  for (std::int64_t i = 0; i < taps.conv_raw.size(); ++i) {
    taps.conv_act.flat(i) =
        Requantize(taps.conv_raw.flat(i), Activation::kRelu, conv_shift_);
  }

  taps.pooled = MaxPool2x2(taps.conv_act);

  const Int8Tensor flat =
      taps.pooled.Reshape({input.dim(0), dense_.dim(0)});
  if (driver != nullptr) {
    taps.logits = driver->Gemm(flat, dense_, options);
  } else {
    taps.logits = GemmRef(flat, dense_);
  }
  return taps;
}

}  // namespace saffire
