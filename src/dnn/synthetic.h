// Synthetic digit-classification dataset.
//
// The paper motivates its study with DNN accuracy degradation under
// stuck-at faults (Zhang et al.'s MNIST result, Sec. I). MNIST itself is
// external data; this generator produces an MNIST-like task — 10 glyph
// classes on an 8×8 grid with pixel noise and sub-pixel jitter — that a
// small MLP learns to >95% accuracy in seconds, giving the accuracy-vs-
// faulty-MACs experiment a realistic, self-contained workload.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace saffire {

inline constexpr std::int64_t kDigitGridSize = 8;
inline constexpr std::int64_t kDigitPixels = kDigitGridSize * kDigitGridSize;
inline constexpr std::int64_t kDigitClasses = 10;

struct Dataset {
  // [count × kDigitPixels], values in [0, 1].
  FloatTensor inputs{{1, 1}};
  std::vector<int> labels;

  std::int64_t size() const {
    return static_cast<std::int64_t>(labels.size());
  }
};

// Generates `count` samples: a uniformly chosen digit glyph, shifted by up
// to one pixel in each direction, each pixel flipped with probability
// `noise`, intensities jittered. Deterministic in `seed`.
Dataset MakeSyntheticDigits(std::int64_t count, double noise,
                            std::uint64_t seed);

// The clean prototype glyph of `digit` as a flat [1 × kDigitPixels] row
// (for tests and demos).
FloatTensor DigitGlyph(int digit);

}  // namespace saffire
