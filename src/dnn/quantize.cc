#include "dnn/quantize.h"

#include <algorithm>
#include <cmath>

#include "accel/scratchpad.h"
#include "common/check.h"
#include "tensor/gemm.h"

namespace saffire {

Int8Tensor QuantizeSymmetric(const FloatTensor& tensor, float& scale) {
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < tensor.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(tensor.flat(i)));
  }
  scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  Int8Tensor out(tensor.shape());
  for (std::int64_t i = 0; i < tensor.size(); ++i) {
    const float scaled = tensor.flat(i) / scale;
    const float rounded = std::nearbyint(scaled);
    out.flat(i) = static_cast<std::int8_t>(
        std::clamp(rounded, -128.0f, 127.0f));
  }
  return out;
}

std::int32_t ChooseRequantShift(std::int64_t max_magnitude) {
  SAFFIRE_CHECK_MSG(max_magnitude >= 0, "max_magnitude=" << max_magnitude);
  std::int32_t shift = 0;
  while (shift < 31 && (max_magnitude >> shift) > 127) ++shift;
  return shift;
}

QuantizedMlp::QuantizedMlp(const Mlp& mlp, const Dataset& calibration)
    : inputs_(mlp.inputs()), hidden_(mlp.hidden()), outputs_(mlp.outputs()) {
  SAFFIRE_CHECK_MSG(calibration.size() > 0, "empty calibration set");
  (void)QuantizeSymmetric(calibration.inputs, input_scale_);
  w1q_ = QuantizeSymmetric(mlp.w1(), w1_scale_);
  w2q_ = QuantizeSymmetric(mlp.w2(), w2_scale_);

  // Layer-1 bias in accumulator units (input_scale · w1_scale).
  b1q_ = Int32Tensor({1, hidden_});
  for (std::int64_t c = 0; c < hidden_; ++c) {
    b1q_(0, c) = static_cast<std::int32_t>(std::nearbyint(
        mlp.b1()(0, c) / (input_scale_ * w1_scale_)));
  }

  // Calibrate the inter-layer shift on the real INT32 accumulators.
  const Int8Tensor xq = QuantizeInputs(calibration.inputs);
  const Int32Tensor a1 = AddBias(GemmRef(xq, w1q_), b1q_);
  std::int64_t max_magnitude = 0;
  for (std::int64_t i = 0; i < a1.size(); ++i) {
    max_magnitude = std::max<std::int64_t>(max_magnitude,
                                           std::max(0, a1.flat(i)));
  }
  layer1_shift_ = ChooseRequantShift(max_magnitude);

  // Layer-2 bias in layer-2 accumulator units (hidden_scale · w2_scale),
  // hidden_scale = input_scale · w1_scale · 2^shift.
  const float hidden_scale = input_scale_ * w1_scale_ *
                             static_cast<float>(1 << layer1_shift_);
  b2q_ = Int32Tensor({1, outputs_});
  for (std::int64_t c = 0; c < outputs_; ++c) {
    b2q_(0, c) = static_cast<std::int32_t>(
        std::nearbyint(mlp.b2()(0, c) / (hidden_scale * w2_scale_)));
  }
}

Int8Tensor QuantizedMlp::QuantizeInputs(const FloatTensor& batch) const {
  SAFFIRE_CHECK_MSG(batch.rank() == 2 && batch.dim(1) == inputs_,
                    "batch " << batch.ShapeString());
  Int8Tensor out(batch.shape());
  for (std::int64_t i = 0; i < batch.size(); ++i) {
    const float rounded = std::nearbyint(batch.flat(i) / input_scale_);
    out.flat(i) =
        static_cast<std::int8_t>(std::clamp(rounded, -128.0f, 127.0f));
  }
  return out;
}

Int32Tensor QuantizedMlp::AddBias(const Int32Tensor& accum,
                                  const Int32Tensor& bias) const {
  SAFFIRE_CHECK(accum.rank() == 2 && bias.dim(1) == accum.dim(1));
  Int32Tensor out = accum;
  for (std::int64_t r = 0; r < out.dim(0); ++r) {
    for (std::int64_t c = 0; c < out.dim(1); ++c) {
      out(r, c) += bias(0, c);
    }
  }
  return out;
}

Int8Tensor QuantizedMlp::RequantizeHidden(const Int32Tensor& accum) const {
  Int8Tensor out(accum.shape());
  for (std::int64_t i = 0; i < accum.size(); ++i) {
    // Identical arithmetic to the accelerator's MVOUT8 stage.
    out.flat(i) =
        Requantize(accum.flat(i), Activation::kRelu, layer1_shift_);
  }
  return out;
}

Int32Tensor QuantizedMlp::LogitsWith(const FloatTensor& batch,
                                     const LayerGemm& gemm) const {
  const Int8Tensor xq = QuantizeInputs(batch);
  const Int8Tensor hq =
      RequantizeHidden(AddBias(gemm(0, xq, w1q_), b1q_));
  return AddBias(gemm(1, hq, w2q_), b2q_);
}

std::vector<int> QuantizedMlp::PredictWith(const FloatTensor& batch,
                                           const LayerGemm& gemm) const {
  return ArgmaxRows(LogitsWith(batch, gemm));
}

std::vector<int> QuantizedMlp::PredictCpu(const FloatTensor& batch) const {
  return PredictWith(batch, [](int, const Int8Tensor& a, const Int8Tensor& b) {
    return GemmRef(a, b);
  });
}

std::vector<int> QuantizedMlp::PredictAccel(const FloatTensor& batch,
                                            Driver& driver,
                                            Dataflow dataflow) const {
  ExecOptions options;
  options.dataflow = dataflow;
  return PredictWith(
      batch, [&](int, const Int8Tensor& a, const Int8Tensor& b) {
        return driver.Gemm(a, b, options);
      });
}

std::vector<int> QuantizedMlp::PredictAppFi(
    const FloatTensor& batch, const AccelConfig& accel, Dataflow dataflow,
    std::span<const FaultSpec> faults) const {
  AppFiSpec spec;
  spec.accel = accel;
  spec.dataflow = dataflow;
  const NetworkFi injector(spec);
  return PredictWith(
      batch, [&](int layer, const Int8Tensor& a, const Int8Tensor& b) {
        WorkloadSpec workload;
        workload.op = OpType::kGemm;
        workload.m = a.dim(0);
        workload.k = a.dim(1);
        workload.n = b.dim(1);
        (void)layer;
        Int32Tensor out = GemmRef(a, b);
        for (const FaultSpec& fault : faults) {
          out = injector.InjectForFault(out, workload, fault);
        }
        return out;
      });
}

namespace {

double AccuracyOf(const std::vector<int>& predictions,
                  const std::vector<int>& labels) {
  SAFFIRE_ASSERT(predictions.size() == labels.size());
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

}  // namespace

double QuantizedMlp::AccuracyCpu(const Dataset& dataset) const {
  return AccuracyOf(PredictCpu(dataset.inputs), dataset.labels);
}

double QuantizedMlp::AccuracyAccel(const Dataset& dataset, Driver& driver,
                                   Dataflow dataflow) const {
  return AccuracyOf(PredictAccel(dataset.inputs, driver, dataflow),
                    dataset.labels);
}

double QuantizedMlp::AccuracyAppFi(const Dataset& dataset,
                                   const AccelConfig& accel, Dataflow dataflow,
                                   std::span<const FaultSpec> faults) const {
  return AccuracyOf(PredictAppFi(dataset.inputs, accel, dataflow, faults),
                    dataset.labels);
}

}  // namespace saffire
