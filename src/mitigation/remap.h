// Fault-aware graceful degradation for permanently degraded arrays — the
// "sustainable reuse" mitigation family (Algorithmic Strategies for
// Sustainable Reuse of Neural Network Accelerators with Permanent Faults)
// built on the paper's central determinism result: because a stuck-at
// fault's reach is predictable in closed form (patterns/predictor.h), a
// diagnosed fault site can be routed around in software, with no hardware
// spares.
//
// A LayerMitigationPlan is a per-layer operand/output transform:
//
//   kColumnRemap  — permute the weight columns so the faulty PE column
//                   computes the least-salient output channels. The array
//                   still corrupts the same *physical* columns; the inverse
//                   output permutation returns every channel to its logical
//                   position, so corruption lands where it matters least.
//                   On a fault-free array the remap is a pure permutation:
//                   logits are byte-identical.
//   kRowRemap     — permute the reduction (K) dimension: weight rows and
//                   input columns move together, so the exact integer sum
//                   is unchanged on a fault-free array. Under weight-
//                   stationary dataflow this chooses which weight rows sit
//                   in the faulty array row — for a stuck weight-operand
//                   bit, rows whose stored bits already match the stuck
//                   value mask the fault completely.
//   kPruneChannel — zero the weight columns mapped to the faulty PE and
//                   force the corresponding output channels to zero, so the
//                   known-corrupt channel never propagates (a deterministic
//                   output-space prune, not a remap — outputs deliberately
//                   differ from golden in the pruned channels).
//   kAbftCorrect  — correct-and-continue: run the layer through the
//                   Huang–Abraham checksums (mitigation/abft.h) and keep
//                   the corrected tensor.
//
// Planning consumes a diagnosed fault site (fi/fault.h FaultSpec), the
// layer's GEMM-view workload, and a per-channel salience vector; it throws
// std::invalid_argument for forwarding-signal faults, whose reach the
// predictor cannot bound (NetworkSweepSpec::Validate gates this upstream).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "accel/controller.h"
#include "fi/fault.h"
#include "fi/workload.h"
#include "tensor/tensor.h"

namespace saffire {

enum class MitigationPolicy : std::uint8_t {
  kNone = 0,
  kColumnRemap = 1,
  kRowRemap = 2,
  kPruneChannel = 3,
  kAbftCorrect = 4,
};

inline constexpr int kNumMitigationPolicies = 5;

std::string ToString(MitigationPolicy policy);

// Parses exactly the ToString names; throws std::invalid_argument naming
// the accepted values
// ("none|column_remap|row_remap|prune_channel|abft_correct") otherwise.
MitigationPolicy ParseMitigationPolicy(const std::string& name);

// True for the policies whose planning needs the analytical predictor to
// diagnose the fault's reach (everything except kNone and kAbftCorrect,
// which work blind).
bool MitigationNeedsPredictor(MitigationPolicy policy);

// One layer's mitigation, fully resolved against a diagnosed fault.
struct LayerMitigationPlan {
  MitigationPolicy policy = MitigationPolicy::kNone;
  // Physical output column j computes logical channel col_perm[j]; empty =
  // identity. Applied to the weight columns before the GEMM and inverted
  // on the output after it.
  std::vector<std::int64_t> col_perm;
  // Physical reduction row i holds logical K-row k_perm[i]; empty =
  // identity. Applied to the weight rows and the input columns together,
  // so the product is exactly unchanged.
  std::vector<std::int64_t> k_perm;
  // Logical output channels forced to zero after the GEMM (and whose
  // weight columns are zeroed before it). Sorted ascending.
  std::vector<std::int64_t> pruned;
  // Run the layer through ABFT verify-and-correct (kAbftCorrect).
  bool abft = false;
  // Diagnosed physical output columns the fault can reach (sorted; empty =
  // structurally masked site, nothing to mitigate).
  std::vector<std::int64_t> reached_cols;

  bool identity() const {
    return col_perm.empty() && k_perm.empty() && pruned.empty() && !abft;
  }
};

// Plans one layer's mitigation for a diagnosed fault.
//   channel_salience — per-logical-channel importance, size GemmN(); empty
//                      means uniform (the remap then keeps the lowest
//                      channel indices as victims, deterministically).
//   weights          — the layer's GEMM-view weight operand ([K × N]), used
//                      by kRowRemap to pick K-rows whose stored bits agree
//                      with a stuck weight-operand bit (nullptr = identity
//                      K-permutation: no information to act on).
// Throws std::invalid_argument when the fault's reach is not predictable
// (forwarding signals) for the predictor-backed policies.
LayerMitigationPlan PlanLayerMitigation(MitigationPolicy policy,
                                        const WorkloadSpec& workload,
                                        const AccelConfig& accel,
                                        Dataflow dataflow,
                                        const FaultSpec& fault,
                                        std::span<const double> channel_salience,
                                        const Int8Tensor* weights = nullptr);

// --- Per-layer transforms ---------------------------------------------------
// The network executor applies these around the physical GEMM:
//
//   a' = PermuteInputColumns(plan, a)
//   b' = TransformWeights(plan, b)
//   out = RestoreOutput(plan, physical_gemm(a', b'))
//
// All three validate the plan's permutation sizes against the tensor and
// throw std::invalid_argument on mismatch. Identity plans return their
// argument unchanged (by value).

// Input columns reordered by k_perm: a'[m][i] = a[m][k_perm[i]].
Int8Tensor PermuteInputColumns(const LayerMitigationPlan& plan,
                               const Int8Tensor& a);

// Weight rows reordered by k_perm, columns by col_perm, pruned logical
// columns zeroed: b'[i][j] = b[k_perm[i]][col_perm[j]] (or 0 when the
// logical column is pruned).
Int8Tensor TransformWeights(const LayerMitigationPlan& plan,
                            const Int8Tensor& b);

// Physical output returned to logical channel order, pruned channels
// forced to zero: out[m][col_perm[j]] = out_phys[m][j].
Int32Tensor RestoreOutput(const LayerMitigationPlan& plan,
                          const Int32Tensor& out_phys);

// The logical-space weights the restored output actually corresponds to:
// `b` with pruned columns zeroed (the permutations cancel). ABFT
// verification of a mitigated layer must check against these.
Int8Tensor EffectiveWeights(const LayerMitigationPlan& plan,
                            const Int8Tensor& b);

}  // namespace saffire
