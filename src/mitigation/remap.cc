#include "mitigation/remap.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/check.h"
#include "patterns/predictor.h"

namespace saffire {

namespace {

constexpr const char* kMitigationPolicyNames[] = {
    "none", "column_remap", "row_remap", "prune_channel", "abft_correct"};

// Moves logical item `wanted[i]` to physical position `targets[i]` by
// swapping, starting from the identity permutation. `perm[p]` is the
// logical index held at physical position p. Deterministic; stays a
// permutation because every wanted item is distinct.
std::vector<std::int64_t> PlaceAtPositions(
    std::int64_t size, const std::vector<std::int64_t>& targets,
    const std::vector<std::int64_t>& wanted) {
  SAFFIRE_ASSERT_MSG(targets.size() == wanted.size(),
                     targets.size() << " targets vs " << wanted.size());
  std::vector<std::int64_t> perm(static_cast<std::size_t>(size));
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::int64_t> pos = perm;  // pos[logical] = physical
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::int64_t target = targets[i];
    const std::int64_t current = pos[static_cast<std::size_t>(wanted[i])];
    if (current == target) continue;
    std::swap(perm[static_cast<std::size_t>(target)],
              perm[static_cast<std::size_t>(current)]);
    pos[static_cast<std::size_t>(perm[static_cast<std::size_t>(target)])] =
        target;
    pos[static_cast<std::size_t>(perm[static_cast<std::size_t>(current)])] =
        current;
  }
  return perm;
}

// Indices 0..size-1 ordered by ascending cost, ties by ascending index —
// the deterministic "least important first" ranking both remaps use.
std::vector<std::int64_t> RankAscending(std::span<const double> cost) {
  std::vector<std::int64_t> order(cost.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&cost](std::int64_t a, std::int64_t b) {
                     return cost[static_cast<std::size_t>(a)] <
                            cost[static_cast<std::size_t>(b)];
                   });
  return order;
}

// True when the permutation is 0,1,2,...; an identity plan short-circuits
// every transform.
bool IsIdentity(const std::vector<std::int64_t>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<std::int64_t>(i)) return false;
  }
  return true;
}

void CheckPerm(const std::vector<std::int64_t>& perm, std::int64_t size,
               const char* what) {
  SAFFIRE_CHECK_MSG(static_cast<std::int64_t>(perm.size()) == size,
                    what << " permutation has " << perm.size()
                         << " entries for dimension " << size);
  std::vector<bool> seen(static_cast<std::size_t>(size), false);
  for (const std::int64_t p : perm) {
    SAFFIRE_CHECK_MSG(p >= 0 && p < size && !seen[static_cast<std::size_t>(p)],
                      what << " permutation entry " << p << " invalid");
    seen[static_cast<std::size_t>(p)] = true;
  }
}

// The distinct physical output columns the fault reaches, via the
// analytical predictor. Empty = structurally masked.
std::vector<std::int64_t> ReachedColumns(const WorkloadSpec& workload,
                                         const AccelConfig& accel,
                                         Dataflow dataflow,
                                         const FaultSpec& fault) {
  const PredictedPattern predicted =
      PredictPattern(workload, accel, dataflow, fault);
  std::set<std::int64_t> cols;
  for (const MatrixCoord& coord : predicted.coords) cols.insert(coord.col);
  return {cols.begin(), cols.end()};
}

// Per-K-row cost of sitting in the faulty array row: for a stuck
// weight-operand bit, the number of stationary weights (the faulty PE
// column's tiles of this row) whose stored bit disagrees with the stuck
// value — rows with cost 0 mask the fault entirely. For other signals the
// row's L1 weight mass, so the least-influential rows ride the faulty PE.
std::vector<double> KRowCost(const Int8Tensor& b, const FaultSpec& fault,
                             std::int64_t array_cols) {
  const std::int64_t k = b.dim(0);
  const std::int64_t n = b.dim(1);
  std::vector<double> cost(static_cast<std::size_t>(k), 0.0);
  const bool operand_fault = fault.signal == MacSignal::kWeightOperand;
  const int stuck = fault.polarity == StuckPolarity::kStuckAt1 ? 1 : 0;
  for (std::int64_t row = 0; row < k; ++row) {
    double c = 0.0;
    if (operand_fault) {
      for (std::int64_t col = fault.pe.col; col < n; col += array_cols) {
        const auto bits = static_cast<std::uint8_t>(b(row, col));
        if (((bits >> fault.bit) & 1) != static_cast<unsigned>(stuck)) {
          c += 1.0;
        }
      }
    } else {
      for (std::int64_t col = 0; col < n; ++col) {
        c += std::abs(static_cast<double>(b(row, col)));
      }
    }
    cost[static_cast<std::size_t>(row)] = c;
  }
  return cost;
}

}  // namespace

std::string ToString(MitigationPolicy policy) {
  const auto index = static_cast<std::size_t>(policy);
  SAFFIRE_ASSERT_MSG(index < std::size(kMitigationPolicyNames),
                     "mitigation policy " << static_cast<int>(index));
  return kMitigationPolicyNames[index];
}

MitigationPolicy ParseMitigationPolicy(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kMitigationPolicyNames); ++i) {
    if (name == kMitigationPolicyNames[i]) {
      return static_cast<MitigationPolicy>(i);
    }
  }
  SAFFIRE_CHECK_MSG(false,
                    "unknown mitigation policy '"
                        << name
                        << "' (expected none|column_remap|row_remap|"
                           "prune_channel|abft_correct)");
}

bool MitigationNeedsPredictor(MitigationPolicy policy) {
  return policy == MitigationPolicy::kColumnRemap ||
         policy == MitigationPolicy::kRowRemap ||
         policy == MitigationPolicy::kPruneChannel;
}

LayerMitigationPlan PlanLayerMitigation(
    MitigationPolicy policy, const WorkloadSpec& workload,
    const AccelConfig& accel, Dataflow dataflow, const FaultSpec& fault,
    std::span<const double> channel_salience, const Int8Tensor* weights) {
  const std::int64_t n = workload.GemmN();
  const std::int64_t k = workload.GemmK();
  SAFFIRE_CHECK_MSG(
      channel_salience.empty() ||
          static_cast<std::int64_t>(channel_salience.size()) == n,
      "salience has " << channel_salience.size() << " channels, layer has "
                      << n);

  LayerMitigationPlan plan;
  plan.policy = policy;
  if (policy == MitigationPolicy::kNone) return plan;
  if (policy == MitigationPolicy::kAbftCorrect) {
    plan.abft = true;
    return plan;
  }

  plan.reached_cols = ReachedColumns(workload, accel, dataflow, fault);
  if (plan.reached_cols.empty()) return plan;  // masked site: nothing to do

  switch (policy) {
    case MitigationPolicy::kColumnRemap: {
      // Send the least-salient logical channels to the faulty physical
      // columns; everything else keeps its position (swap placement).
      std::vector<double> salience(channel_salience.begin(),
                                   channel_salience.end());
      if (salience.empty()) salience.assign(static_cast<std::size_t>(n), 0.0);
      const std::vector<std::int64_t> ranked = RankAscending(salience);
      const std::vector<std::int64_t> victims(
          ranked.begin(),
          ranked.begin() +
              static_cast<std::ptrdiff_t>(plan.reached_cols.size()));
      std::vector<std::int64_t> perm =
          PlaceAtPositions(n, plan.reached_cols, victims);
      if (!IsIdentity(perm)) plan.col_perm = std::move(perm);
      break;
    }
    case MitigationPolicy::kRowRemap: {
      // The faulty array row holds K-rows {pe.row + rows·t}; fill those
      // slots with the rows cheapest to corrupt (conflict-free rows mask a
      // stuck weight bit exactly).
      if (weights == nullptr) break;
      SAFFIRE_CHECK_MSG(weights->rank() == 2 && weights->dim(0) == k &&
                            weights->dim(1) == n,
                        "weights " << weights->ShapeString() << " vs "
                                   << k << "x" << n << " layer");
      std::vector<std::int64_t> slots;
      for (std::int64_t row = fault.pe.row; row < k;
           row += accel.array.rows) {
        slots.push_back(row);
      }
      if (slots.empty()) break;
      const std::vector<double> cost =
          KRowCost(*weights, fault, accel.array.cols);
      const std::vector<std::int64_t> ranked = RankAscending(cost);
      const std::vector<std::int64_t> chosen(
          ranked.begin(),
          ranked.begin() + static_cast<std::ptrdiff_t>(slots.size()));
      std::vector<std::int64_t> perm = PlaceAtPositions(k, slots, chosen);
      if (!IsIdentity(perm)) plan.k_perm = std::move(perm);
      break;
    }
    case MitigationPolicy::kPruneChannel:
      plan.pruned = plan.reached_cols;
      break;
    default:
      SAFFIRE_ASSERT_MSG(false, "unhandled mitigation policy");
  }
  return plan;
}

Int8Tensor PermuteInputColumns(const LayerMitigationPlan& plan,
                               const Int8Tensor& a) {
  if (plan.k_perm.empty()) return a;
  SAFFIRE_CHECK_MSG(a.rank() == 2, "input " << a.ShapeString());
  CheckPerm(plan.k_perm, a.dim(1), "K");
  Int8Tensor out({a.dim(0), a.dim(1)});
  for (std::int64_t m = 0; m < a.dim(0); ++m) {
    for (std::int64_t i = 0; i < a.dim(1); ++i) {
      out(m, i) = a(m, plan.k_perm[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

Int8Tensor TransformWeights(const LayerMitigationPlan& plan,
                            const Int8Tensor& b) {
  if (plan.k_perm.empty() && plan.col_perm.empty() && plan.pruned.empty()) {
    return b;
  }
  SAFFIRE_CHECK_MSG(b.rank() == 2, "weights " << b.ShapeString());
  if (!plan.k_perm.empty()) CheckPerm(plan.k_perm, b.dim(0), "K");
  if (!plan.col_perm.empty()) CheckPerm(plan.col_perm, b.dim(1), "column");
  std::vector<bool> prune(static_cast<std::size_t>(b.dim(1)), false);
  for (const std::int64_t channel : plan.pruned) {
    SAFFIRE_CHECK_MSG(channel >= 0 && channel < b.dim(1),
                      "pruned channel " << channel << " of " << b.dim(1));
    prune[static_cast<std::size_t>(channel)] = true;
  }
  Int8Tensor out({b.dim(0), b.dim(1)});
  for (std::int64_t i = 0; i < b.dim(0); ++i) {
    const std::int64_t row =
        plan.k_perm.empty() ? i : plan.k_perm[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      const std::int64_t col =
          plan.col_perm.empty() ? j
                                : plan.col_perm[static_cast<std::size_t>(j)];
      out(i, j) =
          prune[static_cast<std::size_t>(col)] ? std::int8_t{0}
                                               : b(row, col);
    }
  }
  return out;
}

Int32Tensor RestoreOutput(const LayerMitigationPlan& plan,
                          const Int32Tensor& out_phys) {
  if (plan.col_perm.empty() && plan.pruned.empty()) return out_phys;
  SAFFIRE_CHECK_MSG(out_phys.rank() == 2, "output " << out_phys.ShapeString());
  Int32Tensor out = out_phys;
  if (!plan.col_perm.empty()) {
    CheckPerm(plan.col_perm, out_phys.dim(1), "column");
    for (std::int64_t m = 0; m < out_phys.dim(0); ++m) {
      for (std::int64_t j = 0; j < out_phys.dim(1); ++j) {
        out(m, plan.col_perm[static_cast<std::size_t>(j)]) =
            out_phys(m, j);
      }
    }
  }
  for (const std::int64_t channel : plan.pruned) {
    SAFFIRE_CHECK_MSG(channel >= 0 && channel < out.dim(1),
                      "pruned channel " << channel << " of " << out.dim(1));
    for (std::int64_t m = 0; m < out.dim(0); ++m) out(m, channel) = 0;
  }
  return out;
}

Int8Tensor EffectiveWeights(const LayerMitigationPlan& plan,
                            const Int8Tensor& b) {
  if (plan.pruned.empty()) return b;
  SAFFIRE_CHECK_MSG(b.rank() == 2, "weights " << b.ShapeString());
  Int8Tensor out = b;
  for (const std::int64_t channel : plan.pruned) {
    SAFFIRE_CHECK_MSG(channel >= 0 && channel < b.dim(1),
                      "pruned channel " << channel << " of " << b.dim(1));
    for (std::int64_t i = 0; i < b.dim(0); ++i) out(i, channel) = 0;
  }
  return out;
}

}  // namespace saffire
