#include "mitigation/abft.h"

#include <sstream>

#include "common/check.h"
#include "common/json.h"

namespace saffire {

namespace {

constexpr const char* kDiagnosisNames[] = {"clean", "single-element",
                                           "single-column", "single-row",
                                           "complex"};

}  // namespace

std::string ToString(AbftDiagnosis diagnosis) {
  const auto index = static_cast<std::size_t>(diagnosis);
  SAFFIRE_ASSERT_MSG(index < std::size(kDiagnosisNames),
                     "diagnosis " << static_cast<int>(index));
  return kDiagnosisNames[index];
}

AbftDiagnosis ParseAbftDiagnosis(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kDiagnosisNames); ++i) {
    if (name == kDiagnosisNames[i]) return static_cast<AbftDiagnosis>(i);
  }
  SAFFIRE_CHECK_MSG(false, "unknown abft diagnosis '"
                               << name
                               << "' (expected clean|single-element|"
                                  "single-column|single-row|complex)");
}

std::string AbftReport::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("diagnosis").String(ToString(diagnosis));
  w.Key("flagged_rows").BeginArray();
  for (const std::int64_t row : flagged_rows) w.Int(row);
  w.EndArray();
  w.Key("flagged_cols").BeginArray();
  for (const std::int64_t col : flagged_cols) w.Int(col);
  w.EndArray();
  w.Key("corrections").Int(corrections)
      .Key("verified_after_correction").Bool(verified_after_correction)
      .EndObject();
  return os.str();
}

namespace {

struct Residuals {
  std::vector<std::int64_t> row;  // Σ_j C[i][j] − expected
  std::vector<std::int64_t> col;  // Σ_i C[i][j] − expected
};

Residuals ComputeResiduals(const Int8Tensor& a, const Int8Tensor& b,
                           const Int32Tensor& c) {
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);

  // Host-side checksums in INT64: O(M·K + K·N) work versus the array's
  // O(M·K·N).
  std::vector<std::int64_t> b_rowsum(static_cast<std::size_t>(k), 0);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t j = 0; j < n; ++j) {
      b_rowsum[static_cast<std::size_t>(kk)] += b(kk, j);
    }
  }
  std::vector<std::int64_t> a_colsum(static_cast<std::size_t>(k), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      a_colsum[static_cast<std::size_t>(kk)] += a(i, kk);
    }
  }

  Residuals residuals;
  residuals.row.assign(static_cast<std::size_t>(m), 0);
  residuals.col.assign(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t expected = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      expected += static_cast<std::int64_t>(a(i, kk)) *
                  b_rowsum[static_cast<std::size_t>(kk)];
    }
    std::int64_t actual = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      actual += c(i, j);
    }
    residuals.row[static_cast<std::size_t>(i)] = actual - expected;
  }
  for (std::int64_t j = 0; j < n; ++j) {
    std::int64_t expected = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      expected += a_colsum[static_cast<std::size_t>(kk)] *
                  static_cast<std::int64_t>(b(kk, j));
    }
    std::int64_t actual = 0;
    for (std::int64_t i = 0; i < m; ++i) {
      actual += c(i, j);
    }
    residuals.col[static_cast<std::size_t>(j)] = actual - expected;
  }
  return residuals;
}

bool AllZero(const std::vector<std::int64_t>& values) {
  for (const std::int64_t value : values) {
    if (value != 0) return false;
  }
  return true;
}

std::vector<std::int64_t> NonZeroIndices(
    const std::vector<std::int64_t>& values) {
  std::vector<std::int64_t> indices;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0) indices.push_back(static_cast<std::int64_t>(i));
  }
  return indices;
}

}  // namespace

AbftReport VerifyAndCorrect(const Int8Tensor& a, const Int8Tensor& b,
                            Int32Tensor& c) {
  SAFFIRE_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && c.rank() == 2 &&
                        a.dim(1) == b.dim(0) && c.dim(0) == a.dim(0) &&
                        c.dim(1) == b.dim(1),
                    "A " << a.ShapeString() << " B " << b.ShapeString()
                         << " C " << c.ShapeString());
  const Residuals residuals = ComputeResiduals(a, b, c);

  AbftReport report;
  report.flagged_rows = NonZeroIndices(residuals.row);
  report.flagged_cols = NonZeroIndices(residuals.col);

  if (report.flagged_rows.empty() && report.flagged_cols.empty()) {
    report.diagnosis = AbftDiagnosis::kClean;
    report.verified_after_correction = true;
    return report;
  }

  const auto correct = [&](std::int64_t row, std::int64_t col,
                           std::int64_t residual) {
    c(row, col) = static_cast<std::int32_t>(
        static_cast<std::int64_t>(c(row, col)) - residual);
    ++report.corrections;
  };

  if (report.flagged_rows.size() == 1 && report.flagged_cols.size() == 1) {
    report.diagnosis = AbftDiagnosis::kSingleElement;
    const std::int64_t row = report.flagged_rows.front();
    correct(row, report.flagged_cols.front(),
            residuals.row[static_cast<std::size_t>(row)]);
  } else if (report.flagged_cols.size() == 1) {
    // One bad element per flagged row, all in the same column — the
    // weight-stationary fault pattern.
    report.diagnosis = AbftDiagnosis::kSingleColumn;
    const std::int64_t col = report.flagged_cols.front();
    for (const std::int64_t row : report.flagged_rows) {
      correct(row, col, residuals.row[static_cast<std::size_t>(row)]);
    }
  } else if (report.flagged_rows.size() == 1) {
    // The input-stationary fault pattern: one bad element per column.
    report.diagnosis = AbftDiagnosis::kSingleRow;
    const std::int64_t row = report.flagged_rows.front();
    for (const std::int64_t col : report.flagged_cols) {
      correct(row, col, residuals.col[static_cast<std::size_t>(col)]);
    }
  } else {
    // Multiple rows and columns (multi-tile patterns): per-element deltas
    // are underdetermined by one checksum pair.
    report.diagnosis = AbftDiagnosis::kComplex;
    report.verified_after_correction = false;
    return report;
  }

  const Residuals recheck = ComputeResiduals(a, b, c);
  report.verified_after_correction =
      AllZero(recheck.row) && AllZero(recheck.col);
  return report;
}

Int32Tensor AbftGemm::Multiply(const Int8Tensor& a, const Int8Tensor& b,
                               const ExecOptions& options,
                               AbftReport* report) {
  Int32Tensor c = driver_.Gemm(a, b, options);
  AbftReport local = VerifyAndCorrect(a, b, c);
  if (report != nullptr) *report = local;
  return c;
}

}  // namespace saffire
