// Algorithm-based fault tolerance (ABFT) for accelerated GEMM — the
// "generic software resilience solutions ... that can be easily integrated
// with existing applications irrespective of the DNN accelerator" the
// paper calls for in its fault-mitigation discussion (Sec. V).
//
// Huang–Abraham style checksums: the O(M·N·K) product runs on the
// (possibly faulty) array; the host computes O(M·K + K·N + M·N) INT64
// checksums — r = B·1 and c = 1ᵀ·A, then A·r per row and c·B per column —
// and verifies every row/column sum of the array's result. The flagged
// row/column sets diagnose the corruption shape, directly mirroring the
// paper's pattern classes:
//
//   one row & one column flagged  → single-element (OS faults): corrected
//   one column, many rows         → single-column  (WS faults): corrected
//   one row, many columns         → single-row     (IS faults): corrected
//   several rows AND columns      → complex (multi-tile patterns):
//                                    detected, not correctable from one
//                                    checksum pair (underdetermined)
//
// Corrections subtract the per-row (or per-column) checksum residual from
// the unique flagged element of that row/column, then re-verify.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/driver.h"
#include "tensor/tensor.h"

namespace saffire {

enum class AbftDiagnosis : std::uint8_t {
  kClean = 0,          // all checksums verified
  kSingleElement = 1,  // corrected
  kSingleColumn = 2,   // corrected
  kSingleRow = 3,      // corrected
  kComplex = 4,        // detected; not correctable from these checksums
};

std::string ToString(AbftDiagnosis diagnosis);

// Parses exactly the ToString names; throws std::invalid_argument naming
// the accepted values ("clean|single-element|single-column|single-row|"
// "complex") otherwise.
AbftDiagnosis ParseAbftDiagnosis(const std::string& name);

struct AbftReport {
  AbftDiagnosis diagnosis = AbftDiagnosis::kClean;
  std::vector<std::int64_t> flagged_rows;
  std::vector<std::int64_t> flagged_cols;
  std::int64_t corrections = 0;  // elements repaired
  bool verified_after_correction = false;  // re-check passed (or was clean)

  // True when any checksum flagged (the fault was visible to ABFT).
  bool detected() const { return diagnosis != AbftDiagnosis::kClean; }
  // True when the corruption was repaired and the re-check passed.
  bool corrected() const {
    return detected() && verified_after_correction;
  }

  // One JSON object per report, consistent with the record sinks'
  // conventions (enum names via ToString, arrays for the flag sets) so
  // network-campaign records can embed mitigation outcomes verbatim.
  std::string ToJson() const;
};

class AbftGemm {
 public:
  explicit AbftGemm(Driver& driver) : driver_(driver) {}

  // C = A·B on the accelerator, verified and (where possible) corrected.
  // The returned tensor is the corrected result; `report` (optional)
  // receives the diagnosis.
  Int32Tensor Multiply(const Int8Tensor& a, const Int8Tensor& b,
                       const ExecOptions& options,
                       AbftReport* report = nullptr);

 private:
  Driver& driver_;
};

// Verification core, exposed for tests and for checking externally
// produced results: flags every row i with Σ_j C[i][j] ≠ (A·(B·1))[i] and
// every column j with Σ_i C[i][j] ≠ ((1ᵀ·A)·B)[j]; diagnoses and corrects
// in place.
AbftReport VerifyAndCorrect(const Int8Tensor& a, const Int8Tensor& b,
                            Int32Tensor& c);

}  // namespace saffire
