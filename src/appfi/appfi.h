// Application-level fault injection using predicted hardware patterns —
// the use-case the paper proposes for its characterization: "our
// classification of fault patterns can enable application-level fault
// injectors (such as LLTFI) to perform more precise FI campaigns with the
// systolic array hardware model" (Sec. VI).
//
// Instead of simulating the array cycle-by-cycle, an application-level
// injector takes the clean (golden) tensor of an accelerated operation and
// perturbs exactly the elements the hardware fault would reach — derived
// analytically from the array configuration, dataflow, tiling plan, and
// fault site (patterns/predictor.h). This is orders of magnitude faster
// than RTL-level FI (the paper's scalability argument) and, on the
// pattern-extraction workload, bit-exact.
//
// Entry point: configure an AppFiSpec (accelerator + dataflow + default
// perturbation; JSON round-trip like service/sweep.h's SweepSpec) and drive
// a NetworkFi injector with it. The loose free-function overloads that
// predate the spec survive one more release as deprecated wrappers.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "fi/fault.h"
#include "fi/workload.h"
#include "patterns/predictor.h"

namespace saffire {

// How predicted coordinates are perturbed.
enum class PerturbMode : std::uint8_t {
  kSetBit = 0,    // value |= 1<<bit   (stuck-at-1 approximation)
  kClearBit = 1,  // value &= ~(1<<bit) (stuck-at-0 approximation)
  kFlipBit = 2,   // value ^= 1<<bit   (transient approximation)
  kAddDelta = 3,  // value += delta    (caller-supplied magnitude model)
};

std::string ToString(PerturbMode mode);

// Parses exactly the ToString names; throws std::invalid_argument naming
// the accepted values ("set-bit|clear-bit|flip-bit|add-delta") otherwise.
PerturbMode ParsePerturbMode(const std::string& name);

struct PerturbSpec {
  PerturbMode mode = PerturbMode::kSetBit;
  int bit = 8;                // kSetBit / kClearBit / kFlipBit
  std::int32_t delta = 0;     // kAddDelta

  bool operator==(const PerturbSpec&) const = default;
};

// The perturbation that approximates a stuck-at fault at the tensor level:
// set the fault's bit for stuck-at-1, clear it for stuck-at-0, flip it for
// a transient. The polarity-aware default NetworkFi::InjectForFault and the
// DNN inference paths use.
PerturbSpec PerturbForFault(const FaultSpec& fault);

// Configuration of one application-level injector: the hardware model the
// patterns are predicted against plus the default perturbation. Follows the
// SweepSpec idiom — Validate() for cheap upfront rejection, JSON round-trip
// with unknown-key rejection for version-controlled configs.
struct AppFiSpec {
  AccelConfig accel;
  Dataflow dataflow = Dataflow::kWeightStationary;
  PerturbSpec perturb;

  // Throws std::invalid_argument on an invalid accelerator or an
  // out-of-range perturbation bit.
  void Validate() const;

  // JSON round-trip. Enums serialize as their ToString names;
  // ParseAppFiSpec accepts exactly what ToJson emits and rejects unknown
  // keys to catch typos early.
  std::string ToJson() const;

  bool operator==(const AppFiSpec&) const = default;
};

AppFiSpec ParseAppFiSpec(const std::string& json);

// Cross-validation of the application-level injector against the
// cycle-accurate simulator for one fault.
struct CrossValidation {
  bool coords_match = false;   // corrupted coordinate sets identical
  bool values_match = false;   // faulty tensors bit-identical
  std::int64_t predicted_count = 0;
  std::int64_t observed_count = 0;
  // Speedup proxy: simulated PE evaluations avoided by the analytical path.
  std::uint64_t simulated_pe_steps = 0;
};

// The application-level injector. Bound to one AppFiSpec (validated at
// construction); stateless afterwards, so one instance serves a whole
// campaign and const methods are safe to call concurrently.
class NetworkFi {
 public:
  explicit NetworkFi(const AppFiSpec& spec);

  const AppFiSpec& spec() const { return spec_; }

  // Returns a copy of `golden` (the GEMM-view output of `workload`) with
  // the predicted reach of `fault` perturbed per the spec's perturbation.
  // A structurally masked fault returns `golden` unchanged.
  Int32Tensor Inject(const Int32Tensor& golden, const WorkloadSpec& workload,
                     const FaultSpec& fault) const;

  // Same, overriding the spec's perturbation for this call.
  Int32Tensor Inject(const Int32Tensor& golden, const WorkloadSpec& workload,
                     const FaultSpec& fault, const PerturbSpec& perturb) const;

  // Inject with PerturbForFault(fault) — the polarity-aware perturbation.
  Int32Tensor InjectForFault(const Int32Tensor& golden,
                             const WorkloadSpec& workload,
                             const FaultSpec& fault) const;

  // Bit-exact emulation of a stuck-at-1 adder fault on the all-ones
  // extraction workload: every reached element gains k_tiles·2^bit (each
  // pass of the operand through the faulty PE contributes one set bit, and
  // every intermediate magnitude stays below 2^bit). Throws
  // std::invalid_argument if the preconditions don't hold (non-ones fills,
  // stuck-at-0, or a bit small enough to collide with true partial-sum
  // values).
  Int32Tensor EmulateExtraction(const Int32Tensor& golden,
                                const WorkloadSpec& workload,
                                const FaultSpec& fault) const;

  // True when EmulateExtraction's preconditions hold for this fault and
  // workload, i.e. the analytical path is provably bit-exact.
  bool ExtractionExact(const WorkloadSpec& workload,
                       const FaultSpec& fault) const;

  // Runs the cycle-accurate simulator on `workload` with `fault` installed
  // and compares it against EmulateExtraction.
  CrossValidation CrossValidate(const WorkloadSpec& workload,
                                const FaultSpec& fault) const;

 private:
  AppFiSpec spec_;
};

// Uniform random hardware faults for statistical campaigns (the DNN
// accuracy-degradation study): site uniform over the array, bit uniform in
// [bit_lo, bit_hi], polarity uniform.
FaultSpec SampleAdderFault(const ArrayConfig& config, Rng& rng,
                           int bit_lo = 0, int bit_hi = 31);

// The naive application-level baseline the paper argues against: existing
// injectors without a systolic-array model perturb "a single output
// element" of the operator — "these tools are restricted to CPU- and
// GPU-based models, and do not consider systolic arrays" (Sec. I).
// Flips one bit of one uniformly chosen element of the operator output,
// with no notion of dataflow, tiling, or fault location. Used as the
// comparison point for how much precision the pattern model adds.
Int32Tensor InjectNaiveBaseline(const Int32Tensor& golden, Rng& rng,
                                int bit);

// --- Deprecated loose-parameter API ----------------------------------------
// Thin wrappers over NetworkFi, kept for one release so downstream callers
// can migrate; every in-tree caller already has.

[[deprecated("construct a NetworkFi from an AppFiSpec and call Inject()")]]
Int32Tensor InjectPattern(const Int32Tensor& golden,
                          const WorkloadSpec& workload,
                          const AccelConfig& accel, Dataflow dataflow,
                          const FaultSpec& fault, const PerturbSpec& perturb);

[[deprecated(
    "construct a NetworkFi from an AppFiSpec and call EmulateExtraction()")]]
Int32Tensor EmulateExtractionFault(const Int32Tensor& golden,
                                   const WorkloadSpec& workload,
                                   const AccelConfig& accel, Dataflow dataflow,
                                   const FaultSpec& fault);

[[deprecated(
    "construct a NetworkFi from an AppFiSpec and call CrossValidate()")]]
CrossValidation CrossValidate(const WorkloadSpec& workload,
                              const AccelConfig& accel, Dataflow dataflow,
                              const FaultSpec& fault);

}  // namespace saffire
