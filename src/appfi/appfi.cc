#include "appfi/appfi.h"

#include "common/check.h"
#include "fi/runner.h"
#include "patterns/corruption.h"

namespace saffire {

std::string ToString(PerturbMode mode) {
  switch (mode) {
    case PerturbMode::kSetBit:
      return "set-bit";
    case PerturbMode::kClearBit:
      return "clear-bit";
    case PerturbMode::kFlipBit:
      return "flip-bit";
    case PerturbMode::kAddDelta:
      return "add-delta";
  }
  return "unknown";
}

namespace {

std::int32_t Perturb(std::int32_t value, const PerturbSpec& spec) {
  switch (spec.mode) {
    case PerturbMode::kSetBit:
      SAFFIRE_CHECK_MSG(spec.bit >= 0 && spec.bit < 32, "bit=" << spec.bit);
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(value) |
                                       (std::uint32_t{1} << spec.bit));
    case PerturbMode::kClearBit:
      SAFFIRE_CHECK_MSG(spec.bit >= 0 && spec.bit < 32, "bit=" << spec.bit);
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(value) &
                                       ~(std::uint32_t{1} << spec.bit));
    case PerturbMode::kFlipBit:
      SAFFIRE_CHECK_MSG(spec.bit >= 0 && spec.bit < 32, "bit=" << spec.bit);
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(value) ^
                                       (std::uint32_t{1} << spec.bit));
    case PerturbMode::kAddDelta:
      return value + spec.delta;
  }
  SAFFIRE_CHECK_MSG(false, "unknown perturb mode");
}

}  // namespace

Int32Tensor InjectPattern(const Int32Tensor& golden,
                          const WorkloadSpec& workload,
                          const AccelConfig& accel, Dataflow dataflow,
                          const FaultSpec& fault,
                          const PerturbSpec& perturb) {
  SAFFIRE_CHECK_MSG(golden.rank() == 2 && golden.dim(0) == workload.GemmM() &&
                        golden.dim(1) == workload.GemmN(),
                    "golden " << golden.ShapeString() << " vs workload "
                              << workload.ToString());
  const PredictedPattern prediction =
      PredictPattern(workload, accel, dataflow, fault);
  Int32Tensor faulty = golden;
  for (const MatrixCoord& coord : prediction.coords) {
    faulty(coord.row, coord.col) =
        Perturb(faulty(coord.row, coord.col), perturb);
  }
  return faulty;
}

Int32Tensor EmulateExtractionFault(const Int32Tensor& golden,
                                   const WorkloadSpec& workload,
                                   const AccelConfig& accel, Dataflow dataflow,
                                   const FaultSpec& fault) {
  SAFFIRE_CHECK_MSG(workload.input_fill == OperandFill::kOnes &&
                        workload.weight_fill == OperandFill::kOnes,
                    "exact emulation requires the all-ones extraction "
                    "workload, got "
                        << workload.ToString());
  SAFFIRE_CHECK_MSG(fault.kind == FaultKind::kStuckAt &&
                        fault.polarity == StuckPolarity::kStuckAt1 &&
                        fault.signal == MacSignal::kAdderOut,
                    "exact emulation covers stuck-at-1 adder faults, got "
                        << fault.ToString());
  // All intermediate partial sums of the ones-workload are bounded by the
  // per-tile reduction depth; the stuck bit must sit strictly above them so
  // every pass contributes exactly 2^bit.
  const TileGrid grid =
      Driver::PlanTiles(workload.GemmM(), workload.GemmN(), workload.GemmK(),
                        accel, dataflow);
  const std::int64_t max_partial = grid.tile_k();
  SAFFIRE_CHECK_MSG((std::int64_t{1} << fault.bit) > max_partial,
                    "bit " << fault.bit << " collides with partial sums up to "
                           << max_partial);

  PerturbSpec perturb;
  perturb.mode = PerturbMode::kAddDelta;
  perturb.delta = static_cast<std::int32_t>(
      grid.k_tiles() * (std::int64_t{1} << fault.bit));
  return InjectPattern(golden, workload, accel, dataflow, fault, perturb);
}

FaultSpec SampleAdderFault(const ArrayConfig& config, Rng& rng, int bit_lo,
                           int bit_hi) {
  config.Validate();
  SAFFIRE_CHECK_MSG(bit_lo >= 0 && bit_lo <= bit_hi &&
                        bit_hi < config.acc_bits,
                    "bit range [" << bit_lo << ", " << bit_hi << "]");
  FaultSpec fault;
  fault.kind = FaultKind::kStuckAt;
  fault.pe.row = static_cast<std::int32_t>(rng.UniformInt(0, config.rows - 1));
  fault.pe.col = static_cast<std::int32_t>(rng.UniformInt(0, config.cols - 1));
  fault.signal = MacSignal::kAdderOut;
  fault.bit = static_cast<int>(rng.UniformInt(bit_lo, bit_hi));
  fault.polarity = rng.Bernoulli(0.5) ? StuckPolarity::kStuckAt1
                                      : StuckPolarity::kStuckAt0;
  return fault;
}

Int32Tensor InjectNaiveBaseline(const Int32Tensor& golden, Rng& rng,
                                int bit) {
  SAFFIRE_CHECK_MSG(golden.rank() == 2, "golden " << golden.ShapeString());
  SAFFIRE_CHECK_MSG(bit >= 0 && bit < 32, "bit=" << bit);
  Int32Tensor faulty = golden;
  const std::int64_t index = rng.UniformInt(0, golden.size() - 1);
  faulty.flat(index) = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(faulty.flat(index)) ^
      (std::uint32_t{1} << bit));
  return faulty;
}

CrossValidation CrossValidate(const WorkloadSpec& workload,
                              const AccelConfig& accel, Dataflow dataflow,
                              const FaultSpec& fault) {
  FiRunner runner(accel);
  const RunResult golden = runner.RunGolden(workload, dataflow);
  const RunResult simulated = runner.RunFaulty(workload, dataflow, {&fault, 1});
  const CorruptionMap observed =
      ExtractCorruption(golden.output, simulated.output);

  const Int32Tensor emulated =
      EmulateExtractionFault(golden.output, workload, accel, dataflow, fault);
  const CorruptionMap predicted = ExtractCorruption(golden.output, emulated);

  CrossValidation validation;
  validation.coords_match = observed.corrupted == predicted.corrupted;
  validation.values_match = emulated == simulated.output;
  validation.predicted_count = predicted.count();
  validation.observed_count = observed.count();
  validation.simulated_pe_steps = simulated.pe_steps;
  return validation;
}

}  // namespace saffire
