#include "appfi/appfi.h"

#include <sstream>

#include "accel/config_json.h"
#include "common/check.h"
#include "common/json.h"
#include "fi/runner.h"
#include "patterns/corruption.h"

namespace saffire {

namespace {

constexpr const char* kPerturbModeNames[] = {"set-bit", "clear-bit",
                                             "flip-bit", "add-delta"};

}  // namespace

std::string ToString(PerturbMode mode) {
  const auto index = static_cast<std::size_t>(mode);
  SAFFIRE_ASSERT_MSG(index < std::size(kPerturbModeNames),
                     "perturb mode " << static_cast<int>(index));
  return kPerturbModeNames[index];
}

PerturbMode ParsePerturbMode(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kPerturbModeNames); ++i) {
    if (name == kPerturbModeNames[i]) return static_cast<PerturbMode>(i);
  }
  SAFFIRE_CHECK_MSG(false, "unknown perturb mode '"
                               << name
                               << "' (expected set-bit|clear-bit|flip-bit|"
                                  "add-delta)");
}

PerturbSpec PerturbForFault(const FaultSpec& fault) {
  PerturbSpec perturb;
  perturb.bit = fault.bit;
  if (fault.kind == FaultKind::kTransientFlip) {
    perturb.mode = PerturbMode::kFlipBit;
  } else {
    perturb.mode = fault.polarity == StuckPolarity::kStuckAt1
                       ? PerturbMode::kSetBit
                       : PerturbMode::kClearBit;
  }
  return perturb;
}

namespace {

std::int32_t Perturb(std::int32_t value, const PerturbSpec& spec) {
  switch (spec.mode) {
    case PerturbMode::kSetBit:
      SAFFIRE_CHECK_MSG(spec.bit >= 0 && spec.bit < 32, "bit=" << spec.bit);
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(value) |
                                       (std::uint32_t{1} << spec.bit));
    case PerturbMode::kClearBit:
      SAFFIRE_CHECK_MSG(spec.bit >= 0 && spec.bit < 32, "bit=" << spec.bit);
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(value) &
                                       ~(std::uint32_t{1} << spec.bit));
    case PerturbMode::kFlipBit:
      SAFFIRE_CHECK_MSG(spec.bit >= 0 && spec.bit < 32, "bit=" << spec.bit);
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(value) ^
                                       (std::uint32_t{1} << spec.bit));
    case PerturbMode::kAddDelta:
      return value + spec.delta;
  }
  SAFFIRE_CHECK_MSG(false, "unknown perturb mode");
}

}  // namespace

void AppFiSpec::Validate() const {
  accel.Validate();
  if (perturb.mode != PerturbMode::kAddDelta) {
    SAFFIRE_CHECK_MSG(perturb.bit >= 0 && perturb.bit < 32,
                      "perturb bit=" << perturb.bit);
  }
}

std::string AppFiSpec::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("accel");
  WriteAccelJson(w, accel);
  w.Key("dataflow").String(ToString(dataflow));
  w.Key("perturb").BeginObject()
      .Key("mode").String(ToString(perturb.mode))
      .Key("bit").Int(perturb.bit)
      .Key("delta").Int(perturb.delta)
      .EndObject();
  w.EndObject();
  return os.str();
}

AppFiSpec ParseAppFiSpec(const std::string& json) {
  const JsonValue root = JsonValue::Parse(json);
  // Reject unknown keys so a typo ("perturb_mode" for "perturb") fails
  // loudly instead of silently injecting with the default.
  for (const auto& [key, value] : root.AsObject()) {
    (void)value;
    SAFFIRE_CHECK_MSG(key == "accel" || key == "dataflow" || key == "perturb",
                      "unknown appfi spec key '" << key << "'");
  }
  AppFiSpec spec;
  spec.accel = ParseAccelJson(root.At("accel"));
  spec.dataflow = DataflowFromString(root.At("dataflow").AsString());
  const JsonValue& perturb = root.At("perturb");
  for (const auto& [key, value] : perturb.AsObject()) {
    (void)value;
    SAFFIRE_CHECK_MSG(key == "mode" || key == "bit" || key == "delta",
                      "unknown appfi perturb key '" << key << "'");
  }
  spec.perturb.mode = ParsePerturbMode(perturb.At("mode").AsString());
  spec.perturb.bit = static_cast<int>(perturb.At("bit").AsInt());
  spec.perturb.delta =
      static_cast<std::int32_t>(perturb.At("delta").AsInt());
  spec.Validate();
  return spec;
}

NetworkFi::NetworkFi(const AppFiSpec& spec) : spec_(spec) {
  spec_.Validate();
}

Int32Tensor NetworkFi::Inject(const Int32Tensor& golden,
                              const WorkloadSpec& workload,
                              const FaultSpec& fault) const {
  return Inject(golden, workload, fault, spec_.perturb);
}

Int32Tensor NetworkFi::Inject(const Int32Tensor& golden,
                              const WorkloadSpec& workload,
                              const FaultSpec& fault,
                              const PerturbSpec& perturb) const {
  SAFFIRE_CHECK_MSG(golden.rank() == 2 && golden.dim(0) == workload.GemmM() &&
                        golden.dim(1) == workload.GemmN(),
                    "golden " << golden.ShapeString() << " vs workload "
                              << workload.ToString());
  const PredictedPattern prediction =
      PredictPattern(workload, spec_.accel, spec_.dataflow, fault);
  Int32Tensor faulty = golden;
  for (const MatrixCoord& coord : prediction.coords) {
    faulty(coord.row, coord.col) =
        Perturb(faulty(coord.row, coord.col), perturb);
  }
  return faulty;
}

Int32Tensor NetworkFi::InjectForFault(const Int32Tensor& golden,
                                      const WorkloadSpec& workload,
                                      const FaultSpec& fault) const {
  return Inject(golden, workload, fault, PerturbForFault(fault));
}

bool NetworkFi::ExtractionExact(const WorkloadSpec& workload,
                                const FaultSpec& fault) const {
  if (workload.input_fill != OperandFill::kOnes ||
      workload.weight_fill != OperandFill::kOnes) {
    return false;
  }
  if (fault.kind != FaultKind::kStuckAt ||
      fault.polarity != StuckPolarity::kStuckAt1 ||
      fault.signal != MacSignal::kAdderOut) {
    return false;
  }
  const TileGrid grid =
      Driver::PlanTiles(workload.GemmM(), workload.GemmN(), workload.GemmK(),
                        spec_.accel, spec_.dataflow);
  return (std::int64_t{1} << fault.bit) > grid.tile_k();
}

Int32Tensor NetworkFi::EmulateExtraction(const Int32Tensor& golden,
                                         const WorkloadSpec& workload,
                                         const FaultSpec& fault) const {
  SAFFIRE_CHECK_MSG(workload.input_fill == OperandFill::kOnes &&
                        workload.weight_fill == OperandFill::kOnes,
                    "exact emulation requires the all-ones extraction "
                    "workload, got "
                        << workload.ToString());
  SAFFIRE_CHECK_MSG(fault.kind == FaultKind::kStuckAt &&
                        fault.polarity == StuckPolarity::kStuckAt1 &&
                        fault.signal == MacSignal::kAdderOut,
                    "exact emulation covers stuck-at-1 adder faults, got "
                        << fault.ToString());
  // All intermediate partial sums of the ones-workload are bounded by the
  // per-tile reduction depth; the stuck bit must sit strictly above them so
  // every pass contributes exactly 2^bit.
  const TileGrid grid =
      Driver::PlanTiles(workload.GemmM(), workload.GemmN(), workload.GemmK(),
                        spec_.accel, spec_.dataflow);
  const std::int64_t max_partial = grid.tile_k();
  SAFFIRE_CHECK_MSG((std::int64_t{1} << fault.bit) > max_partial,
                    "bit " << fault.bit << " collides with partial sums up to "
                           << max_partial);

  PerturbSpec perturb;
  perturb.mode = PerturbMode::kAddDelta;
  perturb.delta = static_cast<std::int32_t>(
      grid.k_tiles() * (std::int64_t{1} << fault.bit));
  return Inject(golden, workload, fault, perturb);
}

CrossValidation NetworkFi::CrossValidate(const WorkloadSpec& workload,
                                         const FaultSpec& fault) const {
  FiRunner runner(spec_.accel);
  const RunResult golden = runner.RunGolden(workload, spec_.dataflow);
  const RunResult simulated =
      runner.RunFaulty(workload, spec_.dataflow, {&fault, 1});
  const CorruptionMap observed =
      ExtractCorruption(golden.output, simulated.output);

  const Int32Tensor emulated =
      EmulateExtraction(golden.output, workload, fault);
  const CorruptionMap predicted = ExtractCorruption(golden.output, emulated);

  CrossValidation validation;
  validation.coords_match = observed.corrupted == predicted.corrupted;
  validation.values_match = emulated == simulated.output;
  validation.predicted_count = predicted.count();
  validation.observed_count = observed.count();
  validation.simulated_pe_steps = simulated.pe_steps;
  return validation;
}

FaultSpec SampleAdderFault(const ArrayConfig& config, Rng& rng, int bit_lo,
                           int bit_hi) {
  config.Validate();
  SAFFIRE_CHECK_MSG(bit_lo >= 0 && bit_lo <= bit_hi &&
                        bit_hi < config.acc_bits,
                    "bit range [" << bit_lo << ", " << bit_hi << "]");
  FaultSpec fault;
  fault.kind = FaultKind::kStuckAt;
  fault.pe.row = static_cast<std::int32_t>(rng.UniformInt(0, config.rows - 1));
  fault.pe.col = static_cast<std::int32_t>(rng.UniformInt(0, config.cols - 1));
  fault.signal = MacSignal::kAdderOut;
  fault.bit = static_cast<int>(rng.UniformInt(bit_lo, bit_hi));
  fault.polarity = rng.Bernoulli(0.5) ? StuckPolarity::kStuckAt1
                                      : StuckPolarity::kStuckAt0;
  return fault;
}

Int32Tensor InjectNaiveBaseline(const Int32Tensor& golden, Rng& rng,
                                int bit) {
  SAFFIRE_CHECK_MSG(golden.rank() == 2, "golden " << golden.ShapeString());
  SAFFIRE_CHECK_MSG(bit >= 0 && bit < 32, "bit=" << bit);
  Int32Tensor faulty = golden;
  const std::int64_t index = rng.UniformInt(0, golden.size() - 1);
  faulty.flat(index) = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(faulty.flat(index)) ^
      (std::uint32_t{1} << bit));
  return faulty;
}

namespace {

NetworkFi MakeInjector(const AccelConfig& accel, Dataflow dataflow) {
  AppFiSpec spec;
  spec.accel = accel;
  spec.dataflow = dataflow;
  return NetworkFi(spec);
}

}  // namespace

Int32Tensor InjectPattern(const Int32Tensor& golden,
                          const WorkloadSpec& workload,
                          const AccelConfig& accel, Dataflow dataflow,
                          const FaultSpec& fault,
                          const PerturbSpec& perturb) {
  return MakeInjector(accel, dataflow).Inject(golden, workload, fault,
                                              perturb);
}

Int32Tensor EmulateExtractionFault(const Int32Tensor& golden,
                                   const WorkloadSpec& workload,
                                   const AccelConfig& accel, Dataflow dataflow,
                                   const FaultSpec& fault) {
  return MakeInjector(accel, dataflow)
      .EmulateExtraction(golden, workload, fault);
}

CrossValidation CrossValidate(const WorkloadSpec& workload,
                              const AccelConfig& accel, Dataflow dataflow,
                              const FaultSpec& fault) {
  return MakeInjector(accel, dataflow).CrossValidate(workload, fault);
}

}  // namespace saffire
