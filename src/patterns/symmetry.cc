#include "patterns/symmetry.h"

#include <map>

namespace saffire {

std::vector<SiteEquivalenceClass> PartitionFaultSites(
    const WorkloadSpec& workload, const AccelConfig& accel,
    Dataflow dataflow) {
  workload.Validate();
  accel.Validate();

  std::vector<SiteEquivalenceClass> classes;
  // Key: the predicted coordinate set. A map keyed by the coords vector
  // keeps lookup simple; class count is small (≤ num_pes).
  std::map<std::vector<MatrixCoord>, std::size_t> index_by_reach;

  for (const PeCoord site : AllPeCoords(accel.array)) {
    const FaultSpec fault =
        StuckAtAdder(site, /*bit=*/8, StuckPolarity::kStuckAt1);
    PredictedPattern prediction =
        PredictPattern(workload, accel, dataflow, fault);
    const auto it = index_by_reach.find(prediction.coords);
    if (it == index_by_reach.end()) {
      index_by_reach.emplace(prediction.coords, classes.size());
      SiteEquivalenceClass equivalence;
      equivalence.representative = site;
      equivalence.members = {site};
      equivalence.prediction = std::move(prediction);
      classes.push_back(std::move(equivalence));
    } else {
      classes[it->second].members.push_back(site);
    }
  }
  return classes;
}

double SymmetryReductionFactor(const WorkloadSpec& workload,
                               const AccelConfig& accel, Dataflow dataflow) {
  const auto classes = PartitionFaultSites(workload, accel, dataflow);
  const auto num_pes = static_cast<double>(accel.array.num_pes());
  return (num_pes - static_cast<double>(classes.size())) / num_pes;
}

}  // namespace saffire
