#include "patterns/symmetry.h"

#include <algorithm>
#include <map>
#include <utility>

namespace saffire {

namespace {

// The reach translated to its bounding-box origin: congruent reaches (same
// shape, anywhere in the output matrix) normalize to the same vector.
// PredictPattern emits coords in a deterministic order, which translation
// preserves, so equal shapes compare equal element-wise.
std::vector<MatrixCoord> NormalizedReach(
    const std::vector<MatrixCoord>& coords) {
  if (coords.empty()) return {};
  std::int64_t min_row = coords.front().row;
  std::int64_t min_col = coords.front().col;
  for (const MatrixCoord coord : coords) {
    min_row = std::min(min_row, coord.row);
    min_col = std::min(min_col, coord.col);
  }
  std::vector<MatrixCoord> shape;
  shape.reserve(coords.size());
  for (const MatrixCoord coord : coords) {
    shape.push_back({coord.row - min_row, coord.col - min_col});
  }
  return shape;
}

}  // namespace

std::vector<SiteEquivalenceClass> PartitionFaultSites(
    const std::vector<PeCoord>& sites, const FaultSpec& prototype,
    const WorkloadSpec& workload, const AccelConfig& accel, Dataflow dataflow,
    PredictionCache* cache) {
  workload.Validate();
  accel.Validate();

  std::vector<SiteEquivalenceClass> classes;
  // Key: the site's array row plus the origin-normalized reach — the
  // record-identity partition, deliberately finer than the reach-identity
  // one below. Two same-row sites with congruent reaches are related by a
  // column translation, and under column-invariant operand fills a column
  // translation maps the whole faulted computation onto itself: the fault
  // site sees the same golden value sequence, so activations, deltas, and
  // pattern classes coincide field for field. Same-COLUMN sites (identical
  // raw reach) are NOT record-equivalent in general even though the paper's
  // class label matches: e.g. a WS adder_out fault sees the running partial
  // sum, whose value depends on the array row, so whether a given stuck bit
  // ever fires differs row to row.
  std::map<std::pair<std::int32_t, std::vector<MatrixCoord>>, std::size_t>
      index_by_key;

  for (const PeCoord site : sites) {
    FaultSpec fault = prototype;
    fault.pe = site;
    PredictedPattern prediction =
        cache != nullptr ? cache->Lookup(fault)
                         : PredictPattern(workload, accel, dataflow, fault);
    const auto key = std::pair(site.row, NormalizedReach(prediction.coords));
    const auto it = index_by_key.find(key);
    if (it == index_by_key.end()) {
      index_by_key.emplace(key, classes.size());
      SiteEquivalenceClass equivalence;
      equivalence.representative = site;
      equivalence.members = {site};
      equivalence.prediction = std::move(prediction);
      classes.push_back(std::move(equivalence));
    } else {
      classes[it->second].members.push_back(site);
    }
  }
  return classes;
}

std::vector<SiteEquivalenceClass> PartitionFaultSites(
    const WorkloadSpec& workload, const AccelConfig& accel,
    Dataflow dataflow) {
  workload.Validate();
  accel.Validate();

  // The paper-level partition: identical raw reach, the "fault pattern
  // class remains the same irrespective of the position of the faulty MAC
  // unit" observation made precise. Under WS/IS each column collapses; OS
  // keeps every site distinct because each owns different output coords.
  std::vector<SiteEquivalenceClass> classes;
  std::map<std::vector<MatrixCoord>, std::size_t> index_by_reach;
  const FaultSpec prototype =
      StuckAtAdder(/*pe=*/{0, 0}, /*bit=*/8, StuckPolarity::kStuckAt1);
  for (const PeCoord site : AllPeCoords(accel.array)) {
    FaultSpec fault = prototype;
    fault.pe = site;
    PredictedPattern prediction =
        PredictPattern(workload, accel, dataflow, fault);
    const auto it = index_by_reach.find(prediction.coords);
    if (it == index_by_reach.end()) {
      index_by_reach.emplace(prediction.coords, classes.size());
      SiteEquivalenceClass equivalence;
      equivalence.representative = site;
      equivalence.members = {site};
      equivalence.prediction = std::move(prediction);
      classes.push_back(std::move(equivalence));
    } else {
      classes[it->second].members.push_back(site);
    }
  }
  return classes;
}

double SymmetryReductionFactor(const WorkloadSpec& workload,
                               const AccelConfig& accel, Dataflow dataflow) {
  const auto classes = PartitionFaultSites(workload, accel, dataflow);
  const auto num_pes = static_cast<double>(accel.array.num_pes());
  return (num_pes - static_cast<double>(classes.size())) / num_pes;
}

}  // namespace saffire
