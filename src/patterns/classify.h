// Spatial classification of fault patterns — the paper's taxonomy
// (Sec. IV, Discussion): single-element, single-element multi-tile,
// single-column, single-column multi-tile, single-channel, and
// multi-channel corruption, plus the masked and unrecognized outcomes the
// framework needs for exhaustive campaigns.
#pragma once

#include <cstdint>
#include <string>

#include "accel/driver.h"
#include "fi/workload.h"
#include "patterns/corruption.h"

namespace saffire {

enum class PatternClass : std::uint8_t {
  kMasked = 0,                 // no output corruption observed
  kSingleElement,              // Fig. 3b  — one corrupted element
  kSingleElementMultiTile,     // Fig. 3d  — same element offset in every tile
  kSingleRow,                  // the row analogue (paper Sec. III-B list)
  kSingleRowMultiTile,
  kSingleColumn,               // Fig. 3a  — one fully corrupted column
  kSingleColumnMultiTile,      // Fig. 3c  — same column offset across tiles
  kSingleChannel,              // Fig. 3e  — one conv output channel
  kMultiChannel,               // Fig. 3f/g — several conv output channels
  kOther,                      // corruption with none of the above shapes
};

inline constexpr int kNumPatternClasses = 10;

std::string ToString(PatternClass pattern);

// Parses exactly the ToString names; throws std::invalid_argument naming
// the accepted values otherwise.
PatternClass ParsePatternClass(const std::string& name);

// Everything the classifier needs to know about how the output matrix was
// produced: its dimensions, the output-space tile extents (from the
// driver's plan), and — for convolutions — how matrix columns map to output
// channels.
struct ClassifyContext {
  OpType op = OpType::kGemm;
  std::int64_t rows = 0;       // output matrix dimensions
  std::int64_t cols = 0;
  std::int64_t tile_rows = 0;  // output tile extents (tile_m × tile_n)
  std::int64_t tile_cols = 0;
  // Valid when op == kConv:
  ConvParams conv;
  ConvLowering lowering = ConvLowering::kShiftGemm;

  bool untiled() const { return rows <= tile_rows && cols <= tile_cols; }
};

// Builds the context from the workload, the accelerator configuration, and
// the dataflow (which fixes the driver's tile plan).
ClassifyContext MakeClassifyContext(const WorkloadSpec& workload,
                                    const AccelConfig& accel,
                                    Dataflow dataflow);

// Output channel fed by matrix column `col` under the context's lowering.
std::int64_t ColumnToChannel(std::int64_t col, const ClassifyContext& context);

// Classifies a corruption map. Deterministic and total: every map gets
// exactly one class.
PatternClass Classify(const CorruptionMap& map, const ClassifyContext& context);

}  // namespace saffire
