#include "patterns/classify.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/shift_gemm.h"

namespace saffire {

namespace {

constexpr const char* kPatternClassNames[] = {
    "masked",
    "single-element",
    "single-element-multi-tile",
    "single-row",
    "single-row-multi-tile",
    "single-column",
    "single-column-multi-tile",
    "single-channel",
    "multi-channel",
    "other"};
static_assert(std::size(kPatternClassNames) == kNumPatternClasses);

}  // namespace

std::string ToString(PatternClass pattern) {
  const auto index = static_cast<std::size_t>(pattern);
  SAFFIRE_ASSERT_MSG(index < std::size(kPatternClassNames),
                     "pattern class " << static_cast<int>(index));
  return kPatternClassNames[index];
}

PatternClass ParsePatternClass(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kPatternClassNames); ++i) {
    if (name == kPatternClassNames[i]) return static_cast<PatternClass>(i);
  }
  SAFFIRE_CHECK_MSG(false,
                    "unknown pattern class '"
                        << name
                        << "' (expected masked|single-element|"
                           "single-element-multi-tile|single-row|"
                           "single-row-multi-tile|single-column|"
                           "single-column-multi-tile|single-channel|"
                           "multi-channel|other)");
}

ClassifyContext MakeClassifyContext(const WorkloadSpec& workload,
                                    const AccelConfig& accel,
                                    Dataflow dataflow) {
  workload.Validate();
  const TileGrid grid = Driver::PlanTiles(
      workload.GemmM(), workload.GemmN(), workload.GemmK(), accel, dataflow);
  ClassifyContext context;
  context.op = workload.op;
  context.rows = workload.GemmM();
  context.cols = workload.GemmN();
  context.tile_rows = grid.tile_m();
  context.tile_cols = grid.tile_n();
  context.conv = workload.conv;
  context.lowering = workload.lowering;
  return context;
}

std::int64_t ColumnToChannel(std::int64_t col,
                             const ClassifyContext& context) {
  SAFFIRE_CHECK_MSG(context.op == OpType::kConv, "not a convolution context");
  if (context.lowering == ConvLowering::kShiftGemm) {
    return ShiftGemmColToChannel(col, context.conv);
  }
  SAFFIRE_CHECK_MSG(col >= 0 && col < context.conv.out_channels,
                    "col=" << col);
  return col;  // im2col: one column per output channel
}

namespace {

// Sorted vector -> number of distinct values, in place. Classification runs
// once per experiment record, so these paths avoid node-based containers:
// sort + adjacent-unique over small vectors is several times cheaper than
// building a std::set per call.
template <typename T>
std::int64_t CountDistinct(std::vector<T>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return static_cast<std::int64_t>(values.size());
}

// Per-value run lengths of a sorted vector: (value, hits) pairs.
struct Run {
  std::int64_t value = 0;
  std::int64_t hits = 0;
};

std::vector<Run> RunLengths(std::vector<std::int64_t>& values) {
  std::sort(values.begin(), values.end());
  std::vector<Run> runs;
  for (std::size_t i = 0; i < values.size();) {
    std::size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    runs.push_back(Run{values[i], static_cast<std::int64_t>(j - i)});
    i = j;
  }
  return runs;
}

// GEMM-space classification shared by both operation types.
PatternClass ClassifyGemm(const CorruptionMap& map,
                          const ClassifyContext& context) {
  std::vector<MatrixCoord> tiles;
  std::vector<MatrixCoord> offsets;
  tiles.reserve(map.corrupted.size());
  offsets.reserve(map.corrupted.size());
  std::vector<std::int64_t> cols;
  std::vector<std::int64_t> rows_hit;
  cols.reserve(map.corrupted.size());
  rows_hit.reserve(map.corrupted.size());
  for (const MatrixCoord& coord : map.corrupted) {
    tiles.push_back(MatrixCoord{coord.row / context.tile_rows,
                                coord.col / context.tile_cols});
    offsets.push_back(MatrixCoord{coord.row % context.tile_rows,
                                  coord.col % context.tile_cols});
    cols.push_back(coord.col);
    rows_hit.push_back(coord.row);
  }
  const std::int64_t distinct_tiles = CountDistinct(tiles);
  const std::int64_t distinct_offsets = CountDistinct(offsets);

  // Single element, possibly replicated once per tile at the same offset.
  if (distinct_offsets == 1 && map.count() == distinct_tiles) {
    return distinct_tiles == 1 ? PatternClass::kSingleElement
                               : PatternClass::kSingleElementMultiTile;
  }

  // Fully corrupted columns sharing one within-tile column offset.
  const std::vector<Run> col_runs = RunLengths(cols);
  bool all_columns_full = true;
  bool one_col_offset = true;
  std::int64_t col_offset = -1;
  for (const Run& run : col_runs) {
    if (run.hits != map.rows) {
      all_columns_full = false;
      break;
    }
    const std::int64_t offset = run.value % context.tile_cols;
    if (col_offset < 0) {
      col_offset = offset;
    } else if (offset != col_offset) {
      one_col_offset = false;
    }
  }
  if (all_columns_full &&
      map.count() ==
          map.rows * static_cast<std::int64_t>(col_runs.size()) &&
      one_col_offset) {
    return distinct_tiles == 1 ? PatternClass::kSingleColumn
                               : PatternClass::kSingleColumnMultiTile;
  }

  // Fully corrupted rows sharing one within-tile row offset.
  const std::vector<Run> row_runs = RunLengths(rows_hit);
  bool all_rows_full = true;
  bool one_row_offset = true;
  std::int64_t row_offset = -1;
  for (const Run& run : row_runs) {
    if (run.hits != map.cols) {
      all_rows_full = false;
      break;
    }
    const std::int64_t offset = run.value % context.tile_rows;
    if (row_offset < 0) {
      row_offset = offset;
    } else if (offset != row_offset) {
      one_row_offset = false;
    }
  }
  if (all_rows_full &&
      map.count() ==
          map.cols * static_cast<std::int64_t>(row_runs.size()) &&
      one_row_offset) {
    return distinct_tiles == 1 ? PatternClass::kSingleRow
                               : PatternClass::kSingleRowMultiTile;
  }

  return PatternClass::kOther;
}

}  // namespace

PatternClass Classify(const CorruptionMap& map,
                      const ClassifyContext& context) {
  SAFFIRE_CHECK_MSG(context.rows > 0 && context.cols > 0 &&
                        context.tile_rows > 0 && context.tile_cols > 0,
                    "uninitialized ClassifyContext");
  SAFFIRE_CHECK_MSG(map.rows == context.rows && map.cols == context.cols,
                    "map " << map.rows << "x" << map.cols << " vs context "
                           << context.rows << "x" << context.cols);
  if (map.empty()) return PatternClass::kMasked;

  if (context.op == OpType::kConv) {
    // Channel classification: every corrupted column fully corrupted →
    // whole output channels are affected (a partially corrupted column
    // cannot be a channel pattern and falls through to the generic rules).
    std::vector<std::int64_t> cols;
    cols.reserve(map.corrupted.size());
    for (const MatrixCoord& coord : map.corrupted) cols.push_back(coord.col);
    bool all_full = true;
    std::vector<std::int64_t> channels;
    for (const Run& run : RunLengths(cols)) {
      if (run.hits != map.rows) {
        all_full = false;
        break;
      }
      channels.push_back(ColumnToChannel(run.value, context));
    }
    if (all_full) {
      return CountDistinct(channels) == 1 ? PatternClass::kSingleChannel
                                          : PatternClass::kMultiChannel;
    }
  }

  return ClassifyGemm(map, context);
}

}  // namespace saffire
