#include "patterns/classify.h"

#include <set>

#include "common/check.h"
#include "tensor/shift_gemm.h"

namespace saffire {

std::string ToString(PatternClass pattern) {
  switch (pattern) {
    case PatternClass::kMasked:
      return "masked";
    case PatternClass::kSingleElement:
      return "single-element";
    case PatternClass::kSingleElementMultiTile:
      return "single-element-multi-tile";
    case PatternClass::kSingleRow:
      return "single-row";
    case PatternClass::kSingleRowMultiTile:
      return "single-row-multi-tile";
    case PatternClass::kSingleColumn:
      return "single-column";
    case PatternClass::kSingleColumnMultiTile:
      return "single-column-multi-tile";
    case PatternClass::kSingleChannel:
      return "single-channel";
    case PatternClass::kMultiChannel:
      return "multi-channel";
    case PatternClass::kOther:
      return "other";
  }
  return "unknown";
}

ClassifyContext MakeClassifyContext(const WorkloadSpec& workload,
                                    const AccelConfig& accel,
                                    Dataflow dataflow) {
  workload.Validate();
  const TileGrid grid = Driver::PlanTiles(
      workload.GemmM(), workload.GemmN(), workload.GemmK(), accel, dataflow);
  ClassifyContext context;
  context.op = workload.op;
  context.rows = workload.GemmM();
  context.cols = workload.GemmN();
  context.tile_rows = grid.tile_m();
  context.tile_cols = grid.tile_n();
  context.conv = workload.conv;
  context.lowering = workload.lowering;
  return context;
}

std::int64_t ColumnToChannel(std::int64_t col,
                             const ClassifyContext& context) {
  SAFFIRE_CHECK_MSG(context.op == OpType::kConv, "not a convolution context");
  if (context.lowering == ConvLowering::kShiftGemm) {
    return ShiftGemmColToChannel(col, context.conv);
  }
  SAFFIRE_CHECK_MSG(col >= 0 && col < context.conv.out_channels,
                    "col=" << col);
  return col;  // im2col: one column per output channel
}

namespace {

// GEMM-space classification shared by both operation types.
PatternClass ClassifyGemm(const CorruptionMap& map,
                          const ClassifyContext& context) {
  const auto tile_of = [&](const MatrixCoord& coord) {
    return MatrixCoord{coord.row / context.tile_rows,
                       coord.col / context.tile_cols};
  };
  const auto offset_of = [&](const MatrixCoord& coord) {
    return MatrixCoord{coord.row % context.tile_rows,
                       coord.col % context.tile_cols};
  };

  std::set<MatrixCoord> tiles;
  std::set<MatrixCoord> offsets;
  for (const MatrixCoord& coord : map.corrupted) {
    tiles.insert(tile_of(coord));
    offsets.insert(offset_of(coord));
  }

  // Single element, possibly replicated once per tile at the same offset.
  if (offsets.size() == 1 &&
      map.count() == static_cast<std::int64_t>(tiles.size())) {
    return tiles.size() == 1 ? PatternClass::kSingleElement
                             : PatternClass::kSingleElementMultiTile;
  }

  // Fully corrupted columns sharing one within-tile column offset.
  const auto distinct_cols = map.DistinctCols();
  bool all_columns_full = true;
  std::set<std::int64_t> col_offsets;
  for (const std::int64_t col : distinct_cols) {
    if (!map.ColumnFullyCorrupted(col)) {
      all_columns_full = false;
      break;
    }
    col_offsets.insert(col % context.tile_cols);
  }
  if (all_columns_full &&
      map.count() == map.rows * static_cast<std::int64_t>(
                                    distinct_cols.size()) &&
      col_offsets.size() == 1) {
    return tiles.size() == 1 ? PatternClass::kSingleColumn
                             : PatternClass::kSingleColumnMultiTile;
  }

  // Fully corrupted rows sharing one within-tile row offset.
  const auto distinct_rows = map.DistinctRows();
  bool all_rows_full = true;
  std::set<std::int64_t> row_offsets;
  for (const std::int64_t row : distinct_rows) {
    std::int64_t hits = 0;
    for (const MatrixCoord& coord : map.corrupted) {
      if (coord.row == row) ++hits;
    }
    if (hits != map.cols) {
      all_rows_full = false;
      break;
    }
    row_offsets.insert(row % context.tile_rows);
  }
  if (all_rows_full &&
      map.count() ==
          map.cols * static_cast<std::int64_t>(distinct_rows.size()) &&
      row_offsets.size() == 1) {
    return tiles.size() == 1 ? PatternClass::kSingleRow
                             : PatternClass::kSingleRowMultiTile;
  }

  return PatternClass::kOther;
}

}  // namespace

PatternClass Classify(const CorruptionMap& map,
                      const ClassifyContext& context) {
  SAFFIRE_CHECK_MSG(context.rows > 0 && context.cols > 0 &&
                        context.tile_rows > 0 && context.tile_cols > 0,
                    "uninitialized ClassifyContext");
  SAFFIRE_CHECK_MSG(map.rows == context.rows && map.cols == context.cols,
                    "map " << map.rows << "x" << map.cols << " vs context "
                           << context.rows << "x" << context.cols);
  if (map.empty()) return PatternClass::kMasked;

  if (context.op == OpType::kConv) {
    // Channel classification: every corrupted column fully corrupted →
    // whole output channels are affected (a partially corrupted column
    // cannot be a channel pattern and falls through to the generic rules).
    bool all_full = true;
    std::set<std::int64_t> channels;
    for (const std::int64_t col : map.DistinctCols()) {
      if (!map.ColumnFullyCorrupted(col)) {
        all_full = false;
        break;
      }
      channels.insert(ColumnToChannel(col, context));
    }
    if (all_full) {
      return channels.size() == 1 ? PatternClass::kSingleChannel
                                  : PatternClass::kMultiChannel;
    }
  }

  return ClassifyGemm(map, context);
}

}  // namespace saffire
