#include "patterns/predictor.h"

#include <utility>

#include "common/check.h"

namespace saffire {
namespace {

void CheckPredictableSignal(const FaultSpec& fault) {
  // The reach model covers every signal whose corruption stays inside the
  // PE's own MAC contribution: the adder output (the paper's site), the
  // multiplier output, and the weight operand all feed exactly the same
  // output coordinates. The forwarding signals (act/south) spread to
  // downstream PEs and need simulation.
  SAFFIRE_CHECK_MSG(fault.signal == MacSignal::kAdderOut ||
                        fault.signal == MacSignal::kMulOut ||
                        fault.signal == MacSignal::kWeightOperand,
                    "analytical prediction covers adder_out/mul_out/"
                    "weight_operand faults; got "
                        << ToString(fault.signal));
}

// The classify context derived from an already-computed tile plan — the
// same fields MakeClassifyContext fills, without re-planning the tiles.
ClassifyContext ContextFromGrid(const WorkloadSpec& workload,
                                const TileGrid& grid) {
  ClassifyContext context;
  context.op = workload.op;
  context.rows = workload.GemmM();
  context.cols = workload.GemmN();
  context.tile_rows = grid.tile_m();
  context.tile_cols = grid.tile_n();
  context.conv = workload.conv;
  context.lowering = workload.lowering;
  return context;
}

TileGrid PlanValidated(const WorkloadSpec& workload, const AccelConfig& accel,
                       Dataflow dataflow) {
  workload.Validate();
  return Driver::PlanTiles(workload.GemmM(), workload.GemmN(),
                           workload.GemmK(), accel, dataflow);
}

// The prediction itself, against a pre-computed tile plan and classify
// context. Inputs are assumed validated.
PredictedPattern MakePrediction(const WorkloadSpec& workload,
                                Dataflow dataflow, const FaultSpec& fault,
                                const TileGrid& grid,
                                const ClassifyContext& context) {
  const std::int64_t m = workload.GemmM();
  const std::int64_t n = workload.GemmN();

  PredictedPattern prediction;
  switch (dataflow) {
    case Dataflow::kWeightStationary: {
      // The fault sits on the partial-sum chain of array column c_pe, so
      // it reaches column c_pe of every column-tile — all rows (the whole
      // activation stream passes through), invisible to K-tiling (same
      // coordinates every pass).
      std::vector<std::int64_t> cols;
      for (std::int64_t ni = 0; ni < grid.n_tiles(); ++ni) {
        if (fault.pe.col < grid.TileCols(ni)) {
          cols.push_back(grid.ColStart(ni) + fault.pe.col);
        }
      }
      for (std::int64_t row = 0; row < m; ++row) {
        for (const std::int64_t col : cols) {
          prediction.coords.push_back(MatrixCoord{row, col});
        }
      }
      break;
    }
    case Dataflow::kInputStationary: {
      // IS runs the WS datapath on the transposed problem, so array column
      // c_pe owns output *row* c_pe of every row-tile — all columns.
      for (std::int64_t mi = 0; mi < grid.m_tiles(); ++mi) {
        if (fault.pe.col >= grid.TileRows(mi)) continue;
        const std::int64_t row = grid.RowStart(mi) + fault.pe.col;
        for (std::int64_t col = 0; col < n; ++col) {
          prediction.coords.push_back(MatrixCoord{row, col});
        }
      }
      break;
    }
    case Dataflow::kOutputStationary: {
      // The fault owns output element (r_pe, c_pe) of every output tile.
      for (std::int64_t mi = 0; mi < grid.m_tiles(); ++mi) {
        if (fault.pe.row >= grid.TileRows(mi)) continue;
        for (std::int64_t ni = 0; ni < grid.n_tiles(); ++ni) {
          if (fault.pe.col >= grid.TileCols(ni)) continue;
          prediction.coords.push_back(
              MatrixCoord{grid.RowStart(mi) + fault.pe.row,
                          grid.ColStart(ni) + fault.pe.col});
        }
      }
      break;
    }
  }

  // The predicted class is, by definition, what the classifier says about
  // the predicted reach — keeping predictor and classifier consistent even
  // on degenerate geometries (a corrupted column of a 1-row output is the
  // same set as a corrupted element).
  CorruptionMap reach;
  reach.rows = m;
  reach.cols = n;
  reach.corrupted = prediction.coords;
  prediction.pattern = Classify(reach, context);
  return prediction;
}

}  // namespace

PredictedPattern PredictPattern(const WorkloadSpec& workload,
                                const AccelConfig& accel, Dataflow dataflow,
                                const FaultSpec& fault) {
  fault.Validate(accel.array);
  CheckPredictableSignal(fault);
  const TileGrid grid = PlanValidated(workload, accel, dataflow);
  return MakePrediction(workload, dataflow, fault, grid,
                        ContextFromGrid(workload, grid));
}

PredictionCache::PredictionCache(const WorkloadSpec& workload,
                                 const AccelConfig& accel, Dataflow dataflow)
    : workload_(workload),
      accel_(accel),
      dataflow_(dataflow),
      grid_(PlanValidated(workload_, accel_, dataflow_)),
      context_(ContextFromGrid(workload_, grid_)) {}

const PredictedPattern& PredictionCache::Lookup(const FaultSpec& fault) {
  CheckPredictableSignal(fault);
  // Canonical key: under WS/IS the reach depends only on the array column,
  // so the row is collapsed — a full-array campaign shares one entry per
  // column instead of one per PE.
  PeCoord key = fault.pe;
  if (dataflow_ != Dataflow::kOutputStationary) key.row = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    FaultSpec canonical = fault;
    canonical.pe = key;
    canonical.Validate(accel_.array);
    it = memo_
             .emplace(key, MakePrediction(workload_, dataflow_, canonical,
                                          grid_, context_))
             .first;
  }
  return it->second;
}

}  // namespace saffire
