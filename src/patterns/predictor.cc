#include "patterns/predictor.h"

#include "common/check.h"

namespace saffire {

PredictedPattern PredictPattern(const WorkloadSpec& workload,
                                const AccelConfig& accel, Dataflow dataflow,
                                const FaultSpec& fault) {
  workload.Validate();
  fault.Validate(accel.array);
  // The reach model covers every signal whose corruption stays inside the
  // PE's own MAC contribution: the adder output (the paper's site), the
  // multiplier output, and the weight operand all feed exactly the same
  // output coordinates. The forwarding signals (act/south) spread to
  // downstream PEs and need simulation.
  SAFFIRE_CHECK_MSG(fault.signal == MacSignal::kAdderOut ||
                        fault.signal == MacSignal::kMulOut ||
                        fault.signal == MacSignal::kWeightOperand,
                    "analytical prediction covers adder_out/mul_out/"
                    "weight_operand faults; got "
                        << ToString(fault.signal));

  const std::int64_t m = workload.GemmM();
  const std::int64_t n = workload.GemmN();
  const std::int64_t k = workload.GemmK();
  const TileGrid grid = Driver::PlanTiles(m, n, k, accel, dataflow);

  PredictedPattern prediction;
  switch (dataflow) {
    case Dataflow::kWeightStationary: {
      // The fault sits on the partial-sum chain of array column c_pe, so
      // it reaches column c_pe of every column-tile — all rows (the whole
      // activation stream passes through), invisible to K-tiling (same
      // coordinates every pass).
      std::vector<std::int64_t> cols;
      for (std::int64_t ni = 0; ni < grid.n_tiles(); ++ni) {
        if (fault.pe.col < grid.TileCols(ni)) {
          cols.push_back(grid.ColStart(ni) + fault.pe.col);
        }
      }
      for (std::int64_t row = 0; row < m; ++row) {
        for (const std::int64_t col : cols) {
          prediction.coords.push_back(MatrixCoord{row, col});
        }
      }
      break;
    }
    case Dataflow::kInputStationary: {
      // IS runs the WS datapath on the transposed problem, so array column
      // c_pe owns output *row* c_pe of every row-tile — all columns.
      for (std::int64_t mi = 0; mi < grid.m_tiles(); ++mi) {
        if (fault.pe.col >= grid.TileRows(mi)) continue;
        const std::int64_t row = grid.RowStart(mi) + fault.pe.col;
        for (std::int64_t col = 0; col < n; ++col) {
          prediction.coords.push_back(MatrixCoord{row, col});
        }
      }
      break;
    }
    case Dataflow::kOutputStationary: {
      // The fault owns output element (r_pe, c_pe) of every output tile.
      for (std::int64_t mi = 0; mi < grid.m_tiles(); ++mi) {
        if (fault.pe.row >= grid.TileRows(mi)) continue;
        for (std::int64_t ni = 0; ni < grid.n_tiles(); ++ni) {
          if (fault.pe.col >= grid.TileCols(ni)) continue;
          prediction.coords.push_back(
              MatrixCoord{grid.RowStart(mi) + fault.pe.row,
                          grid.ColStart(ni) + fault.pe.col});
        }
      }
      break;
    }
  }

  // The predicted class is, by definition, what the classifier says about
  // the predicted reach — keeping predictor and classifier consistent even
  // on degenerate geometries (a corrupted column of a 1-row output is the
  // same set as a corrupted element).
  CorruptionMap reach;
  reach.rows = m;
  reach.cols = n;
  reach.corrupted = prediction.coords;
  prediction.pattern =
      Classify(reach, MakeClassifyContext(workload, accel, dataflow));
  return prediction;
}

}  // namespace saffire
