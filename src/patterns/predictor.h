// Analytical fault-pattern predictor.
//
// The paper's central observation (Sec. IV, Discussion): "the fault
// patterns are deterministic, i.e., given the hardware configurations, type
// of operation and its properties, and the location of the stuck-at fault,
// we can predict the fault patterns, after taking into account the tiling
// effect and flattening of convolutions into GEMM." This module is that
// prediction, in closed form, for stuck-at faults on the adder output (the
// paper's injection site):
//
//   WS: a fault in PE(r, c) sits on the partial-sum chain of array column
//       c, so it can corrupt exactly the output columns
//       {c + tile_n·t : t < n_tiles, in range} — every row of them (the
//       whole stream passes through the column), replicated across K-tiles
//       invisibly (same coordinates).
//   OS: a fault in PE(r, c) owns output element (r, c) of each output tile:
//       {(r + tile_m·i, c + tile_n·j) : in range}.
//
// The predicted coordinate set is the *reach* of the fault: the observed
// corruption is always a subset (value-level masking can hide elements —
// Challenge 2), and equals it exactly for the paper's all-ones extraction
// workload with a fault that flips at least one produced bit. This is
// precisely the contract an application-level injector (TensorFI / LLTFI)
// needs to re-create the pattern without RTL simulation.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "fi/fault.h"
#include "fi/workload.h"
#include "patterns/classify.h"
#include "tensor/tiling.h"

namespace saffire {

struct PredictedPattern {
  PatternClass pattern = PatternClass::kMasked;
  // Predicted corrupted coordinates in the GEMM-view output, sorted
  // row-major. Empty iff pattern == kMasked (a structurally masked site:
  // the faulty PE never touches sampled output).
  std::vector<MatrixCoord> coords;

  bool operator==(const PredictedPattern&) const = default;
};

// Predicts the pattern for a stuck-at or transient fault on kAdderOut (the
// paper's site), kMulOut, or kWeightOperand — the three signals whose
// corruption stays within the PE's own MAC contribution and therefore
// share one reach. Throws std::invalid_argument for the forwarding signals
// (kActForward/kSouthForward), whose corruption spreads to downstream PEs
// and requires simulation.
PredictedPattern PredictPattern(const WorkloadSpec& workload,
                                const AccelConfig& accel, Dataflow dataflow,
                                const FaultSpec& fault);

// Per-campaign prediction reuse. A covered fault's reach depends only on
// its PE coordinate — and under WS/IS only on the array *column* — so a
// campaign over hundreds of sites revisits a handful of distinct patterns.
// The cache hoists the validation, the tile plan, and the classify context
// out of the per-record path (PredictPattern re-derives all three per call)
// and memoizes predictions under the canonical coordinate.
//
// Thread-safe: executor workers running chunks of one campaign share the
// cache through PreparedCampaign. Returned references stay valid for the
// cache's lifetime (node-based storage).
class PredictionCache {
 public:
  PredictionCache(const WorkloadSpec& workload, const AccelConfig& accel,
                  Dataflow dataflow);

  // The prediction for `fault` (same contract as PredictPattern), computed
  // on first use of its canonical coordinate.
  const PredictedPattern& Lookup(const FaultSpec& fault);

 private:
  WorkloadSpec workload_;
  AccelConfig accel_;
  Dataflow dataflow_;
  TileGrid grid_;
  ClassifyContext context_;
  std::mutex mutex_;
  std::map<PeCoord, PredictedPattern> memo_;
};

}  // namespace saffire
