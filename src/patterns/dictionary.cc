#include "patterns/dictionary.h"

#include <cctype>
#include <sstream>

#include "common/check.h"

namespace saffire {

bool FaultDictionary::operator==(const FaultDictionary& other) const {
  return workload_name == other.workload_name && dataflow == other.dataflow &&
         array_rows == other.array_rows && array_cols == other.array_cols &&
         gemm_m == other.gemm_m && gemm_k == other.gemm_k &&
         gemm_n == other.gemm_n && classes == other.classes;
}

FaultDictionary BuildFaultDictionary(const WorkloadSpec& workload,
                                     const AccelConfig& accel,
                                     Dataflow dataflow) {
  workload.Validate();
  accel.Validate();
  FaultDictionary dictionary;
  dictionary.workload_name =
      workload.name.empty() ? workload.ToString() : workload.name;
  dictionary.dataflow = dataflow;
  dictionary.array_rows = accel.array.rows;
  dictionary.array_cols = accel.array.cols;
  dictionary.gemm_m = workload.GemmM();
  dictionary.gemm_k = workload.GemmK();
  dictionary.gemm_n = workload.GemmN();
  dictionary.classes = PartitionFaultSites(workload, accel, dataflow);
  return dictionary;
}

namespace {

void EmitString(std::ostringstream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    SAFFIRE_CHECK_MSG(c != '"' && c != '\\' &&
                          static_cast<unsigned char>(c) >= 0x20,
                      "unsupported character in dictionary string");
    os << c;
  }
  os << '"';
}

template <typename Pair>
void EmitPairArray(std::ostringstream& os, const std::vector<Pair>& pairs,
                   auto first, auto second) {
  os << '[';
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i != 0) os << ',';
    os << '[' << first(pairs[i]) << ',' << second(pairs[i]) << ']';
  }
  os << ']';
}

// --- Minimal parser for the emitted subset ---------------------------------

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    SAFFIRE_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }

  void Expect(char c) {
    SAFFIRE_CHECK_MSG(Peek() == c, "expected '" << c << "' at offset "
                                                << pos_ << ", got '"
                                                << text_[pos_] << "'");
    ++pos_;
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      SAFFIRE_CHECK_MSG(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      SAFFIRE_CHECK_MSG(c != '\\', "escapes unsupported");
      out.push_back(c);
    }
    return out;
  }

  std::int64_t ParseInt() {
    SkipWhitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    SAFFIRE_CHECK_MSG(pos_ > start && (text_[start] != '-' || pos_ > start + 1),
                      "expected integer at offset " << start);
    return std::stoll(std::string(text_.substr(start, pos_ - start)));
  }

  // Parses the key of an object member and positions after the ':'.
  std::string ParseKey() {
    const std::string key = ParseString();
    Expect(':');
    return key;
  }

  void ExpectEnd() {
    SkipWhitespace();
    SAFFIRE_CHECK_MSG(pos_ == text_.size(),
                      "trailing characters at offset " << pos_);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

template <typename Element>
std::vector<Element> ParsePairArray(JsonCursor& cursor, auto make) {
  std::vector<Element> out;
  cursor.Expect('[');
  if (cursor.Consume(']')) return out;
  do {
    cursor.Expect('[');
    const std::int64_t first = cursor.ParseInt();
    cursor.Expect(',');
    const std::int64_t second = cursor.ParseInt();
    cursor.Expect(']');
    out.push_back(make(first, second));
  } while (cursor.Consume(','));
  cursor.Expect(']');
  return out;
}

PatternClass PatternClassFromString(const std::string& name) {
  for (int i = 0; i < kNumPatternClasses; ++i) {
    const auto pattern = static_cast<PatternClass>(i);
    if (ToString(pattern) == name) return pattern;
  }
  SAFFIRE_CHECK_MSG(false, "unknown pattern class '" << name << "'");
}

}  // namespace

std::string ToJson(const FaultDictionary& dictionary) {
  std::ostringstream os;
  os << "{\"workload\":";
  EmitString(os, dictionary.workload_name);
  os << ",\"dataflow\":";
  EmitString(os, ToString(dictionary.dataflow));
  os << ",\"array\":{\"rows\":" << dictionary.array_rows
     << ",\"cols\":" << dictionary.array_cols << "}"
     << ",\"gemm\":{\"m\":" << dictionary.gemm_m
     << ",\"k\":" << dictionary.gemm_k << ",\"n\":" << dictionary.gemm_n
     << "},\"classes\":[";
  for (std::size_t i = 0; i < dictionary.classes.size(); ++i) {
    const SiteEquivalenceClass& equivalence = dictionary.classes[i];
    if (i != 0) os << ',';
    os << "{\"pattern\":";
    EmitString(os, ToString(equivalence.prediction.pattern));
    os << ",\"sites\":";
    EmitPairArray(os, equivalence.members,
                  [](const PeCoord& pe) { return pe.row; },
                  [](const PeCoord& pe) { return pe.col; });
    os << ",\"coords\":";
    EmitPairArray(os, equivalence.prediction.coords,
                  [](const MatrixCoord& coord) { return coord.row; },
                  [](const MatrixCoord& coord) { return coord.col; });
    os << '}';
  }
  os << "]}";
  return os.str();
}

FaultDictionary FaultDictionaryFromJson(std::string_view json) {
  JsonCursor cursor(json);
  FaultDictionary dictionary;
  cursor.Expect('{');
  do {
    const std::string key = cursor.ParseKey();
    if (key == "workload") {
      dictionary.workload_name = cursor.ParseString();
    } else if (key == "dataflow") {
      dictionary.dataflow = DataflowFromString(cursor.ParseString());
    } else if (key == "array") {
      cursor.Expect('{');
      do {
        const std::string field = cursor.ParseKey();
        const auto value = static_cast<std::int32_t>(cursor.ParseInt());
        if (field == "rows") {
          dictionary.array_rows = value;
        } else if (field == "cols") {
          dictionary.array_cols = value;
        } else {
          SAFFIRE_CHECK_MSG(false, "unknown array field '" << field << "'");
        }
      } while (cursor.Consume(','));
      cursor.Expect('}');
    } else if (key == "gemm") {
      cursor.Expect('{');
      do {
        const std::string field = cursor.ParseKey();
        const std::int64_t value = cursor.ParseInt();
        if (field == "m") {
          dictionary.gemm_m = value;
        } else if (field == "k") {
          dictionary.gemm_k = value;
        } else if (field == "n") {
          dictionary.gemm_n = value;
        } else {
          SAFFIRE_CHECK_MSG(false, "unknown gemm field '" << field << "'");
        }
      } while (cursor.Consume(','));
      cursor.Expect('}');
    } else if (key == "classes") {
      cursor.Expect('[');
      if (!cursor.Consume(']')) {
        do {
          SiteEquivalenceClass equivalence;
          cursor.Expect('{');
          do {
            const std::string field = cursor.ParseKey();
            if (field == "pattern") {
              equivalence.prediction.pattern =
                  PatternClassFromString(cursor.ParseString());
            } else if (field == "sites") {
              equivalence.members = ParsePairArray<PeCoord>(
                  cursor, [](std::int64_t row, std::int64_t col) {
                    return PeCoord{static_cast<std::int32_t>(row),
                                   static_cast<std::int32_t>(col)};
                  });
            } else if (field == "coords") {
              equivalence.prediction.coords = ParsePairArray<MatrixCoord>(
                  cursor, [](std::int64_t row, std::int64_t col) {
                    return MatrixCoord{row, col};
                  });
            } else {
              SAFFIRE_CHECK_MSG(false, "unknown class field '" << field
                                                               << "'");
            }
          } while (cursor.Consume(','));
          cursor.Expect('}');
          SAFFIRE_CHECK_MSG(!equivalence.members.empty(),
                            "class without sites");
          equivalence.representative = equivalence.members.front();
          dictionary.classes.push_back(std::move(equivalence));
        } while (cursor.Consume(','));
        cursor.Expect(']');
      }
    } else {
      SAFFIRE_CHECK_MSG(false, "unknown dictionary field '" << key << "'");
    }
  } while (cursor.Consume(','));
  cursor.Expect('}');
  cursor.ExpectEnd();
  return dictionary;
}

}  // namespace saffire
