// Fault-injection campaign orchestration: the paper's evaluation
// methodology (Sec. III-B) — for each configuration, inject a stuck-at
// fault into every MAC unit of the array (256 experiments on the 16×16
// array), contrast each faulty output with the golden run, classify the
// corruption, and cross-validate against the analytical predictor.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fi/runner.h"
#include "patterns/classify.h"
#include "patterns/predictor.h"

namespace saffire {

struct CampaignConfig {
  AccelConfig accel;
  Dataflow dataflow = Dataflow::kWeightStationary;
  WorkloadSpec workload;

  // Fault parameters applied at every site. For kTransientFlip campaigns
  // (the Rech et al. comparison) each experiment strikes once, at a cycle
  // drawn uniformly from the operation's execution window (seeded).
  FaultKind kind = FaultKind::kStuckAt;
  MacSignal signal = MacSignal::kAdderOut;
  int bit = 8;
  StuckPolarity polarity = StuckPolarity::kStuckAt1;

  // Site selection: 0 = exhaustive over all PEs (the paper's 256-campaign
  // methodology); otherwise a uniform sample without replacement.
  std::int64_t max_sites = 0;
  std::uint64_t seed = 1;

  std::string ToString() const;
};

struct ExperimentRecord {
  FaultSpec fault;
  PatternClass observed = PatternClass::kMasked;
  PatternClass predicted = PatternClass::kMasked;
  // Observed corruption coordinates equal the predicted reach exactly.
  bool prediction_exact = false;
  // Observed corruption is contained in the predicted reach (must always
  // hold; a violation would falsify the paper's determinism claim).
  bool observed_within_predicted = false;
  std::int64_t corrupted_count = 0;
  std::int64_t max_abs_delta = 0;
  std::uint64_t fault_activations = 0;
  std::int64_t cycles = 0;
};

struct CampaignResult {
  CampaignConfig config;
  std::int64_t golden_cycles = 0;
  std::uint64_t golden_pe_steps = 0;
  std::vector<ExperimentRecord> records;

  // Experiments per observed pattern class.
  std::map<PatternClass, std::int64_t> Histogram() const;
  std::int64_t MaskedCount() const;
  // The dominant (most frequent) non-masked class, or kMasked if none.
  PatternClass DominantClass() const;
  // Fraction of experiments whose predicted class matches the observed one.
  double ClassAgreement() const;
  // Fraction whose corrupted coordinate set matches the prediction exactly.
  double ExactAgreement() const;
  // Fraction with observed ⊆ predicted (soundness of the reach model).
  double ContainmentRate() const;
  // True if every non-masked experiment observed the same class — the
  // paper's "same fault pattern class regardless of the MAC unit" claim.
  bool SingleClassProperty() const;
};

// Runs the campaign. Per-experiment work: one faulty run, one diff, one
// classification, one prediction; the golden run happens once.
CampaignResult RunCampaign(const CampaignConfig& config);

// Same result, computed across `threads` workers, each owning a private
// simulator instance (experiments are independent: a permanent fault only
// lives for its own run). Record order and content match RunCampaign
// bit-for-bit; `threads <= 1` falls back to the serial path.
CampaignResult RunCampaignParallel(const CampaignConfig& config, int threads);

// Enumerates the fault sites the campaign will use (exhaustive or sampled),
// in execution order.
std::vector<PeCoord> CampaignSites(const CampaignConfig& config);

}  // namespace saffire
