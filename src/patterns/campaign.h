// Fault-injection campaign orchestration: the paper's evaluation
// methodology (Sec. III-B) — for each configuration, inject a stuck-at
// fault into every MAC unit of the array (256 experiments on the 16×16
// array), contrast each faulty output with the golden run, classify the
// corruption, and cross-validate against the analytical predictor.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fi/golden_cache.h"
#include "fi/runner.h"
#include "patterns/classify.h"
#include "patterns/predictor.h"

namespace saffire {

// How each faulty experiment is executed. All engines produce bit-identical
// records (tests/fi/differential_test.cc, tests/patterns tier); they differ
// only in cost, which the pe_steps / pe_steps_skipped counters quantify.
enum class CampaignEngine : std::uint8_t {
  // Fault-cone differential runs (fi/cone.h) against a cached golden trace;
  // fast-path kernels for unhooked columns. The default.
  kDifferential = 0,
  // Full faulty runs (every PE simulated) with fast-path kernels and the
  // golden-run cache.
  kFull = 1,
  // Everything through the instrumented reference Step() loop, golden runs
  // recomputed per campaign — the pre-optimization behavior, kept as the
  // baseline the other engines are validated against.
  kReference = 2,
  // Lane-parallel batched replay (systolic/lane_grid.h): up to
  // CampaignConfig::batch_lanes experiments per array pass, each lane
  // restricted to its fault cone, diffed against the cached golden trace.
  kBatch = 3,
  // Algebraic short circuit (fi/predicted.cc): when the campaign's
  // (kind, signal) combination is provably exact — permanent stuck-at
  // faults on the PE-local kWeightOperand / kMulOut / kAdderOut signals,
  // see PredictedEngineExact — records are emitted from the closed-form
  // corruption delta without stepping the array at all. Everything else
  // (transients, forwarding signals) is residue and silently runs through
  // the kBatch replay, so the engine is safe to request unconditionally.
  kPredicted = 4,
};

std::string ToString(CampaignEngine engine);

// Parses the names produced by ToString ("differential"/"full"/"reference"/
// "batch"/"predicted" — one shared table, exact round-trip); throws
// std::invalid_argument on unknown names.
CampaignEngine ParseCampaignEngine(const std::string& name);

// Alias of ParseCampaignEngine, kept for existing callers.
CampaignEngine CampaignEngineFromString(const std::string& name);

// std::thread::hardware_concurrency(), clamped to the [1, 256] range
// RunCampaignParallel accepts — the default worker count for benches/CLIs.
int DefaultCampaignThreads();

struct CampaignConfig {
  AccelConfig accel;
  Dataflow dataflow = Dataflow::kWeightStationary;
  WorkloadSpec workload;

  // Fault parameters applied at every site. For kTransientFlip campaigns
  // (the Rech et al. comparison) each experiment strikes once, at a cycle
  // drawn uniformly from the operation's execution window (seeded).
  FaultKind kind = FaultKind::kStuckAt;
  MacSignal signal = MacSignal::kAdderOut;
  int bit = 8;
  StuckPolarity polarity = StuckPolarity::kStuckAt1;

  // Site selection: 0 = exhaustive over all PEs (the paper's 256-campaign
  // methodology); otherwise a uniform sample without replacement.
  std::int64_t max_sites = 0;
  std::uint64_t seed = 1;

  CampaignEngine engine = CampaignEngine::kDifferential;

  // Experiments packed per array pass under kBatch and for the kPredicted
  // residue (ignored by the other engines). Affects cost only, never
  // results: record streams are bit-identical for any lane count, including
  // partial final batches. Excluded from the golden-cache key and the sweep
  // JSON campaign key.
  std::int64_t batch_lanes = 256;

  std::string ToString() const;
};

// True for the grouped engines — kBatch and kPredicted — whose experiments
// run through RunPreparedBatch in batch_lanes-sized groups (and which the
// executor chunk-aligns accordingly).
bool GroupedCampaignEngine(CampaignEngine engine);

// True when CampaignEngine::kPredicted can serve `config` in closed form:
// permanent stuck-at campaigns on the PE-local kWeightOperand / kMulOut /
// kAdderOut signals. False means the whole campaign is residue (a campaign's
// kind/signal are uniform across its experiments) and kPredicted runs it
// through the kBatch replay instead.
bool PredictedEngineExact(const CampaignConfig& config);

struct ExperimentRecord {
  // The injected fault. For transient campaigns, at_cycle holds the strike
  // offset relative to the faulty run's start (not the simulator's global
  // clock), so records are identical regardless of which simulator ran the
  // experiment — the property checkpoint merging relies on.
  FaultSpec fault;
  PatternClass observed = PatternClass::kMasked;
  PatternClass predicted = PatternClass::kMasked;
  // Observed corruption coordinates equal the predicted reach exactly.
  bool prediction_exact = false;
  // Observed corruption is contained in the predicted reach (must always
  // hold; a violation would falsify the paper's determinism claim).
  bool observed_within_predicted = false;
  std::int64_t corrupted_count = 0;
  std::int64_t max_abs_delta = 0;
  std::uint64_t fault_activations = 0;
  std::int64_t cycles = 0;
  // Cost of this faulty run: PE evaluations executed, and evaluations the
  // differential engine replayed from the golden trace instead of
  // recomputing (0 under kFull/kReference). Their sum is engine-invariant.
  std::uint64_t pe_steps = 0;
  std::uint64_t pe_steps_skipped = 0;

  bool operator==(const ExperimentRecord&) const = default;
};

struct CampaignResult {
  CampaignConfig config;
  std::int64_t golden_cycles = 0;
  std::uint64_t golden_pe_steps = 0;
  // Whether the golden run was served from the process-wide GoldenRunCache
  // (always false under CampaignEngine::kReference).
  bool golden_cache_hit = false;
  // Batch-engine occupancy (0 under the per-experiment engines):
  // lanes_filled counts occupied lanes across all batches and batches_run
  // the array passes, so lanes_filled / (batches_run · batch_lanes) is the
  // lane-occupancy ratio.
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;
  std::vector<ExperimentRecord> records;

  // Aggregate faulty-run cost across all experiments.
  std::uint64_t FaultyPeSteps() const;
  std::uint64_t FaultyPeStepsSkipped() const;

  // Experiments per observed pattern class.
  std::map<PatternClass, std::int64_t> Histogram() const;
  std::int64_t MaskedCount() const;
  // The dominant (most frequent) non-masked class, or kMasked if none.
  PatternClass DominantClass() const;
  // Fraction of experiments whose predicted class matches the observed one.
  double ClassAgreement() const;
  // Fraction whose corrupted coordinate set matches the prediction exactly.
  double ExactAgreement() const;
  // Fraction with observed ⊆ predicted (soundness of the reach model).
  double ContainmentRate() const;
  // True if every non-masked experiment observed the same class — the
  // paper's "same fault pattern class regardless of the MAC unit" claim.
  bool SingleClassProperty() const;
};

// Runs the campaign. Per-experiment work: one faulty run, one diff, one
// classification, one prediction; the golden run happens once. Defined in
// the service layer (service/service.cc) as a thin wrapper over the
// RunSweep facade (service/run.h) — link saffire_service to use it.
// Deprecated: new code should build a plan (SingleCampaignPlan) and call
// RunSweep with the sink it actually wants.
[[deprecated(
    "build a plan with SingleCampaignPlan and call RunSweep "
    "(service/run.h)")]]
CampaignResult RunCampaign(const CampaignConfig& config);

// Same result, computed across up to `threads` pool workers (experiments
// are independent: a permanent fault only lives for its own run). Record
// order and content match RunCampaign bit-for-bit regardless of the thread
// count. Also defined in service/service.cc. Deprecated alongside
// RunCampaign — RunSweep with RunOptions::max_parallelism replaces it.
[[deprecated(
    "call RunSweep (service/run.h) with RunOptions::max_parallelism")]]
CampaignResult RunCampaignParallel(const CampaignConfig& config, int threads);

// The self-contained single-threaded implementation: one locally
// constructed simulator, experiments executed in site order on the calling
// thread. This is the ground-truth baseline the service layer is validated
// against (tests/service/executor_test.cc) — it must never depend on the
// executor.
CampaignResult RunCampaignSerial(const CampaignConfig& config);

// Enumerates the fault sites the campaign will use (exhaustive or sampled),
// in execution order.
std::vector<PeCoord> CampaignSites(const CampaignConfig& config);

// --- Execution primitives ---------------------------------------------------
// Everything below is shared by RunCampaignSerial and the campaign service
// (service/executor.h): both paths run the exact same per-experiment code,
// which is what makes their results bit-identical by construction.

// The per-campaign state that is computed once and then shared (read-only)
// by every experiment: the golden run, the classification context, the site
// list, and the pre-sampled fault of each experiment.
struct PreparedCampaign {
  CampaignConfig config;
  // Non-null except under kReference; keeps the cached golden entry (and
  // its trace) alive for the experiments.
  std::shared_ptr<const GoldenRunCache::Entry> cached;
  // The recomputed golden run under kReference (unused otherwise).
  RunResult reference_golden;
  bool golden_cache_hit = false;
  ClassifyContext context;
  // Non-null when the campaign's signal is covered by the analytical
  // predictor: the shared prediction memo (a covered fault's reach depends
  // only on its PE coordinate, so the campaign's records share a handful of
  // distinct patterns instead of re-deriving one per experiment).
  std::shared_ptr<PredictionCache> predictions;
  std::vector<PeCoord> sites;
  // faults[i] is experiment i; for transient campaigns at_cycle holds the
  // strike offset relative to the faulty run's start (pre-sampled so any
  // execution order yields identical experiments).
  std::vector<FaultSpec> faults;

  const RunResult& golden() const {
    return cached != nullptr ? cached->result : reference_golden;
  }
  // Non-null iff the campaign runs on a trace-replaying engine
  // (differential, batch, or predicted — whose closed form is validated
  // against the trace's checkpoint structure and whose residue replays it).
  const GoldenTrace* trace() const {
    return cached != nullptr &&
                   (config.engine == CampaignEngine::kDifferential ||
                    config.engine == CampaignEngine::kBatch ||
                    config.engine == CampaignEngine::kPredicted)
               ? &cached->trace
               : nullptr;
  }
};

// Validates the configuration, performs (or fetches from the process-wide
// GoldenRunCache) the golden run, enumerates sites, and pre-samples faults.
// Under kReference the golden run needs a simulator: `golden_runner`
// supplies one (the service passes its worker-cached instance); pass
// nullptr to construct a transient one.
PreparedCampaign PrepareCampaign(const CampaignConfig& config,
                                 FiRunner* golden_runner = nullptr);

// Runs experiment `index` of a prepared campaign on `runner`, which must
// have been constructed with prepared.config.accel. Configures the engine
// tier on the runner, so simulators may be freely reused across campaigns
// with different engines.
ExperimentRecord RunPreparedExperiment(const PreparedCampaign& prepared,
                                       FiRunner& runner, std::size_t index);

// Same, but on an explicit engine instead of prepared.config.engine — the
// graceful-degradation path (service/resilience.h): a campaign demoted down
// the predicted→batch→differential→full ladder re-runs experiments on the
// fallback engine without re-preparing. `engine` must be reachable from the
// configured one: kDifferential needs the cached golden trace (absent under
// kReference preparation), kBatch and kPredicted require config.engine to
// be one of the two grouped engines. All reachable engines produce
// bit-identical records.
ExperimentRecord RunPreparedExperimentWithEngine(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t index,
    CampaignEngine engine);

// Runs experiments [begin, end) of a prepared kBatch/kPredicted campaign as
// one group — the closed form (FiRunner::RunFaultyPredicted) under
// kPredicted when PredictedEngineExact holds, the lane-parallel replay
// (FiRunner::RunFaultyBatch) otherwise — and returns their records in site
// order, bit-identical to running each index through RunPreparedExperiment.
// The campaign's canonical batch boundaries are the consecutive
// batch_lanes-sized groups of the site order; callers that want
// engine-invariant lanes_filled/batches_run stats must split on them.
std::vector<ExperimentRecord> RunPreparedBatch(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t begin,
    std::size_t end);

// Same, but on an explicit engine (kBatch or kPredicted) instead of
// prepared.config.engine — the demotion path: a kPredicted campaign demoted
// to kBatch re-runs its groups on the replay without re-preparing.
std::vector<ExperimentRecord> RunPreparedBatch(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t begin,
    std::size_t end, CampaignEngine engine);

}  // namespace saffire
