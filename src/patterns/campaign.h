// Fault-injection campaign orchestration: the paper's evaluation
// methodology (Sec. III-B) — for each configuration, inject a stuck-at
// fault into every MAC unit of the array (256 experiments on the 16×16
// array), contrast each faulty output with the golden run, classify the
// corruption, and cross-validate against the analytical predictor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fi/golden_cache.h"
#include "fi/runner.h"
#include "patterns/classify.h"
#include "patterns/predictor.h"

namespace saffire {

// How each faulty experiment is executed. All engines produce bit-identical
// records (tests/fi/differential_test.cc, tests/patterns tier); they differ
// only in cost, which the pe_steps / pe_steps_skipped counters quantify.
enum class CampaignEngine : std::uint8_t {
  // Fault-cone differential runs (fi/cone.h) against a cached golden trace;
  // fast-path kernels for unhooked columns. The default.
  kDifferential = 0,
  // Full faulty runs (every PE simulated) with fast-path kernels and the
  // golden-run cache.
  kFull = 1,
  // Everything through the instrumented reference Step() loop, golden runs
  // recomputed per campaign — the pre-optimization behavior, kept as the
  // baseline the other engines are validated against.
  kReference = 2,
  // Lane-parallel batched replay (systolic/lane_grid.h): up to
  // CampaignConfig::batch_lanes experiments per array pass, each lane
  // restricted to its fault cone, diffed against the cached golden trace.
  kBatch = 3,
  // Algebraic short circuit (fi/predicted.cc): when the campaign's
  // (kind, signal) combination is provably exact — permanent stuck-at
  // faults on the PE-local kWeightOperand / kMulOut / kAdderOut signals,
  // see PredictedEngineExact — records are emitted from the closed-form
  // corruption delta without stepping the array at all. Everything else
  // (transients, forwarding signals) is residue and silently runs through
  // the kBatch replay, so the engine is safe to request unconditionally.
  kPredicted = 4,
};

std::string ToString(CampaignEngine engine);

// Parses the names produced by ToString ("differential"/"full"/"reference"/
// "batch"/"predicted" — one shared table, exact round-trip); throws
// std::invalid_argument on unknown names.
CampaignEngine ParseCampaignEngine(const std::string& name);

// Alias of ParseCampaignEngine, kept for existing callers.
CampaignEngine CampaignEngineFromString(const std::string& name);

// std::thread::hardware_concurrency(), clamped to the [1, 256] range the
// campaign executor accepts — the default worker count for benches/CLIs.
int DefaultCampaignThreads();

struct CampaignConfig {
  AccelConfig accel;
  Dataflow dataflow = Dataflow::kWeightStationary;
  WorkloadSpec workload;

  // Fault parameters applied at every site. For kTransientFlip campaigns
  // (the Rech et al. comparison) each experiment strikes once, at a cycle
  // drawn uniformly from the operation's execution window (seeded).
  FaultKind kind = FaultKind::kStuckAt;
  MacSignal signal = MacSignal::kAdderOut;
  int bit = 8;
  StuckPolarity polarity = StuckPolarity::kStuckAt1;

  // Site selection: 0 = exhaustive over all PEs (the paper's 256-campaign
  // methodology); otherwise a uniform sample without replacement.
  std::int64_t max_sites = 0;
  std::uint64_t seed = 1;

  CampaignEngine engine = CampaignEngine::kDifferential;

  // Experiments packed per array pass under kBatch and for the kPredicted
  // residue (ignored by the other engines). Affects cost only, never
  // results: record streams are bit-identical for any lane count, including
  // partial final batches. Excluded from the golden-cache key and the sweep
  // JSON campaign key.
  std::int64_t batch_lanes = 256;

  // Symmetry-aware deduplication (patterns/symmetry.h): when true and the
  // campaign is eligible (SymmetryEligibleCampaign — permanent stuck-at
  // faults on a predictor-covered signal, all-ones operand fills), only one
  // representative per site-equivalence class is simulated; member records
  // are synthesized from the representative's with the fault coordinate
  // rewritten. Under WS/IS this shrinks the paper's 256-site campaign to
  // ≤ 16 simulations; under OS every site is its own class, so the flag is
  // a no-op, as it is for ineligible campaigns (random / near-zero fills
  // make data-dependent fields like fault_activations and max_abs_delta
  // row-AND-column-dependent, so member synthesis would not be exact —
  // those campaigns simulate every site). For eligible campaigns the
  // synthesis is provably byte-identical to a full run (the
  // engine-equivalence test matrix gates it), with
  // ResilienceOptions::selfcheck_rate sampling replicated records as
  // defense-in-depth. Excluded from the campaign key: a symmetry run's
  // records match a full run's by contract.
  bool symmetry = false;

  std::string ToString() const;
};

// True for the grouped engines — kBatch and kPredicted — whose experiments
// run through RunPreparedBatch in batch_lanes-sized groups (and which the
// executor chunk-aligns accordingly).
bool GroupedCampaignEngine(CampaignEngine engine);

// True when CampaignEngine::kPredicted can serve `config` in closed form:
// permanent stuck-at campaigns on the PE-local kWeightOperand / kMulOut /
// kAdderOut signals. False means the whole campaign is residue (a campaign's
// kind/signal are uniform across its experiments) and kPredicted runs it
// through the kBatch replay instead.
bool PredictedEngineExact(const CampaignConfig& config);

// True when CampaignConfig::symmetry can apply to `config`: permanent
// stuck-at campaigns on a predictor-covered signal (kAdderOut / kMulOut /
// kWeightOperand), where the site-equivalence partition is defined by the
// predicted reach, AND all-ones operand fills, where a column translation
// maps the faulted computation onto itself so member synthesis is exact
// field-for-field. Transients (per-site strike cycles), forwarding signals
// (no closed-form reach), and random / near-zero fills (column-variant
// data, so fault_activations / max_abs_delta / even the observed class can
// differ between class members) always simulate every site.
bool SymmetryEligibleCampaign(const CampaignConfig& config);

struct ExperimentRecord {
  // The injected fault. For transient campaigns, at_cycle holds the strike
  // offset relative to the faulty run's start (not the simulator's global
  // clock), so records are identical regardless of which simulator ran the
  // experiment — the property checkpoint merging relies on.
  FaultSpec fault;
  PatternClass observed = PatternClass::kMasked;
  PatternClass predicted = PatternClass::kMasked;
  // Observed corruption coordinates equal the predicted reach exactly.
  bool prediction_exact = false;
  // Observed corruption is contained in the predicted reach (must always
  // hold; a violation would falsify the paper's determinism claim).
  bool observed_within_predicted = false;
  std::int64_t corrupted_count = 0;
  std::int64_t max_abs_delta = 0;
  std::uint64_t fault_activations = 0;
  std::int64_t cycles = 0;
  // Cost of this faulty run: PE evaluations executed, and evaluations the
  // differential engine replayed from the golden trace instead of
  // recomputing (0 under kFull/kReference). Their sum is engine-invariant.
  std::uint64_t pe_steps = 0;
  std::uint64_t pe_steps_skipped = 0;

  bool operator==(const ExperimentRecord&) const = default;
};

struct CampaignResult {
  CampaignConfig config;
  std::int64_t golden_cycles = 0;
  std::uint64_t golden_pe_steps = 0;
  // Whether the golden run was served from the process-wide GoldenRunCache
  // (always false under CampaignEngine::kReference).
  bool golden_cache_hit = false;
  // Batch-engine occupancy (0 under the per-experiment engines):
  // lanes_filled counts occupied lanes across all batches and batches_run
  // the array passes, so lanes_filled / (batches_run · batch_lanes) is the
  // lane-occupancy ratio.
  std::uint64_t lanes_filled = 0;
  std::uint64_t batches_run = 0;
  std::vector<ExperimentRecord> records;

  // Aggregate faulty-run cost across all experiments.
  std::uint64_t FaultyPeSteps() const;
  std::uint64_t FaultyPeStepsSkipped() const;

  // Experiments per observed pattern class.
  std::map<PatternClass, std::int64_t> Histogram() const;
  std::int64_t MaskedCount() const;
  // The dominant (most frequent) non-masked class, or kMasked if none.
  PatternClass DominantClass() const;
  // Fraction of experiments whose predicted class matches the observed one.
  double ClassAgreement() const;
  // Fraction whose corrupted coordinate set matches the prediction exactly.
  double ExactAgreement() const;
  // Fraction with observed ⊆ predicted (soundness of the reach model).
  double ContainmentRate() const;
  // True if every non-masked experiment observed the same class — the
  // paper's "same fault pattern class regardless of the MAC unit" claim.
  bool SingleClassProperty() const;
};

// The self-contained single-threaded implementation: one locally
// constructed simulator, experiments executed in site order on the calling
// thread. This is the ground-truth baseline the service layer is validated
// against (tests/service/executor_test.cc) — it must never depend on the
// executor.
CampaignResult RunCampaignSerial(const CampaignConfig& config);

// Enumerates the fault sites the campaign will use (exhaustive or sampled),
// in execution order.
std::vector<PeCoord> CampaignSites(const CampaignConfig& config);

// --- Execution primitives ---------------------------------------------------
// Everything below is shared by RunCampaignSerial and the campaign service
// (service/executor.h): both paths run the exact same per-experiment code,
// which is what makes their results bit-identical by construction.

// Shared per-campaign store of simulated representative records under
// CampaignConfig::symmetry, with compute-once semantics: the first worker
// to ask for a representative owns its simulation, and every other worker
// waits for that result instead of duplicating the run — which keeps each
// representative's array pass unique and the lanes_filled occupancy total
// schedule-independent. A self-check mismatch Disable()s the memo, after
// which every experiment simulates directly — the symmetry analogue of
// engine demotion, and equally sticky for the campaign's remainder.
class SymmetryMemo {
 public:
  // Looks the representative up, waiting out another worker's in-flight
  // simulation if there is one. True: *record holds the (possibly just
  // published) record. False: the caller now owns the computation and must
  // follow up with exactly one Fulfill() (success) or Abandon() (the
  // simulation threw — a waiter then retries and takes over ownership).
  // Callers acquiring several representatives must acquire them in
  // ascending order; that single global order is what makes concurrent
  // owners deadlock-free (every wait edge points to a larger index).
  bool AcquireOrOwn(std::size_t representative, ExperimentRecord* record);
  // Publishes an owned representative's record and wakes waiters.
  void Fulfill(std::size_t representative, ExperimentRecord record);
  // Releases an owned representative without a record.
  void Abandon(std::size_t representative);

  // Permanently stops synthesis for this campaign (selfcheck mismatch —
  // the class cannot be trusted). Records already synthesized stand, like
  // records produced before an engine demotion. Waiters inside
  // AcquireOrOwn wake and simulate directly.
  void Disable();
  bool disabled() const {
    return disabled_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  // nullopt marks an in-flight computation some worker owns.
  std::map<std::size_t, std::optional<ExperimentRecord>> records_;
  std::atomic<bool> disabled_{false};
};

// The per-campaign state that is computed once and then shared (read-only)
// by every experiment: the golden run, the classification context, the site
// list, and the pre-sampled fault of each experiment.
struct PreparedCampaign {
  CampaignConfig config;
  // Non-null except under kReference; keeps the cached golden entry (and
  // its trace) alive for the experiments.
  std::shared_ptr<const GoldenRunCache::Entry> cached;
  // The recomputed golden run under kReference (unused otherwise).
  RunResult reference_golden;
  bool golden_cache_hit = false;
  ClassifyContext context;
  // Non-null when the campaign's signal is covered by the analytical
  // predictor: the shared prediction memo (a covered fault's reach depends
  // only on its PE coordinate, so the campaign's records share a handful of
  // distinct patterns instead of re-deriving one per experiment).
  std::shared_ptr<PredictionCache> predictions;
  std::vector<PeCoord> sites;
  // faults[i] is experiment i; for transient campaigns at_cycle holds the
  // strike offset relative to the faulty run's start (pre-sampled so any
  // execution order yields identical experiments).
  std::vector<FaultSpec> faults;

  // Symmetry plan (CampaignConfig::symmetry): symmetry_rep_of[i] is the
  // experiment index of experiment i's class representative (the earliest
  // equivalent site in campaign order; i itself when i is a
  // representative). Empty, with symmetry_memo null, when symmetry is off,
  // the campaign is ineligible, or the partition found no duplicate sites
  // (e.g. OS dataflow) — in which case execution is exactly the
  // non-symmetry path. symmetry_classes always holds the number of distinct
  // classes (== sites.size() when no plan is active) for reporting.
  std::vector<std::size_t> symmetry_rep_of;
  std::shared_ptr<SymmetryMemo> symmetry_memo;
  std::size_t symmetry_classes = 0;

  // Whether member records are currently being synthesized from
  // representatives (a selfcheck mismatch Disable()s the memo mid-flight).
  bool SymmetryActive() const {
    return symmetry_memo != nullptr && !symmetry_memo->disabled();
  }

  const RunResult& golden() const {
    return cached != nullptr ? cached->result : reference_golden;
  }
  // Non-null iff the campaign runs on a trace-replaying engine
  // (differential, batch, or predicted — whose closed form is validated
  // against the trace's checkpoint structure and whose residue replays it).
  const GoldenTrace* trace() const {
    return cached != nullptr &&
                   (config.engine == CampaignEngine::kDifferential ||
                    config.engine == CampaignEngine::kBatch ||
                    config.engine == CampaignEngine::kPredicted)
               ? &cached->trace
               : nullptr;
  }
};

// Validates the configuration, performs (or fetches from the process-wide
// GoldenRunCache) the golden run, enumerates sites, and pre-samples faults.
// Under kReference the golden run needs a simulator: `golden_runner`
// supplies one (the service passes its worker-cached instance); pass
// nullptr to construct a transient one.
PreparedCampaign PrepareCampaign(const CampaignConfig& config,
                                 FiRunner* golden_runner = nullptr);

// Runs experiment `index` of a prepared campaign on `runner`, which must
// have been constructed with prepared.config.accel. Configures the engine
// tier on the runner, so simulators may be freely reused across campaigns
// with different engines.
ExperimentRecord RunPreparedExperiment(const PreparedCampaign& prepared,
                                       FiRunner& runner, std::size_t index);

// Same, but on an explicit engine instead of prepared.config.engine — the
// graceful-degradation path (service/resilience.h): a campaign demoted down
// the predicted→batch→differential→full ladder re-runs experiments on the
// fallback engine without re-preparing. `engine` must be reachable from the
// configured one: kDifferential needs the cached golden trace (absent under
// kReference preparation), kBatch and kPredicted require config.engine to
// be one of the two grouped engines. All reachable engines produce
// bit-identical records.
ExperimentRecord RunPreparedExperimentWithEngine(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t index,
    CampaignEngine engine);

// Like RunPreparedExperimentWithEngine but always simulates `index` itself,
// bypassing the symmetry memo entirely (no lookup, no store). This is the
// ground truth the self-check machinery compares synthesized records
// against — it must not be able to return a synthesized record.
ExperimentRecord RunPreparedExperimentDirect(const PreparedCampaign& prepared,
                                             FiRunner& runner,
                                             std::size_t index,
                                             CampaignEngine engine);

// Runs experiments [begin, end) of a prepared kBatch/kPredicted campaign as
// one group — the closed form (FiRunner::RunFaultyPredicted) under
// kPredicted when PredictedEngineExact holds, the lane-parallel replay
// (FiRunner::RunFaultyBatch) otherwise — and returns their records in site
// order, bit-identical to running each index through RunPreparedExperiment.
// The campaign's canonical batch boundaries are the consecutive
// batch_lanes-sized groups of the site order; callers that want
// engine-invariant lanes_filled/batches_run stats must split on them.
std::vector<ExperimentRecord> RunPreparedBatch(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t begin,
    std::size_t end);

// Same, but on an explicit engine (kBatch or kPredicted) instead of
// prepared.config.engine — the demotion path: a kPredicted campaign demoted
// to kBatch re-runs its groups on the replay without re-preparing.
// `lanes_simulated`, when non-null, receives the number of experiments the
// group actually simulated: end − begin normally, but under an active
// symmetry plan only the distinct representatives this call claimed from
// the memo — the occupancy figure lanes_filled/batches_run should count.
// The memo's compute-once latch keeps each representative's simulation
// unique, so the lanes_filled total over a campaign is schedule-invariant
// (= classes touched); which batch a representative is *attributed* to —
// and therefore batches_run — can still differ between serial and parallel
// symmetry runs, since out-of-order chunks claim representatives in
// whatever order they execute. Records are unaffected either way.
std::vector<ExperimentRecord> RunPreparedBatch(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t begin,
    std::size_t end, CampaignEngine engine,
    std::uint64_t* lanes_simulated = nullptr);

}  // namespace saffire
