// Corruption maps: the spatial difference between golden and faulty
// outputs, from which fault patterns are classified (Sec. III-B).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace saffire {

struct MatrixCoord {
  std::int64_t row = 0;
  std::int64_t col = 0;
  auto operator<=>(const MatrixCoord&) const = default;
};

// The set of corrupted output-matrix elements plus magnitude statistics.
struct CorruptionMap {
  std::int64_t rows = 0;  // output matrix dimensions
  std::int64_t cols = 0;
  std::vector<MatrixCoord> corrupted;  // sorted row-major
  std::int64_t max_abs_delta = 0;
  std::int64_t min_abs_delta = 0;  // over corrupted elements; 0 if none

  bool empty() const { return corrupted.empty(); }
  std::int64_t count() const {
    return static_cast<std::int64_t>(corrupted.size());
  }

  // Distinct corrupted columns / rows in increasing order.
  std::vector<std::int64_t> DistinctCols() const;
  std::vector<std::int64_t> DistinctRows() const;

  // True if every row of `col` is corrupted.
  bool ColumnFullyCorrupted(std::int64_t col) const;
};

// Element-wise diff of two same-shaped rank-2 tensors.
CorruptionMap ExtractCorruption(const Int32Tensor& golden,
                                const Int32Tensor& faulty);

}  // namespace saffire
