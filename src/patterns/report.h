// Human-readable rendering of campaign results: ASCII fault maps (the
// Fig. 3 panels), class histograms, summary lines, and CSV export.
#pragma once

#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "patterns/campaign.h"

namespace saffire {

// Renders the corruption map as an ASCII grid: '#' corrupted, '.' clean,
// with '|' / '-' separators on tile boundaries (the paper highlights tiles
// with colors in Fig. 3). Grids taller than `max_rows` are truncated with
// an ellipsis line — Fig. 3's conv panels show only the top of the NPQ
// dimension too.
std::string RenderCorruptionMap(const CorruptionMap& map,
                                const ClassifyContext& context,
                                std::int64_t max_rows = 48);

// Folds a convolution corruption map from the lowered GEMM space back to
// output-channel space: for every output channel, the set of corrupted
// (p, q) pixels. Requires a kConv context; a corrupted lowered cell marks
// every output pixel it feeds.
std::map<std::int64_t, std::set<MatrixCoord>> ConvCorruptionByChannel(
    const CorruptionMap& map, const ClassifyContext& context);

// Renders the folded view the paper's conv panels show: one P×Q grid per
// corrupted channel ('#' corrupted pixels), plus a per-channel summary
// line. Grids taller than `max_rows` are truncated.
std::string RenderConvChannelMap(const CorruptionMap& map,
                                 const ClassifyContext& context,
                                 std::int64_t max_rows = 16);

// One line per observed class: "single-column ........ 256 (100.0%)".
std::string RenderHistogram(const CampaignResult& result);

// Multi-line summary: configuration, sites, histogram, prediction
// agreement, determinism property, cost.
std::string RenderCampaignSummary(const CampaignResult& result);

// The campaign CSV schema, shared by WriteCampaignCsv and the streaming
// CsvRecordSink (service/sink.h) so their outputs are byte-identical.
const std::vector<std::string>& CampaignCsvHeader();
std::vector<std::string> CampaignCsvRow(const CampaignConfig& config,
                                        const ExperimentRecord& record);

// One CSV row per experiment (fault site, class, prediction agreement,
// corruption statistics, cycles).
void WriteCampaignCsv(const CampaignResult& result, std::ostream& out);

}  // namespace saffire
