// Fault dictionaries: the exchange artifact for the paper's proposed
// integration — "our classification of fault patterns can enable
// application-level fault injectors (such as LLTFI) to perform more
// precise FI campaigns with the systolic array hardware model" (Sec. VI).
//
// A dictionary captures, for one (operation, array, dataflow)
// configuration, the predicted reach of every fault-site equivalence
// class, serialized as JSON so an external injector — in any language —
// can sample a hardware-faithful fault without linking this library:
// pick a class weighted by its site count, perturb exactly its coords.
//
// The JSON uses a small stable schema:
//   {
//     "workload": "gemm-16x16", "dataflow": "WS",
//     "array": {"rows": 16, "cols": 16},
//     "gemm": {"m": 16, "k": 16, "n": 16},
//     "classes": [
//       {"pattern": "single-column",
//        "sites":  [[0,9],[1,9], ...],
//        "coords": [[0,9],[1,9], ...]},
//       ...
//     ]
//   }
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "patterns/symmetry.h"

namespace saffire {

struct FaultDictionary {
  std::string workload_name;
  Dataflow dataflow = Dataflow::kWeightStationary;
  std::int32_t array_rows = 0;
  std::int32_t array_cols = 0;
  std::int64_t gemm_m = 0;
  std::int64_t gemm_k = 0;
  std::int64_t gemm_n = 0;
  std::vector<SiteEquivalenceClass> classes;

  bool operator==(const FaultDictionary& other) const;
};

// Builds the dictionary from the analytical predictor (no simulation).
FaultDictionary BuildFaultDictionary(const WorkloadSpec& workload,
                                     const AccelConfig& accel,
                                     Dataflow dataflow);

// Serializes to the schema above (deterministic field and class order).
std::string ToJson(const FaultDictionary& dictionary);

// Parses a dictionary back. Accepts exactly the subset of JSON ToJson
// emits (objects, arrays, strings, integers, arbitrary whitespace); throws
// std::invalid_argument on malformed input.
FaultDictionary FaultDictionaryFromJson(std::string_view json);

}  // namespace saffire
