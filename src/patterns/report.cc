#include "patterns/report.h"

#include <set>
#include <sstream>

#include "common/csv.h"
#include "common/strings.h"

namespace saffire {

std::string RenderCorruptionMap(const CorruptionMap& map,
                                const ClassifyContext& context,
                                std::int64_t max_rows) {
  SAFFIRE_CHECK_MSG(max_rows > 0, "max_rows=" << max_rows);
  std::set<MatrixCoord> corrupted(map.corrupted.begin(), map.corrupted.end());
  std::ostringstream os;
  const std::int64_t rows_to_show = std::min(map.rows, max_rows);

  const auto emit_hline = [&]() {
    for (std::int64_t c = 0; c < map.cols; ++c) {
      if (c > 0 && c % context.tile_cols == 0) os << '+';
      os << '-';
    }
    os << '\n';
  };

  for (std::int64_t r = 0; r < rows_to_show; ++r) {
    if (r > 0 && r % context.tile_rows == 0) emit_hline();
    for (std::int64_t c = 0; c < map.cols; ++c) {
      if (c > 0 && c % context.tile_cols == 0) os << '|';
      os << (corrupted.contains(MatrixCoord{r, c}) ? '#' : '.');
    }
    os << '\n';
  }
  if (rows_to_show < map.rows) {
    os << "... (" << (map.rows - rows_to_show) << " more rows)\n";
  }
  return os.str();
}

std::map<std::int64_t, std::set<MatrixCoord>> ConvCorruptionByChannel(
    const CorruptionMap& map, const ClassifyContext& context) {
  SAFFIRE_CHECK_MSG(context.op == OpType::kConv, "not a convolution context");
  const ConvParams& conv = context.conv;
  const std::int64_t out_h = conv.out_height();
  const std::int64_t out_w = conv.out_width();
  std::map<std::int64_t, std::set<MatrixCoord>> by_channel;
  for (const MatrixCoord& cell : map.corrupted) {
    if (context.lowering == ConvLowering::kIm2Col) {
      // Row index is (n, p, q); column is the channel.
      const std::int64_t q = cell.row % out_w;
      const std::int64_t p = (cell.row / out_w) % out_h;
      by_channel[cell.col].insert(MatrixCoord{p, q});
      continue;
    }
    // Shift-GEMM: row is (n, p, x) over padded input columns; column is
    // k·S + s. Cell (row, col) feeds output pixel (p, q) with
    // q·stride + s == x.
    const std::int64_t padded_w = conv.width + 2 * conv.pad;
    const std::int64_t x = cell.row % padded_w;
    const std::int64_t p = (cell.row / padded_w) % out_h;
    const std::int64_t k = cell.col / conv.kernel_w;
    const std::int64_t s = cell.col % conv.kernel_w;
    const std::int64_t numerator = x - s;
    if (numerator < 0 || numerator % conv.stride != 0) continue;
    const std::int64_t q = numerator / conv.stride;
    if (q < 0 || q >= out_w) continue;
    by_channel[k].insert(MatrixCoord{p, q});
  }
  return by_channel;
}

std::string RenderConvChannelMap(const CorruptionMap& map,
                                 const ClassifyContext& context,
                                 std::int64_t max_rows) {
  SAFFIRE_CHECK_MSG(max_rows > 0, "max_rows=" << max_rows);
  const auto by_channel = ConvCorruptionByChannel(map, context);
  const std::int64_t out_h = context.conv.out_height();
  const std::int64_t out_w = context.conv.out_width();
  std::ostringstream os;
  if (by_channel.empty()) {
    os << "no corrupted output channels\n";
    return os.str();
  }
  for (const auto& [channel, pixels] : by_channel) {
    os << "channel " << channel << ": " << pixels.size() << "/"
       << out_h * out_w << " pixels corrupted\n";
    const std::int64_t rows_to_show = std::min(out_h, max_rows);
    for (std::int64_t p = 0; p < rows_to_show; ++p) {
      os << "  ";
      for (std::int64_t q = 0; q < out_w; ++q) {
        os << (pixels.contains(MatrixCoord{p, q}) ? '#' : '.');
      }
      os << '\n';
    }
    if (rows_to_show < out_h) {
      os << "  ... (" << (out_h - rows_to_show) << " more rows)\n";
    }
  }
  return os.str();
}

std::string RenderHistogram(const CampaignResult& result) {
  std::ostringstream os;
  const auto histogram = result.Histogram();
  const auto total = static_cast<double>(result.records.size());
  for (const auto& [pattern, count] : histogram) {
    const double percent =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(count) / total;
    os << "  " << PadRight(ToString(pattern), 28) << PadLeft(
        std::to_string(count), 6)
       << " (" << FormatDouble(percent, 1) << "%)\n";
  }
  return os.str();
}

std::string RenderCampaignSummary(const CampaignResult& result) {
  std::ostringstream os;
  os << "campaign: " << result.config.ToString() << '\n'
     << "  experiments: " << result.records.size() << '\n'
     << RenderHistogram(result) << "  dominant class: "
     << ToString(result.DominantClass()) << '\n'
     << "  single-class property (non-masked): "
     << (result.SingleClassProperty() ? "HOLDS" : "VIOLATED") << '\n';
  if (result.config.signal == MacSignal::kAdderOut ||
      result.config.signal == MacSignal::kMulOut ||
      result.config.signal == MacSignal::kWeightOperand) {
    os << "  predictor class agreement: "
       << FormatDouble(100.0 * result.ClassAgreement(), 1) << "%\n"
       << "  predictor exact-coordinate agreement: "
       << FormatDouble(100.0 * result.ExactAgreement(), 1) << "%\n"
       << "  observed ⊆ predicted: "
       << FormatDouble(100.0 * result.ContainmentRate(), 1) << "%\n";
  }
  std::int64_t total_cycles = result.golden_cycles;
  for (const ExperimentRecord& record : result.records) {
    total_cycles += record.cycles;
  }
  os << "  golden cycles: " << result.golden_cycles
     << ", campaign cycles (incl. golden): " << total_cycles << '\n';
  return os.str();
}

const std::vector<std::string>& CampaignCsvHeader() {
  static const std::vector<std::string> kHeader = {
      "workload",        "dataflow",          "pe_row",
      "pe_col",          "signal",            "bit",
      "polarity",        "observed_class",    "predicted_class",
      "prediction_exact", "observed_within_predicted",
      "corrupted_count", "max_abs_delta",     "fault_activations",
      "cycles"};
  return kHeader;
}

std::vector<std::string> CampaignCsvRow(const CampaignConfig& config,
                                        const ExperimentRecord& record) {
  return {
      config.workload.name,
      ToString(config.dataflow),
      std::to_string(record.fault.pe.row),
      std::to_string(record.fault.pe.col),
      ToString(record.fault.signal),
      std::to_string(record.fault.bit),
      ToString(record.fault.polarity),
      ToString(record.observed),
      ToString(record.predicted),
      record.prediction_exact ? "1" : "0",
      record.observed_within_predicted ? "1" : "0",
      std::to_string(record.corrupted_count),
      std::to_string(record.max_abs_delta),
      std::to_string(record.fault_activations),
      std::to_string(record.cycles),
  };
}

void WriteCampaignCsv(const CampaignResult& result, std::ostream& out) {
  CsvWriter writer(out, CampaignCsvHeader());
  for (const ExperimentRecord& record : result.records) {
    writer.WriteRow(CampaignCsvRow(result.config, record));
  }
}

}  // namespace saffire
