#include "patterns/campaign.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "common/rng.h"

namespace saffire {

std::string CampaignConfig::ToString() const {
  std::ostringstream os;
  os << workload.ToString() << " | " << saffire::ToString(dataflow) << " | ";
  if (kind == FaultKind::kStuckAt) {
    os << saffire::ToString(polarity);
  } else {
    os << "transient-flip";
  }
  os << " bit" << bit << " on " << saffire::ToString(signal) << " | array "
     << accel.array.ToString();
  if (max_sites > 0) os << " | sampled " << max_sites << " sites";
  return os.str();
}

std::vector<PeCoord> CampaignSites(const CampaignConfig& config) {
  const std::vector<PeCoord> all = AllPeCoords(config.accel.array);
  if (config.max_sites <= 0 ||
      config.max_sites >= static_cast<std::int64_t>(all.size())) {
    return all;
  }
  Rng rng(config.seed);
  const auto picks = rng.SampleWithoutReplacement(
      static_cast<std::int64_t>(all.size()), config.max_sites);
  std::vector<PeCoord> sites;
  sites.reserve(picks.size());
  for (const std::int64_t index : picks) {
    sites.push_back(all[static_cast<std::size_t>(index)]);
  }
  return sites;
}

namespace {

// Builds the fault of each experiment. For transient campaigns, at_cycle
// holds the strike offset *relative to the faulty run's start*; the
// executor rebases it onto its own simulator's cycle counter. Offsets are
// pre-sampled here so serial and parallel execution (and any site order)
// yield identical experiments.
std::vector<FaultSpec> PlanFaults(const CampaignConfig& config,
                                  const std::vector<PeCoord>& sites,
                                  std::int64_t golden_cycles) {
  Rng strike_rng(config.seed ^ 0x7261696ec0ffeeULL);
  std::vector<FaultSpec> faults;
  faults.reserve(sites.size());
  for (const PeCoord site : sites) {
    FaultSpec fault;
    fault.kind = config.kind;
    fault.pe = site;
    fault.signal = config.signal;
    fault.bit = config.bit;
    fault.polarity = config.polarity;
    if (config.kind == FaultKind::kTransientFlip) {
      fault.at_cycle = strike_rng.UniformInt(0, golden_cycles - 1);
    }
    faults.push_back(fault);
  }
  return faults;
}

bool PredictorCoversSignal(MacSignal signal) {
  return signal == MacSignal::kAdderOut || signal == MacSignal::kMulOut ||
         signal == MacSignal::kWeightOperand;
}

ExperimentRecord RunOneExperiment(const CampaignConfig& config,
                                  const Int32Tensor& golden_output,
                                  const ClassifyContext& context,
                                  FiRunner& runner, FaultSpec fault) {
  if (fault.kind == FaultKind::kTransientFlip) {
    // Rebase the relative strike offset onto this simulator's clock.
    fault.at_cycle += runner.accel().cycles();
  }
  const RunResult faulty =
      runner.RunFaulty(config.workload, config.dataflow, {&fault, 1});
  const CorruptionMap map = ExtractCorruption(golden_output, faulty.output);

  ExperimentRecord record;
  record.fault = fault;
  record.observed = Classify(map, context);
  record.corrupted_count = map.count();
  record.max_abs_delta = map.max_abs_delta;
  record.fault_activations = faulty.fault_activations;
  record.cycles = faulty.cycles;

  if (PredictorCoversSignal(config.signal)) {
    const PredictedPattern prediction = PredictPattern(
        config.workload, config.accel, config.dataflow, fault);
    record.predicted = prediction.pattern;
    record.prediction_exact = map.corrupted == prediction.coords;
    record.observed_within_predicted =
        std::includes(prediction.coords.begin(), prediction.coords.end(),
                      map.corrupted.begin(), map.corrupted.end());
  } else {
    // No analytical model for this signal; record the observation only.
    record.predicted = PatternClass::kOther;
    record.prediction_exact = false;
    record.observed_within_predicted = false;
  }
  return record;
}

}  // namespace

CampaignResult RunCampaign(const CampaignConfig& config) {
  return RunCampaignParallel(config, 1);
}

CampaignResult RunCampaignParallel(const CampaignConfig& config,
                                   int threads) {
  config.accel.Validate();
  config.workload.Validate();
  SAFFIRE_CHECK_MSG(threads >= 1 && threads <= 256, "threads=" << threads);

  CampaignResult result;
  result.config = config;

  FiRunner main_runner(config.accel);
  const RunResult golden =
      main_runner.RunGolden(config.workload, config.dataflow);
  result.golden_cycles = golden.cycles;
  result.golden_pe_steps = golden.pe_steps;

  const ClassifyContext context =
      MakeClassifyContext(config.workload, config.accel, config.dataflow);
  const std::vector<PeCoord> sites = CampaignSites(config);
  const std::vector<FaultSpec> faults =
      PlanFaults(config, sites, golden.cycles);
  SAFFIRE_LOG_INFO << "campaign: " << config.ToString() << " — "
                   << sites.size() << " fault sites, " << threads
                   << " thread(s)";

  result.records.resize(faults.size());
  if (threads == 1 || faults.size() < 2) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      result.records[i] = RunOneExperiment(config, golden.output, context,
                                           main_runner, faults[i]);
    }
    return result;
  }

  const auto worker_count =
      std::min<std::size_t>(static_cast<std::size_t>(threads), faults.size());
  std::atomic<std::size_t> next_index{0};
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&]() {
      FiRunner runner(config.accel);
      for (std::size_t i = next_index.fetch_add(1); i < faults.size();
           i = next_index.fetch_add(1)) {
        result.records[i] = RunOneExperiment(config, golden.output, context,
                                             runner, faults[i]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return result;
}

std::map<PatternClass, std::int64_t> CampaignResult::Histogram() const {
  std::map<PatternClass, std::int64_t> histogram;
  for (const ExperimentRecord& record : records) {
    ++histogram[record.observed];
  }
  return histogram;
}

std::int64_t CampaignResult::MaskedCount() const {
  std::int64_t masked = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed == PatternClass::kMasked) ++masked;
  }
  return masked;
}

PatternClass CampaignResult::DominantClass() const {
  PatternClass best = PatternClass::kMasked;
  std::int64_t best_count = 0;
  for (const auto& [pattern, count] : Histogram()) {
    if (pattern == PatternClass::kMasked) continue;
    if (count > best_count) {
      best = pattern;
      best_count = count;
    }
  }
  return best;
}

double CampaignResult::ClassAgreement() const {
  if (records.empty()) return 1.0;
  std::int64_t agree = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed == record.predicted) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(records.size());
}

double CampaignResult::ExactAgreement() const {
  if (records.empty()) return 1.0;
  std::int64_t exact = 0;
  for (const ExperimentRecord& record : records) {
    if (record.prediction_exact) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(records.size());
}

double CampaignResult::ContainmentRate() const {
  if (records.empty()) return 1.0;
  std::int64_t contained = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed_within_predicted) ++contained;
  }
  return static_cast<double>(contained) /
         static_cast<double>(records.size());
}

bool CampaignResult::SingleClassProperty() const {
  PatternClass seen = PatternClass::kMasked;
  for (const ExperimentRecord& record : records) {
    if (record.observed == PatternClass::kMasked) continue;
    if (seen == PatternClass::kMasked) {
      seen = record.observed;
    } else if (record.observed != seen) {
      return false;
    }
  }
  return true;
}

}  // namespace saffire
