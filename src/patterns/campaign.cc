#include "patterns/campaign.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <span>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "patterns/symmetry.h"

namespace saffire {
namespace {

// The one engine-name table: ToString and ParseCampaignEngine round-trip
// through it exactly, indexed by the enum value.
constexpr const char* kEngineNames[] = {"differential", "full", "reference",
                                        "batch", "predicted"};

}  // namespace

std::string ToString(CampaignEngine engine) {
  const auto index = static_cast<std::size_t>(engine);
  SAFFIRE_ASSERT_MSG(index < std::size(kEngineNames),
                     "engine " << static_cast<int>(index));
  return kEngineNames[index];
}

CampaignEngine ParseCampaignEngine(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kEngineNames); ++i) {
    if (name == kEngineNames[i]) return static_cast<CampaignEngine>(i);
  }
  SAFFIRE_CHECK_MSG(false, "unknown campaign engine '"
                               << name
                               << "' (expected differential|full|reference|"
                                  "batch|predicted)");
}

CampaignEngine CampaignEngineFromString(const std::string& name) {
  return ParseCampaignEngine(name);
}

int DefaultCampaignThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 256u));
}

std::string CampaignConfig::ToString() const {
  std::ostringstream os;
  os << workload.ToString() << " | " << saffire::ToString(dataflow) << " | ";
  if (kind == FaultKind::kStuckAt) {
    os << saffire::ToString(polarity);
  } else {
    os << "transient-flip";
  }
  os << " bit" << bit << " on " << saffire::ToString(signal) << " | array "
     << accel.array.ToString();
  if (max_sites > 0) os << " | sampled " << max_sites << " sites";
  return os.str();
}

std::vector<PeCoord> CampaignSites(const CampaignConfig& config) {
  const std::vector<PeCoord> all = AllPeCoords(config.accel.array);
  if (config.max_sites <= 0 ||
      config.max_sites >= static_cast<std::int64_t>(all.size())) {
    return all;
  }
  Rng rng(config.seed);
  const auto picks = rng.SampleWithoutReplacement(
      static_cast<std::int64_t>(all.size()), config.max_sites);
  std::vector<PeCoord> sites;
  sites.reserve(picks.size());
  for (const std::int64_t index : picks) {
    sites.push_back(all[static_cast<std::size_t>(index)]);
  }
  return sites;
}

namespace {

// Builds the fault of each experiment. For transient campaigns, at_cycle
// holds the strike offset *relative to the faulty run's start*; the
// executor rebases it onto its own simulator's cycle counter. Offsets are
// pre-sampled here so serial and parallel execution (and any site order)
// yield identical experiments.
std::vector<FaultSpec> PlanFaults(const CampaignConfig& config,
                                  const std::vector<PeCoord>& sites,
                                  std::int64_t golden_cycles) {
  Rng strike_rng(config.seed ^ 0x7261696ec0ffeeULL);
  std::vector<FaultSpec> faults;
  faults.reserve(sites.size());
  for (const PeCoord site : sites) {
    FaultSpec fault;
    fault.kind = config.kind;
    fault.pe = site;
    fault.signal = config.signal;
    fault.bit = config.bit;
    fault.polarity = config.polarity;
    if (config.kind == FaultKind::kTransientFlip) {
      fault.at_cycle = strike_rng.UniformInt(0, golden_cycles - 1);
    }
    faults.push_back(fault);
  }
  return faults;
}

bool PredictorCoversSignal(MacSignal signal) {
  return signal == MacSignal::kAdderOut || signal == MacSignal::kMulOut ||
         signal == MacSignal::kWeightOperand;
}

obs::Counter& PredictHitsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.predict.hits",
      "experiments served by the closed-form predicted engine");
  return counter;
}

obs::Counter& PredictResidueCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.predict.residue",
      "experiments requested as predicted but outside the closed form, "
      "routed through the batch replay");
  return counter;
}

obs::Counter& ReplicatedRecordsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.cache.replicated_records",
      "member records synthesized from a symmetry-class representative "
      "instead of simulated");
  return counter;
}

obs::Counter& SymmetryClassesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "saffire.cache.symmetry_classes",
      "site-equivalence classes found across symmetry-planned campaigns");
  return counter;
}

// Applies the engine choice to the simulator about to execute a run.
void ConfigureEngine(FiRunner& runner, CampaignEngine engine) {
  runner.accel().array().set_force_reference_step(engine ==
                                                  CampaignEngine::kReference);
}

// Turns one faulty run into its record — the engine-independent half of an
// experiment, shared by the per-experiment and batched paths. `fault` is
// the campaign's pre-sampled spec (relative strike offset for transients).
ExperimentRecord BuildRecord(const PreparedCampaign& prepared,
                             const FaultSpec& fault, const RunResult& faulty) {
  const CorruptionMap map =
      ExtractCorruption(prepared.golden().output, faulty.output);

  ExperimentRecord record;
  record.fault = fault;
  record.observed = Classify(map, prepared.context);
  record.corrupted_count = map.count();
  record.max_abs_delta = map.max_abs_delta;
  record.fault_activations = faulty.fault_activations;
  record.cycles = faulty.cycles;
  record.pe_steps = faulty.pe_steps;
  record.pe_steps_skipped = faulty.pe_steps_skipped;

  if (prepared.predictions != nullptr) {
    const PredictedPattern& prediction = prepared.predictions->Lookup(fault);
    record.predicted = prediction.pattern;
    record.prediction_exact = map.corrupted == prediction.coords;
    record.observed_within_predicted =
        std::includes(prediction.coords.begin(), prediction.coords.end(),
                      map.corrupted.begin(), map.corrupted.end());
  } else {
    // No analytical model for this signal; record the observation only.
    record.predicted = PatternClass::kOther;
    record.prediction_exact = false;
    record.observed_within_predicted = false;
  }
  return record;
}

// The replay/closed-form core of a grouped run: simulates `faults` as one
// group on `engine` and builds their records. Shared by the plain grouped
// path (a whole [begin, end) slice) and the symmetry path (the deduped
// representative set of a slice) — lane-partition invariance guarantees
// both produce bit-identical records for the faults they do simulate.
std::vector<ExperimentRecord> RunFaultGroup(const PreparedCampaign& prepared,
                                            FiRunner& runner,
                                            std::span<const FaultSpec> faults,
                                            CampaignEngine engine) {
  const CampaignConfig& config = prepared.config;
  const GoldenTrace* trace = prepared.trace();
  SAFFIRE_CHECK_MSG(trace != nullptr,
                    "grouped engines require a cached golden trace");
  ConfigureEngine(runner, engine);
  const bool closed_form =
      engine == CampaignEngine::kPredicted && PredictedEngineExact(config);
  if (engine == CampaignEngine::kPredicted) {
    (closed_form ? PredictHitsCounter() : PredictResidueCounter())
        .Increment(static_cast<std::int64_t>(faults.size()));
  }
  // The batch runner consumes the relative strike offsets directly (against
  // the trace's recorded per-step clocks), so no rebasing happens here.
  // Same convention under the closed form, which never strikes at all.
  const std::vector<RunResult> faulty =
      closed_form
          ? runner.RunFaultyPredicted(config.workload, config.dataflow,
                                      faults, *trace, prepared.golden())
          : runner.RunFaultyBatch(config.workload, config.dataflow, faults,
                                  *trace, prepared.golden());
  std::vector<ExperimentRecord> records;
  records.reserve(faulty.size());
  {
    // Classification + prediction over the lane outputs — the post-replay
    // diff work, separated from the replay itself in phase breakdowns.
    SAFFIRE_SPAN("fi.batch.diff");
    for (std::size_t i = 0; i < faulty.size(); ++i) {
      records.push_back(BuildRecord(prepared, faults[i], faulty[i]));
    }
  }
  return records;
}

}  // namespace

bool SymmetryMemo::AcquireOrOwn(std::size_t representative,
                                ExperimentRecord* record) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto [it, inserted] = records_.try_emplace(representative);
    if (inserted) return false;  // the caller owns the computation
    if (it->second.has_value()) {
      *record = *it->second;
      return true;
    }
    if (disabled()) {
      // Stop waiting on a distrusted memo: the caller simulates directly.
      // The in-flight owner's eventual Fulfill (or an Abandon from this
      // caller's failure path erasing the owner's marker) is harmless —
      // post-disable nobody consults the memo, and racing records are
      // identical anyway.
      return false;
    }
    ready_.wait(lock);
  }
}

void SymmetryMemo::Fulfill(std::size_t representative,
                           ExperimentRecord record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records_[representative] = std::move(record);
  }
  ready_.notify_all();
}

void SymmetryMemo::Abandon(std::size_t representative) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = records_.find(representative);
    if (it != records_.end() && !it->second.has_value()) records_.erase(it);
  }
  ready_.notify_all();
}

void SymmetryMemo::Disable() {
  {
    // The store happens under the mutex so a waiter between its disabled
    // check and the wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(mutex_);
    disabled_.store(true, std::memory_order_relaxed);
  }
  ready_.notify_all();
}

bool GroupedCampaignEngine(CampaignEngine engine) {
  return engine == CampaignEngine::kBatch ||
         engine == CampaignEngine::kPredicted;
}

bool PredictedEngineExact(const CampaignConfig& config) {
  return config.kind == FaultKind::kStuckAt &&
         PredictorCoversSignal(config.signal);
}

bool SymmetryEligibleCampaign(const CampaignConfig& config) {
  // Two conditions with distinct roles. The stuck-at/predictor-covered
  // half makes the partition *exist* (it is keyed on the predicted reach,
  // defined exactly for permanent faults on covered signals). The all-ones
  // fills make member synthesis *exact*: the record-identity partition
  // merges same-row sites whose reaches are column translates, and only a
  // column-invariant operand fill guarantees the translated fault site sees
  // the same golden value sequence — under kRandom / kNearZero fills,
  // data-dependent fields (fault_activations, max_abs_delta, possibly the
  // observed class) can silently differ between class members, and
  // selfcheck_rate defaults to 0, so such campaigns must simulate every
  // site rather than synthesize.
  return config.kind == FaultKind::kStuckAt &&
         PredictorCoversSignal(config.signal) &&
         config.workload.input_fill == OperandFill::kOnes &&
         config.workload.weight_fill == OperandFill::kOnes;
}

PreparedCampaign PrepareCampaign(const CampaignConfig& config,
                                 FiRunner* golden_runner) {
  SAFFIRE_SPAN("campaign.prepare");
  config.accel.Validate();
  config.workload.Validate();
  if (GroupedCampaignEngine(config.engine)) {
    SAFFIRE_CHECK_MSG(config.batch_lanes >= 1 && config.batch_lanes <= 4096,
                      "batch_lanes=" << config.batch_lanes);
  }

  PreparedCampaign prepared;
  prepared.config = config;

  // The golden run: recomputed through the instrumented loop under
  // kReference (the pre-optimization baseline), served from the process-wide
  // cache otherwise.
  if (config.engine == CampaignEngine::kReference) {
    if (golden_runner != nullptr) {
      ConfigureEngine(*golden_runner, config.engine);
      prepared.reference_golden =
          golden_runner->RunGolden(config.workload, config.dataflow);
    } else {
      FiRunner local_runner(config.accel);
      ConfigureEngine(local_runner, config.engine);
      prepared.reference_golden =
          local_runner.RunGolden(config.workload, config.dataflow);
    }
  } else {
    bool hit = false;
    prepared.cached = GoldenRunCache::Instance().GetOrCompute(
        config.accel, config.workload, config.dataflow, &hit);
    prepared.golden_cache_hit = hit;
  }

  prepared.context =
      MakeClassifyContext(config.workload, config.accel, config.dataflow);
  if (PredictorCoversSignal(config.signal)) {
    prepared.predictions = std::make_shared<PredictionCache>(
        config.workload, config.accel, config.dataflow);
  }
  prepared.sites = CampaignSites(config);
  prepared.faults = PlanFaults(config, prepared.sites,
                               prepared.golden().cycles);

  // Symmetry plan: partition the campaign's sites (in campaign order, over
  // the campaign's actual fault axis) into classes of identical predicted
  // reach, and record each experiment's representative. A memo is only
  // allocated when the partition actually collapses something — otherwise
  // execution takes exactly the non-symmetry path.
  prepared.symmetry_classes = prepared.sites.size();
  if (config.symmetry && SymmetryEligibleCampaign(config) &&
      !prepared.sites.empty()) {
    SAFFIRE_SPAN("campaign.symmetry_plan");
    const std::vector<SiteEquivalenceClass> classes = PartitionFaultSites(
        prepared.sites, prepared.faults.front(), config.workload,
        config.accel, config.dataflow, prepared.predictions.get());
    prepared.symmetry_classes = classes.size();
    SymmetryClassesCounter().Increment(
        static_cast<std::int64_t>(classes.size()));
    if (classes.size() < prepared.sites.size()) {
      std::map<PeCoord, std::size_t> experiment_of;
      for (std::size_t i = 0; i < prepared.sites.size(); ++i) {
        experiment_of.emplace(prepared.sites[i], i);
      }
      prepared.symmetry_rep_of.assign(prepared.sites.size(), 0);
      for (const SiteEquivalenceClass& equivalence : classes) {
        // The representative is the class's first member in campaign order,
        // so rep_of[i] <= i for every experiment.
        const std::size_t rep = experiment_of.at(equivalence.representative);
        for (const PeCoord member : equivalence.members) {
          prepared.symmetry_rep_of[experiment_of.at(member)] = rep;
        }
      }
      prepared.symmetry_memo = std::make_shared<SymmetryMemo>();
    }
  }
  return prepared;
}

ExperimentRecord RunPreparedExperiment(const PreparedCampaign& prepared,
                                       FiRunner& runner, std::size_t index) {
  return RunPreparedExperimentWithEngine(prepared, runner, index,
                                         prepared.config.engine);
}

ExperimentRecord RunPreparedExperimentWithEngine(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t index,
    CampaignEngine engine) {
  SAFFIRE_ASSERT_MSG(index < prepared.faults.size(),
                     "experiment " << index << " of "
                                   << prepared.faults.size());
  if (prepared.SymmetryActive()) {
    const std::size_t rep = prepared.symmetry_rep_of[index];
    ExperimentRecord record;
    if (!prepared.symmetry_memo->AcquireOrOwn(rep, &record)) {
      // This thread owns the representative's simulation; other workers
      // needing it wait on the memo instead of duplicating the array pass.
      try {
        record = RunPreparedExperimentDirect(prepared, runner, rep, engine);
      } catch (...) {
        prepared.symmetry_memo->Abandon(rep);
        throw;
      }
      prepared.symmetry_memo->Fulfill(rep, record);
    }
    if (rep != index) {
      // Synthesize the member record: identical to the representative's in
      // every field except the injected fault's coordinate.
      record.fault = prepared.faults[index];
      ReplicatedRecordsCounter().Increment();
    }
    return record;
  }
  return RunPreparedExperimentDirect(prepared, runner, index, engine);
}

ExperimentRecord RunPreparedExperimentDirect(const PreparedCampaign& prepared,
                                             FiRunner& runner,
                                             std::size_t index,
                                             CampaignEngine engine) {
  SAFFIRE_ASSERT_MSG(index < prepared.faults.size(),
                     "experiment " << index << " of "
                                   << prepared.faults.size());
  const CampaignConfig& config = prepared.config;
  if (GroupedCampaignEngine(engine)) {
    SAFFIRE_CHECK_MSG(GroupedCampaignEngine(config.engine),
                      "grouped engine on a non-grouped campaign: "
                          << ToString(config.engine));
    // A one-lane group — same code path, same record.
    return RunFaultGroup(prepared, runner, {&prepared.faults[index], 1},
                         engine)
        .front();
  }
  SAFFIRE_SPAN("campaign.experiment");
  ConfigureEngine(runner, engine);
  const FaultSpec& fault = prepared.faults[index];
  FaultSpec injected = fault;
  if (injected.kind == FaultKind::kTransientFlip) {
    // Rebase the relative strike offset onto this simulator's clock. Only
    // the injected copy is rebased: the record keeps the relative offset,
    // which is what makes records identical no matter which simulator (with
    // whatever accumulated cycle count) ran the experiment.
    injected.at_cycle += runner.accel().cycles();
  }
  // The trace is consulted for the *effective* engine, not the configured
  // one: a batch campaign demoted to differential replays the same cached
  // trace, while a demotion to full ignores it.
  const GoldenTrace* trace =
      prepared.cached != nullptr && engine == CampaignEngine::kDifferential
          ? &prepared.cached->trace
          : nullptr;
  const RunResult faulty =
      trace != nullptr
          ? runner.RunFaultyDifferential(config.workload, config.dataflow,
                                         {&injected, 1}, *trace)
          : runner.RunFaulty(config.workload, config.dataflow,
                             {&injected, 1});
  return BuildRecord(prepared, fault, faulty);
}

std::vector<ExperimentRecord> RunPreparedBatch(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t begin,
    std::size_t end) {
  return RunPreparedBatch(prepared, runner, begin, end,
                          prepared.config.engine);
}

std::vector<ExperimentRecord> RunPreparedBatch(
    const PreparedCampaign& prepared, FiRunner& runner, std::size_t begin,
    std::size_t end, CampaignEngine engine,
    std::uint64_t* lanes_simulated) {
  SAFFIRE_ASSERT_MSG(begin < end && end <= prepared.faults.size(),
                     "batch [" << begin << ", " << end << ") of "
                               << prepared.faults.size());
  const CampaignConfig& config = prepared.config;
  SAFFIRE_CHECK_MSG(GroupedCampaignEngine(engine),
                    "RunPreparedBatch requires a grouped engine, got "
                        << ToString(engine));
  SAFFIRE_CHECK_MSG(GroupedCampaignEngine(config.engine),
                    "RunPreparedBatch requires a grouped campaign, got "
                        << ToString(config.engine));
  if (lanes_simulated != nullptr) {
    *lanes_simulated = static_cast<std::uint64_t>(end - begin);
  }
  if (prepared.SymmetryActive()) {
    // Gather the slice's distinct representatives — in ascending order, the
    // deadlock-freedom contract of SymmetryMemo::AcquireOrOwn — and acquire
    // each: hits come from the memo (waiting out another worker's in-flight
    // simulation), the rest are owned by this call and simulated as one
    // group below. A representative may lie outside the slice (an earlier
    // batch, or a batch this process never runs under shard filtering /
    // checkpoint resume) — its fault is still addressable globally, so it
    // simply joins this group.
    SymmetryMemo& memo = *prepared.symmetry_memo;
    std::set<std::size_t> reps;
    for (std::size_t i = begin; i < end; ++i) {
      reps.insert(prepared.symmetry_rep_of[i]);
    }
    std::map<std::size_t, ExperimentRecord> group;
    std::vector<std::size_t> need;
    for (const std::size_t rep : reps) {
      ExperimentRecord record;
      if (memo.AcquireOrOwn(rep, &record)) {
        group.emplace(rep, std::move(record));
      } else {
        need.push_back(rep);
      }
    }
    if (!need.empty()) {
      std::vector<FaultSpec> rep_faults;
      rep_faults.reserve(need.size());
      for (const std::size_t rep : need) {
        rep_faults.push_back(prepared.faults[rep]);
      }
      std::vector<ExperimentRecord> simulated;
      try {
        simulated = RunFaultGroup(prepared, runner, rep_faults, engine);
      } catch (...) {
        // Release ownership so a waiter retries instead of hanging; the
        // retry/demotion machinery above re-runs this group.
        for (const std::size_t rep : need) memo.Abandon(rep);
        throw;
      }
      for (std::size_t i = 0; i < need.size(); ++i) {
        memo.Fulfill(need[i], simulated[i]);
        group.emplace(need[i], std::move(simulated[i]));
      }
    }
    if (lanes_simulated != nullptr) {
      *lanes_simulated = static_cast<std::uint64_t>(need.size());
    }
    std::vector<ExperimentRecord> records;
    records.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t rep = prepared.symmetry_rep_of[i];
      ExperimentRecord record = group.at(rep);
      if (rep != i) {
        record.fault = prepared.faults[i];
        ReplicatedRecordsCounter().Increment();
      }
      records.push_back(std::move(record));
    }
    return records;
  }
  const std::span<const FaultSpec> faults(prepared.faults.data() + begin,
                                          end - begin);
  return RunFaultGroup(prepared, runner, faults, engine);
}

CampaignResult RunCampaignSerial(const CampaignConfig& config) {
  const PreparedCampaign prepared = PrepareCampaign(config);
  SAFFIRE_LOG_INFO << "campaign (serial): " << config.ToString() << " — "
                   << prepared.sites.size() << " fault sites, "
                   << ToString(config.engine) << " engine";

  CampaignResult result;
  result.config = config;
  result.golden_cache_hit = prepared.golden_cache_hit;
  result.golden_cycles = prepared.golden().cycles;
  result.golden_pe_steps = prepared.golden().pe_steps;

  FiRunner runner(config.accel);
  result.records.reserve(prepared.faults.size());
  if (GroupedCampaignEngine(config.engine)) {
    // Canonical batch boundaries: consecutive batch_lanes-sized groups of
    // the site order, the final one possibly partial. A closed-form
    // predicted campaign never fills a lane, so its occupancy stats stay 0;
    // the predicted residue replays through the lanes and counts normally.
    const bool closed_form = config.engine == CampaignEngine::kPredicted &&
                             PredictedEngineExact(config);
    const auto lanes = static_cast<std::size_t>(config.batch_lanes);
    for (std::size_t i = 0; i < prepared.faults.size(); i += lanes) {
      const std::size_t end = std::min(prepared.faults.size(), i + lanes);
      std::uint64_t simulated = 0;
      std::vector<ExperimentRecord> records = RunPreparedBatch(
          prepared, runner, i, end, config.engine, &simulated);
      // Occupancy counts lanes actually simulated: under a symmetry plan a
      // group shrinks to its unseen representatives and can vanish
      // entirely, in which case no array pass happened.
      if (!closed_form && simulated > 0) {
        result.lanes_filled += simulated;
        ++result.batches_run;
      }
      std::move(records.begin(), records.end(),
                std::back_inserter(result.records));
    }
  } else {
    for (std::size_t i = 0; i < prepared.faults.size(); ++i) {
      result.records.push_back(RunPreparedExperiment(prepared, runner, i));
    }
  }
  return result;
}

std::uint64_t CampaignResult::FaultyPeSteps() const {
  std::uint64_t total = 0;
  for (const ExperimentRecord& record : records) total += record.pe_steps;
  return total;
}

std::uint64_t CampaignResult::FaultyPeStepsSkipped() const {
  std::uint64_t total = 0;
  for (const ExperimentRecord& record : records) {
    total += record.pe_steps_skipped;
  }
  return total;
}

std::map<PatternClass, std::int64_t> CampaignResult::Histogram() const {
  std::map<PatternClass, std::int64_t> histogram;
  for (const ExperimentRecord& record : records) {
    ++histogram[record.observed];
  }
  return histogram;
}

std::int64_t CampaignResult::MaskedCount() const {
  std::int64_t masked = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed == PatternClass::kMasked) ++masked;
  }
  return masked;
}

PatternClass CampaignResult::DominantClass() const {
  PatternClass best = PatternClass::kMasked;
  std::int64_t best_count = 0;
  for (const auto& [pattern, count] : Histogram()) {
    if (pattern == PatternClass::kMasked) continue;
    if (count > best_count) {
      best = pattern;
      best_count = count;
    }
  }
  return best;
}

double CampaignResult::ClassAgreement() const {
  if (records.empty()) return 1.0;
  std::int64_t agree = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed == record.predicted) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(records.size());
}

double CampaignResult::ExactAgreement() const {
  if (records.empty()) return 1.0;
  std::int64_t exact = 0;
  for (const ExperimentRecord& record : records) {
    if (record.prediction_exact) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(records.size());
}

double CampaignResult::ContainmentRate() const {
  if (records.empty()) return 1.0;
  std::int64_t contained = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed_within_predicted) ++contained;
  }
  return static_cast<double>(contained) /
         static_cast<double>(records.size());
}

bool CampaignResult::SingleClassProperty() const {
  PatternClass seen = PatternClass::kMasked;
  for (const ExperimentRecord& record : records) {
    if (record.observed == PatternClass::kMasked) continue;
    if (seen == PatternClass::kMasked) {
      seen = record.observed;
    } else if (record.observed != seen) {
      return false;
    }
  }
  return true;
}

}  // namespace saffire
