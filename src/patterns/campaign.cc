#include "patterns/campaign.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "common/rng.h"
#include "fi/golden_cache.h"

namespace saffire {

std::string ToString(CampaignEngine engine) {
  switch (engine) {
    case CampaignEngine::kDifferential:
      return "differential";
    case CampaignEngine::kFull:
      return "full";
    case CampaignEngine::kReference:
      return "reference";
  }
  return "unknown";
}

int DefaultCampaignThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 256u));
}

std::string CampaignConfig::ToString() const {
  std::ostringstream os;
  os << workload.ToString() << " | " << saffire::ToString(dataflow) << " | ";
  if (kind == FaultKind::kStuckAt) {
    os << saffire::ToString(polarity);
  } else {
    os << "transient-flip";
  }
  os << " bit" << bit << " on " << saffire::ToString(signal) << " | array "
     << accel.array.ToString();
  if (max_sites > 0) os << " | sampled " << max_sites << " sites";
  return os.str();
}

std::vector<PeCoord> CampaignSites(const CampaignConfig& config) {
  const std::vector<PeCoord> all = AllPeCoords(config.accel.array);
  if (config.max_sites <= 0 ||
      config.max_sites >= static_cast<std::int64_t>(all.size())) {
    return all;
  }
  Rng rng(config.seed);
  const auto picks = rng.SampleWithoutReplacement(
      static_cast<std::int64_t>(all.size()), config.max_sites);
  std::vector<PeCoord> sites;
  sites.reserve(picks.size());
  for (const std::int64_t index : picks) {
    sites.push_back(all[static_cast<std::size_t>(index)]);
  }
  return sites;
}

namespace {

// Builds the fault of each experiment. For transient campaigns, at_cycle
// holds the strike offset *relative to the faulty run's start*; the
// executor rebases it onto its own simulator's cycle counter. Offsets are
// pre-sampled here so serial and parallel execution (and any site order)
// yield identical experiments.
std::vector<FaultSpec> PlanFaults(const CampaignConfig& config,
                                  const std::vector<PeCoord>& sites,
                                  std::int64_t golden_cycles) {
  Rng strike_rng(config.seed ^ 0x7261696ec0ffeeULL);
  std::vector<FaultSpec> faults;
  faults.reserve(sites.size());
  for (const PeCoord site : sites) {
    FaultSpec fault;
    fault.kind = config.kind;
    fault.pe = site;
    fault.signal = config.signal;
    fault.bit = config.bit;
    fault.polarity = config.polarity;
    if (config.kind == FaultKind::kTransientFlip) {
      fault.at_cycle = strike_rng.UniformInt(0, golden_cycles - 1);
    }
    faults.push_back(fault);
  }
  return faults;
}

bool PredictorCoversSignal(MacSignal signal) {
  return signal == MacSignal::kAdderOut || signal == MacSignal::kMulOut ||
         signal == MacSignal::kWeightOperand;
}

// Applies the engine choice to a freshly constructed per-worker simulator.
void ConfigureEngine(FiRunner& runner, CampaignEngine engine) {
  runner.accel().array().set_force_reference_step(engine ==
                                                  CampaignEngine::kReference);
}

// `trace` is non-null iff the engine runs differentially.
ExperimentRecord RunOneExperiment(const CampaignConfig& config,
                                  const Int32Tensor& golden_output,
                                  const ClassifyContext& context,
                                  FiRunner& runner, FaultSpec fault,
                                  const GoldenTrace* trace) {
  if (fault.kind == FaultKind::kTransientFlip) {
    // Rebase the relative strike offset onto this simulator's clock.
    fault.at_cycle += runner.accel().cycles();
  }
  const RunResult faulty =
      trace != nullptr
          ? runner.RunFaultyDifferential(config.workload, config.dataflow,
                                         {&fault, 1}, *trace)
          : runner.RunFaulty(config.workload, config.dataflow, {&fault, 1});
  const CorruptionMap map = ExtractCorruption(golden_output, faulty.output);

  ExperimentRecord record;
  record.fault = fault;
  record.observed = Classify(map, context);
  record.corrupted_count = map.count();
  record.max_abs_delta = map.max_abs_delta;
  record.fault_activations = faulty.fault_activations;
  record.cycles = faulty.cycles;
  record.pe_steps = faulty.pe_steps;
  record.pe_steps_skipped = faulty.pe_steps_skipped;

  if (PredictorCoversSignal(config.signal)) {
    const PredictedPattern prediction = PredictPattern(
        config.workload, config.accel, config.dataflow, fault);
    record.predicted = prediction.pattern;
    record.prediction_exact = map.corrupted == prediction.coords;
    record.observed_within_predicted =
        std::includes(prediction.coords.begin(), prediction.coords.end(),
                      map.corrupted.begin(), map.corrupted.end());
  } else {
    // No analytical model for this signal; record the observation only.
    record.predicted = PatternClass::kOther;
    record.prediction_exact = false;
    record.observed_within_predicted = false;
  }
  return record;
}

}  // namespace

CampaignResult RunCampaign(const CampaignConfig& config) {
  return RunCampaignParallel(config, 1);
}

CampaignResult RunCampaignParallel(const CampaignConfig& config,
                                   int threads) {
  config.accel.Validate();
  config.workload.Validate();
  SAFFIRE_CHECK_MSG(threads >= 1 && threads <= 256, "threads=" << threads);

  CampaignResult result;
  result.config = config;

  // The golden run: recomputed through the instrumented loop under
  // kReference (the pre-optimization baseline), served from the process-wide
  // cache otherwise. `cached` keeps the shared entry (and its trace) alive
  // for the workers.
  std::shared_ptr<const GoldenRunCache::Entry> cached;
  RunResult reference_golden;
  const RunResult* golden = nullptr;
  const GoldenTrace* trace = nullptr;
  if (config.engine == CampaignEngine::kReference) {
    FiRunner golden_runner(config.accel);
    ConfigureEngine(golden_runner, config.engine);
    reference_golden =
        golden_runner.RunGolden(config.workload, config.dataflow);
    golden = &reference_golden;
  } else {
    bool hit = false;
    cached = GoldenRunCache::Instance().GetOrCompute(
        config.accel, config.workload, config.dataflow, &hit);
    golden = &cached->result;
    result.golden_cache_hit = hit;
    if (config.engine == CampaignEngine::kDifferential) {
      trace = &cached->trace;
    }
  }
  result.golden_cycles = golden->cycles;
  result.golden_pe_steps = golden->pe_steps;

  const ClassifyContext context =
      MakeClassifyContext(config.workload, config.accel, config.dataflow);
  const std::vector<PeCoord> sites = CampaignSites(config);
  const std::vector<FaultSpec> faults =
      PlanFaults(config, sites, golden->cycles);
  SAFFIRE_LOG_INFO << "campaign: " << config.ToString() << " — "
                   << sites.size() << " fault sites, " << threads
                   << " thread(s), " << ToString(config.engine) << " engine";

  if (threads == 1 || faults.size() < 2) {
    FiRunner runner(config.accel);
    ConfigureEngine(runner, config.engine);
    result.records.reserve(faults.size());
    for (const FaultSpec& fault : faults) {
      result.records.push_back(RunOneExperiment(config, golden->output,
                                                context, runner, fault,
                                                trace));
    }
    return result;
  }

  // Chunked ranges with per-worker record buffers: workers never write to
  // shared cache lines (the former atomic-counter loop interleaved adjacent
  // result.records[i] slots across workers), and the in-order merge at join
  // preserves the serial record order bit-for-bit.
  const std::size_t n = faults.size();
  const std::size_t worker_count =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  std::vector<std::vector<ExperimentRecord>> chunks(worker_count);
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&, w]() {
      const std::size_t begin = n * w / worker_count;
      const std::size_t end = n * (w + 1) / worker_count;
      FiRunner runner(config.accel);
      ConfigureEngine(runner, config.engine);
      std::vector<ExperimentRecord>& local = chunks[w];
      local.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        local.push_back(RunOneExperiment(config, golden->output, context,
                                         runner, faults[i], trace));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.records.reserve(n);
  for (std::vector<ExperimentRecord>& chunk : chunks) {
    result.records.insert(result.records.end(),
                          std::make_move_iterator(chunk.begin()),
                          std::make_move_iterator(chunk.end()));
  }
  return result;
}

std::uint64_t CampaignResult::FaultyPeSteps() const {
  std::uint64_t total = 0;
  for (const ExperimentRecord& record : records) total += record.pe_steps;
  return total;
}

std::uint64_t CampaignResult::FaultyPeStepsSkipped() const {
  std::uint64_t total = 0;
  for (const ExperimentRecord& record : records) {
    total += record.pe_steps_skipped;
  }
  return total;
}

std::map<PatternClass, std::int64_t> CampaignResult::Histogram() const {
  std::map<PatternClass, std::int64_t> histogram;
  for (const ExperimentRecord& record : records) {
    ++histogram[record.observed];
  }
  return histogram;
}

std::int64_t CampaignResult::MaskedCount() const {
  std::int64_t masked = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed == PatternClass::kMasked) ++masked;
  }
  return masked;
}

PatternClass CampaignResult::DominantClass() const {
  PatternClass best = PatternClass::kMasked;
  std::int64_t best_count = 0;
  for (const auto& [pattern, count] : Histogram()) {
    if (pattern == PatternClass::kMasked) continue;
    if (count > best_count) {
      best = pattern;
      best_count = count;
    }
  }
  return best;
}

double CampaignResult::ClassAgreement() const {
  if (records.empty()) return 1.0;
  std::int64_t agree = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed == record.predicted) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(records.size());
}

double CampaignResult::ExactAgreement() const {
  if (records.empty()) return 1.0;
  std::int64_t exact = 0;
  for (const ExperimentRecord& record : records) {
    if (record.prediction_exact) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(records.size());
}

double CampaignResult::ContainmentRate() const {
  if (records.empty()) return 1.0;
  std::int64_t contained = 0;
  for (const ExperimentRecord& record : records) {
    if (record.observed_within_predicted) ++contained;
  }
  return static_cast<double>(contained) /
         static_cast<double>(records.size());
}

bool CampaignResult::SingleClassProperty() const {
  PatternClass seen = PatternClass::kMasked;
  for (const ExperimentRecord& record : records) {
    if (record.observed == PatternClass::kMasked) continue;
    if (seen == PatternClass::kMasked) {
      seen = record.observed;
    } else if (record.observed != seen) {
      return false;
    }
  }
  return true;
}

}  // namespace saffire
