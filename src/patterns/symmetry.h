// Fault-site symmetry reduction.
//
// The paper observes (Sec. IV, Discussion) that "the fault pattern class
// remains the same irrespective of the position of the faulty MAC unit"
// and proposes using this symmetry "to reduce the number of FI
// experiments". The determinism result makes the reduction precise: two
// fault sites are equivalent for a configuration iff their predicted
// corruption reaches are identical — under WS every site in an array
// column collapses into one class representative (256 → ≤16 experiments on
// the 16×16 array), under IS every site in a column likewise, while OS
// keeps all sites distinct (each owns different output coordinates).
#pragma once

#include <cstdint>
#include <vector>

#include "fi/fault.h"
#include "fi/workload.h"
#include "patterns/predictor.h"

namespace saffire {

struct SiteEquivalenceClass {
  PeCoord representative;            // first site (row-major order)
  std::vector<PeCoord> members;      // all equivalent sites, row-major
  PredictedPattern prediction;       // shared predicted reach & class

  bool operator==(const SiteEquivalenceClass&) const = default;
};

// Partitions every PE of the array into equivalence classes of identical
// predicted reach for stuck-at faults on the adder output. Classes are
// ordered by their representative (row-major).
std::vector<SiteEquivalenceClass> PartitionFaultSites(
    const WorkloadSpec& workload, const AccelConfig& accel,
    Dataflow dataflow);

// The record-identity partition over an explicit site list (e.g. a sampled
// campaign's sites, in campaign order) and an explicit fault axis: the
// kind, signal, bit, and polarity come from `prototype` (its pe is
// rewritten per site), so the partition matches exactly the faults the
// campaign will inject. The signal must be predictor-covered (kAdderOut /
// kMulOut / kWeightOperand — PredictPattern's contract).
//
// Unlike the whole-array overload above, the key here is (array row,
// reach normalized to its bounding-box origin), not the raw reach: two
// same-row sites with congruent reaches are column translates of each
// other, and with column-invariant operand fills the translated experiment
// produces a record identical in every field — which is what lets the
// campaign layer synthesize a member's record from its representative's.
// Same-column sites share the paper's pattern CLASS but not the full
// record (the fault sees row-dependent values), so they stay separate.
//
// Each class's representative is its first member in `sites` order and
// members keep that order, which is what lets a campaign map every
// experiment onto the earliest equivalent one. `cache`, when non-null,
// supplies (and memoizes) the predictions — pass the campaign's
// PredictionCache so the partition shares the per-column memo with record
// building instead of re-deriving it.
std::vector<SiteEquivalenceClass> PartitionFaultSites(
    const std::vector<PeCoord>& sites, const FaultSpec& prototype,
    const WorkloadSpec& workload, const AccelConfig& accel, Dataflow dataflow,
    PredictionCache* cache = nullptr);

// Experiments saved by running one representative per class instead of
// every site: (num_pes − num_classes) / num_pes.
double SymmetryReductionFactor(const WorkloadSpec& workload,
                               const AccelConfig& accel, Dataflow dataflow);

}  // namespace saffire
