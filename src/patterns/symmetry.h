// Fault-site symmetry reduction.
//
// The paper observes (Sec. IV, Discussion) that "the fault pattern class
// remains the same irrespective of the position of the faulty MAC unit"
// and proposes using this symmetry "to reduce the number of FI
// experiments". The determinism result makes the reduction precise: two
// fault sites are equivalent for a configuration iff their predicted
// corruption reaches are identical — under WS every site in an array
// column collapses into one class representative (256 → ≤16 experiments on
// the 16×16 array), under IS every site in a column likewise, while OS
// keeps all sites distinct (each owns different output coordinates).
#pragma once

#include <cstdint>
#include <vector>

#include "fi/fault.h"
#include "fi/workload.h"
#include "patterns/predictor.h"

namespace saffire {

struct SiteEquivalenceClass {
  PeCoord representative;            // first site (row-major order)
  std::vector<PeCoord> members;      // all equivalent sites, row-major
  PredictedPattern prediction;       // shared predicted reach & class

  bool operator==(const SiteEquivalenceClass&) const = default;
};

// Partitions every PE of the array into equivalence classes of identical
// predicted reach for stuck-at faults on the adder output. Classes are
// ordered by their representative (row-major).
std::vector<SiteEquivalenceClass> PartitionFaultSites(
    const WorkloadSpec& workload, const AccelConfig& accel,
    Dataflow dataflow);

// Experiments saved by running one representative per class instead of
// every site: (num_pes − num_classes) / num_pes.
double SymmetryReductionFactor(const WorkloadSpec& workload,
                               const AccelConfig& accel, Dataflow dataflow);

}  // namespace saffire
