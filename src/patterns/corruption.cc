#include "patterns/corruption.h"

#include <algorithm>
#include <cstdlib>
#include <span>

#include "common/check.h"

namespace saffire {

std::vector<std::int64_t> CorruptionMap::DistinctCols() const {
  std::vector<std::int64_t> cols_out;
  cols_out.reserve(corrupted.size());
  for (const MatrixCoord& coord : corrupted) cols_out.push_back(coord.col);
  std::sort(cols_out.begin(), cols_out.end());
  cols_out.erase(std::unique(cols_out.begin(), cols_out.end()),
                 cols_out.end());
  return cols_out;
}

std::vector<std::int64_t> CorruptionMap::DistinctRows() const {
  std::vector<std::int64_t> rows_out;
  rows_out.reserve(corrupted.size());
  for (const MatrixCoord& coord : corrupted) rows_out.push_back(coord.row);
  std::sort(rows_out.begin(), rows_out.end());
  rows_out.erase(std::unique(rows_out.begin(), rows_out.end()),
                 rows_out.end());
  return rows_out;
}

bool CorruptionMap::ColumnFullyCorrupted(std::int64_t col) const {
  std::int64_t hits = 0;
  for (const MatrixCoord& coord : corrupted) {
    if (coord.col == col) ++hits;
  }
  return hits == rows;
}

CorruptionMap ExtractCorruption(const Int32Tensor& golden,
                                const Int32Tensor& faulty) {
  SAFFIRE_CHECK_MSG(golden.rank() == 2 && golden.shape() == faulty.shape(),
                    "golden " << golden.ShapeString() << " vs faulty "
                              << faulty.ShapeString());
  CorruptionMap map;
  map.rows = golden.dim(0);
  map.cols = golden.dim(1);
  // Flat scan over the contiguous storage: the checked (r, c) accessor pays
  // two bounds checks per element, which dominates campaign-scale
  // extraction. Coordinates are reconstructed only on a mismatch, so the
  // common mostly-equal case is a straight linear compare. The flat index
  // is row-major, which keeps `corrupted` in its documented order.
  const std::span<const std::int32_t> golden_data = golden.data();
  const std::span<const std::int32_t> faulty_data = faulty.data();
  for (std::size_t i = 0; i < golden_data.size(); ++i) {
    if (golden_data[i] == faulty_data[i]) continue;
    const auto index = static_cast<std::int64_t>(i);
    map.corrupted.push_back(MatrixCoord{index / map.cols, index % map.cols});
    const std::int64_t delta =
        std::llabs(static_cast<std::int64_t>(faulty_data[i]) -
                   static_cast<std::int64_t>(golden_data[i]));
    map.max_abs_delta = std::max(map.max_abs_delta, delta);
    map.min_abs_delta =
        map.min_abs_delta == 0 ? delta : std::min(map.min_abs_delta, delta);
  }
  return map;
}

}  // namespace saffire
