#include "patterns/corruption.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace saffire {

std::vector<std::int64_t> CorruptionMap::DistinctCols() const {
  std::set<std::int64_t> cols_set;
  for (const MatrixCoord& coord : corrupted) cols_set.insert(coord.col);
  return {cols_set.begin(), cols_set.end()};
}

std::vector<std::int64_t> CorruptionMap::DistinctRows() const {
  std::set<std::int64_t> rows_set;
  for (const MatrixCoord& coord : corrupted) rows_set.insert(coord.row);
  return {rows_set.begin(), rows_set.end()};
}

bool CorruptionMap::ColumnFullyCorrupted(std::int64_t col) const {
  std::int64_t hits = 0;
  for (const MatrixCoord& coord : corrupted) {
    if (coord.col == col) ++hits;
  }
  return hits == rows;
}

CorruptionMap ExtractCorruption(const Int32Tensor& golden,
                                const Int32Tensor& faulty) {
  SAFFIRE_CHECK_MSG(golden.rank() == 2 && golden.shape() == faulty.shape(),
                    "golden " << golden.ShapeString() << " vs faulty "
                              << faulty.ShapeString());
  CorruptionMap map;
  map.rows = golden.dim(0);
  map.cols = golden.dim(1);
  for (std::int64_t r = 0; r < map.rows; ++r) {
    for (std::int64_t c = 0; c < map.cols; ++c) {
      if (golden(r, c) == faulty(r, c)) continue;
      map.corrupted.push_back(MatrixCoord{r, c});
      const std::int64_t delta =
          std::llabs(static_cast<std::int64_t>(faulty(r, c)) -
                     static_cast<std::int64_t>(golden(r, c)));
      map.max_abs_delta = std::max(map.max_abs_delta, delta);
      map.min_abs_delta =
          map.min_abs_delta == 0 ? delta : std::min(map.min_abs_delta, delta);
    }
  }
  return map;
}

}  // namespace saffire
