// CSV emission for campaign results and benchmark tables.
//
// Fields containing commas, quotes, or newlines are quoted per RFC 4180 so
// result files load cleanly into pandas/spreadsheets for post-analysis.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace saffire {

// Streams rows to an std::ostream. The header is written on construction;
// every row must have the same arity as the header.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void WriteRow(const std::vector<std::string>& fields);

  std::size_t rows_written() const { return rows_written_; }

 private:
  std::ostream& out_;
  std::size_t arity_;
  std::size_t rows_written_ = 0;
};

// Quotes a single field per RFC 4180 if needed.
std::string CsvEscape(const std::string& field);

}  // namespace saffire
