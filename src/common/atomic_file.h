// Atomic file replacement: write to `<path>.tmp`, fsync-free flush, then
// rename over the destination. Readers (and a crashed writer's next run)
// either see the complete previous file or the complete new one — never a
// half-written result that looks finished. Used for derived outputs whose
// partial forms are misleading (merged CSVs, compacted checkpoints, metrics
// expositions); live JSONL checkpoints intentionally append to their final
// path instead, because a mid-run kill must leave the prefix behind.
#pragma once

#include <fstream>
#include <string>

namespace saffire {

class AtomicFileWriter {
 public:
  // Opens `<path>.tmp` for writing; throws std::invalid_argument when the
  // temporary cannot be created.
  explicit AtomicFileWriter(std::string path);

  // Removes the temporary if Commit() was never reached (error paths leave
  // the destination untouched).
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // The stream to write through before Commit().
  std::ostream& stream() { return out_; }

  // Flushes, closes, and renames the temporary over `path`. Throws
  // std::invalid_argument if the stream failed or the rename does; the
  // writer is unusable afterwards.
  void Commit();

  bool committed() const { return committed_; }
  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

}  // namespace saffire
