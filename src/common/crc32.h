// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-line
// integrity check of checkpoint format v2 (service/checkpoint.h). A JSONL
// checkpoint line that passes JSON parsing can still carry a flipped digit
// after disk or transfer corruption; the CRC turns "parses" into "is the
// line the sink wrote", so LoadSweepCheckpoint can drop damaged lines
// instead of resuming from poisoned records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace saffire {

// One-shot CRC-32 of `data` (initial value 0, standard final XOR).
std::uint32_t Crc32(std::string_view data);
std::uint32_t Crc32(const void* data, std::size_t size);

// Streaming form: feed ExtendCrc32 the running value (start from 0).
std::uint32_t ExtendCrc32(std::uint32_t crc, const void* data,
                          std::size_t size);

}  // namespace saffire
