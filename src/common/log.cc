#include "common/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace saffire {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("SAFFIRE_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string value(env);
  if (value == "trace") return LogLevel::kTrace;
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

std::string ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStore().load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(GetLogLevel());
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << ToString(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::lock_guard<std::mutex> lock(SinkMutex());
  std::cerr << stream_.str() << '\n';
}

}  // namespace detail
}  // namespace saffire
