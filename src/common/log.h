// Minimal leveled logger.
//
// Campaign runners emit progress at kInfo; the simulator emits per-cycle
// detail at kTrace (off by default — a 112×112 tiled campaign produces
// millions of cycles). The level is a process-wide setting, adjustable via
// the SAFFIRE_LOG_LEVEL environment variable (trace|debug|info|warn|error)
// or programmatically with SetLogLevel.
#pragma once

#include <sstream>
#include <string>

namespace saffire {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
};

// Returns "TRACE" / "DEBUG" / ....
std::string ToString(LogLevel level);

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// True if a message at `level` would be emitted; use to skip expensive
// message construction.
bool LogEnabled(LogLevel level);

namespace detail {

// Streams the message and writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace saffire

#define SAFFIRE_LOG(level)                                          \
  if (!::saffire::LogEnabled(level)) {                              \
  } else                                                            \
    ::saffire::detail::LogMessage(level, __FILE__, __LINE__).stream()

#define SAFFIRE_LOG_TRACE SAFFIRE_LOG(::saffire::LogLevel::kTrace)
#define SAFFIRE_LOG_DEBUG SAFFIRE_LOG(::saffire::LogLevel::kDebug)
#define SAFFIRE_LOG_INFO SAFFIRE_LOG(::saffire::LogLevel::kInfo)
#define SAFFIRE_LOG_WARN SAFFIRE_LOG(::saffire::LogLevel::kWarn)
#define SAFFIRE_LOG_ERROR SAFFIRE_LOG(::saffire::LogLevel::kError)
