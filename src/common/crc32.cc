#include "common/crc32.h"

#include <array>

namespace saffire {

namespace {

// The 256-entry table for the reflected IEEE polynomial, generated once at
// compile time.
constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

std::uint32_t ExtendCrc32(std::uint32_t crc, const void* data,
                          std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kCrc32Table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  return ExtendCrc32(0, data, size);
}

std::uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

}  // namespace saffire
