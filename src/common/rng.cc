#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace saffire {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // xoshiro's all-zero state is a fixed point; SplitMix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SAFFIRE_CHECK_MSG(lo <= hi, "lo=" << lo << " hi=" << hi);
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling over the largest multiple of `range`.
  const std::uint64_t limit = (~std::uint64_t{0} / range) * range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   draw % range);
}

double Rng::UniformDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

bool Rng::Bernoulli(double p) {
  SAFFIRE_CHECK_MSG(p >= 0.0 && p <= 1.0, "p=" << p);
  return UniformDouble() < p;
}

std::vector<std::int64_t> Rng::SampleWithoutReplacement(
    std::int64_t population, std::int64_t count) {
  SAFFIRE_CHECK_MSG(count >= 0 && count <= population,
                    "count=" << count << " population=" << population);
  // Floyd's algorithm: O(count) draws, no O(population) allocation.
  std::vector<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(count));
  for (std::int64_t j = population - count; j < population; ++j) {
    const std::int64_t t = UniformInt(0, j);
    bool duplicate = false;
    for (const std::int64_t c : chosen) {
      if (c == t) {
        duplicate = true;
        break;
      }
    }
    chosen.push_back(duplicate ? j : t);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Rng Rng::Fork() { return Rng((*this)()); }

}  // namespace saffire
