// Small string utilities shared by reports, CSV emission, and CLI parsing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace saffire {

// Joins `parts` with `separator` ("a,b,c").
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char separator);

// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

// "%.3f"-style fixed formatting without <format> (gcc 12's is incomplete).
std::string FormatDouble(double value, int decimals);

// Left-pads with spaces to at least `width` characters.
std::string PadLeft(std::string_view text, std::size_t width);

// Right-pads with spaces to at least `width` characters.
std::string PadRight(std::string_view text, std::size_t width);

// Parses a signed integer; throws std::invalid_argument on trailing junk.
std::int64_t ParseInt(std::string_view text);

// Parses a decimal floating-point value ("0.25"); throws
// std::invalid_argument on trailing junk.
double ParseDouble(std::string_view text);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace saffire
