#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/strings.h"

namespace saffire {

namespace {

[[noreturn]] void ThrowParse(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at offset " +
                              std::to_string(pos));
}

}  // namespace

// Recursive-descent parser over a string_view with an explicit cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) ThrowParse(pos_, "trailing characters");
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) ThrowParse(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      ThrowParse(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kString;
        value.scalar_ = ParseString();
        return value;
      }
      case 't': {
        if (!Consume("true")) ThrowParse(pos_, "invalid literal");
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = true;
        return value;
      }
      case 'f': {
        if (!Consume("false")) ThrowParse(pos_, "invalid literal");
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = false;
        return value;
      }
      case 'n': {
        if (!Consume("null")) ThrowParse(pos_, "invalid literal");
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      value.object_[std::move(key)] = ParseValue();
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = Peek();
      ++pos_;
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          out += ParseUnicodeEscape();
          break;
        }
        default:
          ThrowParse(pos_ - 1, "invalid escape");
      }
    }
  }

  // Decodes the 4 hex digits after \u to UTF-8 (surrogate pairs are not
  // combined — each half is encoded independently, which is lossless for
  // the BMP text the framework ever emits).
  std::string ParseUnicodeEscape() {
    if (pos_ + 4 > text_.size()) ThrowParse(pos_, "truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        ThrowParse(pos_ - 1, "invalid \\u escape");
      }
    }
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      ThrowParse(start, "invalid number");
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.scalar_ = std::string(text_.substr(start, pos_ - start));
    // Validate eagerly so malformed tokens fail at parse time, not at the
    // first accessor.
    char* end = nullptr;
    std::strtod(value.scalar_.c_str(), &end);
    if (end != value.scalar_.c_str() + value.scalar_.size()) {
      ThrowParse(start, "invalid number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

bool JsonValue::AsBool() const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kBool, "json value is not a bool");
  return bool_;
}

std::int64_t JsonValue::AsInt() const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kNumber, "json value is not a number");
  return ParseInt(scalar_);
}

std::uint64_t JsonValue::AsUint() const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kNumber, "json value is not a number");
  SAFFIRE_CHECK_MSG(!scalar_.empty() && scalar_[0] != '-',
                    "negative value '" << scalar_ << "'");
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(scalar_.c_str(), &end, 10);
  SAFFIRE_CHECK_MSG(end == scalar_.c_str() + scalar_.size(),
                    "not an integer: '" << scalar_ << "'");
  return value;
}

double JsonValue::AsDouble() const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kNumber, "json value is not a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::string& JsonValue::AsString() const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kString, "json value is not a string");
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kArray, "json value is not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kObject, "json value is not an object");
  return object_;
}

bool JsonValue::Has(const std::string& key) const {
  return Find(key) != nullptr;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const JsonValue* value = Find(key);
  SAFFIRE_CHECK_MSG(value != nullptr, "missing json key '" << key << "'");
  return *value;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  SAFFIRE_CHECK_MSG(kind_ == Kind::kObject, "json value is not an object");
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  SAFFIRE_ASSERT_MSG(stack_.back() != Frame::kObjectKey,
                     "json value emitted where an object key is required");
  if (stack_.back() == Frame::kArray) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
  }
}

void JsonWriter::AfterValue() {
  if (!stack_.empty() && stack_.back() == Frame::kObjectValue) {
    stack_.back() = Frame::kObjectKey;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back(Frame::kObjectKey);
  first_.push_back(true);
  out_ << '{';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  SAFFIRE_ASSERT_MSG(!stack_.empty() && stack_.back() == Frame::kObjectKey,
                     "unbalanced EndObject");
  stack_.pop_back();
  first_.pop_back();
  out_ << '}';
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  out_ << '[';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  SAFFIRE_ASSERT_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                     "unbalanced EndArray");
  stack_.pop_back();
  first_.pop_back();
  out_ << ']';
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  SAFFIRE_ASSERT_MSG(!stack_.empty() && stack_.back() == Frame::kObjectKey,
                     "json key emitted outside an object");
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  out_ << '"' << JsonEscape(key) << "\":";
  stack_.back() = Frame::kObjectValue;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ << '"' << JsonEscape(value) << '"';
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ << value;
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Uint(std::uint64_t value) {
  BeforeValue();
  out_ << value;
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_ << FormatDouble(value, 6);
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
  AfterValue();
  return *this;
}

}  // namespace saffire
