#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/check.h"

namespace saffire {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string FormatDouble(double value, int decimals) {
  SAFFIRE_CHECK_MSG(decimals >= 0 && decimals <= 17, "decimals=" << decimals);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string PadLeft(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string PadRight(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::int64_t ParseInt(std::string_view text) {
  const std::string trimmed = Trim(text);
  std::int64_t value = 0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  SAFFIRE_CHECK_MSG(ec == std::errc() && ptr == end,
                    "not an integer: '" << trimmed << "'");
  return value;
}

double ParseDouble(std::string_view text) {
  const std::string trimmed = Trim(text);
  double value = 0.0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  SAFFIRE_CHECK_MSG(ec == std::errc() && ptr == end,
                    "not a number: '" << trimmed << "'");
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace saffire
