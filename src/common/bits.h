// Bit-level helpers used to model stuck-at and transient faults on the
// hardware signals of the simulated systolic array.
//
// All signal values are carried as int64_t inside the simulator regardless
// of the architectural width of the signal (8/16/32 bits); the helpers here
// interpret them under a given width with two's-complement semantics so the
// simulator can inject a fault into "bit b of a w-bit signal" exactly as an
// RTL-level injector would.
#pragma once

#include <cstdint>
#include <string>

namespace saffire {

// Polarity of a stuck-at fault: the affected wire permanently reads 0 or 1.
enum class StuckPolarity : std::uint8_t { kStuckAt0 = 0, kStuckAt1 = 1 };

// Returns "SA0" / "SA1".
std::string ToString(StuckPolarity polarity);

// Parses "SA0"/"SA1" (or lowercase "sa0"/"sa1", the CLI spelling); throws
// std::invalid_argument on unknown names.
StuckPolarity StuckPolarityFromString(const std::string& name);

// Returns `value` truncated to the low `width` bits and sign-extended back
// to 64 bits (two's complement), i.e. what a `width`-bit register would hold.
std::int64_t SignExtend(std::int64_t value, int width);

// Returns `value` with bit `bit` forced to `polarity`, then re-interpreted
// as a `width`-bit two's-complement quantity. `bit` must be in [0, width).
std::int64_t ApplyStuckAt(std::int64_t value, int bit, StuckPolarity polarity,
                          int width);

// Returns `value` with bit `bit` inverted, re-interpreted at `width` bits.
// Models a transient single-bit flip on a `width`-bit signal.
std::int64_t FlipBit(std::int64_t value, int bit, int width);

// Returns true if bit `bit` of `value` is set (bit must be in [0, 63]).
bool TestBit(std::int64_t value, int bit);

// Renders the low `width` bits of `value` as a binary string, MSB first.
// Used by traces and debug reports.
std::string ToBinary(std::int64_t value, int width);

}  // namespace saffire
