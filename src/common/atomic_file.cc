#include "common/atomic_file.h"

#include <cstdio>
#include <utility>

#include "common/check.h"

namespace saffire {

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  SAFFIRE_CHECK_MSG(out_.is_open(),
                    "cannot open temporary '" << temp_path_ << "'");
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  out_.close();
  std::remove(temp_path_.c_str());
}

void AtomicFileWriter::Commit() {
  SAFFIRE_CHECK_MSG(!committed_, "'" << path_ << "' already committed");
  out_.flush();
  SAFFIRE_CHECK_MSG(out_.good(), "write to '" << temp_path_ << "' failed");
  out_.close();
  SAFFIRE_CHECK_MSG(std::rename(temp_path_.c_str(), path_.c_str()) == 0,
                    "cannot rename '" << temp_path_ << "' to '" << path_
                                      << "'");
  committed_ = true;
}

}  // namespace saffire
