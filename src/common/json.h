// Minimal JSON support for the campaign service: sweep specifications are
// serialized as JSON documents and streamed results as JSONL checkpoint
// lines (service/checkpoint.h), so the parser/writer pair lives in common/
// with no third-party dependency.
//
// The parser accepts standard JSON (objects, arrays, strings with escapes,
// numbers, booleans, null). Numbers keep their raw text so 64-bit integers
// round-trip exactly — AsInt()/AsUint() re-parse the original token instead
// of going through a double.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace saffire {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  // Parses one complete JSON document; throws std::invalid_argument on
  // malformed input or trailing garbage.
  static JsonValue Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Scalar accessors; throw std::invalid_argument on a kind mismatch (or,
  // for the integer accessors, a non-integral number token).
  bool AsBool() const;
  std::int64_t AsInt() const;
  std::uint64_t AsUint() const;
  double AsDouble() const;
  const std::string& AsString() const;

  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  // Object accessors.
  bool Has(const std::string& key) const;
  // Returns the member or throws std::invalid_argument naming the key.
  const JsonValue& At(const std::string& key) const;
  // Returns nullptr when absent.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  // kNumber: the raw token; kString: the decoded text.
  std::string scalar_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

// Escapes `text` for embedding between JSON double quotes (adds no quotes
// itself): ", \, and control characters become escape sequences.
std::string JsonEscape(std::string_view text);

// Streaming JSON writer with automatic comma placement. Usage:
//   JsonWriter w(out);
//   w.BeginObject().Key("bit").Int(8).Key("tags").BeginArray()
//    .String("a").EndArray().EndObject();
// Misuse (a value where a key is required, unbalanced End*) throws
// saffire::InternalError via SAFFIRE_ASSERT.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& Uint(std::uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

 private:
  enum class Frame : std::uint8_t { kObjectKey, kObjectValue, kArray };

  void BeforeValue();
  void AfterValue();

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;
};

}  // namespace saffire
