// Precondition / invariant checking for the saffire library.
//
// All public entry points validate their arguments with SAFFIRE_CHECK and
// throw std::invalid_argument on violation; internal invariants use
// SAFFIRE_ASSERT and throw saffire::InternalError. Both carry the failing
// expression and source location so campaign drivers can report precisely
// which configuration was rejected.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace saffire {

// Thrown when an internal invariant of the library is violated. Seeing this
// exception always indicates a bug in saffire itself, never a bad input.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void ThrowAssertFailure(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace saffire

// Validates a caller-supplied argument; throws std::invalid_argument.
#define SAFFIRE_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::saffire::detail::ThrowCheckFailure(#expr, __FILE__, __LINE__, "");   \
    }                                                                        \
  } while (false)

// Same as SAFFIRE_CHECK but with a streamed message, e.g.
//   SAFFIRE_CHECK_MSG(rows > 0, "rows=" << rows);
#define SAFFIRE_CHECK_MSG(expr, stream_expr)                                 \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream saffire_check_os_;                                  \
      saffire_check_os_ << stream_expr;                                      \
      ::saffire::detail::ThrowCheckFailure(#expr, __FILE__, __LINE__,        \
                                           saffire_check_os_.str());         \
    }                                                                        \
  } while (false)

// Internal invariant; throws saffire::InternalError.
#define SAFFIRE_ASSERT(expr)                                                 \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::saffire::detail::ThrowAssertFailure(#expr, __FILE__, __LINE__, "");  \
    }                                                                        \
  } while (false)

#define SAFFIRE_ASSERT_MSG(expr, stream_expr)                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream saffire_assert_os_;                                 \
      saffire_assert_os_ << stream_expr;                                     \
      ::saffire::detail::ThrowAssertFailure(#expr, __FILE__, __LINE__,       \
                                            saffire_assert_os_.str());       \
    }                                                                        \
  } while (false)
