// Deterministic pseudo-random number generation for reproducible fault
// injection campaigns.
//
// Every campaign takes an explicit 64-bit seed; two runs with the same seed
// pick identical fault sites, workload data, and sampling orders on every
// platform. The generator is xoshiro256** (public domain, Blackman & Vigna),
// seeded via SplitMix64 so that nearby seeds produce unrelated streams.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace saffire {

// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
// can also drive <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi. Uses rejection
  // sampling (Lemire-style bounded generation) so the result is unbiased.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Standard normal variate (Box–Muller, fully deterministic per seed).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Returns true with probability p (p in [0, 1]).
  bool Bernoulli(double p);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  // Draws `count` distinct values from [0, population) in increasing order.
  // Requires count <= population. Used to sample fault sites from large
  // campaign spaces.
  std::vector<std::int64_t> SampleWithoutReplacement(std::int64_t population,
                                                     std::int64_t count);

  // Derives an independent child generator; used to give each experiment in
  // a campaign its own stream so experiments can be reordered or parallelized
  // without perturbing each other's randomness.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace saffire
