#include "common/csv.h"

#include "common/check.h"

namespace saffire {

std::string CsvEscape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), arity_(header.size()) {
  SAFFIRE_CHECK(!header.empty());
  WriteRow(header);
  rows_written_ = 0;  // header does not count as a data row
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  SAFFIRE_CHECK_MSG(fields.size() == arity_,
                    "row arity " << fields.size() << " != header " << arity_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << CsvEscape(fields[i]);
  }
  out_ << '\n';
  ++rows_written_;
}

}  // namespace saffire
