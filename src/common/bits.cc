#include "common/bits.h"

#include "common/check.h"

namespace saffire {

std::string ToString(StuckPolarity polarity) {
  return polarity == StuckPolarity::kStuckAt0 ? "SA0" : "SA1";
}

StuckPolarity StuckPolarityFromString(const std::string& name) {
  if (name == "SA0" || name == "sa0") return StuckPolarity::kStuckAt0;
  if (name == "SA1" || name == "sa1") return StuckPolarity::kStuckAt1;
  SAFFIRE_CHECK_MSG(false, "unknown stuck-at polarity '" << name << "'");
}

std::int64_t SignExtend(std::int64_t value, int width) {
  SAFFIRE_CHECK_MSG(width >= 1 && width <= 64, "width=" << width);
  if (width == 64) return value;
  const auto uvalue = static_cast<std::uint64_t>(value);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const std::uint64_t truncated = uvalue & mask;
  const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
  if ((truncated & sign_bit) != 0) {
    return static_cast<std::int64_t>(truncated | ~mask);
  }
  return static_cast<std::int64_t>(truncated);
}

std::int64_t ApplyStuckAt(std::int64_t value, int bit, StuckPolarity polarity,
                          int width) {
  SAFFIRE_CHECK_MSG(width >= 1 && width <= 64, "width=" << width);
  SAFFIRE_CHECK_MSG(bit >= 0 && bit < width,
                    "bit=" << bit << " width=" << width);
  auto uvalue = static_cast<std::uint64_t>(value);
  const std::uint64_t bit_mask = std::uint64_t{1} << bit;
  if (polarity == StuckPolarity::kStuckAt1) {
    uvalue |= bit_mask;
  } else {
    uvalue &= ~bit_mask;
  }
  return SignExtend(static_cast<std::int64_t>(uvalue), width);
}

std::int64_t FlipBit(std::int64_t value, int bit, int width) {
  SAFFIRE_CHECK_MSG(width >= 1 && width <= 64, "width=" << width);
  SAFFIRE_CHECK_MSG(bit >= 0 && bit < width,
                    "bit=" << bit << " width=" << width);
  const auto uvalue = static_cast<std::uint64_t>(value);
  return SignExtend(
      static_cast<std::int64_t>(uvalue ^ (std::uint64_t{1} << bit)), width);
}

bool TestBit(std::int64_t value, int bit) {
  SAFFIRE_CHECK_MSG(bit >= 0 && bit < 64, "bit=" << bit);
  return ((static_cast<std::uint64_t>(value) >> bit) & 1u) != 0;
}

std::string ToBinary(std::int64_t value, int width) {
  SAFFIRE_CHECK_MSG(width >= 1 && width <= 64, "width=" << width);
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int b = width - 1; b >= 0; --b) {
    out.push_back(TestBit(value, b) ? '1' : '0');
  }
  return out;
}

}  // namespace saffire
