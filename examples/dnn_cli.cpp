// Network-campaign CLI: sweep stuck-at faults over a whole quantized
// network and get per-pattern-class SDC / top-1 / ABFT coverage tables,
// plus optional per-experiment CSV / JSONL streams.
//
//   $ ./dnn_cli --network mlp --sites 16
//   $ ./dnn_cli --network extraction --rung cycle-accurate --csv out.csv
//   $ ./dnn_cli --network mlp --abft --bit 20,24 --layer -1,0,1
//         --jsonl net.jsonl
//   $ ./dnn_cli --spec net.json --resume net.jsonl --csv full.csv
//
// Network (dnn/network.h):
//   --network {extraction|mlp|cnn}  topology      (mlp)
//   --batch N          evaluation batch           (32)
//   --hidden N         MLP hidden width           (32)
//   --train-samples N  MLP training set size      (600)
//   --train-epochs N   MLP training epoch cap     (80)
//   --conv-channels N  CNN conv output channels   (4)
//   --extraction-k N --extraction-n N  extraction GEMM shape (16x16)
//   --net-seed N       weights/data seed          (7)
// Sweep axes (comma-separated lists expand to the cartesian product):
//   --dataflow LIST  {ws|os|is}                   (ws)
//   --signal LIST    {adder_out|mul_out|weight_operand|act_forward|
//                     south_forward}              (adder_out)
//   --polarity LIST  {sa0|sa1}                    (sa1)
//   --bit LIST       stuck bit                    (8)
//   --layer LIST     0-based injection scope, -1 = whole network (-1)
//   --mitigation LIST  {none|column_remap|row_remap|prune_channel|
//                     abft_correct}  graceful-degradation policies; each
//                    non-none campaign also runs a mitigated inference and
//                    records recovered accuracy / residual SDC (none)
// Sampling and hardware:
//   --sites N        sample N fault sites (0 = exhaustive)
//   --seed N         site-sampling / selfcheck seed (1)
//   --rows N --cols N  array dimensions           (16x16)
// Execution:
//   --rung {appfi|cycle-accurate}  execution rung (appfi). The appfi rung
//                    serves predictor-covered signals only; forwarding
//                    signals need cycle-accurate.
//   --abft           run every in-scope layer through ABFT
//                    verify-and-correct and record coverage
//   --perturb-mode {auto|set-bit|clear-bit|flip-bit|add-delta}  appfi
//                    perturbation; auto derives set/clear from each fault's
//                    polarity (auto)
//   --perturb-bit N --perturb-delta N  explicit perturbation parameters
//   --selfcheck-rate F  fraction of appfi experiments re-run on the
//                    cycle-accurate rung; a mismatch demotes the campaign
//                    (0 = off)
//   --max-retries N  extra attempts per experiment and rung before the
//                    failure policy applies (2)
//   --experiment-timeout-ms N  cooperative per-attempt deadline; an
//                    attempt observed to exceed it is classified failed
//                    and retried (0 = off)
//   --on-failure {quarantine|abort}  what happens when an experiment
//                    exhausts every retry on every rung: quarantine writes
//                    a re-simulatable "network-failed" JSONL line and keeps
//                    sweeping; abort rethrows (quarantine)
//   --resume PATH    replay records from a previous --jsonl stream
// Spec files and output:
//   --spec PATH      load the sweep from a JSON spec (exclusive with the
//                    network/axis flags above)
//   --print-spec     print the spec as JSON and exit without running
//   --csv PATH       per-experiment CSV (atomic: tmp + rename)
//   --jsonl PATH     CRC-sealed JSONL stream (doubles as a checkpoint)
//   --metrics-out PATH   export the metrics registry (saffire.dnn.*);
//                    '-' writes to stdout
//   --metrics-format {prom|json}  exposition format (prom)
// Shutdown and exit codes mirror campaign_cli: SIGINT/SIGTERM drain
// cooperatively and exit 128+signo with the JSONL checkpoint resumable;
// otherwise 0 for a healthy sweep, 3 when it completed but quarantined
// experiments or hit self-check mismatches, 1 for errors. SAFFIRE_CHAOS
// (service/chaos.h) injects deterministic failures for resilience testing.
#include <array>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/atomic_file.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "service/chaos.h"
#include "service/network_run.h"
#include "service/signal.h"

namespace {

using namespace saffire;

const std::set<std::string>& ValueFlags() {
  static const std::set<std::string> kFlags = {
      "network",      "batch",        "hidden",      "train-samples",
      "train-epochs", "conv-channels", "extraction-k", "extraction-n",
      "net-seed",     "dataflow",     "signal",      "polarity",
      "bit",          "layer",        "mitigation",  "sites",
      "seed",         "rows",         "cols",        "rung",
      "perturb-mode", "perturb-bit",  "perturb-delta", "selfcheck-rate",
      "max-retries",  "experiment-timeout-ms", "on-failure", "resume",
      "spec",         "csv",          "jsonl",       "metrics-out",
      "metrics-format"};
  return kFlags;
}

const std::set<std::string>& BoolFlags() {
  static const std::set<std::string> kFlags = {"abft", "print-spec", "help"};
  return kFlags;
}

NetworkSweepSpec SpecFromFlags(
    const std::map<std::string, std::string>& flags) {
  const auto flag = [&](const std::string& key, const std::string& fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };
  NetworkSweepSpec spec;
  spec.accel.array.rows =
      static_cast<std::int32_t>(ParseInt(flag("rows", "16")));
  spec.accel.array.cols =
      static_cast<std::int32_t>(ParseInt(flag("cols", "16")));

  spec.network.kind = ParseNetworkKind(flag("network", "mlp"));
  spec.network.batch = ParseInt(flag("batch", "32"));
  spec.network.hidden = ParseInt(flag("hidden", "32"));
  spec.network.train_samples = ParseInt(flag("train-samples", "600"));
  spec.network.train_epochs = ParseInt(flag("train-epochs", "80"));
  spec.network.conv_channels = ParseInt(flag("conv-channels", "4"));
  spec.network.extraction_k = ParseInt(flag("extraction-k", "16"));
  spec.network.extraction_n = ParseInt(flag("extraction-n", "16"));
  spec.network.seed =
      static_cast<std::uint64_t>(ParseInt(flag("net-seed", "7")));

  spec.dataflows.clear();
  for (const std::string& name : Split(flag("dataflow", "ws"), ',')) {
    spec.dataflows.push_back(DataflowFromString(Trim(name)));
  }
  spec.signals.clear();
  for (const std::string& name : Split(flag("signal", "adder_out"), ',')) {
    spec.signals.push_back(MacSignalFromString(Trim(name)));
  }
  spec.polarities.clear();
  for (const std::string& name : Split(flag("polarity", "sa1"), ',')) {
    spec.polarities.push_back(StuckPolarityFromString(Trim(name)));
  }
  spec.bits.clear();
  for (const std::string& text : Split(flag("bit", "8"), ',')) {
    spec.bits.push_back(static_cast<int>(ParseInt(Trim(text))));
  }
  spec.layers.clear();
  for (const std::string& text : Split(flag("layer", "-1"), ',')) {
    spec.layers.push_back(static_cast<int>(ParseInt(Trim(text))));
  }
  spec.mitigations.clear();
  for (const std::string& name : Split(flag("mitigation", "none"), ',')) {
    spec.mitigations.push_back(ParseMitigationPolicy(Trim(name)));
  }

  spec.max_sites = ParseInt(flag("sites", "0"));
  spec.seed = static_cast<std::uint64_t>(ParseInt(flag("seed", "1")));
  spec.rung = ParseNetworkRung(flag("rung", "appfi"));
  spec.abft = flags.count("abft") != 0;

  // --perturb-mode goes through ParsePerturbMode, with "auto" layered on
  // top (the polarity-derived default).
  const std::string mode = flag("perturb-mode", "auto");
  spec.perturb_auto = mode == "auto";
  if (!spec.perturb_auto) spec.perturb.mode = ParsePerturbMode(mode);
  spec.perturb.bit = static_cast<int>(ParseInt(flag("perturb-bit", "8")));
  spec.perturb.delta =
      static_cast<std::int32_t>(ParseInt(flag("perturb-delta", "0")));
  return spec;
}

// Per-pattern-class aggregation of the record stream: the SDC table the
// paper's reliability assessment builds, plus ABFT coverage per class.
struct ClassStats {
  std::int64_t experiments = 0;
  std::int64_t sdc = 0;
  std::int64_t top1_flips = 0;
  std::int64_t abft_detected = 0;
  std::int64_t abft_corrected = 0;
};

// Per-mitigation-policy aggregation: the graceful-degradation table
// comparing the unmitigated and mitigated outcomes of the same faults.
struct PolicyStats {
  std::int64_t experiments = 0;
  std::int64_t sdc = 0;
  std::int64_t mit_sdc = 0;
  std::int64_t correct_faulty = 0;
  std::int64_t mit_correct = 0;
  std::int64_t labelled = 0;  // experiments with accuracy semantics
};

class SummarySink : public NetworkRecordSink {
 public:
  void OnSweepBegin(const NetworkSweepSpec& spec,
                    const NetworkCampaignPlan& plan) override {
    (void)spec;
    campaigns_ = plan.campaigns;
  }

  void OnRecord(const NetworkRecord& record) override {
    ClassStats& stats = per_class_[static_cast<std::size_t>(record.pattern)];
    ++stats.experiments;
    if (record.sdc) ++stats.sdc;
    stats.top1_flips += record.top1_flips;
    if (record.abft_on && record.abft_diagnosis != AbftDiagnosis::kClean) {
      ++stats.abft_detected;
      if (record.abft_corrected) ++stats.abft_corrected;
    }
    abft_on_ = abft_on_ || record.abft_on;

    const MitigationPolicy policy =
        campaigns_[record.campaign_index].mitigation;
    if (policy != MitigationPolicy::kNone) {
      any_mitigated_ = true;
      PolicyStats& mit = per_policy_[static_cast<std::size_t>(policy)];
      ++mit.experiments;
      if (record.sdc) ++mit.sdc;
      if (record.mit_sdc) ++mit.mit_sdc;
      if (record.correct_faulty >= 0 && record.mit_correct_faulty >= 0) {
        ++mit.labelled;
        mit.correct_faulty += record.correct_faulty;
        mit.mit_correct += record.mit_correct_faulty;
      }
    }
  }

  void OnExperimentFailed(const NetworkFailedRecord& failed) override {
    (void)failed;
  }

  void Print(std::ostream& out) const {
    out << std::left << std::setw(26) << "pattern class" << std::right
        << std::setw(8) << "expts" << std::setw(8) << "SDC" << std::setw(10)
        << "SDC rate" << std::setw(12) << "top1 flips";
    if (abft_on_) {
      out << std::setw(10) << "detected" << std::setw(11) << "corrected";
    }
    out << "\n";
    for (std::size_t i = 0; i < per_class_.size(); ++i) {
      const ClassStats& stats = per_class_[i];
      if (stats.experiments == 0) continue;
      out << std::left << std::setw(26)
          << ToString(static_cast<PatternClass>(i)) << std::right
          << std::setw(8) << stats.experiments << std::setw(8) << stats.sdc
          << std::setw(9) << std::fixed << std::setprecision(1)
          << (100.0 * static_cast<double>(stats.sdc) /
              static_cast<double>(stats.experiments))
          << "%" << std::defaultfloat << std::setw(12) << stats.top1_flips;
      if (abft_on_) {
        out << std::setw(10) << stats.abft_detected << std::setw(11)
            << stats.abft_corrected;
      }
      out << "\n";
    }
    if (any_mitigated_) {
      out << "\n" << std::left << std::setw(16) << "mitigation"
          << std::right << std::setw(8) << "expts" << std::setw(8) << "SDC"
          << std::setw(10) << "mit SDC" << std::setw(12) << "faulty acc"
          << std::setw(10) << "mit acc" << "\n";
      for (std::size_t i = 0; i < per_policy_.size(); ++i) {
        const PolicyStats& stats = per_policy_[i];
        if (stats.experiments == 0) continue;
        out << std::left << std::setw(16)
            << ToString(static_cast<MitigationPolicy>(i)) << std::right
            << std::setw(8) << stats.experiments << std::setw(8) << stats.sdc
            << std::setw(10) << stats.mit_sdc;
        if (stats.labelled > 0) {
          out << std::setw(12) << stats.correct_faulty << std::setw(10)
              << stats.mit_correct;
        } else {
          out << std::setw(12) << "-" << std::setw(10) << "-";
        }
        out << "\n";
      }
    }
  }

 private:
  std::array<ClassStats, kNumPatternClasses> per_class_{};
  std::array<PolicyStats, kNumMitigationPolicies> per_policy_{};
  std::vector<NetworkCampaign> campaigns_;
  bool abft_on_ = false;
  bool any_mitigated_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (!StartsWith(key, "--")) {
      std::cerr << "expected a --flag, got '" << key << "'\n";
      return 1;
    }
    const std::string name = key.substr(2);
    if (BoolFlags().count(name) != 0) {
      flags[name] = std::string("1");
      continue;
    }
    if (ValueFlags().count(name) == 0) {
      std::cerr << "unknown flag '" << key << "'\n";
      return 1;
    }
    if (i + 1 >= argc) {
      std::cerr << "flag '" << key << "' expects a value\n";
      return 1;
    }
    flags[name] = argv[++i];
  }
  const auto flag = [&](const std::string& key, const std::string& fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };
  if (flags.count("help") != 0) {
    std::cout << "see the header comment of examples/dnn_cli.cpp for the "
                 "flag reference\n";
    return 0;
  }

  try {
    chaos::InstallFromEnv();
    NetworkSweepSpec spec;
    if (flags.count("spec") != 0) {
      for (const char* axis :
           {"network", "batch", "hidden", "dataflow", "signal", "polarity",
            "bit", "layer", "mitigation", "sites", "seed", "rows", "cols",
            "rung", "abft", "perturb-mode"}) {
        if (flags.count(axis) != 0) {
          std::cerr << "--spec already defines the sweep; drop '--" << axis
                    << "'\n";
          return 1;
        }
      }
      std::ifstream in(flags.at("spec"));
      if (!in) {
        std::cerr << "cannot open spec '" << flags.at("spec") << "'\n";
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      spec = ParseNetworkSweepSpec(text.str());
    } else {
      spec = SpecFromFlags(flags);
    }
    if (flags.count("print-spec") != 0) {
      std::cout << spec.ToJson() << "\n";
      return 0;
    }
    spec.Validate();

    // Read the checkpoint fully before opening any output stream, so
    // resuming from the file a sink is about to truncate is safe.
    NetworkCheckpoint checkpoint;
    const bool resuming = flags.count("resume") != 0;
    if (resuming) {
      std::ifstream in(flags.at("resume"));
      if (!in) {
        std::cerr << "error: cannot open checkpoint '" << flags.at("resume")
                  << "'\n";
        return 1;
      }
      checkpoint = LoadNetworkCheckpoint(in);
      std::cout << "resuming " << checkpoint.records.size()
                << " records from '" << flags.at("resume") << "'";
      if (checkpoint.lines_dropped > 0) {
        std::cout << " (dropped " << checkpoint.lines_dropped
                  << " corrupt lines; their experiments will be re-run)";
      }
      std::cout << "\n";
    }

    SummarySink summary;
    std::vector<NetworkRecordSink*> sinks{&summary};
    const std::string csv_path = flag("csv", "");
    std::unique_ptr<AtomicFileWriter> csv_writer;
    std::unique_ptr<NetworkCsvSink> csv_sink;
    if (!csv_path.empty()) {
      csv_writer = std::make_unique<AtomicFileWriter>(csv_path);
      csv_sink = std::make_unique<NetworkCsvSink>(csv_writer->stream());
      sinks.push_back(csv_sink.get());
    }
    std::ofstream jsonl_out;
    const std::string jsonl_path = flag("jsonl", "");
    std::unique_ptr<NetworkJsonlSink> jsonl_sink;
    if (!jsonl_path.empty()) {
      jsonl_out.open(jsonl_path);
      if (!jsonl_out) {
        std::cerr << "cannot open '" << jsonl_path << "'\n";
        return 1;
      }
      jsonl_sink = std::make_unique<NetworkJsonlSink>(
          jsonl_out, /*flush_every_line=*/true);
      sinks.push_back(jsonl_sink.get());
    }
    NetworkTeeSink tee(sinks);
    // SAFFIRE_CHAOS wiring: when the schedule injects sink failures, route
    // record delivery through the flaky decorator so resilience tests can
    // drive the real binary through a sink crash and resume.
    NetworkRecordSink* sink = &tee;
    std::unique_ptr<chaos::NetworkFlakySink> flaky;
    if (chaos::ActiveSpec().sink_throw_every > 0) {
      flaky = std::make_unique<chaos::NetworkFlakySink>(
          &tee, chaos::ActiveSpec().sink_throw_every);
      sink = flaky.get();
    }

    NetworkRunOptions options;
    options.resilience.selfcheck_rate =
        ParseDouble(flag("selfcheck-rate", "0"));
    options.resilience.max_retries =
        static_cast<int>(ParseInt(flag("max-retries", "2")));
    options.resilience.experiment_timeout_ms =
        ParseInt(flag("experiment-timeout-ms", "0"));
    options.resilience.on_failure =
        ParseOnFailure(flag("on-failure", "quarantine"));
    if (resuming) options.resume = &checkpoint;

    const std::string metrics_format = flag("metrics-format", "prom");
    if (metrics_format != "prom" && metrics_format != "json") {
      throw std::invalid_argument("unknown --metrics-format '" +
                                  metrics_format + "' (expected prom|json)");
    }
    const std::string metrics_path = flag("metrics-out", "");

    // Cooperative SIGINT/SIGTERM drain, exactly like campaign_cli: finish
    // the in-flight experiment, flush sinks, exit 128+signo resumable.
    ScopedSignalDrain drain;
    options.stop = drain.token();

    SweepOutcome outcome = RunNetworkSweep(spec, options, *sink);
    outcome.checkpoint_lines_dropped += checkpoint.lines_dropped;
    if (csv_writer != nullptr) csv_writer->Commit();

    std::cout << "network=" << ToString(spec.network.kind)
              << " rung=" << ToString(spec.rung)
              << " abft=" << (spec.abft ? "on" : "off")
              << " records=" << outcome.records << "\n\n";
    summary.Print(std::cout);

    if (!csv_path.empty()) {
      std::cout << "\nwrote " << outcome.records << " rows to " << csv_path
                << "\n";
    }
    if (!jsonl_path.empty()) {
      std::cout << "\nwrote " << outcome.records << " records to "
                << jsonl_path << "\n";
    }

    if (!metrics_path.empty()) {
      const auto write = [&](std::ostream& out) {
        if (metrics_format == "json") {
          obs::MetricsRegistry::Default().WriteJson(out);
          out << "\n";
        } else {
          obs::MetricsRegistry::Default().WritePrometheus(out);
        }
      };
      if (metrics_path == "-") {
        write(std::cout);
      } else {
        AtomicFileWriter metrics_writer(metrics_path);
        write(metrics_writer.stream());
        metrics_writer.Commit();
        std::cout << "wrote metrics (" << metrics_format << ") to "
                  << metrics_path << "\n";
      }
    }

    if (outcome.fallbacks != 0 || outcome.selfchecks != 0 ||
        outcome.retries != 0 || outcome.timeouts != 0 ||
        outcome.checkpoint_lines_dropped != 0 || !outcome.ok()) {
      std::cout << "[resilience] selfchecks=" << outcome.selfchecks
                << " mismatches=" << outcome.selfcheck_mismatches
                << " retries=" << outcome.retries
                << " timeouts=" << outcome.timeouts
                << " quarantined=" << outcome.quarantined
                << " fallbacks=" << outcome.fallbacks
                << " checkpoint_lines_dropped="
                << outcome.checkpoint_lines_dropped << "\n";
    }
    if (drain.triggered()) {
      std::cerr << "stopped by signal " << drain.signal_number()
                << " after a clean drain";
      if (!jsonl_path.empty()) {
        std::cerr << "; resume with --resume " << jsonl_path;
      }
      std::cerr << "\n";
      return 128 + drain.signal_number();
    }
    if (!outcome.ok()) {
      std::cerr << "sweep completed with quarantined experiments or "
                   "self-check mismatches (see [resilience] above)\n";
      return 3;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
