// Quickstart: inject one stuck-at fault into a simulated 16×16 systolic
// array, run the paper's pattern-extraction GEMM, and look at the damage.
//
//   $ ./quickstart
//
// Walks through the core API in ~5 calls: configure the accelerator, run a
// golden workload, run it again with a fault, diff, classify, and check
// the analytical prediction.
#include <iostream>

#include "fi/runner.h"
#include "patterns/campaign.h"
#include "patterns/report.h"

int main() {
  using namespace saffire;

  // 1. The paper's platform: a 16×16 INT8 systolic array (Table I).
  AccelConfig config;
  std::cout << "accelerator: " << config.ToString() << "\n\n";

  // 2. The pattern-extraction workload: an all-ones 16×16 GEMM, so no
  //    corruption is masked by zero products (Challenge 2, Sec. III-A).
  const WorkloadSpec workload = Gemm16x16();
  std::cout << "workload: " << workload.ToString() << "\n\n";

  // 3. A single stuck-at-1 on bit 8 of the adder output of PE(4, 9) — the
  //    paper's injection site (Sec. II-F).
  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 8, StuckPolarity::kStuckAt1);
  std::cout << "fault: " << fault.ToString() << "\n\n";

  FiRunner runner(config);
  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary}) {
    // 4. Golden vs faulty run, cycle-accurately.
    const RunResult golden = runner.RunGolden(workload, dataflow);
    const RunResult faulty = runner.RunFaulty(workload, dataflow, {&fault, 1});

    // 5. Diff, classify, and compare with the analytical prediction.
    const CorruptionMap map = ExtractCorruption(golden.output, faulty.output);
    const ClassifyContext context =
        MakeClassifyContext(workload, config, dataflow);
    const PatternClass observed = Classify(map, context);
    const PredictedPattern predicted =
        PredictPattern(workload, config, dataflow, fault);

    std::cout << "=== dataflow " << ToString(dataflow) << " ===\n"
              << RenderCorruptionMap(map, context) << "observed:  "
              << ToString(observed) << " (" << map.count()
              << " corrupted elements)\n"
              << "predicted: " << ToString(predicted.pattern)
              << (map.corrupted == predicted.coords
                      ? " — exact coordinate match\n"
                      : " — coordinate mismatch!\n")
              << "cycles: " << faulty.cycles << ", fault activations: "
              << faulty.fault_activations << "\n\n";
  }

  std::cout << "The WS fault corrupts its whole column; the OS fault "
               "corrupts one element —\nthe paper's RQ1 result (Fig. 3a vs "
               "3b).\n";
  return 0;
}
