// ABFT demo: a stuck-at fault corrupts an accelerated GEMM; checksum-based
// detection localizes the damage and repairs it — the kind of generic,
// accelerator-independent software mitigation the paper's related-work
// section calls for.
//
//   $ ./abft_demo
#include <iostream>

#include "common/rng.h"
#include "fi/injector.h"
#include "mitigation/abft.h"
#include "tensor/gemm.h"

int main() {
  using namespace saffire;

  AccelConfig config;
  Accelerator accel(config);
  Driver driver(accel);
  AbftGemm abft(driver);

  Rng rng(2023);
  Int8Tensor a({16, 16});
  Int8Tensor b({16, 16});
  for (std::int64_t i = 0; i < a.size(); ++i) {
    a.flat(i) = static_cast<std::int8_t>(rng.UniformInt(1, 40));
    b.flat(i) = static_cast<std::int8_t>(rng.UniformInt(1, 40));
  }
  const auto golden = GemmRef(a, b);

  const FaultSpec fault =
      StuckAtAdder(PeCoord{4, 9}, 24, StuckPolarity::kStuckAt1);
  std::cout << "hardware fault: " << fault.ToString() << "\n\n";

  for (const Dataflow dataflow :
       {Dataflow::kWeightStationary, Dataflow::kOutputStationary,
        Dataflow::kInputStationary}) {
    ExecOptions options;
    options.dataflow = dataflow;

    FaultInjector injector({fault}, config.array);
    accel.array().InstallFaultHook(&injector);
    const auto unprotected = driver.Gemm(a, b, options);
    AbftReport report;
    const auto protected_result = abft.Multiply(a, b, options, &report);
    accel.array().ClearFaultHook();

    std::int64_t corrupted = 0;
    for (std::int64_t i = 0; i < golden.size(); ++i) {
      if (unprotected.flat(i) != golden.flat(i)) ++corrupted;
    }
    std::cout << "dataflow " << ToString(dataflow) << ": unprotected GEMM has "
              << corrupted << " corrupted elements; ABFT diagnosis: "
              << ToString(report.diagnosis) << ", " << report.corrections
              << " corrections, result "
              << (protected_result == golden ? "matches golden" : "WRONG")
              << "\n";
  }

  std::cout << "\nThe checksum geometry matches the fault-pattern classes: "
               "WS column faults, OS\nelement faults, and IS row faults are "
               "all repaired exactly, at O(n^2) host\ncost against the "
               "array's O(n^3) work.\n";
  return 0;
}
