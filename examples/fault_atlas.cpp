// Fault atlas: regenerates all seven panels of the paper's Figure 3 as
// ASCII corruption maps with tile boundaries marked.
//
//   $ ./fault_atlas
//
// Panels (caption tuples follow the paper):
//   3a ⟨GEMM, WS, 16×16⟩            — single-column corruption
//   3b ⟨GEMM, OS, 16×16⟩            — single-element corruption
//   3c ⟨GEMM, WS, 112×112⟩          — single-column multi-tile
//   3d ⟨GEMM, OS, 112×112⟩          — single-element multi-tile
//   3e ⟨Conv, WS, 16×16, 3×3×3×3⟩   — single-channel corruption
//   3f ⟨Conv, WS, 16×16, 3×3×3×8⟩   — multi-channel corruption
//   3g ⟨Conv, WS, 112×112, 3×3×3×8⟩ — multi-channel (same class as 3f)
#include <iostream>

#include "fi/runner.h"
#include "patterns/campaign.h"
#include "patterns/report.h"

namespace {

struct Panel {
  const char* id;
  const char* caption;
  saffire::WorkloadSpec workload;
  saffire::Dataflow dataflow;
  saffire::PeCoord site;
};

}  // namespace

int main() {
  using namespace saffire;
  AccelConfig config;  // 16×16 INT8 (Table I)

  const Panel panels[] = {
      {"3a", "(GEMM, WS, 16x16)", Gemm16x16(), Dataflow::kWeightStationary,
       PeCoord{4, 9}},
      {"3b", "(GEMM, OS, 16x16)", Gemm16x16(), Dataflow::kOutputStationary,
       PeCoord{4, 9}},
      {"3c", "(GEMM, WS, 112x112)", Gemm112x112(),
       Dataflow::kWeightStationary, PeCoord{4, 9}},
      {"3d", "(GEMM, OS, 112x112)", Gemm112x112(),
       Dataflow::kOutputStationary, PeCoord{4, 9}},
      {"3e", "(Conv, WS, 16x16, 3x3x3x3)", Conv16Kernel3x3x3x3(),
       Dataflow::kWeightStationary, PeCoord{4, 4}},
      {"3f", "(Conv, WS, 16x16, 3x3x3x8)", Conv16Kernel3x3x3x8(),
       Dataflow::kWeightStationary, PeCoord{4, 4}},
      {"3g", "(Conv, WS, 112x112, 3x3x3x8)", Conv112Kernel3x3x3x8(),
       Dataflow::kWeightStationary, PeCoord{4, 4}},
  };

  FiRunner runner(config);
  for (const Panel& panel : panels) {
    const FaultSpec fault =
        StuckAtAdder(panel.site, 8, StuckPolarity::kStuckAt1);
    const RunResult golden = runner.RunGolden(panel.workload, panel.dataflow);
    const RunResult faulty =
        runner.RunFaulty(panel.workload, panel.dataflow, {&fault, 1});
    const CorruptionMap map = ExtractCorruption(golden.output, faulty.output);
    const ClassifyContext context =
        MakeClassifyContext(panel.workload, config, panel.dataflow);

    std::cout << "--- Fig. " << panel.id << " " << panel.caption << ", fault "
              << fault.ToString() << " ---\n"
              << "class: " << ToString(Classify(map, context)) << ", "
              << map.count() << " corrupted elements\n"
              << RenderCorruptionMap(map, context, 36);
    if (panel.workload.op == OpType::kConv) {
      std::cout << "folded to output-channel space (the view the paper's "
                   "figure shows):\n"
                << RenderConvChannelMap(map, context, 8);
    }
    std::cout << "\n";
  }

  std::cout << "Legend: '#' corrupted, '.' clean; '|' and '-' mark tile "
               "boundaries (the\npaper highlights tiles with colors). Conv "
               "panels show the lowered GEMM view;\ncolumns map to (channel, "
               "kernel-column) pairs.\n";
  return 0;
}
