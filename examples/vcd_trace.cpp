// VCD waveform capture: run a small faulty GEMM with full signal tracing
// and dump a Value Change Dump file that standard waveform viewers
// (GTKWave etc.) can open — the debugging workflow an RTL-level FI
// framework supports.
//
//   $ ./vcd_trace [output.vcd]
//
// The trace covers a 4×4 array so the file stays readable: 80 signals over
// ~20 cycles. The stuck-at fault on PE(1,2)'s adder output is visible as
// bit 4 pinned high on pe_1_2_adder_out.
#include <fstream>
#include <iostream>

#include "fi/injector.h"
#include "systolic/dataflow.h"
#include "systolic/trace.h"

int main(int argc, char** argv) {
  using namespace saffire;
  const std::string path = argc > 1 ? argv[1] : "trace.vcd";

  ArrayConfig config;
  config.rows = 4;
  config.cols = 4;
  SystolicArray array(config);

  const FaultSpec fault =
      StuckAtAdder(PeCoord{1, 2}, 4, StuckPolarity::kStuckAt1);
  FaultInjector injector({fault}, config);
  array.InstallFaultHook(&injector);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open '" << path << "'\n";
    return 1;
  }
  VcdTracer tracer(out, config);
  array.InstallTracer(&tracer);

  const auto a = Int8Tensor::Full({4, 4}, 1);
  const auto b = Int8Tensor::Full({4, 4}, 1);
  WeightStationaryScheduler scheduler(array);
  const Int32Tensor result = scheduler.Multiply(a, b);

  array.InstallTracer(nullptr);
  tracer.Finish();

  std::cout << "faulty 4x4 all-ones GEMM result (fault: " << fault.ToString()
            << "):\n";
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) {
      std::cout << result(r, c) << (c == 3 ? '\n' : '\t');
    }
  }
  std::cout << "\nwrote waveform to " << path
            << " — open with any VCD viewer and watch pe_1_2_adder_out.\n"
            << "Column 2 reads 20 instead of 4: the stuck bit adds 16 to "
               "every partial sum\npassing PE(1,2).\n";
  return 0;
}
