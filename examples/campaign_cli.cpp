// Campaign CLI: run a fault-injection campaign from the command line and
// get the summary plus an optional per-experiment CSV.
//
//   $ ./campaign_cli --workload gemm16 --dataflow ws
//   $ ./campaign_cli --workload conv16k8 --bit 12 --polarity sa0
//         --sites 64 --csv out.csv            (one line)
//
// Flags:
//   --workload {gemm16|gemm112|conv16k3|conv16k8|conv112k8}  (gemm16)
//   --dataflow {ws|os}        (ws)
//   --bit N                   stuck bit on the adder output (8)
//   --polarity {sa0|sa1}      (sa1)
//   --fill {ones|random|nearzero}  operand fill (ones)
//   --signal {adder_out|mul_out|weight_operand|act_forward|south_forward}
//   --kind {stuck|transient}  fault kind (stuck)
//   --sites N                 sample N sites instead of all 256 (0 = all)
//   --rows N --cols N         array dimensions (16×16)
//   --threads N               parallel campaign workers (1)
//   --csv PATH                write per-experiment CSV
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "common/strings.h"
#include "patterns/report.h"

namespace {

using namespace saffire;

WorkloadSpec WorkloadByName(const std::string& name) {
  if (name == "gemm16") return Gemm16x16();
  if (name == "gemm112") return Gemm112x112();
  if (name == "conv16k3") return Conv16Kernel3x3x3x3();
  if (name == "conv16k8") return Conv16Kernel3x3x3x8();
  if (name == "conv112k8") return Conv112Kernel3x3x3x8();
  throw std::invalid_argument("unknown workload '" + name + "'");
}

OperandFill FillByName(const std::string& name) {
  if (name == "ones") return OperandFill::kOnes;
  if (name == "random") return OperandFill::kRandom;
  if (name == "nearzero") return OperandFill::kNearZero;
  throw std::invalid_argument("unknown fill '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (!StartsWith(key, "--")) {
      std::cerr << "expected a --flag, got '" << key << "'\n";
      return 1;
    }
    flags[key.substr(2)] = argv[i + 1];
  }
  const auto flag = [&](const std::string& key, const std::string& fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };

  try {
    CampaignConfig config;
    config.accel.array.rows =
        static_cast<std::int32_t>(ParseInt(flag("rows", "16")));
    config.accel.array.cols =
        static_cast<std::int32_t>(ParseInt(flag("cols", "16")));
    config.workload = WorkloadByName(flag("workload", "gemm16"));
    config.workload.input_fill = FillByName(flag("fill", "ones"));
    config.workload.weight_fill = config.workload.input_fill;
    config.dataflow = flag("dataflow", "ws") == "os"
                          ? Dataflow::kOutputStationary
                          : Dataflow::kWeightStationary;
    config.bit = static_cast<int>(ParseInt(flag("bit", "8")));
    config.polarity = flag("polarity", "sa1") == "sa0"
                          ? StuckPolarity::kStuckAt0
                          : StuckPolarity::kStuckAt1;
    config.max_sites = ParseInt(flag("sites", "0"));
    config.signal = MacSignalFromString(flag("signal", "adder_out"));
    config.kind = flag("kind", "stuck") == "transient"
                      ? FaultKind::kTransientFlip
                      : FaultKind::kStuckAt;
    const int threads = static_cast<int>(ParseInt(flag("threads", "1")));

    const CampaignResult result = RunCampaignParallel(config, threads);
    std::cout << RenderCampaignSummary(result);

    const std::string csv_path = flag("csv", "");
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::cerr << "cannot open '" << csv_path << "'\n";
        return 1;
      }
      WriteCampaignCsv(result, out);
      std::cout << "wrote " << result.records.size() << " rows to "
                << csv_path << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
