// Campaign CLI: run a fault-injection sweep from the command line and get
// the summary plus optional per-experiment CSV / JSONL streams.
//
//   $ ./campaign_cli --workload gemm16 --dataflow ws
//   $ ./campaign_cli --workload conv16k8 --bit 12 --polarity sa0
//         --sites 64 --csv out.csv                          (one line)
//   $ ./campaign_cli --workload gemm16 --polarity sa0,sa1 --bit 4,8,31
//         --jsonl out.jsonl --progress                      (12-campaign sweep)
//   $ ./campaign_cli --spec sweep.json --shard 0 --jsonl shard0.jsonl
//   $ ./campaign_cli --spec sweep.json --resume shard0.jsonl --csv full.csv
//
// Sweep axes (comma-separated lists expand to the cartesian product):
//   --workload LIST  {gemm16|gemm112|conv16k3|conv16k8|conv112k8}  (gemm16)
//   --dataflow LIST  {ws|os|is}            (ws)
//   --signal LIST    {adder_out|mul_out|weight_operand|act_forward|
//                     south_forward}       (adder_out)
//   --polarity LIST  {sa0|sa1}             (sa1)
//   --bit LIST       stuck/flipped bit     (8)
// Fault model and sampling:
//   --kind {stuck|transient}  fault kind   (stuck)
//   --fill {ones|random|nearzero}  operand fill (ones)
//   --sites N        sample N sites instead of all (0 = exhaustive)
//   --seed N         sampling seed         (1)
//   --rows N --cols N  array dimensions    (16x16)
// Execution:
//   --engine {differential|full|reference|batch|predicted}  execution
//                    engine (differential); also accepted in --spec JSON
//   --simd {auto|avx2|scalar}  SIMD backend for the batch datapath (auto);
//                    the SAFFIRE_SIMD environment variable takes the same
//                    values and applies when the flag is absent
//   --threads N      parallel workers      (all hardware threads)
//   --shards N       split each campaign into N site ranges (1)
//   --shard K        run only shard K of every campaign (for process splits)
//   --resume PATH    replay records from a previous --jsonl stream instead
//                    of re-simulating them
//   --symmetry       symmetry-aware dedup: simulate one representative per
//                    equivalence class of fault sites and replicate its
//                    record to the rest (stuck-at faults on predictor-
//                    covered signals only; other campaigns run unchanged)
// Result cache:
//   --result-cache DIR   content-addressed on-disk cache of completed
//                    campaigns; a repeated sweep replays from DIR without
//                    simulating anything (no effect under --shard, which
//                    never completes whole campaigns)
//   --no-result-cache    ignore --result-cache for this run
// Spec files and output:
//   --spec PATH      load the sweep from a JSON spec (exclusive with the
//                    axis/fault-model flags above)
//   --print-spec     print the sweep spec as JSON and exit without running
//   --csv PATH       write per-experiment CSV
//   --jsonl PATH     stream records as JSONL (doubles as a checkpoint)
//   --progress       live progress/ETA line on stderr
// Observability (src/obs/):
//   --trace-out PATH     record spans and write Chrome trace_event JSON
//                        (load in chrome://tracing or Perfetto)
//   --metrics-out PATH   export the metrics registry after the run;
//                        '-' writes to stdout
//   --metrics-format {prom|json}  exposition format for --metrics-out (prom)
// Resilience (src/service/resilience.h):
//   --max-retries N      extra attempts per failing experiment, per engine
//                        rung (2)
//   --experiment-timeout-ms N  per-attempt deadline; attempts observed past
//                        it count as failures (0 = off)
//   --selfcheck-rate F   fraction of batch-engine records cross-validated
//                        against the differential engine; a mismatch demotes
//                        the campaign down the engine ladder (0 = off)
//   --on-failure {quarantine|abort}  policy once retries and the fallback
//                        ladder are exhausted (quarantine): quarantine
//                        streams "failed" JSONL lines and keeps sweeping,
//                        abort fails the whole run
// Shutdown and exit codes: SIGINT/SIGTERM start a cooperative drain —
// in-flight experiments finish, every sink is flushed (the JSONL checkpoint
// stays resumable), and the process exits 128+signo. Otherwise the exit
// code is 0 for a fully healthy sweep, 3 when the sweep completed but
// quarantined experiments or observed a self-check mismatch (see the
// [resilience] summary line), and 1 for errors.
//
// --csv and --metrics-out are written atomically (tmp + rename): a killed
// run leaves the previous complete file, never a half-written one. The
// --jsonl stream intentionally writes its final path live, because a
// mid-run kill must leave the checkpointed prefix behind.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/atomic_file.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "patterns/report.h"
#include "service/chaos.h"
#include "service/checkpoint.h"
#include "service/result_cache.h"
#include "service/run.h"
#include "service/signal.h"
#include "service/sink.h"
#include "systolic/simd_ops.h"

namespace {

using namespace saffire;

WorkloadSpec WorkloadByName(const std::string& name) {
  if (name == "gemm16") return Gemm16x16();
  if (name == "gemm112") return Gemm112x112();
  if (name == "conv16k3") return Conv16Kernel3x3x3x3();
  if (name == "conv16k8") return Conv16Kernel3x3x3x8();
  if (name == "conv112k8") return Conv112Kernel3x3x3x8();
  throw std::invalid_argument("unknown workload '" + name + "'");
}

// Flags that take a value, and flags that stand alone.
const std::set<std::string>& ValueFlags() {
  static const std::set<std::string> kFlags = {
      "workload", "dataflow", "signal",    "polarity",  "bit",
      "kind",     "fill",     "sites",     "seed",      "rows",
      "cols",     "engine",   "threads",   "shards",    "shard",
      "resume",   "spec",     "csv",       "jsonl",     "trace-out",
      "metrics-out", "metrics-format", "simd", "result-cache",
      "max-retries", "experiment-timeout-ms", "selfcheck-rate",
      "on-failure"};
  return kFlags;
}

const std::set<std::string>& BoolFlags() {
  static const std::set<std::string> kFlags = {
      "print-spec", "progress", "help", "symmetry", "no-result-cache"};
  return kFlags;
}

SweepSpec SpecFromFlags(const std::map<std::string, std::string>& flags) {
  const auto flag = [&](const std::string& key, const std::string& fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };
  SweepSpec spec;
  spec.accel.array.rows =
      static_cast<std::int32_t>(ParseInt(flag("rows", "16")));
  spec.accel.array.cols =
      static_cast<std::int32_t>(ParseInt(flag("cols", "16")));

  const OperandFill fill = OperandFillFromString(flag("fill", "ones"));
  spec.workloads.clear();
  for (const std::string& name : Split(flag("workload", "gemm16"), ',')) {
    WorkloadSpec workload = WorkloadByName(Trim(name));
    workload.input_fill = fill;
    workload.weight_fill = fill;
    spec.workloads.push_back(std::move(workload));
  }
  spec.dataflows.clear();
  for (const std::string& name : Split(flag("dataflow", "ws"), ',')) {
    spec.dataflows.push_back(DataflowFromString(Trim(name)));
  }
  spec.signals.clear();
  for (const std::string& name : Split(flag("signal", "adder_out"), ',')) {
    spec.signals.push_back(MacSignalFromString(Trim(name)));
  }
  spec.polarities.clear();
  for (const std::string& name : Split(flag("polarity", "sa1"), ',')) {
    spec.polarities.push_back(StuckPolarityFromString(Trim(name)));
  }
  spec.bits.clear();
  for (const std::string& text : Split(flag("bit", "8"), ',')) {
    spec.bits.push_back(static_cast<int>(ParseInt(Trim(text))));
  }
  spec.kind = FaultKindFromString(flag("kind", "stuck"));
  spec.max_sites = ParseInt(flag("sites", "0"));
  spec.seed = static_cast<std::uint64_t>(ParseInt(flag("seed", "1")));
  spec.engine = CampaignEngineFromString(flag("engine", "differential"));
  spec.shards = static_cast<int>(ParseInt(flag("shards", "1")));
  spec.symmetry = flags.count("symmetry") != 0;
  return spec;
}

// Accumulates the symmetry plan sizes that OnCampaignBegin announces, for
// the [symmetry] summary line. Campaigns without an active plan (including
// replayed ones) report classes == experiments, i.e. no reduction.
class SymmetryStatsSink : public RecordSink {
 public:
  void OnCampaignBegin(const CampaignBeginInfo& info) override {
    classes_ += info.symmetry_classes;
    sites_ += info.total_experiments;
  }

  std::int64_t classes() const { return classes_; }
  std::int64_t sites() const { return sites_; }

 private:
  std::int64_t classes_ = 0;
  std::int64_t sites_ = 0;
};

std::string CampaignTitle(const CampaignConfig& config) {
  std::string title = config.workload.name;
  title += "/";
  title += ToString(config.dataflow);
  title += " ";
  title += ToString(config.signal);
  title += " bit ";
  title += std::to_string(config.bit);
  title += " ";
  title += config.kind == FaultKind::kTransientFlip
               ? std::string("transient")
               : ToString(config.polarity);
  return title;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (!StartsWith(key, "--")) {
      std::cerr << "expected a --flag, got '" << key << "'\n";
      return 1;
    }
    const std::string name = key.substr(2);
    if (BoolFlags().count(name) != 0) {
      flags[name] = std::string("1");
      continue;
    }
    if (ValueFlags().count(name) == 0) {
      std::cerr << "unknown flag '" << key << "'\n";
      return 1;
    }
    if (i + 1 >= argc) {
      std::cerr << "flag '" << key << "' expects a value\n";
      return 1;
    }
    flags[name] = argv[++i];
  }
  const auto flag = [&](const std::string& key, const std::string& fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };
  if (flags.count("help") != 0) {
    std::cout << "see the header comment of examples/campaign_cli.cpp for "
                 "the flag reference\n";
    return 0;
  }

  try {
    // Chaos-under-test wiring (CI drives the real binary through injected
    // failures): SAFFIRE_CHAOS installs the schedule before anything runs.
    chaos::InstallFromEnv();

    // SIMD backend selection, resolved before any kernel runs. The flag
    // wins; otherwise force the lazy SAFFIRE_SIMD read now so a bad value
    // fails here instead of mid-sweep.
    if (flags.count("simd") != 0) {
      ConfigureSimdFromString(flags.at("simd"), "--simd");
    } else {
      RequestedSimdMode();
    }

    SweepSpec spec;
    if (flags.count("spec") != 0) {
      for (const char* axis :
           {"workload", "dataflow", "signal", "polarity", "bit", "kind",
            "fill", "sites", "seed", "rows", "cols", "engine", "shards",
            "symmetry"}) {
        if (flags.count(axis) != 0) {
          std::cerr << "--spec already defines the sweep; drop '--" << axis
                    << "'\n";
          return 1;
        }
      }
      std::ifstream in(flags.at("spec"));
      if (!in) {
        std::cerr << "cannot open spec '" << flags.at("spec") << "'\n";
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      spec = ParseSweepSpec(text.str());
    } else {
      spec = SpecFromFlags(flags);
    }
    if (flags.count("print-spec") != 0) {
      std::cout << spec.ToJson() << "\n";
      return 0;
    }

    const CampaignPlan plan = BuildCampaignPlan(spec);

    // Read the checkpoint fully before opening any output stream, so
    // resuming from the file a sink is about to truncate is safe.
    SweepCheckpoint checkpoint;
    CheckpointLoadStats load_stats;
    const bool resuming = flags.count("resume") != 0;
    if (resuming) {
      std::ifstream in(flags.at("resume"));
      if (!in) {
        std::cerr << "error: cannot open checkpoint '" << flags.at("resume")
                  << "'\n";
        return 1;
      }
      checkpoint = LoadSweepCheckpoint(in, &load_stats);
      ValidateCheckpoint(checkpoint, plan);
      std::cout << "resuming " << load_stats.records << " records from '"
                << flags.at("resume") << "'";
      if (load_stats.dropped > 0) {
        std::cout << " (dropped " << load_stats.dropped
                  << " corrupt lines; their experiments will be "
                     "re-simulated)";
      }
      std::cout << "\n";
    }

    CollectorSink collector;
    std::vector<RecordSink*> sinks{&collector};
    const std::string csv_path = flag("csv", "");
    std::unique_ptr<AtomicFileWriter> csv_writer;
    std::unique_ptr<CsvRecordSink> csv_sink;
    if (!csv_path.empty()) {
      // Atomic: the CSV materializes only on success (or a drained stop) —
      // a crash leaves the previous complete file.
      csv_writer = std::make_unique<AtomicFileWriter>(csv_path);
      csv_sink = std::make_unique<CsvRecordSink>(csv_writer->stream());
      sinks.push_back(csv_sink.get());
    }
    std::ofstream jsonl_out;
    const std::string jsonl_path = flag("jsonl", "");
    std::unique_ptr<JsonlRecordSink> jsonl_sink;
    if (!jsonl_path.empty()) {
      jsonl_out.open(jsonl_path);
      if (!jsonl_out) {
        std::cerr << "cannot open '" << jsonl_path << "'\n";
        return 1;
      }
      jsonl_sink = std::make_unique<JsonlRecordSink>(jsonl_out);
      sinks.push_back(jsonl_sink.get());
    }
    std::unique_ptr<ProgressSink> progress_sink;
    if (flags.count("progress") != 0) {
      progress_sink = std::make_unique<ProgressSink>(std::cerr);
      sinks.push_back(progress_sink.get());
    }
    SymmetryStatsSink symmetry_stats;
    sinks.push_back(&symmetry_stats);
    TeeSink tee(sinks);

    RunOptions options;
    options.max_parallelism = static_cast<int>(ParseInt(
        flag("threads", std::to_string(DefaultCampaignThreads()))));
    if (options.max_parallelism < 1) {
      std::cerr << "error: --threads must be >= 1\n";
      return 1;
    }
    options.only_shard = static_cast<int>(ParseInt(flag("shard", "-1")));
    if (resuming) options.checkpoint = &checkpoint;

    // Result cache: constructed eagerly so a bad directory fails before any
    // simulation. RunSweep itself skips the cache under --shard.
    std::unique_ptr<ResultCache> result_cache;
    const std::string cache_dir = flag("result-cache", "");
    if (!cache_dir.empty() && flags.count("no-result-cache") == 0) {
      result_cache = std::make_unique<ResultCache>(cache_dir);
      options.result_cache = result_cache.get();
    }

    // Resilience policy. Unlike the library default (abort), the CLI
    // quarantines: a 49-hour sweep should not lose its night to one bad
    // experiment.
    options.resilience.max_retries =
        static_cast<int>(ParseInt(flag("max-retries", "2")));
    options.resilience.experiment_timeout_ms =
        ParseInt(flag("experiment-timeout-ms", "0"));
    options.resilience.selfcheck_rate =
        ParseDouble(flag("selfcheck-rate", "0"));
    options.resilience.on_failure =
        ParseOnFailure(flag("on-failure", "quarantine"));

    // Observability: validate the format before running anything, raise the
    // span gates only for the outputs actually requested.
    const std::string metrics_format = flag("metrics-format", "prom");
    if (metrics_format != "prom" && metrics_format != "json") {
      throw std::invalid_argument("unknown --metrics-format '" +
                                  metrics_format + "' (expected prom|json)");
    }
    const std::string trace_path = flag("trace-out", "");
    const std::string metrics_path = flag("metrics-out", "");
    if (!trace_path.empty()) obs::TraceSession::Instance().Start();
    if (!metrics_path.empty()) obs::SetPhaseMetricsEnabled(true);

    // Chaos sink-failure wiring: wrap the tee so every Nth record delivery
    // throws, exercising the executor's sink-error path end to end.
    RecordSink* sink = &tee;
    std::unique_ptr<chaos::FlakySink> flaky;
    if (chaos::ActiveSpec().sink_throw_every > 0) {
      flaky = std::make_unique<chaos::FlakySink>(
          &tee, chaos::ActiveSpec().sink_throw_every);
      sink = flaky.get();
    }

    // Cooperative SIGINT/SIGTERM drain: the handler flips the stop token,
    // the executor finishes in-flight work and flushes every sink, and we
    // exit 128+signo below with the checkpoint resumable.
    ScopedSignalDrain drain;
    options.stop = drain.token();

    CampaignExecutor& executor = CampaignExecutor::Shared();
    const ExecutorStats before = executor.stats();
    SweepOutcome outcome = RunSweep(plan, options, *sink);
    outcome.checkpoint_lines_dropped = load_stats.dropped;
    const std::vector<CampaignResult> results = collector.TakeResults();
    if (csv_writer != nullptr) {
      // Commit even on a drained stop: resume rewrites the full CSV, so a
      // partial-but-complete file beats no file.
      csv_writer->Commit();
    }

    if (!trace_path.empty()) {
      obs::TraceSession::Instance().Stop();
      std::ofstream trace_out(trace_path);
      if (!trace_out) {
        std::cerr << "cannot open '" << trace_path << "'\n";
        return 1;
      }
      obs::TraceSession::Instance().WriteChromeTrace(trace_out);
      std::cout << "wrote " << obs::TraceSession::Instance().event_count()
                << " trace events to " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      const auto write = [&](std::ostream& out) {
        if (metrics_format == "json") {
          obs::MetricsRegistry::Default().WriteJson(out);
          out << "\n";
        } else {
          obs::MetricsRegistry::Default().WritePrometheus(out);
        }
      };
      if (metrics_path == "-") {
        write(std::cout);
      } else {
        AtomicFileWriter metrics_writer(metrics_path);
        write(metrics_writer.stream());
        metrics_writer.Commit();
        std::cout << "wrote metrics (" << metrics_format << ") to "
                  << metrics_path << "\n";
      }
    }

    std::int64_t rows = 0;
    for (std::size_t c = 0; c < results.size(); ++c) {
      if (results.size() > 1) {
        std::cout << "=== campaign " << c << ": "
                  << CampaignTitle(plan.campaigns[c]) << " ===\n";
      }
      std::cout << RenderCampaignSummary(results[c]);
      if (results.size() > 1) std::cout << "\n";
      rows += static_cast<std::int64_t>(results[c].records.size());
    }
    if (!csv_path.empty()) {
      std::cout << "wrote " << rows << " rows to " << csv_path << "\n";
    }
    if (!jsonl_path.empty()) {
      std::cout << "wrote " << rows << " records to " << jsonl_path << "\n";
    }
    const ExecutorStats after = executor.stats();
    std::cout << "[executor] threads=" << after.pool_threads
              << " experiments run="
              << after.experiments_run - before.experiments_run
              << " replayed="
              << after.experiments_replayed - before.experiments_replayed
              << " simulators constructed="
              << after.simulators_constructed - before.simulators_constructed
              << " reused="
              << after.simulators_reused - before.simulators_reused << "\n";

    if (result_cache != nullptr) {
      std::cout << "[cache] dir=" << result_cache->dir()
                << " hits=" << outcome.cache_hits
                << " misses=" << outcome.cache_misses
                << " stores=" << outcome.cache_stores << "\n";
    }
    if (spec.symmetry) {
      std::cout << "[symmetry] classes=" << symmetry_stats.classes()
                << " sites=" << symmetry_stats.sites();
      if (symmetry_stats.classes() > 0) {
        const double factor =
            static_cast<double>(symmetry_stats.sites()) /
            static_cast<double>(symmetry_stats.classes());
        std::cout << " reduction=" << std::fixed << std::setprecision(2)
                  << factor << "x" << std::defaultfloat;
      }
      std::cout << "\n";
    }

    if (outcome.retries != 0 || outcome.fallbacks != 0 ||
        outcome.quarantined != 0 || outcome.selfchecks != 0 ||
        outcome.timeouts != 0 || outcome.checkpoint_lines_dropped != 0 ||
        !outcome.ok()) {
      std::cout << "[resilience] retries=" << outcome.retries
                << " timeouts=" << outcome.timeouts
                << " fallbacks=" << outcome.fallbacks
                << " selfchecks=" << outcome.selfchecks
                << " mismatches=" << outcome.selfcheck_mismatches
                << " quarantined=" << outcome.quarantined
                << " checkpoint_lines_dropped="
                << outcome.checkpoint_lines_dropped << "\n";
    }
    if (drain.triggered()) {
      std::cerr << "stopped by signal " << drain.signal_number()
                << " after a clean drain";
      if (!jsonl_path.empty()) {
        std::cerr << "; resume with --resume " << jsonl_path;
      }
      std::cerr << "\n";
      return 128 + drain.signal_number();
    }
    if (!outcome.ok()) {
      std::cerr << "sweep completed with quarantined experiments or "
                   "self-check mismatches (see [resilience] above)\n";
      return 3;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
