// End-to-end DNN inference on the simulated accelerator, clean and under
// stuck-at faults — the motivation scenario of the paper's introduction
// (Zhang et al.: 8 faulty MACs out of 65K drop MNIST accuracy by 40%).
//
//   $ ./dnn_inference
//
// Trains a small MLP on a synthetic digit task (float, host), quantizes it
// to INT8, runs inference through the cycle-accurate accelerator, then
// sweeps the number of simultaneously faulty MAC units and reports the
// accuracy of (a) RTL-style simulation and (b) the app-level predicted-
// pattern injector.
#include <iostream>

#include "common/strings.h"
#include "dnn/quantize.h"
#include "fi/injector.h"

int main() {
  using namespace saffire;

  std::cout << "training a " << kDigitPixels
            << "-32-10 MLP on synthetic digits...\n";
  const Dataset train = MakeSyntheticDigits(600, 0.02, 21);
  const Dataset test = MakeSyntheticDigits(300, 0.02, 22);
  Mlp mlp(kDigitPixels, 32, kDigitClasses, 5);
  Rng train_rng(6);
  const double float_accuracy = mlp.TrainUntil(train, 0.98, 80, 0.1, train_rng);
  std::cout << "  float train accuracy: "
            << FormatDouble(100.0 * float_accuracy, 1) << "%, test: "
            << FormatDouble(100.0 * mlp.Accuracy(test), 1) << "%\n";

  const QuantizedMlp quantized(mlp, train);
  AccelConfig config;
  config.max_compute_rows = 512;
  config.spad_rows = 1024;
  config.acc_rows = 512;
  Accelerator accel(config);
  Driver driver(accel);

  const double clean =
      quantized.AccuracyAccel(test, driver, Dataflow::kWeightStationary);
  std::cout << "  INT8 accuracy on the simulated accelerator (WS): "
            << FormatDouble(100.0 * clean, 1) << "%\n\n";

  std::cout << "accuracy vs number of faulty MAC units (stuck-at-1, random "
               "site/bit):\n";
  std::cout << "  faulty_macs | sim (RTL-style) | app-level FI\n";
  Rng fault_rng(99);
  for (const int faulty_macs : {0, 1, 2, 4, 8, 16}) {
    std::vector<FaultSpec> faults;
    for (int i = 0; i < faulty_macs; ++i) {
      FaultSpec fault = SampleAdderFault(config.array, fault_rng, 8, 28);
      fault.polarity = StuckPolarity::kStuckAt1;
      faults.push_back(fault);
    }
    double sim_accuracy = clean;
    if (!faults.empty()) {
      FaultInjector injector(faults, config.array);
      accel.array().InstallFaultHook(&injector);
      sim_accuracy =
          quantized.AccuracyAccel(test, driver, Dataflow::kWeightStationary);
      accel.array().ClearFaultHook();
    }
    const double appfi_accuracy = quantized.AccuracyAppFi(
        test, config, Dataflow::kWeightStationary, faults);
    std::cout << "  " << PadLeft(std::to_string(faulty_macs), 11) << " | "
              << PadLeft(FormatDouble(100.0 * sim_accuracy, 1) + "%", 15)
              << " | "
              << PadLeft(FormatDouble(100.0 * appfi_accuracy, 1) + "%", 12)
              << "\n";
  }

  std::cout << "\nEven a handful of faulty MACs collapses accuracy under the "
               "weight-stationary\ndataflow (each one poisons a whole output "
               "column of every layer), matching the\npaper's motivation.\n";
  return 0;
}
