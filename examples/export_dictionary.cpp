// Fault-dictionary export: produces the JSON artifacts an external
// application-level injector (LLTFI, TensorFI, ...) consumes to model this
// accelerator without linking the simulator — the integration the paper
// proposes in its conclusion.
//
//   $ ./export_dictionary [output_dir]
//
// Writes one dictionary per Table I configuration and then demonstrates
// the consumer side: parse a dictionary back, pick an equivalence class
// weighted by its site count, and perturb a tensor at its coordinates.
#include <fstream>
#include <iostream>

#include "common/rng.h"
#include "patterns/dictionary.h"

int main(int argc, char** argv) {
  using namespace saffire;
  const std::string dir = argc > 1 ? argv[1] : ".";

  AccelConfig config;
  struct Entry {
    WorkloadSpec workload;
    Dataflow dataflow;
  };
  const Entry entries[] = {
      {Gemm16x16(), Dataflow::kWeightStationary},
      {Gemm16x16(), Dataflow::kOutputStationary},
      {Gemm112x112(), Dataflow::kWeightStationary},
      {Gemm112x112(), Dataflow::kOutputStationary},
      {Conv16Kernel3x3x3x3(), Dataflow::kWeightStationary},
      {Conv16Kernel3x3x3x8(), Dataflow::kWeightStationary},
  };

  std::string last_path;
  for (const Entry& entry : entries) {
    const FaultDictionary dictionary =
        BuildFaultDictionary(entry.workload, config, entry.dataflow);
    const std::string path = dir + "/fault_dictionary_" +
                             entry.workload.name + "_" +
                             ToString(entry.dataflow) + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open '" << path << "'\n";
      return 1;
    }
    const std::string json = ToJson(dictionary);
    out << json << "\n";
    std::cout << "wrote " << path << " (" << dictionary.classes.size()
              << " classes, " << json.size() << " bytes)\n";
    last_path = path;
  }

  // Consumer demonstration: reload the last dictionary and sample a
  // hardware-faithful fault from it.
  std::ifstream in(last_path);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const FaultDictionary dictionary = FaultDictionaryFromJson(json);

  Rng rng(7);
  // Weight classes by their site count (a uniform-over-MACs fault model).
  std::int64_t total_sites = 0;
  for (const auto& equivalence : dictionary.classes) {
    total_sites += static_cast<std::int64_t>(equivalence.members.size());
  }
  std::int64_t pick = rng.UniformInt(0, total_sites - 1);
  const SiteEquivalenceClass* chosen = &dictionary.classes.front();
  for (const auto& equivalence : dictionary.classes) {
    pick -= static_cast<std::int64_t>(equivalence.members.size());
    if (pick < 0) {
      chosen = &equivalence;
      break;
    }
  }
  std::cout << "\nconsumer side (" << dictionary.workload_name << ", "
            << ToString(dictionary.dataflow) << "): sampled class '"
            << ToString(chosen->prediction.pattern) << "' covering "
            << chosen->members.size() << " MAC sites; an injector would "
            << "perturb its " << chosen->prediction.coords.size()
            << " output coordinates.\n";
  return 0;
}
