file(REMOVE_RECURSE
  "libsaffire_systolic.a"
)
