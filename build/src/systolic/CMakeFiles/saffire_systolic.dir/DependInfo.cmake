
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/array.cc" "src/systolic/CMakeFiles/saffire_systolic.dir/array.cc.o" "gcc" "src/systolic/CMakeFiles/saffire_systolic.dir/array.cc.o.d"
  "/root/repo/src/systolic/dataflow.cc" "src/systolic/CMakeFiles/saffire_systolic.dir/dataflow.cc.o" "gcc" "src/systolic/CMakeFiles/saffire_systolic.dir/dataflow.cc.o.d"
  "/root/repo/src/systolic/signals.cc" "src/systolic/CMakeFiles/saffire_systolic.dir/signals.cc.o" "gcc" "src/systolic/CMakeFiles/saffire_systolic.dir/signals.cc.o.d"
  "/root/repo/src/systolic/timing.cc" "src/systolic/CMakeFiles/saffire_systolic.dir/timing.cc.o" "gcc" "src/systolic/CMakeFiles/saffire_systolic.dir/timing.cc.o.d"
  "/root/repo/src/systolic/trace.cc" "src/systolic/CMakeFiles/saffire_systolic.dir/trace.cc.o" "gcc" "src/systolic/CMakeFiles/saffire_systolic.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saffire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/saffire_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
