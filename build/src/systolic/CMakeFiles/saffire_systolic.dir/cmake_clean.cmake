file(REMOVE_RECURSE
  "CMakeFiles/saffire_systolic.dir/array.cc.o"
  "CMakeFiles/saffire_systolic.dir/array.cc.o.d"
  "CMakeFiles/saffire_systolic.dir/dataflow.cc.o"
  "CMakeFiles/saffire_systolic.dir/dataflow.cc.o.d"
  "CMakeFiles/saffire_systolic.dir/signals.cc.o"
  "CMakeFiles/saffire_systolic.dir/signals.cc.o.d"
  "CMakeFiles/saffire_systolic.dir/timing.cc.o"
  "CMakeFiles/saffire_systolic.dir/timing.cc.o.d"
  "CMakeFiles/saffire_systolic.dir/trace.cc.o"
  "CMakeFiles/saffire_systolic.dir/trace.cc.o.d"
  "libsaffire_systolic.a"
  "libsaffire_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
