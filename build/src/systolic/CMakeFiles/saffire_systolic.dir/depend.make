# Empty dependencies file for saffire_systolic.
# This may be replaced when dependencies are built.
