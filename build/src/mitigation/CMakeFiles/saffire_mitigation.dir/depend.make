# Empty dependencies file for saffire_mitigation.
# This may be replaced when dependencies are built.
