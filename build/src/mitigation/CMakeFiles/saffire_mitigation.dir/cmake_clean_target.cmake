file(REMOVE_RECURSE
  "libsaffire_mitigation.a"
)
