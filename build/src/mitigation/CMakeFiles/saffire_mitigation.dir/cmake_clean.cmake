file(REMOVE_RECURSE
  "CMakeFiles/saffire_mitigation.dir/abft.cc.o"
  "CMakeFiles/saffire_mitigation.dir/abft.cc.o.d"
  "libsaffire_mitigation.a"
  "libsaffire_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
