file(REMOVE_RECURSE
  "libsaffire_dnn.a"
)
