# Empty dependencies file for saffire_dnn.
# This may be replaced when dependencies are built.
