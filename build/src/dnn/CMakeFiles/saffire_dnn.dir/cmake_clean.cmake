file(REMOVE_RECURSE
  "CMakeFiles/saffire_dnn.dir/cnn.cc.o"
  "CMakeFiles/saffire_dnn.dir/cnn.cc.o.d"
  "CMakeFiles/saffire_dnn.dir/mlp.cc.o"
  "CMakeFiles/saffire_dnn.dir/mlp.cc.o.d"
  "CMakeFiles/saffire_dnn.dir/quantize.cc.o"
  "CMakeFiles/saffire_dnn.dir/quantize.cc.o.d"
  "CMakeFiles/saffire_dnn.dir/synthetic.cc.o"
  "CMakeFiles/saffire_dnn.dir/synthetic.cc.o.d"
  "libsaffire_dnn.a"
  "libsaffire_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
