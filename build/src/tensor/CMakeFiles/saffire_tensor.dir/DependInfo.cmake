
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/conv.cc" "src/tensor/CMakeFiles/saffire_tensor.dir/conv.cc.o" "gcc" "src/tensor/CMakeFiles/saffire_tensor.dir/conv.cc.o.d"
  "/root/repo/src/tensor/gemm.cc" "src/tensor/CMakeFiles/saffire_tensor.dir/gemm.cc.o" "gcc" "src/tensor/CMakeFiles/saffire_tensor.dir/gemm.cc.o.d"
  "/root/repo/src/tensor/im2col.cc" "src/tensor/CMakeFiles/saffire_tensor.dir/im2col.cc.o" "gcc" "src/tensor/CMakeFiles/saffire_tensor.dir/im2col.cc.o.d"
  "/root/repo/src/tensor/shift_gemm.cc" "src/tensor/CMakeFiles/saffire_tensor.dir/shift_gemm.cc.o" "gcc" "src/tensor/CMakeFiles/saffire_tensor.dir/shift_gemm.cc.o.d"
  "/root/repo/src/tensor/tiling.cc" "src/tensor/CMakeFiles/saffire_tensor.dir/tiling.cc.o" "gcc" "src/tensor/CMakeFiles/saffire_tensor.dir/tiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saffire_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
