file(REMOVE_RECURSE
  "libsaffire_tensor.a"
)
