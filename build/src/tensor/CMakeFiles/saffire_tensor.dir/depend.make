# Empty dependencies file for saffire_tensor.
# This may be replaced when dependencies are built.
