file(REMOVE_RECURSE
  "CMakeFiles/saffire_tensor.dir/conv.cc.o"
  "CMakeFiles/saffire_tensor.dir/conv.cc.o.d"
  "CMakeFiles/saffire_tensor.dir/gemm.cc.o"
  "CMakeFiles/saffire_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/saffire_tensor.dir/im2col.cc.o"
  "CMakeFiles/saffire_tensor.dir/im2col.cc.o.d"
  "CMakeFiles/saffire_tensor.dir/shift_gemm.cc.o"
  "CMakeFiles/saffire_tensor.dir/shift_gemm.cc.o.d"
  "CMakeFiles/saffire_tensor.dir/tiling.cc.o"
  "CMakeFiles/saffire_tensor.dir/tiling.cc.o.d"
  "libsaffire_tensor.a"
  "libsaffire_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
