file(REMOVE_RECURSE
  "libsaffire_common.a"
)
