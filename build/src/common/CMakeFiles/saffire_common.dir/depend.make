# Empty dependencies file for saffire_common.
# This may be replaced when dependencies are built.
