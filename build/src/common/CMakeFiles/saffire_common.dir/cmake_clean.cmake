file(REMOVE_RECURSE
  "CMakeFiles/saffire_common.dir/bits.cc.o"
  "CMakeFiles/saffire_common.dir/bits.cc.o.d"
  "CMakeFiles/saffire_common.dir/csv.cc.o"
  "CMakeFiles/saffire_common.dir/csv.cc.o.d"
  "CMakeFiles/saffire_common.dir/log.cc.o"
  "CMakeFiles/saffire_common.dir/log.cc.o.d"
  "CMakeFiles/saffire_common.dir/rng.cc.o"
  "CMakeFiles/saffire_common.dir/rng.cc.o.d"
  "CMakeFiles/saffire_common.dir/strings.cc.o"
  "CMakeFiles/saffire_common.dir/strings.cc.o.d"
  "libsaffire_common.a"
  "libsaffire_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
