
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/patterns/campaign.cc" "src/patterns/CMakeFiles/saffire_patterns.dir/campaign.cc.o" "gcc" "src/patterns/CMakeFiles/saffire_patterns.dir/campaign.cc.o.d"
  "/root/repo/src/patterns/classify.cc" "src/patterns/CMakeFiles/saffire_patterns.dir/classify.cc.o" "gcc" "src/patterns/CMakeFiles/saffire_patterns.dir/classify.cc.o.d"
  "/root/repo/src/patterns/corruption.cc" "src/patterns/CMakeFiles/saffire_patterns.dir/corruption.cc.o" "gcc" "src/patterns/CMakeFiles/saffire_patterns.dir/corruption.cc.o.d"
  "/root/repo/src/patterns/dictionary.cc" "src/patterns/CMakeFiles/saffire_patterns.dir/dictionary.cc.o" "gcc" "src/patterns/CMakeFiles/saffire_patterns.dir/dictionary.cc.o.d"
  "/root/repo/src/patterns/predictor.cc" "src/patterns/CMakeFiles/saffire_patterns.dir/predictor.cc.o" "gcc" "src/patterns/CMakeFiles/saffire_patterns.dir/predictor.cc.o.d"
  "/root/repo/src/patterns/report.cc" "src/patterns/CMakeFiles/saffire_patterns.dir/report.cc.o" "gcc" "src/patterns/CMakeFiles/saffire_patterns.dir/report.cc.o.d"
  "/root/repo/src/patterns/symmetry.cc" "src/patterns/CMakeFiles/saffire_patterns.dir/symmetry.cc.o" "gcc" "src/patterns/CMakeFiles/saffire_patterns.dir/symmetry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saffire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/saffire_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/saffire_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/saffire_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/saffire_fi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
