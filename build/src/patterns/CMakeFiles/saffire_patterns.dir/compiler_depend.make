# Empty compiler generated dependencies file for saffire_patterns.
# This may be replaced when dependencies are built.
