file(REMOVE_RECURSE
  "CMakeFiles/saffire_patterns.dir/campaign.cc.o"
  "CMakeFiles/saffire_patterns.dir/campaign.cc.o.d"
  "CMakeFiles/saffire_patterns.dir/classify.cc.o"
  "CMakeFiles/saffire_patterns.dir/classify.cc.o.d"
  "CMakeFiles/saffire_patterns.dir/corruption.cc.o"
  "CMakeFiles/saffire_patterns.dir/corruption.cc.o.d"
  "CMakeFiles/saffire_patterns.dir/dictionary.cc.o"
  "CMakeFiles/saffire_patterns.dir/dictionary.cc.o.d"
  "CMakeFiles/saffire_patterns.dir/predictor.cc.o"
  "CMakeFiles/saffire_patterns.dir/predictor.cc.o.d"
  "CMakeFiles/saffire_patterns.dir/report.cc.o"
  "CMakeFiles/saffire_patterns.dir/report.cc.o.d"
  "CMakeFiles/saffire_patterns.dir/symmetry.cc.o"
  "CMakeFiles/saffire_patterns.dir/symmetry.cc.o.d"
  "libsaffire_patterns.a"
  "libsaffire_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
