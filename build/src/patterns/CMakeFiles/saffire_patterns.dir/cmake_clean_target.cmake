file(REMOVE_RECURSE
  "libsaffire_patterns.a"
)
