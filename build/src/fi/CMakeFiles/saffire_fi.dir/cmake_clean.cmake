file(REMOVE_RECURSE
  "CMakeFiles/saffire_fi.dir/fault.cc.o"
  "CMakeFiles/saffire_fi.dir/fault.cc.o.d"
  "CMakeFiles/saffire_fi.dir/injector.cc.o"
  "CMakeFiles/saffire_fi.dir/injector.cc.o.d"
  "CMakeFiles/saffire_fi.dir/runner.cc.o"
  "CMakeFiles/saffire_fi.dir/runner.cc.o.d"
  "CMakeFiles/saffire_fi.dir/workload.cc.o"
  "CMakeFiles/saffire_fi.dir/workload.cc.o.d"
  "libsaffire_fi.a"
  "libsaffire_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
