# Empty compiler generated dependencies file for saffire_fi.
# This may be replaced when dependencies are built.
