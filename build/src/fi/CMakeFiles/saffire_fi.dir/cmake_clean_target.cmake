file(REMOVE_RECURSE
  "libsaffire_fi.a"
)
