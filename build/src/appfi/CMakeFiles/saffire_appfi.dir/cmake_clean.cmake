file(REMOVE_RECURSE
  "CMakeFiles/saffire_appfi.dir/appfi.cc.o"
  "CMakeFiles/saffire_appfi.dir/appfi.cc.o.d"
  "libsaffire_appfi.a"
  "libsaffire_appfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_appfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
