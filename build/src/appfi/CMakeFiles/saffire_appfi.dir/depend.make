# Empty dependencies file for saffire_appfi.
# This may be replaced when dependencies are built.
