file(REMOVE_RECURSE
  "libsaffire_appfi.a"
)
