file(REMOVE_RECURSE
  "CMakeFiles/saffire_accel.dir/controller.cc.o"
  "CMakeFiles/saffire_accel.dir/controller.cc.o.d"
  "CMakeFiles/saffire_accel.dir/driver.cc.o"
  "CMakeFiles/saffire_accel.dir/driver.cc.o.d"
  "CMakeFiles/saffire_accel.dir/host_memory.cc.o"
  "CMakeFiles/saffire_accel.dir/host_memory.cc.o.d"
  "CMakeFiles/saffire_accel.dir/isa.cc.o"
  "CMakeFiles/saffire_accel.dir/isa.cc.o.d"
  "CMakeFiles/saffire_accel.dir/scratchpad.cc.o"
  "CMakeFiles/saffire_accel.dir/scratchpad.cc.o.d"
  "libsaffire_accel.a"
  "libsaffire_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saffire_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
