file(REMOVE_RECURSE
  "libsaffire_accel.a"
)
