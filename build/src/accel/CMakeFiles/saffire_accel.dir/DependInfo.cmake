
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/controller.cc" "src/accel/CMakeFiles/saffire_accel.dir/controller.cc.o" "gcc" "src/accel/CMakeFiles/saffire_accel.dir/controller.cc.o.d"
  "/root/repo/src/accel/driver.cc" "src/accel/CMakeFiles/saffire_accel.dir/driver.cc.o" "gcc" "src/accel/CMakeFiles/saffire_accel.dir/driver.cc.o.d"
  "/root/repo/src/accel/host_memory.cc" "src/accel/CMakeFiles/saffire_accel.dir/host_memory.cc.o" "gcc" "src/accel/CMakeFiles/saffire_accel.dir/host_memory.cc.o.d"
  "/root/repo/src/accel/isa.cc" "src/accel/CMakeFiles/saffire_accel.dir/isa.cc.o" "gcc" "src/accel/CMakeFiles/saffire_accel.dir/isa.cc.o.d"
  "/root/repo/src/accel/scratchpad.cc" "src/accel/CMakeFiles/saffire_accel.dir/scratchpad.cc.o" "gcc" "src/accel/CMakeFiles/saffire_accel.dir/scratchpad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saffire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/saffire_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/saffire_systolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
