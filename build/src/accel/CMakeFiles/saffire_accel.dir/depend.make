# Empty dependencies file for saffire_accel.
# This may be replaced when dependencies are built.
