# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_atlas "/root/repo/build/examples/fault_atlas")
set_tests_properties(example_fault_atlas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dnn_inference "/root/repo/build/examples/dnn_inference")
set_tests_properties(example_dnn_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vcd_trace "/root/repo/build/examples/vcd_trace" "/root/repo/build/examples/smoke.vcd")
set_tests_properties(example_vcd_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_abft_demo "/root/repo/build/examples/abft_demo")
set_tests_properties(example_abft_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_dictionary "/root/repo/build/examples/export_dictionary" "/root/repo/build/examples")
set_tests_properties(example_export_dictionary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campaign_cli "/root/repo/build/examples/campaign_cli" "--workload" "conv16k3" "--sites" "16" "--threads" "2" "--csv" "/root/repo/build/examples/smoke.csv")
set_tests_properties(example_campaign_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
