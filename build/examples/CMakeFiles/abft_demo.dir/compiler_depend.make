# Empty compiler generated dependencies file for abft_demo.
# This may be replaced when dependencies are built.
