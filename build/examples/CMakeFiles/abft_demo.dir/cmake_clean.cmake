file(REMOVE_RECURSE
  "CMakeFiles/abft_demo.dir/abft_demo.cpp.o"
  "CMakeFiles/abft_demo.dir/abft_demo.cpp.o.d"
  "abft_demo"
  "abft_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abft_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
