file(REMOVE_RECURSE
  "CMakeFiles/export_dictionary.dir/export_dictionary.cpp.o"
  "CMakeFiles/export_dictionary.dir/export_dictionary.cpp.o.d"
  "export_dictionary"
  "export_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
