# Empty dependencies file for export_dictionary.
# This may be replaced when dependencies are built.
