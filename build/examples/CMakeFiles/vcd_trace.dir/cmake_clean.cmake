file(REMOVE_RECURSE
  "CMakeFiles/vcd_trace.dir/vcd_trace.cpp.o"
  "CMakeFiles/vcd_trace.dir/vcd_trace.cpp.o.d"
  "vcd_trace"
  "vcd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
