# Empty compiler generated dependencies file for fault_atlas.
# This may be replaced when dependencies are built.
