file(REMOVE_RECURSE
  "CMakeFiles/fault_atlas.dir/fault_atlas.cpp.o"
  "CMakeFiles/fault_atlas.dir/fault_atlas.cpp.o.d"
  "fault_atlas"
  "fault_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
