# Empty compiler generated dependencies file for bench_rq3_size.
# This may be replaced when dependencies are built.
