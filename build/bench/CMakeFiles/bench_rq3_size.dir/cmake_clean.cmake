file(REMOVE_RECURSE
  "CMakeFiles/bench_rq3_size.dir/bench_rq3_size.cpp.o"
  "CMakeFiles/bench_rq3_size.dir/bench_rq3_size.cpp.o.d"
  "bench_rq3_size"
  "bench_rq3_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq3_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
