# Empty dependencies file for bench_fig3_fault_maps.
# This may be replaced when dependencies are built.
