# Empty dependencies file for bench_symmetry_reduction.
# This may be replaced when dependencies are built.
