file(REMOVE_RECURSE
  "CMakeFiles/bench_symmetry_reduction.dir/bench_symmetry_reduction.cpp.o"
  "CMakeFiles/bench_symmetry_reduction.dir/bench_symmetry_reduction.cpp.o.d"
  "bench_symmetry_reduction"
  "bench_symmetry_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symmetry_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
