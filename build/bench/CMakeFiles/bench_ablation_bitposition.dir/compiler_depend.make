# Empty compiler generated dependencies file for bench_ablation_bitposition.
# This may be replaced when dependencies are built.
