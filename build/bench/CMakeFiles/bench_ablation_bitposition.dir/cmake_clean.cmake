file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitposition.dir/bench_ablation_bitposition.cpp.o"
  "CMakeFiles/bench_ablation_bitposition.dir/bench_ablation_bitposition.cpp.o.d"
  "bench_ablation_bitposition"
  "bench_ablation_bitposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
