# Empty compiler generated dependencies file for bench_fi_cost.
# This may be replaced when dependencies are built.
