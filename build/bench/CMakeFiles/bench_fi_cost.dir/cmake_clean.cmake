file(REMOVE_RECURSE
  "CMakeFiles/bench_fi_cost.dir/bench_fi_cost.cpp.o"
  "CMakeFiles/bench_fi_cost.dir/bench_fi_cost.cpp.o.d"
  "bench_fi_cost"
  "bench_fi_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fi_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
