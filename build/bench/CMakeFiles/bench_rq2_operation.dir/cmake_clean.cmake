file(REMOVE_RECURSE
  "CMakeFiles/bench_rq2_operation.dir/bench_rq2_operation.cpp.o"
  "CMakeFiles/bench_rq2_operation.dir/bench_rq2_operation.cpp.o.d"
  "bench_rq2_operation"
  "bench_rq2_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq2_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
