# Empty dependencies file for bench_rq2_operation.
# This may be replaced when dependencies are built.
