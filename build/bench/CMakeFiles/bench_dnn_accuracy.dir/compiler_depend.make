# Empty compiler generated dependencies file for bench_dnn_accuracy.
# This may be replaced when dependencies are built.
