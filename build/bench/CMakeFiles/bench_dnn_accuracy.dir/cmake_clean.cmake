file(REMOVE_RECURSE
  "CMakeFiles/bench_dnn_accuracy.dir/bench_dnn_accuracy.cpp.o"
  "CMakeFiles/bench_dnn_accuracy.dir/bench_dnn_accuracy.cpp.o.d"
  "bench_dnn_accuracy"
  "bench_dnn_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dnn_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
