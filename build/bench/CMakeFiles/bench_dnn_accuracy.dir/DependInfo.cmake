
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dnn_accuracy.cpp" "bench/CMakeFiles/bench_dnn_accuracy.dir/bench_dnn_accuracy.cpp.o" "gcc" "bench/CMakeFiles/bench_dnn_accuracy.dir/bench_dnn_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/saffire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/saffire_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/saffire_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/saffire_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/saffire_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/saffire_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/appfi/CMakeFiles/saffire_appfi.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/saffire_dnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
