file(REMOVE_RECURSE
  "CMakeFiles/bench_mitigation_abft.dir/bench_mitigation_abft.cpp.o"
  "CMakeFiles/bench_mitigation_abft.dir/bench_mitigation_abft.cpp.o.d"
  "bench_mitigation_abft"
  "bench_mitigation_abft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mitigation_abft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
