# Empty compiler generated dependencies file for bench_mitigation_abft.
# This may be replaced when dependencies are built.
