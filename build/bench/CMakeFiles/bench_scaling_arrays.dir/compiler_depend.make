# Empty compiler generated dependencies file for bench_scaling_arrays.
# This may be replaced when dependencies are built.
