file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_arrays.dir/bench_scaling_arrays.cpp.o"
  "CMakeFiles/bench_scaling_arrays.dir/bench_scaling_arrays.cpp.o.d"
  "bench_scaling_arrays"
  "bench_scaling_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
