file(REMOVE_RECURSE
  "CMakeFiles/bench_error_propagation.dir/bench_error_propagation.cpp.o"
  "CMakeFiles/bench_error_propagation.dir/bench_error_propagation.cpp.o.d"
  "bench_error_propagation"
  "bench_error_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
