# Empty compiler generated dependencies file for bench_rq1_dataflow.
# This may be replaced when dependencies are built.
