file(REMOVE_RECURSE
  "CMakeFiles/bench_rq1_dataflow.dir/bench_rq1_dataflow.cpp.o"
  "CMakeFiles/bench_rq1_dataflow.dir/bench_rq1_dataflow.cpp.o.d"
  "bench_rq1_dataflow"
  "bench_rq1_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq1_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
