# Empty dependencies file for bench_predictor_agreement.
# This may be replaced when dependencies are built.
