file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor_agreement.dir/bench_predictor_agreement.cpp.o"
  "CMakeFiles/bench_predictor_agreement.dir/bench_predictor_agreement.cpp.o.d"
  "bench_predictor_agreement"
  "bench_predictor_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
