file(REMOVE_RECURSE
  "CMakeFiles/bench_classification_sweep.dir/bench_classification_sweep.cpp.o"
  "CMakeFiles/bench_classification_sweep.dir/bench_classification_sweep.cpp.o.d"
  "bench_classification_sweep"
  "bench_classification_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classification_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
