# Empty compiler generated dependencies file for bench_classification_sweep.
# This may be replaced when dependencies are built.
