file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_faultmodel.dir/bench_ablation_faultmodel.cpp.o"
  "CMakeFiles/bench_ablation_faultmodel.dir/bench_ablation_faultmodel.cpp.o.d"
  "bench_ablation_faultmodel"
  "bench_ablation_faultmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_faultmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
