# Empty dependencies file for bench_ablation_faultmodel.
# This may be replaced when dependencies are built.
