# Empty dependencies file for bench_table1_campaigns.
# This may be replaced when dependencies are built.
