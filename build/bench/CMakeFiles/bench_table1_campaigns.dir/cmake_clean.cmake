file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_campaigns.dir/bench_table1_campaigns.cpp.o"
  "CMakeFiles/bench_table1_campaigns.dir/bench_table1_campaigns.cpp.o.d"
  "bench_table1_campaigns"
  "bench_table1_campaigns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_campaigns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
