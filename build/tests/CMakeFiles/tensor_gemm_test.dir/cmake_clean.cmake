file(REMOVE_RECURSE
  "CMakeFiles/tensor_gemm_test.dir/tensor/gemm_test.cc.o"
  "CMakeFiles/tensor_gemm_test.dir/tensor/gemm_test.cc.o.d"
  "tensor_gemm_test"
  "tensor_gemm_test.pdb"
  "tensor_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
