file(REMOVE_RECURSE
  "CMakeFiles/dnn_synthetic_test.dir/dnn/synthetic_test.cc.o"
  "CMakeFiles/dnn_synthetic_test.dir/dnn/synthetic_test.cc.o.d"
  "dnn_synthetic_test"
  "dnn_synthetic_test.pdb"
  "dnn_synthetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
