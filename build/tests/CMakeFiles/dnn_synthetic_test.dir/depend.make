# Empty dependencies file for dnn_synthetic_test.
# This may be replaced when dependencies are built.
