file(REMOVE_RECURSE
  "CMakeFiles/patterns_campaign_test.dir/patterns/campaign_test.cc.o"
  "CMakeFiles/patterns_campaign_test.dir/patterns/campaign_test.cc.o.d"
  "patterns_campaign_test"
  "patterns_campaign_test.pdb"
  "patterns_campaign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
