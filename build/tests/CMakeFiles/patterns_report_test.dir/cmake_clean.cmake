file(REMOVE_RECURSE
  "CMakeFiles/patterns_report_test.dir/patterns/report_test.cc.o"
  "CMakeFiles/patterns_report_test.dir/patterns/report_test.cc.o.d"
  "patterns_report_test"
  "patterns_report_test.pdb"
  "patterns_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
