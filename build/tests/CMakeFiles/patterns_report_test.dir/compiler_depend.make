# Empty compiler generated dependencies file for patterns_report_test.
# This may be replaced when dependencies are built.
