# Empty compiler generated dependencies file for patterns_predictor_is_test.
# This may be replaced when dependencies are built.
