# Empty compiler generated dependencies file for accel_driver_nonsquare_test.
# This may be replaced when dependencies are built.
