file(REMOVE_RECURSE
  "CMakeFiles/fi_runner_test.dir/fi/runner_test.cc.o"
  "CMakeFiles/fi_runner_test.dir/fi/runner_test.cc.o.d"
  "fi_runner_test"
  "fi_runner_test.pdb"
  "fi_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
