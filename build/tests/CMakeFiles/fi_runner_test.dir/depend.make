# Empty dependencies file for fi_runner_test.
# This may be replaced when dependencies are built.
