file(REMOVE_RECURSE
  "CMakeFiles/tensor_conv_test.dir/tensor/conv_test.cc.o"
  "CMakeFiles/tensor_conv_test.dir/tensor/conv_test.cc.o.d"
  "tensor_conv_test"
  "tensor_conv_test.pdb"
  "tensor_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
