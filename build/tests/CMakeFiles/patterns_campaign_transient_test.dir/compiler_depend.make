# Empty compiler generated dependencies file for patterns_campaign_transient_test.
# This may be replaced when dependencies are built.
