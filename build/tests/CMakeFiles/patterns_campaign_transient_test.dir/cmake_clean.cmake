file(REMOVE_RECURSE
  "CMakeFiles/patterns_campaign_transient_test.dir/patterns/campaign_transient_test.cc.o"
  "CMakeFiles/patterns_campaign_transient_test.dir/patterns/campaign_transient_test.cc.o.d"
  "patterns_campaign_transient_test"
  "patterns_campaign_transient_test.pdb"
  "patterns_campaign_transient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_campaign_transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
