# Empty dependencies file for fi_injector_test.
# This may be replaced when dependencies are built.
